// Simulated-stack fault injection: the TransferEngine fault plane, the
// hardened probe race (timeout, bounded retry, direct fallback), the
// client's failed-relay blacklisting, and the testbed's schedule replay.
#include <gtest/gtest.h>

#include <optional>

#include "core/client.hpp"
#include "core/probe_race.hpp"
#include "testbed/world.hpp"
#include "util/error.hpp"

namespace idr::core {
namespace {

using util::mbps;
using util::milliseconds;

// Same star world as test_core_probe_race: direct path server->gw->client
// plus two relays with controllable leg capacities.
struct FaultWorld {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<flow::FlowSimulator> fsim;
  std::optional<overlay::WebServerModel> server;
  std::optional<overlay::TransferEngine> engine;
  net::NodeId server_node, gw, client;
  net::NodeId fast_relay, slow_relay;

  FaultWorld(util::Rate direct, util::Rate fast_leg, util::Rate slow_leg) {
    server_node = topo.add_node("server");
    gw = topo.add_node("gw");
    client = topo.add_node("client");
    fast_relay = topo.add_node("fast");
    slow_relay = topo.add_node("slow");
    topo.add_link(server_node, gw, direct, milliseconds(90));
    topo.add_link(gw, client, mbps(50), milliseconds(5));
    topo.add_link(server_node, fast_relay, mbps(40), milliseconds(20));
    topo.add_link(fast_relay, gw, fast_leg, milliseconds(85));
    topo.add_link(server_node, slow_relay, mbps(40), milliseconds(25));
    topo.add_link(slow_relay, gw, slow_leg, milliseconds(95));
    fsim.emplace(sim, topo, util::Rng(9));
    server.emplace(server_node, "server");
    server->add_resource("/f", 2.0e6);
    engine.emplace(*fsim);
  }

  RaceSpec spec(std::vector<net::NodeId> candidates) {
    RaceSpec s;
    s.client = client;
    s.server = &*server;
    s.resource = "/f";
    s.candidate_relays = std::move(candidates);
    return s;
  }

  void relay_down_window(net::NodeId relay, double start, double end) {
    sim.schedule_at(start,
                    [this, relay] { engine->set_relay_down(relay, true); });
    sim.schedule_at(end,
                    [this, relay] { engine->set_relay_down(relay, false); });
  }

  void direct_down_window(double start, double end) {
    sim.schedule_at(start, [this] { engine->set_direct_down(true); });
    sim.schedule_at(end, [this] { engine->set_direct_down(false); });
  }
};

// --- TransferEngine fault plane -------------------------------------------

TEST(FaultPlane, RelayDownAbortsInFlightAndRefusesNew) {
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  std::optional<overlay::TransferResult> killed;
  overlay::TransferRequest req;
  req.client = w.client;
  req.server = &*w.server;
  req.resource = "/f";
  req.relay = w.fast_relay;
  w.engine->begin(req, [&](const overlay::TransferResult& r) { killed = r; });
  w.sim.schedule_at(0.5,
                    [&] { w.engine->set_relay_down(w.fast_relay, true); });
  w.sim.run();
  ASSERT_TRUE(killed);
  EXPECT_FALSE(killed->ok);
  EXPECT_NE(killed->error.find("relay down"), std::string::npos);
  EXPECT_EQ(w.engine->in_flight(), 0u);
  EXPECT_EQ(w.fsim->active_flows(), 0u);

  // While down, new transfers via the relay are refused on arrival.
  std::optional<overlay::TransferResult> refused;
  w.engine->begin(req,
                  [&](const overlay::TransferResult& r) { refused = r; });
  w.sim.run();
  ASSERT_TRUE(refused);
  EXPECT_FALSE(refused->ok);
  EXPECT_EQ(w.engine->faults_injected(), 2u);

  // Restart: the same request succeeds again.
  w.engine->set_relay_down(w.fast_relay, false);
  std::optional<overlay::TransferResult> after;
  w.engine->begin(req, [&](const overlay::TransferResult& r) { after = r; });
  w.sim.run();
  ASSERT_TRUE(after);
  EXPECT_TRUE(after->ok);
}

TEST(FaultPlane, ResetKillsInFlightButAllowsReconnect) {
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  std::optional<overlay::TransferResult> first;
  overlay::TransferRequest req;
  req.client = w.client;
  req.server = &*w.server;
  req.resource = "/f";
  w.engine->begin(req, [&](const overlay::TransferResult& r) { first = r; });
  w.sim.schedule_at(1.0,
                    [&] { w.engine->inject_reset(net::kInvalidNode); });
  w.sim.run();
  ASSERT_TRUE(first);
  EXPECT_FALSE(first->ok);
  EXPECT_NE(first->error.find("reset"), std::string::npos);

  // A reset opens no down window: the retry connects fine.
  std::optional<overlay::TransferResult> second;
  w.engine->begin(req,
                  [&](const overlay::TransferResult& r) { second = r; });
  w.sim.run();
  ASSERT_TRUE(second);
  EXPECT_TRUE(second->ok);
}

TEST(FaultPlane, TailPhaseTransfersSurviveFaults) {
  // A transfer whose byte stream has fully drained (delivery tail) is
  // past the point a reset can reach; it must complete.
  FaultWorld w(mbps(8.0), mbps(1.0), mbps(1.0));
  std::optional<overlay::TransferResult> result;
  overlay::TransferRequest req;
  req.client = w.client;
  req.server = &*w.server;
  req.resource = "/f";
  w.engine->begin(req, [&](const overlay::TransferResult& r) { result = r; });
  // Drive the sim until the flow finishes, then reset during the tail.
  while (w.fsim->active_flows() == 0) w.sim.step();
  while (w.fsim->active_flows() > 0) w.sim.step();
  w.engine->inject_reset(net::kInvalidNode);
  w.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->ok);
}

// --- Hardened probe race ---------------------------------------------------

TEST(FaultRace, DeadRelayLaneLosesRaceCleanly) {
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  w.engine->set_relay_down(w.fast_relay, true);
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, w.spec({w.fast_relay, w.slow_relay}),
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_TRUE(outcome->chose_indirect);
  EXPECT_EQ(outcome->relay, w.slow_relay);
  EXPECT_EQ(outcome->probe_failures, 1u);
  ASSERT_EQ(outcome->failed_relays.size(), 1u);
  EXPECT_EQ(outcome->failed_relays[0], w.fast_relay);
  EXPECT_FALSE(outcome->fell_back_direct);
}

TEST(FaultRace, RemainderFailureRetriesThenFallsBackDirect) {
  // Learn the clean race's timeline first: identical world seed, so the
  // faulted run matches it event-for-event up to the injected crash.
  double probe_end = 0.0, total_end = 0.0;
  {
    FaultWorld clean(mbps(0.8), mbps(8.0), mbps(2.0));
    std::optional<RaceOutcome> outcome;
    start_probe_race(*clean.engine, clean.spec({clean.fast_relay}),
                     [&](const RaceOutcome& o) { outcome = o; });
    clean.sim.run();
    ASSERT_TRUE(outcome && outcome->ok && outcome->chose_indirect);
    probe_end = outcome->probe_elapsed;
    total_end = outcome->total_elapsed;
    ASSERT_LT(probe_end, total_end);
  }

  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  // The fast relay wins the probe, then dies mid-remainder; the retry
  // hits the still-down relay, and the race degrades to the direct path
  // instead of failing the transfer.
  const double crash = 0.5 * (probe_end + total_end);
  w.relay_down_window(w.fast_relay, crash, crash + 120.0);
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, w.spec({w.fast_relay}),
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_TRUE(outcome->chose_indirect);  // the race's selection stands...
  EXPECT_EQ(outcome->relay, w.fast_relay);
  EXPECT_TRUE(outcome->fell_back_direct);  // ...but the bytes came direct
  EXPECT_GE(outcome->retries, 1u);
  ASSERT_EQ(outcome->failed_relays.size(), 1u);
  EXPECT_EQ(outcome->failed_relays[0], w.fast_relay);
  EXPECT_EQ(outcome->total_bytes, 2.0e6);
}

TEST(FaultRace, ProbeTimeoutCancelsStuckLanesAndFallsBack) {
  // Direct refused at launch (outage window), the only candidate crawls at
  // a rate that cannot deliver the probe before the timeout. The timeout
  // declares the race lost; by then the direct outage is over, so the
  // fallback salvages the file.
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(0.05));
  w.direct_down_window(0.0, 1.0);
  RaceSpec spec = w.spec({w.slow_relay});
  spec.probe_timeout = 2.0;
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, spec,
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_FALSE(outcome->chose_indirect);
  EXPECT_TRUE(outcome->fell_back_direct);
  EXPECT_EQ(outcome->probe_failures, 2u);  // direct refused + relay timed out
  ASSERT_EQ(outcome->failed_relays.size(), 1u);
  EXPECT_EQ(outcome->failed_relays[0], w.slow_relay);
  EXPECT_EQ(w.engine->in_flight(), 0u);
  EXPECT_EQ(w.fsim->active_flows(), 0u);
}

TEST(FaultRace, EverythingDeadYieldsCleanErrorAfterRetries) {
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  w.engine->set_direct_down(true);
  w.engine->set_relay_down(w.fast_relay, true);
  w.engine->set_relay_down(w.slow_relay, true);
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, w.spec({w.fast_relay, w.slow_relay}),
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome);
  EXPECT_FALSE(outcome->ok);
  EXPECT_NE(outcome->error.find("direct fallback died"), std::string::npos);
  EXPECT_EQ(outcome->probe_failures, 3u);
  EXPECT_TRUE(outcome->fell_back_direct);
  EXPECT_EQ(outcome->retries, 1u);  // default policy: one extra attempt
  EXPECT_EQ(w.engine->in_flight(), 0u);
}

// --- Blacklisting ----------------------------------------------------------

TEST(Blacklist, PenaltyGrowsExponentiallyAndRecoveryClears) {
  RelayStatsTable table;
  table.add_relay(7, "r");
  table.note_failure(7, 100.0, 60.0, 3600.0);
  EXPECT_TRUE(table.blacklisted(7, 100.0));
  EXPECT_TRUE(table.blacklisted(7, 159.0));
  EXPECT_FALSE(table.blacklisted(7, 161.0));  // 60 s penalty expired

  // Second consecutive failure doubles the penalty (120 s from t=200).
  table.note_failure(7, 200.0, 60.0, 3600.0);
  EXPECT_TRUE(table.blacklisted(7, 319.0));
  EXPECT_FALSE(table.blacklisted(7, 321.0));

  // Growth is capped at max_penalty.
  for (int i = 0; i < 20; ++i) table.note_failure(7, 400.0, 60.0, 3600.0);
  EXPECT_TRUE(table.blacklisted(7, 400.0 + 3599.0));
  EXPECT_FALSE(table.blacklisted(7, 400.0 + 3601.0));
  EXPECT_EQ(table.record(7).failures, 22u);

  // Success resets both the run and the deadline.
  table.note_recovery(7);
  EXPECT_FALSE(table.blacklisted(7, 401.0));
  EXPECT_EQ(table.record(7).consecutive_failures, 0u);
  table.note_failure(7, 500.0, 60.0, 3600.0);
  EXPECT_FALSE(table.blacklisted(7, 561.0));  // back to the base penalty
}

TEST(Blacklist, ClientSkipsBlacklistedCandidates) {
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  config.blacklist_base_penalty = 1e6;  // effectively forever
  config.blacklist_max_penalty = 1e7;
  IndirectRoutingClient client(*w.engine, config,
                               std::make_unique<FullSetPolicy>(),
                               util::Rng(10));
  client.register_relay(w.fast_relay, "fast");
  client.register_relay(w.slow_relay, "slow");
  w.engine->set_relay_down(w.fast_relay, true);

  // Fetch 1: the fast relay's probe lane dies -> blacklist entry.
  std::optional<FetchRecord> first;
  client.fetch([&](const FetchRecord& r) { first = r; });
  w.sim.run();
  ASSERT_TRUE(first && first->outcome.ok);
  EXPECT_EQ(first->outcome.probe_failures, 1u);
  EXPECT_EQ(client.stats().record(w.fast_relay).failures, 1u);
  EXPECT_EQ(client.stats().record(w.fast_relay).appearances, 1u);

  // Fetch 2: the blacklisted relay is dropped from the candidate set
  // before the race, so it neither appears nor fails again.
  std::optional<FetchRecord> second;
  client.fetch([&](const FetchRecord& r) { second = r; });
  w.sim.run();
  ASSERT_TRUE(second && second->outcome.ok);
  EXPECT_EQ(second->candidates.size(), 1u);
  EXPECT_EQ(second->candidates[0], w.slow_relay);
  EXPECT_EQ(second->outcome.probe_failures, 0u);
  EXPECT_EQ(client.stats().record(w.fast_relay).appearances, 1u);
}

TEST(Blacklist, SuccessfulIndirectTransferClearsRun) {
  FaultWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  config.blacklist_base_penalty = 0.5;  // short penalty: relay comes back
  IndirectRoutingClient client(*w.engine, config,
                               std::make_unique<FullSetPolicy>(),
                               util::Rng(10));
  client.register_relay(w.fast_relay, "fast");
  client.register_relay(w.slow_relay, "slow");
  w.relay_down_window(w.fast_relay, 0.0, 3.0);

  std::optional<FetchRecord> first;
  client.fetch([&](const FetchRecord& r) { first = r; });
  w.sim.run();
  ASSERT_TRUE(first && first->outcome.ok);
  EXPECT_EQ(client.stats().record(w.fast_relay).consecutive_failures, 1u);

  // Relay restarted and the penalty expired (the fetch is scheduled past
  // both): it races again, wins, and the success ends its failure run.
  std::optional<FetchRecord> second;
  w.sim.schedule_at(w.sim.now() + 5.0, [&] {
    client.fetch([&](const FetchRecord& r) { second = r; });
  });
  w.sim.run();
  ASSERT_TRUE(second && second->outcome.ok);
  EXPECT_TRUE(second->outcome.chose_indirect);
  EXPECT_EQ(second->outcome.relay, w.fast_relay);
  EXPECT_EQ(client.stats().record(w.fast_relay).consecutive_failures, 0u);
}

// --- Testbed schedule replay ----------------------------------------------

testbed::WorldParams faulty_world_params() {
  testbed::WorldParams params;
  params.client_name = "client";
  params.server_name = "server";
  params.relay_names = {"r0", "r1"};
  params.access.mean = mbps(20.0);
  params.direct_wan.mean = mbps(4.0);
  params.relay_wan.assign(2, testbed::LinkSpec{});
  params.server_relay.assign(2, testbed::LinkSpec{});
  for (auto* specs : {&params.relay_wan, &params.server_relay}) {
    for (auto& link : *specs) link.mean = mbps(8.0);
  }
  params.fault.enabled = true;
  params.fault.relay_mtbf = 1800.0;
  params.fault.relay_mttr = 120.0;
  params.fault.horizon = 4.0 * 3600.0;
  params.process_seed = 77;
  return params;
}

TEST(FaultTestbed, ScheduleHitsOnlySelectingMirror) {
  const testbed::WorldParams params = faulty_world_params();
  testbed::ClientWorld plain(params, /*attach_relay_processes=*/false);
  testbed::ClientWorld selecting(params, /*attach_relay_processes=*/true);
  EXPECT_TRUE(plain.fault_schedule().empty());
  EXPECT_FALSE(selecting.fault_schedule().empty());

  // Replay makes the engine's view track the windows: step past the first
  // crash and the relay reads as down.
  const fault::FaultWindow& first = selecting.fault_schedule().windows[0];
  const net::NodeId victim = selecting.relay_node(first.target);
  while (selecting.simulator().now() < first.start &&
         selecting.simulator().step()) {
  }
  EXPECT_TRUE(selecting.engine().relay_down(victim));
  while (selecting.simulator().now() < first.end &&
         selecting.simulator().step()) {
  }
  EXPECT_FALSE(selecting.engine().relay_down(victim));
}

TEST(FaultTestbed, DisabledFaultsScheduleNothing) {
  testbed::WorldParams params = faulty_world_params();
  params.fault.enabled = false;
  testbed::ClientWorld world(params, /*attach_relay_processes=*/true);
  EXPECT_TRUE(world.fault_schedule().empty());
  EXPECT_EQ(world.engine().faults_injected(), 0u);
}

}  // namespace
}  // namespace idr::core
