#include "sim/simulator.hpp"

#include <gtest/gtest.h>
#include <vector>

#include "util/error.hpp"

namespace idr::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInPast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), util::Error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), util::Error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenEmpty) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(10.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(2.5, [&] { ++count; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CallbackCanScheduleMore) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Simulator, CallbackCanCancelOtherEvent) {
  Simulator sim;
  bool second_ran = false;
  EventId second = 0;
  sim.schedule_at(1.0, [&] { sim.cancel(second); });
  second = sim.schedule_at(2.0, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, MaxEventsBound) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_in(1.0, [&] { ++count; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, NextEventTimeSkipsCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.cancel(a);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTimer timer(sim, 2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(PeriodicTimer, StopFromCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 1.0, [&] {
    if (++fires == 3) timer.stop();
  });
  sim.run_until(10.0);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, 1.0, [&] { ++fires; });
    sim.run_until(2.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace idr::sim
