#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/error.hpp"

namespace idr::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, EventsFireInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, EqualTimesFireFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, ScheduleInPast) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(4.0, [] {}), util::Error);
  EXPECT_THROW(sim.schedule_in(-1.0, [] {}), util::Error);
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(sim.cancel(id));  // second cancel is a no-op
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, PendingCountExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_FALSE(sim.empty());
}

TEST(Simulator, RunUntilAdvancesClockEvenWhenEmpty) {
  Simulator sim;
  EXPECT_EQ(sim.run_until(10.0), 0u);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  sim.schedule_at(2.5, [&] { ++count; });
  EXPECT_EQ(sim.run_until(2.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, CallbackCanScheduleMore) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.now());
    if (times.size() < 3) sim.schedule_in(1.0, chain);
  };
  sim.schedule_in(1.0, chain);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(Simulator, CallbackCanCancelOtherEvent) {
  Simulator sim;
  bool second_ran = false;
  EventId second = 0;
  sim.schedule_at(1.0, [&] { sim.cancel(second); });
  second = sim.schedule_at(2.0, [&] { second_ran = true; });
  sim.run();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule_at(1.0, [&] { ++count; });
  sim.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, MaxEventsBound) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule_in(1.0, [&] { ++count; });
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, NextEventTimeSkipsCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [] {});
  sim.cancel(a);
  EXPECT_DOUBLE_EQ(sim.next_event_time(), 2.0);
}

TEST(Simulator, ExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_in(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.executed(), 7u);
}

TEST(Simulator, CancelUnknownIdReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(0));                    // the "no event" sentinel
  EXPECT_FALSE(sim.cancel(0xdeadbeefdeadbeefull));  // never issued
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));      // fired
  EXPECT_FALSE(sim.cancel(id + 1));  // same slot, wrong generation
}

TEST(Simulator, CancelledSlotRejectsStaleHandle) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  EXPECT_TRUE(sim.cancel(a));
  // The slot is recycled by the next schedule; the old handle must not
  // reach the new occupant.
  bool ran = false;
  const EventId b = sim.schedule_at(2.0, [&] { ran = true; });
  EXPECT_FALSE(sim.cancel(a));
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.cancel(b));
}

TEST(Simulator, CancelSelfInsideCallbackReturnsFalse) {
  Simulator sim;
  EventId self = 0;
  bool result = true;
  self = sim.schedule_at(1.0, [&] { result = sim.cancel(self); });
  sim.run();
  EXPECT_FALSE(result);  // a dispatching event already counts as fired
}

TEST(Simulator, RescheduleLater) {
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.reschedule_at(a, 3.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, RescheduleEarlier) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  const EventId a = sim.schedule_at(3.0, [&] { order.push_back(1); });
  EXPECT_TRUE(sim.reschedule_at(a, 1.0));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, RescheduleToEqualTimeFiresBehindExisting) {
  // Ordering contract: a reschedule behaves exactly like cancel + fresh
  // schedule — the moved event goes behind every event already at the
  // target timestamp, even ones scheduled after it.
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.schedule_at(2.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_TRUE(sim.reschedule_at(a, 2.0));
  sim.schedule_at(2.0, [&] { order.push_back(3); });
  sim.run();
  // a moved behind 1 and 2 (rescheduled after them) but ahead of 3
  // (scheduled after the move).
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0, 3}));
}

TEST(Simulator, RescheduleSameTimeRefreshesFifoRank) {
  Simulator sim;
  std::vector<int> order;
  const EventId a = sim.schedule_at(1.0, [&] { order.push_back(0); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  EXPECT_TRUE(sim.reschedule_at(a, 1.0));  // same time, new rank
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 0}));
}

TEST(Simulator, RescheduleUnknownOrFiredReturnsFalse) {
  Simulator sim;
  EXPECT_FALSE(sim.reschedule_at(0, 1.0));
  const EventId id = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(sim.reschedule_at(id, 2.0));
  EXPECT_THROW(sim.reschedule_at(id, 0.5), util::Error);  // past time
}

TEST(Simulator, SelfRescheduleFromOwnCallback) {
  Simulator sim;
  std::vector<double> times;
  EventId self = 0;
  self = sim.schedule_at(1.0, [&] {
    times.push_back(sim.now());
    if (times.size() < 3) {
      EXPECT_TRUE(sim.reschedule_in(self, 1.5));
    }
  });
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5, 4.0}));
  EXPECT_EQ(sim.executed(), 3u);
}

TEST(Simulator, CancelAfterSelfRescheduleInCallback) {
  Simulator sim;
  int fires = 0;
  EventId self = 0;
  self = sim.schedule_at(1.0, [&] {
    ++fires;
    EXPECT_TRUE(sim.reschedule_in(self, 1.0));
    EXPECT_TRUE(sim.cancel(self));  // revokes the reschedule just issued
  });
  sim.run();
  EXPECT_EQ(fires, 1);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulator, LargeClosureUsesHeapFallbackCorrectly) {
  Simulator sim;
  double sink = 0.0;
  double payload[16];  // 128 bytes: over the inline buffer by design
  for (int i = 0; i < 16; ++i) payload[i] = i + 0.5;
  EventId id = sim.schedule_at(1.0, [&sink, payload] {
    for (double v : payload) sink += v;
  });
  EXPECT_TRUE(sim.reschedule_at(id, 2.0));  // moves must keep the closure
  sim.run();
  EXPECT_DOUBLE_EQ(sink, 16.0 * 8.0);  // sum of i + 0.5 for i in 0..15
}

TEST(Simulator, ChurnCounters) {
  Simulator sim;
  const EventId a = sim.schedule_at(1.0, [] {});
  const EventId b = sim.schedule_at(2.0, [] {});
  sim.schedule_at(3.0, [] {});
  EXPECT_TRUE(sim.reschedule_at(a, 4.0));
  EXPECT_TRUE(sim.reschedule_at(a, 5.0));
  EXPECT_TRUE(sim.cancel(b));
  sim.run();
  EXPECT_EQ(sim.executed(), 2u);
  EXPECT_EQ(sim.cancellations(), 1u);
  EXPECT_EQ(sim.reschedules(), 2u);
}

// --- Randomized property test: execution order identical to a reference
// model that implements the documented (time, seq) contract directly —
// schedule and reschedule each consume one fresh seq; cancel consumes
// none. This pins the indexed heap to the seed implementation's ordering
// (where a re-arm was spelled cancel + schedule, also one seq).
TEST(Simulator, RandomChurnMatchesReferenceModel) {
  struct RefEvent {
    double time;
    std::uint64_t seq;
    int token;
  };

  for (std::uint64_t round = 0; round < 25; ++round) {
    std::uint64_t lcg = 0x9E3779B97F4A7C15ull * (round + 1);
    const auto draw = [&lcg] {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      return lcg >> 17;
    };

    Simulator sim;
    std::vector<RefEvent> ref;
    std::uint64_t ref_seq = 0;
    struct Live {
      EventId id;
      int token;
    };
    std::vector<Live> live;
    std::vector<int> fired;
    std::vector<int> expected_fired;
    int next_token = 0;

    for (int op = 0; op < 400; ++op) {
      // Integer time offsets in [0, 8) force heavy timestamp collisions,
      // stressing the FIFO tie-break.
      const double t = sim.now() + static_cast<double>(draw() % 8);
      switch (draw() % 5) {
        case 0:
        case 1: {  // schedule
          const int token = next_token++;
          const EventId id =
              sim.schedule_at(t, [&fired, token] { fired.push_back(token); });
          ref.push_back(RefEvent{t, ++ref_seq, token});
          live.push_back(Live{id, token});
          break;
        }
        case 2: {  // cancel a live event
          if (live.empty()) break;
          const std::size_t i = draw() % live.size();
          EXPECT_TRUE(sim.cancel(live[i].id));
          const int token = live[i].token;
          ref.erase(std::find_if(ref.begin(), ref.end(),
                                 [token](const RefEvent& e) {
                                   return e.token == token;
                                 }));
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
        case 3: {  // reschedule a live event
          if (live.empty()) break;
          const std::size_t i = draw() % live.size();
          EXPECT_TRUE(sim.reschedule_at(live[i].id, t));
          const int token = live[i].token;
          const auto it = std::find_if(ref.begin(), ref.end(),
                                       [token](const RefEvent& e) {
                                         return e.token == token;
                                       });
          it->time = t;
          it->seq = ++ref_seq;
          break;
        }
        case 4: {  // dispatch everything up to a nearby horizon
          const double target = sim.now() + static_cast<double>(draw() % 3);
          sim.run_until(target);
          // Pop the reference model in (time, seq) order up to target.
          while (true) {
            std::size_t best = ref.size();
            for (std::size_t j = 0; j < ref.size(); ++j) {
              if (ref[j].time > target) continue;
              if (best == ref.size() || ref[j].time < ref[best].time ||
                  (ref[j].time == ref[best].time &&
                   ref[j].seq < ref[best].seq)) {
                best = j;
              }
            }
            if (best == ref.size()) break;
            const int token = ref[best].token;
            ref.erase(ref.begin() + static_cast<std::ptrdiff_t>(best));
            live.erase(std::find_if(
                live.begin(), live.end(),
                [token](const Live& l) { return l.token == token; }));
            expected_fired.push_back(token);
          }
          break;
        }
      }
    }
    // Drain the rest.
    sim.run();
    {
      std::vector<RefEvent> rest = ref;
      std::sort(rest.begin(), rest.end(),
                [](const RefEvent& a, const RefEvent& b) {
                  if (a.time != b.time) return a.time < b.time;
                  return a.seq < b.seq;
                });
      for (const RefEvent& e : rest) expected_fired.push_back(e.token);
    }
    ASSERT_EQ(fired, expected_fired) << "round " << round;
  }
}

TEST(PeriodicTimer, FiresAtPeriod) {
  Simulator sim;
  std::vector<double> times;
  PeriodicTimer timer(sim, 2.0, [&] { times.push_back(sim.now()); });
  sim.run_until(7.0);
  EXPECT_EQ(times, (std::vector<double>{2.0, 4.0, 6.0}));
}

TEST(PeriodicTimer, StopFromCallback) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 1.0, [&] {
    if (++fires == 3) timer.stop();
  });
  sim.run_until(10.0);
  EXPECT_EQ(fires, 3);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, DestructionCancels) {
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, 1.0, [&] { ++fires; });
    sim.run_until(2.5);
  }
  sim.run_until(10.0);
  EXPECT_EQ(fires, 2);
}

}  // namespace
}  // namespace idr::sim
