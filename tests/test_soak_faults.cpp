// Randomized soak (ctest label `soak`): the Section-2 driver under a
// nonzero fault rate across many derived seeds. No golden values — only
// invariants that must hold for every seed: the run terminates, every
// trial produces exactly one record, all metrics are finite, fault
// counters are sane, and the same seed reproduces identical records even
// at a different worker-thread count.
#include <gtest/gtest.h>

#include <cmath>

#include "testbed/section2.hpp"

namespace idr::testbed {
namespace {

constexpr std::size_t kSeeds = 50;
constexpr std::size_t kTransfersPerSession = 5;

Section2Config soak_config(std::uint64_t seed) {
  Section2Config config;
  config.seed = seed;
  config.clients = {"Beirut", "Berlin"};
  config.assignment = RelayAssignment::AprioriGood;
  config.transfers_per_session = kTransfersPerSession;
  config.interval = util::minutes(3);
  config.knobs.fault.enabled = true;
  config.knobs.fault.relay_mtbf = 15.0 * 60.0;
  config.knobs.fault.relay_mttr = 2.0 * 60.0;
  config.knobs.fault.relay_reset_mtbf = 20.0 * 60.0;
  config.knobs.fault.direct_mtbf = 2.0 * 3600.0;
  config.knobs.fault.direct_mttr = 30.0;
  config.knobs.probe_timeout = 15.0;
  config.threads = 1;
  return config;
}

void check_invariants(const Section2Result& result, std::uint64_t seed) {
  SCOPED_TRACE("seed " + std::to_string(seed));
  // AprioriGood: one session per client, one record per scheduled trial
  // — fault-killed transfers must still produce a (failed) record.
  ASSERT_EQ(result.sessions.size(), 2u);
  for (const SessionResult& session : result.sessions) {
    ASSERT_EQ(session.transfers.size(), kTransfersPerSession);
    std::size_t failed = 0, fallbacks = 0;
    for (const TransferObservation& t : session.transfers) {
      EXPECT_TRUE(std::isfinite(t.selected_rate));
      EXPECT_TRUE(std::isfinite(t.direct_rate));
      EXPECT_TRUE(std::isfinite(t.improvement_pct));
      EXPECT_TRUE(std::isfinite(t.improvement_steady_pct));
      EXPECT_GE(t.selected_rate, 0.0);
      EXPECT_GE(t.direct_rate, 0.0);
      if (t.ok) {
        EXPECT_GT(t.direct_rate, 0.0);
      }
      failed += t.ok ? 0 : 1;
      fallbacks += t.fell_back_direct ? 1 : 0;
    }
    EXPECT_EQ(session.failed_transfers, failed);
    EXPECT_EQ(session.fault_fallbacks, fallbacks);
    EXPECT_LE(session.fault_fallbacks, session.transfers.size());
    EXPECT_LE(session.failed_transfers, session.transfers.size());
    EXPECT_TRUE(std::isfinite(session.direct_rate_stats.mean()));
  }
}

bool records_identical(const Section2Result& a, const Section2Result& b) {
  if (a.sessions.size() != b.sessions.size()) return false;
  for (std::size_t s = 0; s < a.sessions.size(); ++s) {
    const SessionResult& x = a.sessions[s];
    const SessionResult& y = b.sessions[s];
    if (x.client != y.client || x.session_relay != y.session_relay ||
        x.transfers.size() != y.transfers.size() ||
        x.fault_probe_failures != y.fault_probe_failures ||
        x.fault_retries != y.fault_retries ||
        x.fault_fallbacks != y.fault_fallbacks ||
        x.failed_transfers != y.failed_transfers ||
        x.faults_injected != y.faults_injected) {
      return false;
    }
    for (std::size_t t = 0; t < x.transfers.size(); ++t) {
      const TransferObservation& u = x.transfers[t];
      const TransferObservation& v = y.transfers[t];
      if (u.ok != v.ok || u.chose_indirect != v.chose_indirect ||
          u.chosen_relay != v.chosen_relay ||
          u.start_time != v.start_time ||
          u.selected_rate != v.selected_rate ||
          u.direct_rate != v.direct_rate ||
          u.improvement_pct != v.improvement_pct ||
          u.probe_failures != v.probe_failures ||
          u.retries != v.retries ||
          u.fell_back_direct != v.fell_back_direct) {
        return false;
      }
    }
  }
  return true;
}

TEST(SoakFaults, InvariantsHoldAcrossDerivedSeeds) {
  std::size_t total_faults = 0;
  for (std::size_t i = 0; i < kSeeds; ++i) {
    const std::uint64_t seed = 10007 + 37 * i;
    const Section2Result result = run_section2(soak_config(seed));
    check_invariants(result, seed);
    for (const SessionResult& s : result.sessions) {
      total_faults += static_cast<std::size_t>(s.faults_injected);
    }
  }
  // The sweep must actually exercise the fault plane — a silently inert
  // schedule would make every invariant above vacuous.
  EXPECT_GT(total_faults, 0u);
}

TEST(SoakFaults, SameSeedSameRecordsAcrossThreadCounts) {
  for (std::size_t i = 0; i < 3; ++i) {
    const std::uint64_t seed = 10007 + 37 * i;
    Section2Config one = soak_config(seed);
    Section2Config four = soak_config(seed);
    four.threads = 4;
    const Section2Result a = run_section2(one);
    const Section2Result b = run_section2(four);
    EXPECT_TRUE(records_identical(a, b)) << "seed " << seed;
  }
}

TEST(SoakFaults, DifferentSeedsProduceDifferentFaultTimelines) {
  const Section2Result a = run_section2(soak_config(10007));
  const Section2Result b = run_section2(soak_config(20021));
  EXPECT_FALSE(records_identical(a, b));
}

}  // namespace
}  // namespace idr::testbed
