#include <algorithm>
#include <gtest/gtest.h>
#include <optional>

#include "testbed/scenario.hpp"
#include "testbed/sites.hpp"
#include "testbed/world.hpp"
#include "util/error.hpp"

namespace idr::testbed {
namespace {

TEST(Sites, TablesMatchThePaper) {
  EXPECT_EQ(client_sites().size(), 22u);  // Table IV
  EXPECT_EQ(relay_sites().size(), 21u);   // Table V
  EXPECT_EQ(server_sites().size(), 4u);   // eBay, Google, MSN, Yahoo
  EXPECT_EQ(find_site("Canada").domain, "planetlab1.enel.ucalgary.ca");
  EXPECT_EQ(find_site("Princeton").domain, "planetlab-1.cs.princeton.edu");
  EXPECT_TRUE(find_site("eBay").usa);
  EXPECT_THROW(find_site("Atlantis"), util::Error);
}

TEST(Sites, ClientCategoriesSpanTheBands) {
  // The calibrated population must contain Low, Medium and High clients
  // (Section 2.2's categorization).
  int low = 0, med = 0, high = 0;
  for (const auto& c : client_sites()) {
    if (c.inbound_mbps <= 1.5) {
      ++low;
    } else if (c.inbound_mbps <= 3.0) {
      ++med;
    } else {
      ++high;
    }
  }
  EXPECT_GT(low, 5);
  EXPECT_GT(med, 2);
  EXPECT_GT(high, 2);
  EXPECT_EQ(low + med + high, 22);
}

TEST(Sites, HighThroughputClientsAreJumpy) {
  // The penalty analysis (Table I) requires High clients with variable
  // direct paths.
  for (const auto& c : client_sites()) {
    if (c.jumpy) {
      EXPECT_GT(c.inbound_mbps, 3.0) << c.name;
    }
  }
}

TEST(Fnv, StableKnownValues) {
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a("Duke"), fnv1a("duke"));
}

TEST(Scenario, DeterministicWorldParams) {
  const ScenarioGenerator gen(7, {});
  const auto& client = find_site("Italy");
  const auto& relay = find_site("NYU");
  const auto& server = find_site("eBay");
  const WorldParams a = gen.make_world(client, {&relay}, server);
  const WorldParams b = gen.make_world(client, {&relay}, server);
  EXPECT_EQ(a.process_seed, b.process_seed);
  EXPECT_DOUBLE_EQ(a.direct_wan.mean, b.direct_wan.mean);
  EXPECT_DOUBLE_EQ(a.relay_wan[0].mean, b.relay_wan[0].mean);
  EXPECT_DOUBLE_EQ(a.relay_wan[0].delay, b.relay_wan[0].delay);
}

TEST(Scenario, SeedChangesIdiosyncrasies) {
  const auto& client = find_site("Italy");
  const auto& relay = find_site("NYU");
  const auto& server = find_site("eBay");
  const WorldParams a = ScenarioGenerator(7).make_world(client, {&relay},
                                                        server);
  const WorldParams b = ScenarioGenerator(8).make_world(client, {&relay},
                                                        server);
  EXPECT_NE(a.relay_wan[0].mean, b.relay_wan[0].mean);
}

TEST(Scenario, RelayParamsIndependentOfRoster) {
  // NYU's leg to Italy must be identical whether it is probed alone or
  // alongside others — otherwise Section 4's sweep would compare
  // different networks.
  const ScenarioGenerator gen(7, {});
  const auto& client = find_site("Italy");
  const auto& nyu = find_site("NYU");
  const auto& texas = find_site("Texas");
  const auto& server = find_site("eBay");
  const WorldParams solo = gen.make_world(client, {&nyu}, server);
  const WorldParams duo = gen.make_world(client, {&texas, &nyu}, server);
  EXPECT_DOUBLE_EQ(solo.relay_wan[0].mean, duo.relay_wan[1].mean);
  EXPECT_DOUBLE_EQ(solo.relay_wan[0].loss, duo.relay_wan[1].loss);
}

TEST(Scenario, InboundOverrideApplies) {
  const ScenarioGenerator gen(7, {});
  const auto& duke = find_site("Duke");
  const auto& relay = find_site("NYU");
  const auto& server = find_site("eBay");
  const WorldParams params = gen.make_world(duke, {&relay}, server, 2.4);
  EXPECT_DOUBLE_EQ(params.direct_wan.mean, util::mbps(2.4));
}

TEST(Scenario, GoodnessOrdersExpectedLegQuality) {
  // Averaged over many seeds, a high-goodness relay must get better legs
  // than a low-goodness one to the same client.
  const auto& client = find_site("Canada");
  const auto& nyu = find_site("NYU");    // goodness 1.5
  const auto& ucsd = find_site("UCSD");  // goodness 0.6
  const auto& server = find_site("eBay");
  double nyu_mean = 0.0, ucsd_mean = 0.0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const ScenarioGenerator gen(seed, {});
    const WorldParams p = gen.make_world(client, {&nyu, &ucsd}, server);
    nyu_mean += p.relay_wan[0].mean;
    ucsd_mean += p.relay_wan[1].mean;
  }
  EXPECT_GT(nyu_mean, ucsd_mean * 1.5);
}

TEST(Scenario, DelaysRespectGeography) {
  const ScenarioGenerator gen(7, {});
  const auto& client = find_site("Italy");
  const auto& relay = find_site("NYU");
  const auto& server = find_site("eBay");
  const WorldParams p = gen.make_world(client, {&relay}, server);
  // US server -> intl client: intercontinental.
  EXPECT_GE(p.direct_wan.delay, 0.040);
  EXPECT_LE(p.direct_wan.delay, 0.110);
  // US server -> US relay: continental.
  EXPECT_GE(p.server_relay[0].delay, 0.015);
  EXPECT_LE(p.server_relay[0].delay, 0.045);
  // US relay -> intl client: rides the client's intercontinental segment,
  // so it is tightly correlated with the direct-path delay.
  EXPECT_GE(p.relay_wan[0].delay,
            std::max(0.035, p.direct_wan.delay - 0.015));
  EXPECT_LE(p.relay_wan[0].delay, p.direct_wan.delay + 0.030);
}

TEST(World, BuildsExpectedTopology) {
  const ScenarioGenerator gen(7, {});
  const auto& client = find_site("Italy");
  const auto& nyu = find_site("NYU");
  const auto& texas = find_site("Texas");
  const auto& server = find_site("eBay");
  const WorldParams params =
      gen.make_world(client, {&nyu, &texas}, server);
  ClientWorld world(params, /*attach_relay_processes=*/true);
  EXPECT_EQ(world.relay_nodes().size(), 2u);
  EXPECT_EQ(world.relay_name(0), "NYU");
  EXPECT_EQ(world.relay_name_of(world.relay_node(1)), "Texas");
  EXPECT_TRUE(
      world.server().resource_size(ClientWorld::kResource).has_value());
  EXPECT_THROW(world.relay_node(5), util::Error);
  EXPECT_THROW(world.relay_name_of(world.client_node()), util::Error);
}

TEST(World, MirroredWorldsSeeIdenticalDirectTransfers) {
  // The mirroring contract: the plain world (no relay processes) and the
  // full world must produce identical direct-path transfer timings.
  const ScenarioGenerator gen(11, {});
  const auto& client = find_site("France");
  const auto& nyu = find_site("NYU");
  const auto& server = find_site("eBay");
  const WorldParams params = gen.make_world(client, {&nyu}, server);

  auto run_direct = [&](bool attach_relays) {
    ClientWorld world(params, attach_relays);
    std::vector<double> rates;
    for (int k = 0; k < 5; ++k) {
      world.simulator().schedule_at(1.0 + 300.0 * k, [&world, &rates] {
        world.begin_direct_download(
            [&rates](const overlay::TransferResult& r) {
              rates.push_back(r.throughput());
            });
      });
    }
    while (rates.size() < 5) {
      IDR_REQUIRE(world.simulator().step(), "drained");
    }
    return rates;
  };

  const auto plain = run_direct(false);
  const auto full = run_direct(true);
  ASSERT_EQ(plain.size(), full.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain[i], full[i]) << i;
  }
}

TEST(World, DirectThroughputLandsNearProfile) {
  // Average direct throughput should be in the neighbourhood of the
  // profile's inbound mean (TCP ceilings can shave it).
  const ScenarioGenerator gen(3, {});
  const auto& client = find_site("Sweden");  // 1.8 Mbps profile
  const auto& relay = find_site("NYU");
  const auto& server = find_site("eBay");
  const WorldParams params = gen.make_world(client, {&relay}, server);
  ClientWorld world(params, false);
  util::OnlineStats rates;
  std::size_t pending = 20;
  for (int k = 0; k < 20; ++k) {
    world.simulator().schedule_at(1.0 + 360.0 * k, [&] {
      world.begin_direct_download([&](const overlay::TransferResult& r) {
        rates.add(util::to_mbps(r.throughput()));
        --pending;
      });
    });
  }
  while (pending > 0) {
    IDR_REQUIRE(world.simulator().step(), "drained");
  }
  EXPECT_GT(rates.mean(), 0.4);
  EXPECT_LT(rates.mean(), 3.0);
}

}  // namespace
}  // namespace idr::testbed
