// idr::obs unit tests: registry handle semantics (including the dormant
// null-handle contract), log-linear histogram edge math, snapshot
// diff/merge algebra, both export formats, the span tracer's Chrome JSON
// (validated by parse-back), and the file sink's environment gate.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "obs/flight.hpp"
#include "obs/json.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::obs {
namespace {

// --- Handles and registry -------------------------------------------------

TEST(Registry, NullHandlesAreNoOpSinks) {
  Counter c;
  Gauge g;
  Histogram h;
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  c.inc();
  c.inc(41);
  g.set(3.5);
  g.add(1.0);
  h.observe(2.0);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Registry, CountersAndGaugesRoundTrip) {
  Registry registry;
  Counter c = registry.counter("a.b.count");
  Gauge g = registry.gauge("a.b.level");
  c.inc();
  c.inc(9);
  g.set(2.0);
  g.add(0.5);
  EXPECT_EQ(c.value(), 10u);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  // Registration is idempotent: same name, same cell.
  Counter c2 = registry.counter("a.b.count");
  c2.inc();
  EXPECT_EQ(c.value(), 11u);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, KindMismatchFails) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), util::Error);
  EXPECT_THROW(registry.histogram("x"), util::Error);
}

TEST(Registry, AtomicRegistryCounts) {
  Registry registry(Registry::Sync::Atomic);
  Counter c = registry.counter("rt.thing");
  c.inc(7);
  EXPECT_EQ(c.value(), 7u);
  Gauge g = registry.gauge("rt.level");
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

// --- Log-linear histogram edges -------------------------------------------

TEST(Histogram, BucketCountIsOctavesTimesSubPlusRails) {
  // [1, 16) = 4 octaves: [1,2) [2,4) [4,8) [8,16).
  HistogramOptions opts{1.0, 16.0, 4};
  EXPECT_EQ(histogram_bucket_count(opts), 2u + 4u * 4u);
}

TEST(Histogram, LowerEdgesAreLogLinear) {
  HistogramOptions opts{1.0, 16.0, 4};
  // Bucket 0 is the underflow rail.
  EXPECT_EQ(histogram_bucket_lower(opts, 0), 0.0);
  // First octave [1,2) slices: 1, 1.25, 1.5, 1.75.
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 1), 1.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 2), 1.25);
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 3), 1.5);
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 4), 1.75);
  // Second octave [2,4) slices: 2, 2.5, 3, 3.5.
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 5), 2.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 6), 2.5);
  // Last real bucket starts at 8 * (1 + 3/4) = 14; overflow rail at max.
  EXPECT_DOUBLE_EQ(histogram_bucket_lower(opts, 16), 14.0);
  EXPECT_DOUBLE_EQ(
      histogram_bucket_lower(opts, histogram_bucket_count(opts) - 1), 16.0);
}

TEST(Histogram, IndexMapsEdgesToTheirOwnBucket) {
  HistogramOptions opts{1.0, 16.0, 4};
  // A lower edge belongs to its own bucket (inclusive lower bound).
  for (std::size_t i = 1; i + 1 < histogram_bucket_count(opts); ++i) {
    const double edge = histogram_bucket_lower(opts, i);
    EXPECT_EQ(histogram_bucket_index(opts, edge), i) << "edge " << edge;
    // Just below the edge lands in the previous bucket.
    EXPECT_EQ(histogram_bucket_index(opts, std::nextafter(edge, 0.0)),
              i - 1)
        << "below edge " << edge;
  }
}

TEST(Histogram, UnderflowOverflowAndNaNRails) {
  HistogramOptions opts{1.0, 16.0, 4};
  const std::size_t last = histogram_bucket_count(opts) - 1;
  EXPECT_EQ(histogram_bucket_index(opts, 0.0), 0u);
  EXPECT_EQ(histogram_bucket_index(opts, -5.0), 0u);
  EXPECT_EQ(histogram_bucket_index(opts, 0.999), 0u);
  EXPECT_EQ(histogram_bucket_index(opts, 16.0), last);
  EXPECT_EQ(histogram_bucket_index(opts, 1e18), last);
  EXPECT_EQ(histogram_bucket_index(opts, std::nan("")), 0u);
}

TEST(Histogram, ObserveFillsBucketsAndMoments) {
  Registry registry;
  Histogram h =
      registry.histogram("lat", HistogramOptions{1.0, 16.0, 4});
  h.observe(1.0);   // bucket 1
  h.observe(3.0);   // bucket 7 ([3, 3.5))
  h.observe(100.0); // overflow
  h.observe(0.5);   // underflow
  EXPECT_EQ(h.count(), 4u);

  const Snapshot snap = registry.snapshot();
  const MetricValue* m = snap.find("lat");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::Histogram);
  EXPECT_EQ(m->count, 4u);
  EXPECT_DOUBLE_EQ(m->value, 1.0 + 3.0 + 100.0 + 0.5);
  EXPECT_EQ(m->buckets.front(), 1u);
  EXPECT_EQ(m->buckets.back(), 1u);
  EXPECT_EQ(m->buckets[1], 1u);
  EXPECT_EQ(m->buckets[7], 1u);
}

// --- Snapshot algebra -----------------------------------------------------

TEST(Snapshot, DiffSubtractsCountersKeepsGauges) {
  Registry registry;
  Counter c = registry.counter("n");
  Gauge g = registry.gauge("v");
  Histogram h = registry.histogram("d", HistogramOptions{1.0, 16.0, 2});
  c.inc(5);
  g.set(1.0);
  h.observe(2.0);
  const Snapshot before = registry.snapshot();
  c.inc(3);
  g.set(9.0);
  h.observe(2.0);
  h.observe(3.0);
  const Snapshot after = registry.snapshot();

  const Snapshot delta = after.diff(before);
  EXPECT_EQ(delta.find("n")->count, 3u);
  EXPECT_DOUBLE_EQ(delta.find("v")->value, 9.0);  // gauges: later value
  EXPECT_EQ(delta.find("d")->count, 2u);
}

TEST(Snapshot, MergeAddsCountersAndBuckets) {
  Registry a, b;
  a.counter("n").inc(2);
  b.counter("n").inc(40);
  b.counter("only_b").inc(1);
  a.histogram("d", HistogramOptions{1.0, 16.0, 2}).observe(2.0);
  b.histogram("d", HistogramOptions{1.0, 16.0, 2}).observe(2.0);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.find("n")->count, 42u);
  EXPECT_EQ(merged.find("only_b")->count, 1u);
  EXPECT_EQ(merged.find("d")->count, 2u);
  // Stays sorted so find() keeps working after appends.
  for (std::size_t i = 1; i < merged.metrics.size(); ++i) {
    EXPECT_LT(merged.metrics[i - 1].name, merged.metrics[i].name);
  }
}

// --- Merge under concurrent-shard shapes ---------------------------------
// The shard layer merges dozens of per-world snapshots in shard-index
// order; these pin the shapes that merge meets there.

TEST(Snapshot, MergeDisjointSeriesUnionsSorted) {
  // Shards with non-overlapping series (e.g. per-shard gauges): merge is
  // a pure sorted union, every cell preserved verbatim.
  Registry a, b;
  a.counter("shard0.transfers").inc(7);
  a.gauge("shard0.depth").set(2.0);
  b.counter("shard1.transfers").inc(9);
  b.gauge("shard1.depth").set(5.0);

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  ASSERT_EQ(merged.metrics.size(), 4u);
  EXPECT_EQ(merged.find("shard0.transfers")->count, 7u);
  EXPECT_EQ(merged.find("shard1.transfers")->count, 9u);
  EXPECT_DOUBLE_EQ(merged.find("shard0.depth")->value, 2.0);
  EXPECT_DOUBLE_EQ(merged.find("shard1.depth")->value, 5.0);
  for (std::size_t i = 1; i < merged.metrics.size(); ++i) {
    EXPECT_LT(merged.metrics[i - 1].name, merged.metrics[i].name);
  }
}

TEST(Snapshot, MergeManyShardsAccumulatesSharedCounters) {
  // The common shard shape: every world exports the same sim.* names.
  // Folding N shards must sum counters regardless of how many snapshots
  // the chain has already absorbed.
  Snapshot merged;
  std::uint64_t expected = 0;
  for (int shard = 0; shard < 16; ++shard) {
    Registry r;
    r.counter("sim.flow.reallocations").inc(shard + 1);
    r.counter("sim.core.events_executed").inc(100 * (shard + 1));
    expected += shard + 1;
    merged.merge(r.snapshot());
  }
  EXPECT_EQ(merged.find("sim.flow.reallocations")->count, expected);
  EXPECT_EQ(merged.find("sim.core.events_executed")->count, 100 * expected);
}

TEST(Snapshot, MergeCounterTotalsAreOrderIndependent) {
  // Counters and histograms are commutative under merge; only gauges are
  // order-sensitive (last writer wins). The shard layer merges in index
  // order for gauge stability, but counter totals must not depend on it.
  Registry a, b, c;
  a.counter("n").inc(1);
  b.counter("n").inc(10);
  c.counter("n").inc(100);
  a.histogram("d", HistogramOptions{1.0, 16.0, 2}).observe(2.0);
  b.histogram("d", HistogramOptions{1.0, 16.0, 2}).observe(4.0);
  c.histogram("d", HistogramOptions{1.0, 16.0, 2}).observe(8.0);

  Snapshot fwd;
  fwd.merge(a.snapshot());
  fwd.merge(b.snapshot());
  fwd.merge(c.snapshot());
  Snapshot rev;
  rev.merge(c.snapshot());
  rev.merge(b.snapshot());
  rev.merge(a.snapshot());
  EXPECT_EQ(fwd.find("n")->count, 111u);
  EXPECT_EQ(rev.find("n")->count, 111u);
  EXPECT_EQ(fwd.find("d")->count, 3u);
  EXPECT_EQ(rev.find("d")->count, 3u);
  ASSERT_EQ(fwd.find("d")->buckets.size(), rev.find("d")->buckets.size());
  for (std::size_t i = 0; i < fwd.find("d")->buckets.size(); ++i) {
    EXPECT_EQ(fwd.find("d")->buckets[i], rev.find("d")->buckets[i]);
  }
  EXPECT_DOUBLE_EQ(fwd.find("d")->value, rev.find("d")->value);
}

TEST(Snapshot, MergeAlignedHistogramsAddBucketwise) {
  // Same layout on both sides: every bucket adds independently, and the
  // moments (count, sum) follow.
  const HistogramOptions opts{1.0, 16.0, 2};
  Registry a, b;
  Histogram ha = a.histogram("d", opts);
  Histogram hb = b.histogram("d", opts);
  ha.observe(1.0);
  ha.observe(2.0);
  hb.observe(2.0);
  hb.observe(15.0);
  hb.observe(1000.0);  // overflow rail

  Snapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  const MetricValue* d = merged.find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->count, 5u);
  EXPECT_DOUBLE_EQ(d->value, 1.0 + 2.0 + 2.0 + 15.0 + 1000.0);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t n : d->buckets) bucket_total += n;
  EXPECT_EQ(bucket_total, d->count);
  // The overflow rail came only from b.
  EXPECT_EQ(d->buckets.back(), 1u);
}

TEST(Snapshot, MergeHandlesUnsortedHandBuiltSnapshots) {
  // Registry snapshots arrive sorted, but merge accepts hand-assembled
  // snapshots (tools, tests) in any order and still produces a sorted,
  // folded result.
  auto counter_cell = [](std::string name, std::uint64_t n) {
    MetricValue v;
    v.name = std::move(name);
    v.kind = MetricKind::Counter;
    v.count = n;
    return v;
  };
  Snapshot base;
  base.metrics.push_back(counter_cell("z", 1));
  base.metrics.push_back(counter_cell("a", 2));
  Snapshot incoming;
  incoming.metrics.push_back(counter_cell("m", 4));
  incoming.metrics.push_back(counter_cell("a", 8));
  incoming.metrics.push_back(counter_cell("a", 16));  // duplicate name

  base.merge(incoming);
  ASSERT_EQ(base.metrics.size(), 3u);
  EXPECT_EQ(base.find("a")->count, 2u + 8u + 16u);
  EXPECT_EQ(base.find("m")->count, 4u);
  EXPECT_EQ(base.find("z")->count, 1u);
  for (std::size_t i = 1; i < base.metrics.size(); ++i) {
    EXPECT_LT(base.metrics[i - 1].name, base.metrics[i].name);
  }
}

TEST(Snapshot, MergeKindMismatchFails) {
  Registry a, b;
  a.counter("x").inc(1);
  b.gauge("x").set(1.0);
  Snapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge(b.snapshot()), util::Error);
}

TEST(Snapshot, MergeRejectsMismatchedHistogramLayouts) {
  Registry a, b;
  a.histogram("d", HistogramOptions{1.0, 16.0, 2}).observe(2.0);
  b.histogram("d", HistogramOptions{1.0, 32.0, 2}).observe(2.0);
  Snapshot merged = a.snapshot();
  EXPECT_THROW(merged.merge(b.snapshot()), util::Error);
}

// --- Exports --------------------------------------------------------------

Snapshot sample_snapshot() {
  Registry registry;
  registry.counter("sim.flow.reallocations").inc(12);
  registry.gauge("rt.relay.sessions_active").set(3.0);
  Histogram h = registry.histogram("rt.relay.forward_chunk_bytes",
                                   HistogramOptions{1.0, 16.0, 2});
  h.observe(2.0);
  h.observe(100.0);
  return registry.snapshot();
}

TEST(Snapshot, JsonExportIsValidJson) {
  const std::string json = sample_snapshot().to_json();
  std::string error;
  EXPECT_TRUE(json_validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"sim.flow.reallocations\""), std::string::npos);
}

TEST(Snapshot, PrometheusExportHasTypedSeries) {
  const std::string prom = sample_snapshot().to_prometheus();
  EXPECT_NE(prom.find("# TYPE idr_sim_flow_reallocations counter"),
            std::string::npos);
  EXPECT_NE(prom.find("idr_sim_flow_reallocations 12"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE idr_rt_relay_sessions_active gauge"),
            std::string::npos);
  // Histograms expand to cumulative buckets plus _sum/_count, with a
  // +Inf bucket equal to the total count.
  EXPECT_NE(prom.find("idr_rt_relay_forward_chunk_bytes_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("idr_rt_relay_forward_chunk_bytes_count 2"),
            std::string::npos);
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  EXPECT_TRUE(json_validate("{\"a\":[1,2.5,null,\"x\\n\"]}"));
  std::string error;
  EXPECT_FALSE(json_validate("{\"a\":}", &error));
  EXPECT_FALSE(json_validate("[1,2", &error));
  EXPECT_FALSE(json_validate("{} trailing", &error));
  EXPECT_FALSE(json_validate("", &error));
  EXPECT_FALSE(json_validate("nul", &error));
}

// --- Tracer ---------------------------------------------------------------

TEST(Tracer, DisabledTracerDropsEvents) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  tracer.complete("x", "cat", 0, 0.0, 1.0);
  tracer.instant("y", "cat", 0, 0.0);
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(Tracer, ChromeJsonParsesBackAndKeepsFields) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("probe_race", "sim.race", 3, 1000.0, 250.0,
                  "{\"ok\":true,\"relay\":0}");
  tracer.complete("probe_race", "sim.race", 4, 2000.0, 125.0);
  tracer.instant("fault \"kill\"", "sim.engine", 3, 1100.0);
  EXPECT_EQ(tracer.size(), 3u);
  EXPECT_EQ(tracer.count_spans("probe_race"), 2u);
  EXPECT_EQ(tracer.count_spans("nope"), 0u);

  const std::string json = tracer.to_chrome_json();
  std::string error;
  ASSERT_TRUE(json_validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Args embed verbatim; names with quotes escape cleanly.
  EXPECT_NE(json.find("\"args\":{\"ok\":true,\"relay\":0}"),
            std::string::npos);
  EXPECT_NE(json.find("fault \\\"kill\\\""), std::string::npos);
}

TEST(Tracer, ScopedSpanEmitsOnlyWhenEnabled) {
  Tracer tracer;
  double fake_now = 10.0;
  TraceClock clock{
      [](const void* ctx) { return *static_cast<const double*>(ctx); },
      &fake_now};
  {
    ScopedSpan off(&tracer, clock, "poll", "rt.reactor", 0);
  }
  EXPECT_EQ(tracer.size(), 0u);
  tracer.set_enabled(true);
  {
    ScopedSpan on(&tracer, clock, "poll", "rt.reactor", 0);
    fake_now = 25.0;
  }
  ASSERT_EQ(tracer.size(), 1u);
  const TraceEvent ev = tracer.events()[0];
  EXPECT_EQ(ev.name, "poll");
  EXPECT_DOUBLE_EQ(ev.ts_us, 10.0);
  EXPECT_DOUBLE_EQ(ev.dur_us, 15.0);
}

// --- Trace contexts -------------------------------------------------------

TEST(TraceContext, DefaultIsInertAndChildrenAreDeterministic) {
  TraceContext none;
  EXPECT_FALSE(none.valid());

  util::Rng rng(42);
  const TraceContext root = make_trace_context(rng);
  EXPECT_TRUE(root.valid());
  EXPECT_NE(root.span_id, 0u);

  // Same salt, same child; different salts diverge; the trace id rides
  // along unchanged.
  const TraceContext a = root.child(1);
  const TraceContext b = root.child(2);
  EXPECT_EQ(a.trace_id, root.trace_id);
  EXPECT_EQ(a.span_id, root.child(1).span_id);
  EXPECT_NE(a.span_id, b.span_id);
  EXPECT_NE(a.span_id, 0u);
  EXPECT_NE(a.span_id, root.span_id);
}

TEST(TraceContext, HexIsPaddedLowercase) {
  EXPECT_EQ(trace_hex(0), "0000000000000000");
  EXPECT_EQ(trace_hex(0xabc), "0000000000000abc");
  EXPECT_EQ(trace_hex(0xDEADBEEFCAFEBABEull), "deadbeefcafebabe");
}

// --- Component log filter -------------------------------------------------

TEST(Log, FilterSpecAppliesPerComponentWithPrefixMatch) {
  ASSERT_TRUE(set_log_filter("warn,rt.relay=debug,obs.sink=off"));
  // Component rules cover themselves and dotted children only.
  EXPECT_TRUE(log_enabled(Severity::Debug, "rt.relay"));
  EXPECT_TRUE(log_enabled(Severity::Debug, "rt.relay.accept"));
  EXPECT_FALSE(log_enabled(Severity::Debug, "rt.relayx"));
  // Everything else falls to the spec's bare default.
  EXPECT_FALSE(log_enabled(Severity::Info, "rt.origin"));
  EXPECT_TRUE(log_enabled(Severity::Warn, "rt.origin"));
  // off silences even errors for that component.
  EXPECT_FALSE(log_enabled(Severity::Error, "obs.sink"));
  EXPECT_FALSE(log_enabled(Severity::Error, "obs.sink.trace"));

  // Longest matching prefix wins regardless of rule order.
  ASSERT_TRUE(set_log_filter("rt=off,rt.relay=info"));
  EXPECT_TRUE(log_enabled(Severity::Info, "rt.relay"));
  EXPECT_FALSE(log_enabled(Severity::Error, "rt.origin"));

  // Severity::Off as the message level never logs.
  EXPECT_FALSE(log_enabled(Severity::Off, "rt.relay"));

  ASSERT_TRUE(set_log_filter(""));  // back to global-threshold behaviour
}

TEST(Log, MalformedSpecsAreRejectedAndKeepThePreviousFilter) {
  ASSERT_TRUE(set_log_filter("error"));
  EXPECT_FALSE(set_log_filter("verbose"));
  EXPECT_FALSE(set_log_filter("rt.relay="));
  EXPECT_FALSE(set_log_filter("=debug"));
  EXPECT_FALSE(set_log_filter("warn,,info"));
  // The error-only filter installed above is still in force.
  EXPECT_FALSE(log_enabled(Severity::Warn, "rt.relay"));
  EXPECT_TRUE(log_enabled(Severity::Error, "rt.relay"));
  ASSERT_TRUE(set_log_filter(""));
}

// --- Flight records -------------------------------------------------------

TEST(Flight, RingEvictsOldestAndKeepsLifetimeTotal) {
  FlightRecorder ring(2);
  for (int i = 0; i < 3; ++i) {
    FlightRecord rec;
    rec.source = "sim.race";
    rec.peer = "/r" + std::to_string(i);
    ring.record(std::move(rec));
  }
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.total(), 3u);  // includes the evicted record

  // last() returns oldest-first; last(n) trims to the newest n.
  const auto all = ring.last();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].peer, "/r1");
  EXPECT_EQ(all[1].peer, "/r2");
  const auto newest = ring.last(1);
  ASSERT_EQ(newest.size(), 1u);
  EXPECT_EQ(newest[0].peer, "/r2");

  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.total(), 3u);
}

TEST(Flight, JsonlIsOneValidObjectPerLineWithFixedSchema) {
  FlightRecorder ring;
  FlightRecord rec;
  rec.trace_id = 0xabc;
  rec.source = "rt.relay";
  rec.peer = "/blob";
  rec.ok = true;
  rec.chose_indirect = true;
  rec.relay_index = 0;
  rec.bytes_total = 400000;
  rec.status = 200;
  ring.record(rec);
  ring.record(FlightRecord{});  // all defaults must still render

  const std::string jsonl = ring.to_jsonl();
  std::size_t lines = 0, start = 0;
  while (start < jsonl.size()) {
    const std::size_t end = jsonl.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string error;
    EXPECT_TRUE(json_validate(jsonl.substr(start, end - start), &error))
        << error;
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
  // Ids use the shared 16-hex wire format; zero fields stay present.
  EXPECT_NE(jsonl.find("\"trace_id\":\"0000000000000abc\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"trace_id\":\"0000000000000000\""),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"chose_indirect\":true"), std::string::npos);
  EXPECT_NE(jsonl.find("\"relay_index\":-1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"overload_rejections\":0"), std::string::npos);
}

// --- Windowed time series -------------------------------------------------

/// Pushes one sample at `t` with counter n=`n` and gauge v=`v`.
void push_sample(TimeSeries& series, double t, std::uint64_t n, double v) {
  Registry registry;
  Counter c = registry.counter("n");
  Gauge g = registry.gauge("v");
  c.inc(n);
  g.set(v);
  series.push(t, registry.snapshot());
}

TEST(TimeSeries, WindowDiffsNewestAgainstOldestInsideWindow) {
  TimeSeries series(8);
  push_sample(series, 0.0, 0, 1.0);
  push_sample(series, 10.0, 40, 2.0);
  push_sample(series, 20.0, 100, 3.0);

  // A 12 s window reaches back to the t=10 sample only.
  TimeSeries::Window w = series.window(12.0);
  EXPECT_EQ(w.samples, 2u);
  EXPECT_DOUBLE_EQ(w.duration, 10.0);
  EXPECT_EQ(w.delta.find("n")->count, 60u);
  EXPECT_DOUBLE_EQ(w.delta.find("v")->value, 3.0);  // gauges: latest
  EXPECT_DOUBLE_EQ(series.rate("n", 12.0), 6.0);

  // window_s <= 0 spans the whole ring.
  w = series.window(0.0);
  EXPECT_EQ(w.samples, 3u);
  EXPECT_DOUBLE_EQ(w.duration, 20.0);
  EXPECT_EQ(w.delta.find("n")->count, 100u);
  EXPECT_DOUBLE_EQ(series.rate("n", 0.0), 5.0);

  // Absent series rate is 0, not an error.
  EXPECT_DOUBLE_EQ(series.rate("missing", 0.0), 0.0);
}

TEST(TimeSeries, FewerThanTwoSamplesFormNoRate) {
  TimeSeries series(4);
  EXPECT_TRUE(series.empty());
  EXPECT_EQ(series.window(10.0).samples, 0u);
  EXPECT_DOUBLE_EQ(series.rate("n", 10.0), 0.0);
  push_sample(series, 5.0, 7, 0.0);
  EXPECT_EQ(series.window(10.0).samples, 1u);
  EXPECT_DOUBLE_EQ(series.rate("n", 10.0), 0.0);
  // A window too narrow to reach the previous sample also yields none.
  push_sample(series, 100.0, 14, 0.0);
  EXPECT_EQ(series.window(1.0).samples, 1u);
}

TEST(TimeSeries, RingEvictionBoundsTheLookback) {
  TimeSeries series(2);
  push_sample(series, 0.0, 0, 0.0);
  push_sample(series, 10.0, 10, 0.0);
  push_sample(series, 20.0, 30, 0.0);  // evicts the t=0 sample
  EXPECT_EQ(series.size(), 2u);
  const TimeSeries::Window w = series.window(0.0);
  EXPECT_DOUBLE_EQ(w.duration, 10.0);
  EXPECT_EQ(w.delta.find("n")->count, 20u);
  EXPECT_DOUBLE_EQ(series.latest_time(), 20.0);
}

TEST(TimeSeries, WindowJsonListsOnlyActiveSeries) {
  TimeSeries series(8);
  {
    Registry registry;
    Counter active = registry.counter("busy");
    Counter idle = registry.counter("idle");
    Gauge level = registry.gauge("level");
    active.inc(5);
    (void)idle;
    series.push(0.0, registry.snapshot());
    active.inc(10);
    level.set(2.5);
    series.push(4.0, registry.snapshot());
  }
  const std::string json = series.window_json(30.0);
  std::string error;
  EXPECT_TRUE(json_validate(json, &error)) << error << "\n" << json;
  EXPECT_NE(json.find("\"window_seconds\":30"), std::string::npos);
  EXPECT_NE(json.find("\"samples\":2"), std::string::npos);
  // The busy counter shows its delta and per-second rate...
  EXPECT_NE(json.find("\"name\":\"busy\",\"kind\":\"counter\","
                      "\"delta\":10,\"rate\":2.5"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"name\":\"level\",\"kind\":\"gauge\""),
            std::string::npos);
  // ...while the idle counter (zero delta) is omitted.
  EXPECT_EQ(json.find("\"idle\""), std::string::npos);

  // The empty series renders the fixed shape with no metrics at all.
  const std::string empty = TimeSeries(1).window_json(2.0);
  EXPECT_TRUE(json_validate(empty, &error)) << error;
  EXPECT_NE(empty.find("\"samples\":0"), std::string::npos);
  EXPECT_NE(empty.find("\"metrics\":[]"), std::string::npos);
}

// --- Sink gate ------------------------------------------------------------

TEST(Sink, DisabledWithoutEnvironment) {
  ::unsetenv("IDR_OBS_OUT");
  EXPECT_FALSE(out_enabled());
  Tracer tracer;
  EXPECT_EQ(dump_run("unit", sample_snapshot(), &tracer), 0);
}

TEST(Sink, WritesArtifactsWhenPointedAtDirectory) {
  char dir_template[] = "/tmp/idr_obs_test_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  ::setenv("IDR_OBS_OUT", dir_template, 1);
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.complete("probe_race", "sim.race", 0, 0.0, 1.0);
  EXPECT_EQ(dump_run("unit", sample_snapshot(), &tracer), 3);
  ::unsetenv("IDR_OBS_OUT");
}

}  // namespace
}  // namespace idr::obs
