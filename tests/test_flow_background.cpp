#include "flow/background_traffic.hpp"

#include <gtest/gtest.h>
#include <optional>

#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace idr::flow {
namespace {

using util::mbps;

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<FlowSimulator> fsim;
  net::LinkId link = 0;

  explicit Fixture(util::Rate capacity = mbps(10.0)) {
    const auto a = topo.add_node("a");
    const auto b = topo.add_node("b");
    link = topo.add_link(a, b, capacity, 0.02);
    fsim.emplace(sim, topo, util::Rng(1));
  }

  BackgroundTrafficSource::Params params() const {
    BackgroundTrafficSource::Params p;
    p.path = net::Path{{link}};
    p.arrival_rate = 0.5;
    p.mean_size = 1e6;
    p.model_slow_start = false;
    return p;
  }
};

TEST(BackgroundTraffic, DoesNothingUntilStarted) {
  Fixture fx;
  BackgroundTrafficSource source(*fx.fsim, fx.params(), util::Rng(2));
  fx.sim.run_until(100.0);
  EXPECT_EQ(source.flows_started(), 0u);
  EXPECT_FALSE(source.running());
}

TEST(BackgroundTraffic, ArrivalRateApproximatesPoisson) {
  Fixture fx(mbps(1000.0));  // fat pipe: flows drain fast
  auto params = fx.params();
  params.arrival_rate = 2.0;
  params.mean_size = 1e4;
  BackgroundTrafficSource source(*fx.fsim, params, util::Rng(3));
  source.start();
  fx.sim.run_until(500.0);
  // Expect ~1000 arrivals; Poisson sd ~32.
  EXPECT_NEAR(static_cast<double>(source.flows_started()), 1000.0, 150.0);
  EXPECT_GT(source.flows_completed(), 900u);
}

TEST(BackgroundTraffic, OfferedLoadReported) {
  Fixture fx;
  auto params = fx.params();
  params.arrival_rate = 0.25;
  params.mean_size = 4e6;
  BackgroundTrafficSource source(*fx.fsim, params, util::Rng(4));
  EXPECT_DOUBLE_EQ(source.offered_load(), 1e6);
}

TEST(BackgroundTraffic, StealsBandwidthFromForeground) {
  // Foreground flow alone: 10 Mbps. With heavy background load it must
  // slow substantially.
  auto run = [](bool with_background) {
    Fixture fx;
    std::optional<BackgroundTrafficSource> source;
    if (with_background) {
      auto params = fx.params();
      params.arrival_rate = 1.0;
      params.mean_size = 1.25e6;  // 10 Mbps offered: saturating
      source.emplace(*fx.fsim, params, util::Rng(5));
      source->start();
      fx.sim.run_until(200.0);  // reach steady contention
    } else {
      fx.sim.run_until(200.0);
    }
    FlowOptions opt;
    opt.model_slow_start = false;
    std::optional<FlowStats> done;
    fx.fsim->start_flow(net::Path{{fx.link}}, 2e6, opt,
                        [&](const FlowStats& s) { done = s; });
    while (!done) {
      IDR_REQUIRE(fx.sim.step(), "drained");
    }
    return done->average_rate();
  };
  const double alone = run(false);
  const double contended = run(true);
  EXPECT_NEAR(alone, mbps(10.0), 1.0);
  EXPECT_LT(contended, alone * 0.8);
}

TEST(BackgroundTraffic, StopHaltsNewArrivals) {
  Fixture fx;
  BackgroundTrafficSource source(*fx.fsim, fx.params(), util::Rng(6));
  source.start();
  fx.sim.run_until(60.0);
  const std::size_t started = source.flows_started();
  EXPECT_GT(started, 0u);
  source.stop();
  EXPECT_FALSE(source.running());
  fx.sim.run_until(200.0);
  EXPECT_EQ(source.flows_started(), started);
  // In-flight flows drained naturally.
  EXPECT_EQ(source.flows_active(), 0u);
  EXPECT_EQ(source.flows_completed(), started);
}

TEST(BackgroundTraffic, StopAbortActiveCancelsFlows) {
  Fixture fx(mbps(0.1));  // slow pipe: flows pile up
  BackgroundTrafficSource source(*fx.fsim, fx.params(), util::Rng(7));
  source.start();
  fx.sim.run_until(30.0);
  EXPECT_GT(source.flows_active(), 0u);
  source.stop(/*abort_active=*/true);
  EXPECT_EQ(source.flows_active(), 0u);
  EXPECT_EQ(fx.fsim->active_flows(), 0u);
}

TEST(BackgroundTraffic, ParetoSizesAreHeavyTailed) {
  Fixture fx(mbps(100000.0));
  auto params = fx.params();
  params.pareto_alpha = 1.3;
  params.arrival_rate = 5.0;
  params.mean_size = 1e5;
  BackgroundTrafficSource source(*fx.fsim, params, util::Rng(8));
  source.start();
  // Observe many flow sizes through the simulator by sampling completion
  // stats indirectly: just validate the generator's mean via long run.
  fx.sim.run_until(2000.0);
  EXPECT_GT(source.flows_started(), 5000u);
  // Mean size validated through conservation: bytes through the link
  // cannot be checked directly here; at least the process must keep both
  // counters coherent.
  EXPECT_LE(source.flows_completed(), source.flows_started());
}

TEST(BackgroundTraffic, InvalidParamsThrow) {
  Fixture fx;
  auto bad = fx.params();
  bad.arrival_rate = 0.0;
  EXPECT_THROW(BackgroundTrafficSource(*fx.fsim, bad, util::Rng(9)),
               util::Error);
  bad = fx.params();
  bad.mean_size = 0.0;
  EXPECT_THROW(BackgroundTrafficSource(*fx.fsim, bad, util::Rng(9)),
               util::Error);
  bad = fx.params();
  bad.pareto_alpha = 0.9;  // infinite mean
  EXPECT_THROW(BackgroundTrafficSource(*fx.fsim, bad, util::Rng(9)),
               util::Error);
  bad = fx.params();
  bad.path = net::Path{};
  EXPECT_THROW(BackgroundTrafficSource(*fx.fsim, bad, util::Rng(9)),
               util::Error);
}

TEST(BackgroundTraffic, DestructionCleansUp) {
  Fixture fx(mbps(0.1));
  {
    BackgroundTrafficSource source(*fx.fsim, fx.params(), util::Rng(10));
    source.start();
    fx.sim.run_until(30.0);
    EXPECT_GT(fx.fsim->active_flows(), 0u);
  }
  EXPECT_EQ(fx.fsim->active_flows(), 0u);
}

}  // namespace
}  // namespace idr::flow
