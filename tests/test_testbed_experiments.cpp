// Integration tests over the experiment drivers (scaled-down runs).
#include <algorithm>
#include <gtest/gtest.h>

#include "testbed/section2.hpp"
#include "testbed/section4.hpp"
#include "testbed/session.hpp"
#include "util/error.hpp"

namespace idr::testbed {
namespace {

Section2Config small_section2() {
  Section2Config config;
  config.seed = 99;
  config.clients = {"Italy", "Canada", "France"};
  config.relays_per_client = 3;
  config.transfers_per_session = 12;
  config.interval = util::minutes(3);
  config.threads = 2;
  return config;
}

TEST(Session, ProducesJoinedObservations) {
  const ScenarioGenerator gen(5, {});
  SessionSpec spec;
  spec.params = gen.make_world(find_site("Italy"), {&find_site("NYU")},
                               find_site("eBay"));
  spec.transfers = 8;
  spec.interval = util::minutes(2);
  spec.client_seed = 77;
  spec.session_relay_label = "NYU";
  spec.policy_factory = [](ClientWorld& world) {
    return std::make_unique<core::StaticRelayPolicy>(world.relay_node(0));
  };
  const SessionOutput out = run_session(spec);
  ASSERT_EQ(out.result.transfers.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    const auto& t = out.result.transfers[k];
    EXPECT_TRUE(t.ok) << k;
    EXPECT_GT(t.selected_rate, 0.0);
    EXPECT_GT(t.direct_rate, 0.0);
    EXPECT_DOUBLE_EQ(t.start_time, 1.0 + 120.0 * static_cast<double>(k));
    EXPECT_EQ(t.session_relay, "NYU");
    if (t.chose_indirect) {
      EXPECT_EQ(t.chosen_relay, "NYU");
    } else {
      EXPECT_TRUE(t.chosen_relay.empty());
    }
    // Improvement consistency with the recorded rates.
    EXPECT_NEAR(t.improvement_pct,
                core::improvement_pct(t.selected_rate, t.direct_rate),
                1e-9);
  }
  EXPECT_EQ(out.result.direct_rate_stats.count(), 8u);
  EXPECT_EQ(out.relay_stats.record(
                out.relay_stats.records().front().relay).appearances,
            8u);
}

TEST(Session, DeterministicAcrossRuns) {
  const ScenarioGenerator gen(6, {});
  SessionSpec spec;
  spec.params = gen.make_world(find_site("Greece"), {&find_site("Upenn")},
                               find_site("eBay"));
  spec.transfers = 6;
  spec.interval = util::minutes(2);
  spec.client_seed = 13;
  spec.session_relay_label = "Upenn";
  spec.policy_factory = [](ClientWorld& world) {
    return std::make_unique<core::StaticRelayPolicy>(world.relay_node(0));
  };
  const SessionOutput a = run_session(spec);
  const SessionOutput b = run_session(spec);
  for (std::size_t k = 0; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(a.result.transfers[k].selected_rate,
                     b.result.transfers[k].selected_rate);
    EXPECT_DOUBLE_EQ(a.result.transfers[k].direct_rate,
                     b.result.transfers[k].direct_rate);
    EXPECT_EQ(a.result.transfers[k].chose_indirect,
              b.result.transfers[k].chose_indirect);
  }
}

TEST(Section2, RunsAllSessions) {
  const Section2Result result = run_section2(small_section2());
  EXPECT_EQ(result.sessions.size(), 9u);  // 3 clients x 3 relays
  for (const auto& s : result.sessions) {
    EXPECT_EQ(s.transfers.size(), 12u);
    EXPECT_FALSE(s.session_relay.empty());
    EXPECT_EQ(s.direct_rate_stats.count(), 12u);
  }
}

TEST(Section2, ThreadCountDoesNotChangeResults) {
  Section2Config config = small_section2();
  config.clients = {"Italy", "Canada"};
  config.relays_per_client = 2;
  config.transfers_per_session = 6;
  config.threads = 1;
  const Section2Result serial = run_section2(config);
  config.threads = 4;
  const Section2Result parallel = run_section2(config);
  ASSERT_EQ(serial.sessions.size(), parallel.sessions.size());
  for (std::size_t i = 0; i < serial.sessions.size(); ++i) {
    ASSERT_EQ(serial.sessions[i].client, parallel.sessions[i].client);
    ASSERT_EQ(serial.sessions[i].session_relay,
              parallel.sessions[i].session_relay);
    for (std::size_t k = 0; k < serial.sessions[i].transfers.size(); ++k) {
      EXPECT_DOUBLE_EQ(serial.sessions[i].transfers[k].improvement_pct,
                       parallel.sessions[i].transfers[k].improvement_pct);
    }
  }
}

TEST(Section2, AggregationsAreConsistent) {
  const Section2Result result = run_section2(small_section2());
  const auto improvements = indirect_improvements(result.sessions);
  const auto pairs = indirect_rate_pairs(result.sessions);
  EXPECT_EQ(improvements.size(), pairs.size());

  std::size_t indirect_total = 0;
  for (const auto& s : result.sessions) indirect_total += s.indirect_count();
  EXPECT_EQ(improvements.size(), indirect_total);

  const double util = overall_utilization(result.sessions);
  EXPECT_GE(util, 0.0);
  EXPECT_LE(util, 1.0);
  EXPECT_NEAR(util,
              static_cast<double>(indirect_total) / (9.0 * 12.0), 1e-12);

  // Per-relay summary covers exactly the relays that appeared.
  const auto summary = relay_utilization_summary(result.sessions);
  std::size_t total_sessions = 0;
  for (const auto& row : summary) {
    EXPECT_GE(row.average, 0.0);
    EXPECT_LE(row.average, 1.0);
    EXPECT_GE(row.rms, row.average * 0.999 - 1e-9);  // RMS >= mean
    total_sessions += row.sessions;
  }
  EXPECT_EQ(total_sessions, result.sessions.size());

  // Top-relays table has one entry per client, sorted descending.
  const auto tops = top_relays_per_client(result.sessions, 3);
  EXPECT_EQ(tops.size(), 3u);
  for (const auto& t : tops) {
    for (std::size_t i = 1; i < t.top.size(); ++i) {
      EXPECT_GE(t.top[i - 1].utilization, t.top[i].utilization);
    }
  }
}

TEST(Section2, LowThroughputClientsUseIndirectMoreThanHigh) {
  // The paper's central claim: Low/Medium-throughput clients route
  // through the indirect path far more often than High-throughput
  // clients. Use the paper's own setup (a good static relay per client).
  Section2Config config;
  config.seed = 99;
  config.assignment = RelayAssignment::AprioriGood;
  config.transfers_per_session = 30;
  config.interval = util::minutes(3);
  config.threads = 2;
  const Section2Result result = run_section2(config);
  util::OnlineStats low_util, high_util;
  for (const auto& s : result.sessions) {
    if (s.category() == core::ThroughputCategory::High) {
      high_util.add(s.utilization());
    } else if (s.category() == core::ThroughputCategory::Low) {
      low_util.add(s.utilization());
    }
  }
  ASSERT_GT(low_util.count(), 3u);
  ASSERT_GT(high_util.count(), 0u);
  EXPECT_GT(low_util.mean(), high_util.mean() + 0.1);
}

Section4Config small_section4() {
  Section4Config config;
  config.seed = 17;
  config.clients = {"Duke", "Italy"};
  config.client_inbound_mbps = {2.4, 1.2};
  config.set_sizes = {1, 4, 10};
  config.relay_count = 12;
  config.transfers = 15;
  config.interval = util::seconds(40);
  config.threads = 2;
  return config;
}

TEST(Section4, RosterExcludesClients) {
  Section4Config config = small_section4();
  const auto roster = section4_relays(config, "Duke", 12);
  EXPECT_EQ(roster.size(), 12u);
  for (const auto* site : roster) {
    EXPECT_NE(site->name, "Duke");
    EXPECT_NE(site->name, "Italy");
  }
}

TEST(Section4, SweepProducesAllCells) {
  const Section4Result result = run_section4(small_section4());
  EXPECT_EQ(result.cells.size(), 6u);  // 2 clients x 3 sizes
  const auto& cell = result.cell("Duke", 4);
  EXPECT_EQ(cell.session.transfers.size(), 15u);
  EXPECT_GE(cell.utilization, 0.0);
  EXPECT_LE(cell.utilization, 1.0);
  EXPECT_THROW(result.cell("Duke", 999), util::Error);
}

TEST(Section4, AppearancesMatchSetSizeBudget) {
  const Section4Result result = run_section4(small_section4());
  const auto& cell = result.cell("Italy", 4);
  std::size_t appearances = 0, selections = 0;
  for (const auto& r : cell.relay_stats.records()) {
    appearances += r.appearances;
    selections += r.selections;
  }
  // Every transfer put exactly 4 relays in the random set.
  EXPECT_EQ(appearances, 15u * 4u);
  EXPECT_LE(selections, 15u);
  EXPECT_EQ(selections, cell.session.indirect_count());
}

TEST(Section4, LargerSetsDoNotHurtMuch) {
  // The n=10 average improvement should comfortably exceed n=1 (more
  // choice can only help modulo probe noise).
  const Section4Result result = run_section4(small_section4());
  for (const auto* client : {"Duke", "Italy"}) {
    const double small = result.cell(client, 1).avg_improvement_pct;
    const double large = result.cell(client, 10).avg_improvement_pct;
    EXPECT_GE(large, small - 10.0) << client;
  }
}

TEST(Section4, WeightedPolicyRuns) {
  Section4Config config = small_section4();
  config.clients = {"Italy"};
  config.client_inbound_mbps = {1.2};
  config.set_sizes = {4};
  config.policy = SubsetPolicyKind::Weighted;
  const Section4Result result = run_section4(config);
  ASSERT_EQ(result.cells.size(), 1u);
  EXPECT_EQ(result.cells[0].session.transfers.size(), 15u);
}

TEST(Section4, MismatchedOverridesThrow) {
  Section4Config config = small_section4();
  config.client_inbound_mbps = {2.4};  // but two clients
  EXPECT_THROW(run_section4(config), util::Error);
}

}  // namespace
}  // namespace idr::testbed
