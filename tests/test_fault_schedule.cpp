#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace idr::fault {
namespace {

FaultConfig crashy_config() {
  FaultConfig config;
  config.enabled = true;
  config.relay_mtbf = 3600.0;
  config.relay_mttr = 120.0;
  config.relay_reset_mtbf = 7200.0;
  config.direct_mtbf = 6.0 * 3600.0;
  config.direct_mttr = 60.0;
  config.horizon = 48.0 * 3600.0;
  return config;
}

TEST(FaultSchedule, DisabledGeneratesNothing) {
  FaultConfig config = crashy_config();
  config.enabled = false;
  const FaultSchedule schedule = FaultSchedule::generate(config, 5, 42);
  EXPECT_TRUE(schedule.empty());
}

TEST(FaultSchedule, SameSeedSameSchedule) {
  const FaultConfig config = crashy_config();
  const FaultSchedule a = FaultSchedule::generate(config, 5, 42);
  const FaultSchedule b = FaultSchedule::generate(config, 5, 42);
  ASSERT_FALSE(a.empty());
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].target, b.windows[i].target);
    EXPECT_DOUBLE_EQ(a.windows[i].start, b.windows[i].start);
    EXPECT_DOUBLE_EQ(a.windows[i].end, b.windows[i].end);
  }
  ASSERT_EQ(a.resets.size(), b.resets.size());
  for (std::size_t i = 0; i < a.resets.size(); ++i) {
    EXPECT_EQ(a.resets[i].target, b.resets[i].target);
    EXPECT_DOUBLE_EQ(a.resets[i].time, b.resets[i].time);
  }
}

TEST(FaultSchedule, DifferentSeedsDiffer) {
  const FaultConfig config = crashy_config();
  const FaultSchedule a = FaultSchedule::generate(config, 5, 42);
  const FaultSchedule b = FaultSchedule::generate(config, 5, 43);
  bool differs = a.windows.size() != b.windows.size();
  for (std::size_t i = 0; !differs && i < a.windows.size(); ++i) {
    differs = a.windows[i].start != b.windows[i].start;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, AddingRelaysKeepsExistingTimelines) {
  // Per-target child streams: relay 0's crash times must not move when
  // relays are added to the set.
  const FaultConfig config = crashy_config();
  const FaultSchedule small = FaultSchedule::generate(config, 1, 42);
  const FaultSchedule big = FaultSchedule::generate(config, 8, 42);
  std::vector<FaultWindow> small0, big0;
  for (const auto& w : small.windows) {
    if (w.target == 0) small0.push_back(w);
  }
  for (const auto& w : big.windows) {
    if (w.target == 0) big0.push_back(w);
  }
  ASSERT_FALSE(small0.empty());
  ASSERT_EQ(small0.size(), big0.size());
  for (std::size_t i = 0; i < small0.size(); ++i) {
    EXPECT_DOUBLE_EQ(small0[i].start, big0[i].start);
    EXPECT_DOUBLE_EQ(small0[i].end, big0[i].end);
  }
}

TEST(FaultSchedule, WindowsSortedAndWithinHorizon) {
  const FaultConfig config = crashy_config();
  const FaultSchedule schedule = FaultSchedule::generate(config, 6, 7);
  ASSERT_FALSE(schedule.windows.empty());
  for (std::size_t i = 0; i < schedule.windows.size(); ++i) {
    const FaultWindow& w = schedule.windows[i];
    EXPECT_LT(w.start, w.end);
    EXPECT_GE(w.start, 0.0);
    EXPECT_LE(w.end, config.horizon);
    if (i > 0) {
      EXPECT_GE(w.start, schedule.windows[i - 1].start);
    }
  }
  for (std::size_t i = 1; i < schedule.resets.size(); ++i) {
    EXPECT_GE(schedule.resets[i].time, schedule.resets[i - 1].time);
  }
}

TEST(FaultSchedule, DirectOutagesUseSentinelTarget) {
  FaultConfig config = crashy_config();
  config.relay_mtbf = 0.0;
  config.relay_reset_mtbf = 0.0;
  const FaultSchedule schedule = FaultSchedule::generate(config, 4, 11);
  ASSERT_FALSE(schedule.windows.empty());
  for (const auto& w : schedule.windows) {
    EXPECT_EQ(w.target, kDirectPath);
  }
}

TEST(Backoff, GrowsExponentiallyAndCaps) {
  RetryPolicy policy;
  policy.base_delay = 0.2;
  policy.multiplier = 2.0;
  policy.max_delay = 1.0;
  policy.jitter_frac = 0.0;  // deterministic for the shape check
  util::Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 0, rng), 0.2);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 1, rng), 0.4);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 2, rng), 0.8);
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 3, rng), 1.0);   // capped
  EXPECT_DOUBLE_EQ(backoff_delay(policy, 10, rng), 1.0);  // stays capped
}

TEST(Backoff, JitterBoundedByFraction) {
  RetryPolicy policy;
  policy.base_delay = 1.0;
  policy.multiplier = 1.0;
  policy.max_delay = 1.0;
  policy.jitter_frac = 0.5;
  util::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const Duration d = backoff_delay(policy, 0, rng);
    EXPECT_GE(d, 1.0);
    EXPECT_LT(d, 1.5);
  }
}

TEST(Backoff, InvalidPolicyThrows) {
  RetryPolicy policy;
  policy.multiplier = 0.5;
  util::Rng rng(1);
  EXPECT_THROW(backoff_delay(policy, 0, rng), util::Error);
}

}  // namespace
}  // namespace idr::fault
