// Cross-module property tests: invariants that must hold across randomly
// generated worlds and parameter sweeps, not just hand-picked cases.
#include <cmath>
#include <gtest/gtest.h>
#include <optional>

#include "core/probe_race.hpp"
#include "testbed/scenario.hpp"
#include "testbed/section2.hpp"
#include "testbed/session.hpp"
#include "util/error.hpp"

namespace idr {
namespace {

using testbed::ClientWorld;

// ---- Flow conservation over random multi-flow scenarios -------------------

class FlowConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlowConservation, BytesEqualRateTimesTime) {
  // Random flows with random sizes over a random chain; every completion
  // must satisfy size == integral of allocated rate (checked implicitly:
  // completion only fires when remaining ~ 0), and the aggregate drain
  // of a shared bottleneck must never beat capacity.
  util::Rng rng(GetParam());
  sim::Simulator sim;
  net::Topology topo;
  const auto hops = static_cast<std::size_t>(rng.uniform_int(1, 4));
  std::vector<net::NodeId> nodes;
  for (std::size_t i = 0; i <= hops; ++i) {
    nodes.push_back(topo.add_node("n" + std::to_string(i)));
  }
  net::Path path;
  double min_capacity = 1e18;
  for (std::size_t i = 0; i < hops; ++i) {
    const double cap = rng.uniform(1e5, 2e6);
    min_capacity = std::min(min_capacity, cap);
    path.links.push_back(topo.add_link(nodes[i], nodes[i + 1], cap, 0.01));
  }
  flow::FlowSimulator fsim(sim, topo, util::Rng(GetParam() + 1));

  const int flows = static_cast<int>(rng.uniform_int(2, 8));
  double total_bytes = 0.0;
  double last_finish = 0.0;
  double first_start = 1e18;
  int completed = 0;
  for (int f = 0; f < flows; ++f) {
    const double start = rng.uniform(0.0, 5.0);
    const double size = rng.uniform(1e4, 2e6);
    total_bytes += size;
    first_start = std::min(first_start, start);
    sim.schedule_at(start, [&, size] {
      flow::FlowOptions opt;
      opt.model_slow_start = rng.bernoulli(0.5);
      fsim.start_flow(path, size, opt, [&](const flow::FlowStats& s) {
        ++completed;
        last_finish = std::max(last_finish, s.finish_time);
        // Per-flow sanity: the average rate cannot beat the bottleneck.
        EXPECT_LE(s.average_rate(), min_capacity * (1.0 + 1e-9));
      });
    });
  }
  sim.run();
  EXPECT_EQ(completed, flows);
  // Aggregate conservation: all bytes cannot drain faster than the
  // bottleneck allows.
  const double span = last_finish - first_start;
  EXPECT_GE(span * min_capacity * (1.0 + 1e-9), total_bytes);
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, FlowConservation,
                         ::testing::Range<std::uint64_t>(100, 130));

// ---- Probe race correctness across random two-relay worlds ----------------

class RaceProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaceProperty, WinnerMatchesBandwidthOrderWhenGapIsLarge) {
  // When one path has >= 4x the bandwidth of every alternative and the
  // probe is large enough to exit slow start, the race must choose it.
  util::Rng rng(GetParam());
  sim::Simulator sim;
  net::Topology topo;
  const auto server = topo.add_node("server", false);
  const auto gw = topo.add_node("gw");
  const auto client = topo.add_node("client", false);
  const auto relay = topo.add_node("relay", false);
  const bool relay_is_fast = rng.bernoulli(0.5);
  const double fast = rng.uniform(2e5, 1e6);
  const double slow = fast / rng.uniform(4.0, 8.0);
  const double delay = rng.uniform(0.03, 0.09);
  topo.add_link(server, gw, relay_is_fast ? slow : fast, delay);
  topo.add_link(gw, client, 1e7, 0.004);
  topo.add_link(server, relay, 1e7, 0.02);
  topo.add_link(relay, gw, relay_is_fast ? fast : slow, delay);
  flow::FlowSimulator fsim(sim, topo, util::Rng(GetParam() * 3 + 1));
  overlay::WebServerModel origin(server, "origin");
  origin.add_resource("/f", 2e6);
  overlay::TransferEngine engine(fsim);

  core::RaceSpec spec;
  spec.client = client;
  spec.server = &origin;
  spec.resource = "/f";
  spec.probe_bytes = 2e5;  // comfortably past slow start at these rates
  spec.candidate_relays = {relay};
  std::optional<core::RaceOutcome> outcome;
  core::start_probe_race(engine, spec,
                         [&](const core::RaceOutcome& o) { outcome = o; });
  sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_EQ(outcome->chose_indirect, relay_is_fast)
      << "fast=" << fast << " slow=" << slow << " delay=" << delay;
  // All transfers cleaned up regardless of outcome.
  EXPECT_EQ(engine.in_flight(), 0u);
  EXPECT_EQ(fsim.active_flows(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomWorlds, RaceProperty,
                         ::testing::Range<std::uint64_t>(200, 230));

// ---- Session-level invariants over scenario seeds --------------------------

class SessionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionProperty, ObservationsAreInternallyConsistent) {
  const testbed::ScenarioGenerator gen(GetParam(), {});
  const auto& client = testbed::client_sites()[GetParam() % 22];
  const auto& relay = testbed::relay_sites()[(GetParam() * 7) % 21];
  testbed::SessionSpec spec;
  spec.params = gen.make_world(client, {&relay}, testbed::find_site("eBay"));
  spec.transfers = 10;
  spec.interval = util::minutes(2);
  spec.client_seed = GetParam() + 5;
  spec.session_relay_label = std::string(relay.name);
  spec.policy_factory = [](ClientWorld& world) {
    return std::make_unique<core::StaticRelayPolicy>(world.relay_node(0));
  };
  const testbed::SessionOutput out = testbed::run_session(spec);

  for (const auto& t : out.result.transfers) {
    ASSERT_TRUE(t.ok);
    EXPECT_GT(t.selected_rate, 0.0);
    EXPECT_GT(t.selected_steady_rate, 0.0);
    EXPECT_GT(t.direct_rate, 0.0);
    // Improvement must be the metric applied to the recorded rates.
    EXPECT_NEAR(t.improvement_pct,
                core::improvement_pct(t.selected_rate, t.direct_rate),
                1e-9);
    // The steady phase never loses to the whole operation (it skips the
    // race and the cold start).
    EXPECT_GE(t.selected_steady_rate, t.selected_rate * (1.0 - 1e-9));
    // Selecting the direct path can cost a little (probe overhead) but
    // the steady phase of the direct path cannot be wildly slower than
    // the plain mirror unless the network moved under it.
    if (!t.chose_indirect) {
      EXPECT_TRUE(t.chosen_relay.empty());
    } else {
      EXPECT_EQ(t.chosen_relay, relay.name);
    }
  }
  // Relay accounting matches observations.
  const auto& record =
      out.relay_stats.record(out.relay_stats.records().front().relay);
  EXPECT_EQ(record.appearances, 10u);
  EXPECT_EQ(record.selections, out.result.indirect_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionProperty,
                         ::testing::Range<std::uint64_t>(300, 312));

// ---- Probe size monotonicity ----------------------------------------------

TEST(ProbeSizeProperty, LargerProbesMispredictLess) {
  // Sweep x and check that the fraction of negative picks decreases
  // (weakly) from tiny to large probes — the mechanism behind the
  // paper's choice of x = 100 KB.
  auto negative_fraction = [](double probe_kb) {
    testbed::Section2Config config;
    config.seed = 77;
    config.assignment = testbed::RelayAssignment::AprioriGood;
    config.clients = {"Italy", "France", "Denmark", "Norway", "Iceland"};
    config.transfers_per_session = 25;
    config.interval = util::minutes(3);
    config.knobs.probe_bytes = util::kilobytes(probe_kb);
    config.threads = 2;
    const auto result = testbed::run_section2(config);
    util::SampleSet imp;
    imp.add_all(testbed::indirect_improvements(result.sessions));
    return imp.empty() ? 0.0 : imp.fraction_below(0.0);
  };
  const double tiny = negative_fraction(10.0);
  const double paper = negative_fraction(100.0);
  const double large = negative_fraction(400.0);
  EXPECT_GE(tiny, paper - 0.02);
  EXPECT_GE(paper, large - 0.03);
}

}  // namespace
}  // namespace idr
