#include "rt/reactor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <vector>

#include "rt/socket.hpp"
#include "rt/timer_wheel.hpp"
#include "util/error.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

TEST(Reactor, TimersFireInOrder) {
  Reactor reactor;
  std::vector<int> order;
  reactor.add_timer(0.03, [&] { order.push_back(3); });
  reactor.add_timer(0.01, [&] { order.push_back(1); });
  reactor.add_timer(0.02, [&] { order.push_back(2); });
  spin_until(reactor, 2.0, [&] { return order.size() == 3; });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, CancelledTimerDoesNotFire) {
  Reactor reactor;
  bool fired = false;
  const TimerId id = reactor.add_timer(0.01, [&] { fired = true; });
  EXPECT_TRUE(reactor.cancel_timer(id));
  EXPECT_FALSE(reactor.cancel_timer(id));
  bool sentinel = false;
  reactor.add_timer(0.05, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
  EXPECT_FALSE(fired);
}

TEST(Reactor, TimerCanScheduleTimer) {
  Reactor reactor;
  int hops = 0;
  std::function<void()> chain = [&] {
    if (++hops < 3) reactor.add_timer(0.005, chain);
  };
  reactor.add_timer(0.005, chain);
  spin_until(reactor, 2.0, [&] { return hops == 3; });
}

TEST(Reactor, PipeReadability) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string received;
  reactor.add_fd(fds[0], true, false, [&](IoEvents events) {
    if (events.readable) {
      char buf[64];
      const ssize_t n = ::read(fds[0], buf, sizeof(buf));
      if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
    }
  });
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  spin_until(reactor, 2.0, [&] { return received == "ping"; });
  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, RunStopsWhenNothingToWaitFor) {
  Reactor reactor;
  int fired = 0;
  reactor.add_timer(0.005, [&] { ++fired; });
  reactor.run();  // returns after the last timer, no fds registered
  EXPECT_EQ(fired, 1);
}

TEST(Reactor, DuplicateFdRejected) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  reactor.add_fd(fds[0], true, false, [](IoEvents) {});
  EXPECT_THROW(reactor.add_fd(fds[0], true, false, [](IoEvents) {}),
               util::Error);
  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Sockets, ListenerGetsEphemeralPort) {
  FdHandle listener = listen_loopback(0);
  EXPECT_GT(local_port(listener.get()), 0);
  // Accept queue empty: non-blocking accept says so rather than blocking.
  EXPECT_FALSE(accept_nonblocking(listener.get()).has_value());
}

TEST(Sockets, FdHandleMoveSemantics) {
  FdHandle a = listen_loopback(0);
  const int raw = a.get();
  FdHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), raw);
  b.reset();
  EXPECT_FALSE(b.valid());
}

TEST(Reactor, TimerCancellingItselfFromItsOwnCallbackIsBenign) {
  Reactor reactor;
  TimerId self = 0;
  int fired = 0;
  self = reactor.add_timer(0.005, [&] {
    ++fired;
    // Already popped: the cancel must report "not found", not corrupt the
    // queue or double-invoke anything.
    EXPECT_FALSE(reactor.cancel_timer(self));
  });
  bool sentinel = false;
  reactor.add_timer(0.05, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
  EXPECT_EQ(fired, 1);
}

TEST(Reactor, TimerCancellingASiblingDueInTheSamePoll) {
  // Two timers due at once; the first to fire cancels the second. Works
  // regardless of heap pop order: whichever runs first suppresses the
  // other, so exactly one of them executes.
  Reactor reactor;
  int fired = 0;
  TimerId a = 0, b = 0;
  a = reactor.add_timer(0.005, [&] {
    ++fired;
    reactor.cancel_timer(b);
  });
  b = reactor.add_timer(0.005, [&] {
    ++fired;
    reactor.cancel_timer(a);
  });
  bool sentinel = false;
  reactor.add_timer(0.1, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
  EXPECT_EQ(fired, 1);
}

TEST(Reactor, AddCancelStormLeavesTimersConsistent) {
  Reactor reactor;
  int fired = 0;
  // Churn: large batches added and immediately cancelled, with one real
  // survivor per batch. All the churn must be invisible.
  for (int batch = 0; batch < 10; ++batch) {
    for (int i = 0; i < 200; ++i) {
      const TimerId id =
          reactor.add_timer(0.001 + 0.0001 * i, [&] { ADD_FAILURE(); });
      ASSERT_TRUE(reactor.cancel_timer(id));
    }
    reactor.add_timer(0.002, [&] { ++fired; });
  }
  spin_until(reactor, 5.0, [&] { return fired == 10; });
}

TEST(Reactor, TimerAccuracyUnderBusyFdSet) {
  // A level-triggered fd with permanently pending data keeps every poll
  // busy; timers must still fire close to their deadline instead of
  // starving behind fd work.
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::write(fds[1], "x", 1), 1);  // never drained: always readable
  std::uint64_t wakeups = 0;
  reactor.add_fd(fds[0], true, false, [&](IoEvents) { ++wakeups; });

  const double armed_at = reactor.now();
  double fired_at = 0.0;
  reactor.add_timer(0.1, [&] { fired_at = reactor.now(); });
  spin_until(reactor, 5.0, [&] { return fired_at > 0.0; });
  EXPECT_GE(fired_at - armed_at, 0.1);
  EXPECT_LT(fired_at - armed_at, 0.6);  // late is bounded, even under load
  EXPECT_GT(wakeups, 0u);

  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- TimerWheel -------------------------------------------------------------

TEST(TimerWheel, FiresOnceWithinATickOfTheDeadline) {
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01);
  const double armed_at = reactor.now();
  double fired_at = 0.0;
  wheel.add(0.05, [&] { fired_at = reactor.now(); });
  EXPECT_EQ(wheel.size(), 1u);
  spin_until(reactor, 2.0, [&] { return fired_at > 0.0; });
  EXPECT_GE(fired_at - armed_at, 0.05 - 1e-9);
  EXPECT_LT(fired_at - armed_at, 0.05 + 10 * wheel.tick_seconds());
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, DelaysBeyondOneRingRevolutionWait) {
  // 8 slots at 10 ms = one 80 ms revolution; a 200 ms deadline must ride
  // the rounds counter, not fire on the first cursor pass.
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01, /*slot_count=*/8);
  const double armed_at = reactor.now();
  double fired_at = 0.0;
  wheel.add(0.2, [&] { fired_at = reactor.now(); });
  spin_until(reactor, 3.0, [&] { return fired_at > 0.0; });
  EXPECT_GE(fired_at - armed_at, 0.2 - 1e-9);
}

TEST(TimerWheel, CancelPreventsFiring) {
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01);
  const TimerWheel::Token token = wheel.add(0.03, [] { ADD_FAILURE(); });
  EXPECT_TRUE(wheel.cancel(token));
  EXPECT_FALSE(wheel.cancel(token));  // already gone
  EXPECT_EQ(wheel.size(), 0u);
  bool sentinel = false;
  reactor.add_timer(0.1, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
}

TEST(TimerWheel, CancellingOwnTokenInsideCallbackIsBenign) {
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01);
  TimerWheel::Token self = 0;
  int fired = 0;
  self = wheel.add(0.02, [&] {
    ++fired;
    EXPECT_FALSE(wheel.cancel(self));  // already removed before invoking
  });
  spin_until(reactor, 2.0, [&] { return fired == 1; });
}

TEST(TimerWheel, CallbackCanCancelASiblingDueInTheSameTick) {
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01);
  int fired = 0;
  TimerWheel::Token a = 0, b = 0;
  a = wheel.add(0.02, [&] {
    ++fired;
    wheel.cancel(b);
  });
  b = wheel.add(0.02, [&] {
    ++fired;
    wheel.cancel(a);
  });
  bool sentinel = false;
  reactor.add_timer(0.2, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
  // Both entries were due in the same tick and had already been detached
  // when their callbacks ran, so the cross-cancels are no-ops: both fire.
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, CallbackCanAddNewEntries) {
  Reactor reactor;
  TimerWheel wheel(reactor, 0.005);
  int hops = 0;
  std::function<void()> chain = [&] {
    if (++hops < 4) wheel.add(0.01, chain);
  };
  wheel.add(0.01, chain);
  spin_until(reactor, 3.0, [&] { return hops == 4; });
  EXPECT_EQ(wheel.size(), 0u);
}

TEST(TimerWheel, RescheduleDefersFiring) {
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01);
  const double armed_at = reactor.now();
  double fired_at = 0.0;
  const TimerWheel::Token token =
      wheel.add(0.02, [&] { fired_at = reactor.now(); });
  // Push the deadline out well past the original.
  EXPECT_TRUE(wheel.reschedule(token, 0.15));
  spin_until(reactor, 3.0, [&] { return fired_at > 0.0; });
  EXPECT_GE(fired_at - armed_at, 0.15 - 1e-9);
  EXPECT_FALSE(wheel.reschedule(token, 0.1));  // fired: token is dead
}

TEST(TimerWheel, RescheduleStormIsAbsorbed) {
  // The idle-reaper pattern: thousands of touches on live connections,
  // each a reschedule. The wheel must stay consistent and still fire each
  // entry exactly once at its final deadline.
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01, /*slot_count=*/16);
  constexpr int kEntries = 50;
  int fired = 0;
  std::vector<TimerWheel::Token> tokens;
  tokens.reserve(kEntries);
  for (int i = 0; i < kEntries; ++i) {
    tokens.push_back(wheel.add(10.0, [&] { ++fired; }));
  }
  for (int round = 0; round < 200; ++round) {
    for (const TimerWheel::Token token : tokens) {
      ASSERT_TRUE(wheel.reschedule(token, 10.0 - 0.001 * round));
    }
  }
  EXPECT_EQ(wheel.size(), static_cast<std::size_t>(kEntries));
  // Final touch brings every deadline near: all must fire exactly once.
  for (const TimerWheel::Token token : tokens) {
    ASSERT_TRUE(wheel.reschedule(token, 0.02));
  }
  spin_until(reactor, 5.0, [&] { return fired == kEntries; });
  EXPECT_EQ(wheel.size(), 0u);
  bool sentinel = false;
  reactor.add_timer(0.1, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
  EXPECT_EQ(fired, kEntries);
}

TEST(TimerWheel, EmptyWheelKeepsReactorFreeToExit) {
  // The wheel arms its reactor timer only while it has entries, so a
  // drained wheel must not keep Reactor::run() alive.
  Reactor reactor;
  TimerWheel wheel(reactor, 0.01);
  const TimerWheel::Token token = wheel.add(5.0, [] { ADD_FAILURE(); });
  EXPECT_TRUE(wheel.cancel(token));
  int fired = 0;
  reactor.add_timer(0.005, [&] { ++fired; });
  reactor.run();  // exits promptly: nothing left but the short timer
  EXPECT_EQ(fired, 1);
}

TEST(Sockets, ConnectToListenerSucceeds) {
  Reactor reactor;
  FdHandle listener = listen_loopback(0);
  const std::uint16_t port = local_port(listener.get());
  FdHandle client = connect_nonblocking("127.0.0.1", port);
  bool connected = false;
  reactor.add_fd(client.get(), false, true, [&](IoEvents events) {
    if (events.writable && connect_error(client.get()) == 0) {
      connected = true;
      reactor.remove_fd(client.get());
    }
  });
  spin_until(reactor, 2.0, [&] { return connected; });
}

}  // namespace
}  // namespace idr::rt
