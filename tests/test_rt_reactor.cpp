#include "rt/reactor.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <vector>

#include "rt/socket.hpp"
#include "util/error.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

TEST(Reactor, TimersFireInOrder) {
  Reactor reactor;
  std::vector<int> order;
  reactor.add_timer(0.03, [&] { order.push_back(3); });
  reactor.add_timer(0.01, [&] { order.push_back(1); });
  reactor.add_timer(0.02, [&] { order.push_back(2); });
  spin_until(reactor, 2.0, [&] { return order.size() == 3; });
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Reactor, CancelledTimerDoesNotFire) {
  Reactor reactor;
  bool fired = false;
  const TimerId id = reactor.add_timer(0.01, [&] { fired = true; });
  EXPECT_TRUE(reactor.cancel_timer(id));
  EXPECT_FALSE(reactor.cancel_timer(id));
  bool sentinel = false;
  reactor.add_timer(0.05, [&] { sentinel = true; });
  spin_until(reactor, 2.0, [&] { return sentinel; });
  EXPECT_FALSE(fired);
}

TEST(Reactor, TimerCanScheduleTimer) {
  Reactor reactor;
  int hops = 0;
  std::function<void()> chain = [&] {
    if (++hops < 3) reactor.add_timer(0.005, chain);
  };
  reactor.add_timer(0.005, chain);
  spin_until(reactor, 2.0, [&] { return hops == 3; });
}

TEST(Reactor, PipeReadability) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  std::string received;
  reactor.add_fd(fds[0], true, false, [&](IoEvents events) {
    if (events.readable) {
      char buf[64];
      const ssize_t n = ::read(fds[0], buf, sizeof(buf));
      if (n > 0) received.assign(buf, static_cast<std::size_t>(n));
    }
  });
  ASSERT_EQ(::write(fds[1], "ping", 4), 4);
  spin_until(reactor, 2.0, [&] { return received == "ping"; });
  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, RunStopsWhenNothingToWaitFor) {
  Reactor reactor;
  int fired = 0;
  reactor.add_timer(0.005, [&] { ++fired; });
  reactor.run();  // returns after the last timer, no fds registered
  EXPECT_EQ(fired, 1);
}

TEST(Reactor, DuplicateFdRejected) {
  Reactor reactor;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  reactor.add_fd(fds[0], true, false, [](IoEvents) {});
  EXPECT_THROW(reactor.add_fd(fds[0], true, false, [](IoEvents) {}),
               util::Error);
  reactor.remove_fd(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Sockets, ListenerGetsEphemeralPort) {
  FdHandle listener = listen_loopback(0);
  EXPECT_GT(local_port(listener.get()), 0);
  // Accept queue empty: non-blocking accept says so rather than blocking.
  EXPECT_FALSE(accept_nonblocking(listener.get()).has_value());
}

TEST(Sockets, FdHandleMoveSemantics) {
  FdHandle a = listen_loopback(0);
  const int raw = a.get();
  FdHandle b = std::move(a);
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(b.get(), raw);
  b.reset();
  EXPECT_FALSE(b.valid());
}

TEST(Sockets, ConnectToListenerSucceeds) {
  Reactor reactor;
  FdHandle listener = listen_loopback(0);
  const std::uint16_t port = local_port(listener.get());
  FdHandle client = connect_nonblocking("127.0.0.1", port);
  bool connected = false;
  reactor.add_fd(client.get(), false, true, [&](IoEvents events) {
    if (events.writable && connect_error(client.get()) == 0) {
      connected = true;
      reactor.remove_fd(client.get());
    }
  });
  spin_until(reactor, 2.0, [&] { return connected; });
}

}  // namespace
}  // namespace idr::rt
