// Shard execution layer: the guarantees the planet-scale drivers rely on.
//
// The contract under test: a sharded run is a pure reshuffling of the
// serial per-session loop — same per-transfer records, same merged
// metrics, same digests — at every thread count, because all randomness
// keys off stable identities and all order-sensitive merging happens
// serially in shard-index order.
#include <cstddef>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testbed/shard.hpp"

namespace idr::testbed {
namespace {

FleetSpec small_fleet() {
  FleetSpec spec;
  spec.seed = 77;
  spec.clients = 8;
  spec.relay_pool = 10;
  spec.relays_per_client = 3;
  spec.probe_set = 2;
  spec.transfers_per_client = 6;
  spec.clients_per_shard = 3;  // shards of 3, 3, 2
  return spec;
}

TEST(ShardSummary, AbsorbAndCombineChainDeterministically) {
  SessionResult session;
  session.client = "Duke";
  session.session_relay = "CMU";
  session.transfers.resize(2);
  session.transfers[0].ok = true;
  session.transfers[0].chose_indirect = true;
  session.transfers[0].improvement_steady_pct = 25.0;
  session.transfers[1].ok = false;

  ShardSummary a;
  a.absorb(session);
  EXPECT_EQ(a.transfers, 2u);
  EXPECT_EQ(a.ok, 1u);
  EXPECT_EQ(a.failed, 1u);
  EXPECT_EQ(a.indirect, 1u);
  EXPECT_DOUBLE_EQ(a.improvement_sum, 25.0);

  ShardSummary b;
  b.absorb(session);
  EXPECT_EQ(a.digest, b.digest);

  // combine() chains digests in order: (a then b) != (b then a) unless
  // symmetric, but equal sequences always agree.
  ShardSummary left = a, right = b;
  left.combine(b);
  right.combine(a);
  EXPECT_EQ(left.digest, right.digest);  // same inputs, same order
  EXPECT_EQ(left.transfers, 4u);
  EXPECT_NE(left.digest, a.digest);
}

TEST(PlanShards, GroupsConsecutiveSessionsWithOrdinalIds) {
  std::vector<SessionSpec> sessions(7);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    sessions[i].client_seed = 1000 + i;
  }
  const std::vector<ShardSpec> shards = plan_shards(std::move(sessions), 3);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].shard_id, 0u);
  EXPECT_EQ(shards[1].shard_id, 1u);
  EXPECT_EQ(shards[2].shard_id, 2u);
  EXPECT_EQ(shards[0].sessions.size(), 3u);
  EXPECT_EQ(shards[1].sessions.size(), 3u);
  EXPECT_EQ(shards[2].sessions.size(), 1u);
  // Session order is preserved across the grouping.
  EXPECT_EQ(shards[0].sessions[0].client_seed, 1000u);
  EXPECT_EQ(shards[1].sessions[0].client_seed, 1003u);
  EXPECT_EQ(shards[2].sessions[0].client_seed, 1006u);
}

TEST(SyntheticFleet, PureFunctionOfSpec) {
  const FleetSpec spec = small_fleet();
  const SyntheticFleet f1(spec);
  const SyntheticFleet f2(spec);
  ASSERT_EQ(f1.clients().size(), spec.clients);
  ASSERT_EQ(f1.relays().size(), spec.relay_pool);
  for (std::size_t i = 0; i < f1.clients().size(); ++i) {
    EXPECT_EQ(f1.clients()[i].name, f2.clients()[i].name);
    EXPECT_DOUBLE_EQ(f1.clients()[i].inbound_mbps,
                     f2.clients()[i].inbound_mbps);
    EXPECT_DOUBLE_EQ(f1.clients()[i].variability_cv,
                     f2.clients()[i].variability_cv);
    EXPECT_EQ(f1.clients()[i].jumpy, f2.clients()[i].jumpy);
  }
  // A different seed perturbs differently (same names, distinct draws).
  FleetSpec other = spec;
  other.seed = 78;
  const SyntheticFleet f3(other);
  bool any_diff = false;
  for (std::size_t i = 0; i < f1.clients().size(); ++i) {
    EXPECT_EQ(f1.clients()[i].name, f3.clients()[i].name);
    any_diff |= f1.clients()[i].inbound_mbps != f3.clients()[i].inbound_mbps;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RunSharded, MatchesSerialSessionLoop) {
  const FleetSpec spec = small_fleet();
  const SyntheticFleet fleet(spec);
  std::vector<ShardSpec> shards = plan_fleet_shards(spec, fleet);
  ASSERT_EQ(shards.size(), 3u);

  // The reference: the plain serial loop a non-sharded driver would run,
  // absorbed in the same (shard, session) order.
  ShardSummary reference;
  std::vector<std::string> reference_clients;
  for (const ShardSpec& shard : shards) {
    ShardSummary shard_summary;
    for (const SessionSpec& session : shard.sessions) {
      const SessionOutput out = run_session(session);
      shard_summary.absorb(out.result);
      reference_clients.push_back(out.result.client);
    }
    reference.combine(shard_summary);
  }

  const ShardRunResult run = run_sharded(std::move(shards), 1);
  EXPECT_EQ(run.shard_count, 3u);
  EXPECT_EQ(run.summary.digest, reference.digest);
  EXPECT_EQ(run.summary.transfers, spec.clients * spec.transfers_per_client);
  EXPECT_EQ(run.summary.ok, reference.ok);
  ASSERT_EQ(run.outputs.size(), reference_clients.size());
  for (std::size_t i = 0; i < run.outputs.size(); ++i) {
    EXPECT_EQ(run.outputs[i].result.client, reference_clients[i]);
  }
}

TEST(RunSharded, BitwiseIdenticalAcrossThreadCounts) {
  const FleetSpec spec = small_fleet();
  const SyntheticFleet fleet(spec);

  const ShardRunResult base =
      run_sharded(plan_fleet_shards(spec, fleet), 1);
  const std::string base_json = base.metrics.to_json();
  for (unsigned threads : {2u, 4u}) {
    const ShardRunResult run =
        run_sharded(plan_fleet_shards(spec, fleet), threads);
    EXPECT_EQ(run.summary.digest, base.summary.digest)
        << "digest diverged at " << threads << " threads";
    EXPECT_EQ(run.metrics.to_json(), base_json)
        << "metrics diverged at " << threads << " threads";
    EXPECT_EQ(run.work.executed, base.work.executed);
    EXPECT_EQ(run.work.reschedules, base.work.reschedules);
    EXPECT_EQ(run.work.cancellations, base.work.cancellations);
    ASSERT_EQ(run.outputs.size(), base.outputs.size());
    for (std::size_t i = 0; i < run.outputs.size(); ++i) {
      EXPECT_EQ(run.outputs[i].result.client, base.outputs[i].result.client);
    }
  }
}

TEST(RunSharded, PassivePoliciesBitwiseIdenticalAcrossThreadCounts) {
  // The estimate plane is per-client state: each session owns its own
  // RelayStatsTable, so pinning decisions made from passive estimates
  // must not leak across shards or depend on execution interleaving.
  // Run the two estimate-driven policies across thread counts and demand
  // the same bitwise digests and merged metrics as the 1-thread run.
  for (const PolicyKind kind :
       {PolicyKind::RaceOnStaleness, PolicyKind::HybridPassive}) {
    FleetSpec spec = small_fleet();
    PolicyParams params;
    params.kind = kind;
    // 2.5x the 6-minute cadence: each race win pins the next couple of
    // transfers, then goes stale — both regimes exercised per session.
    params.staleness_threshold = 900.0;
    params.utilization_cap = 0.4;
    spec.policy = params;

    const SyntheticFleet fleet(spec);
    const ShardRunResult base =
        run_sharded(plan_fleet_shards(spec, fleet), 1);
    EXPECT_EQ(base.summary.transfers,
              spec.clients * spec.transfers_per_client);
    EXPECT_EQ(base.summary.failed, 0u) << policy_kind_name(kind);
    if (kind == PolicyKind::RaceOnStaleness) {
      // The fleet actually skipped races somewhere, or the digest check
      // proves nothing new about the pinned path.
      const obs::MetricValue* skipped =
          base.metrics.find("sim.select.races_skipped");
      ASSERT_NE(skipped, nullptr);
      EXPECT_GT(skipped->count, 0u);
    }
    const std::string base_json = base.metrics.to_json();
    for (unsigned threads : {2u, 4u}) {
      const ShardRunResult run =
          run_sharded(plan_fleet_shards(spec, fleet), threads);
      EXPECT_EQ(run.summary.digest, base.summary.digest)
          << policy_kind_name(kind) << " digest diverged at " << threads
          << " threads";
      EXPECT_EQ(run.metrics.to_json(), base_json)
          << policy_kind_name(kind) << " metrics diverged at " << threads
          << " threads";
    }
  }
}

TEST(RunSharded, PolicyChangesTheRunDefaultDoesNot) {
  // FleetSpec.policy == nullopt and an explicit AlwaysRace-over-uniform
  // must be behaviorally identical (same digest): the hook's default
  // preserves the pre-policy runs bit for bit. A pinning policy, by
  // contrast, must actually change the transfer stream.
  const FleetSpec plain = small_fleet();
  FleetSpec always = small_fleet();
  PolicyParams params;
  params.kind = PolicyKind::AlwaysRace;
  always.policy = params;
  FleetSpec stale = small_fleet();
  params.kind = PolicyKind::RaceOnStaleness;
  params.staleness_threshold = 900.0;
  stale.policy = params;

  const SyntheticFleet fleet(plain);
  const ShardRunResult plain_run =
      run_sharded(plan_fleet_shards(plain, fleet), 2);
  const ShardRunResult always_run =
      run_sharded(plan_fleet_shards(always, fleet), 2);
  const ShardRunResult stale_run =
      run_sharded(plan_fleet_shards(stale, fleet), 2);
  EXPECT_EQ(always_run.summary.digest, plain_run.summary.digest);
  EXPECT_NE(stale_run.summary.digest, plain_run.summary.digest);
}

TEST(RunSharded, ShardSeriesAndWorkTotals) {
  const FleetSpec spec = small_fleet();
  const SyntheticFleet fleet(spec);
  const ShardRunResult run =
      run_sharded(plan_fleet_shards(spec, fleet), 2);

  const obs::MetricValue* shards_run =
      run.metrics.find("testbed.shard.shards_run");
  const obs::MetricValue* sessions = run.metrics.find("testbed.shard.sessions");
  const obs::MetricValue* transfers =
      run.metrics.find("testbed.shard.transfers");
  ASSERT_NE(shards_run, nullptr);
  ASSERT_NE(sessions, nullptr);
  ASSERT_NE(transfers, nullptr);
  EXPECT_EQ(shards_run->count, run.shard_count);
  EXPECT_EQ(sessions->count, spec.clients);
  EXPECT_EQ(transfers->count, spec.clients * spec.transfers_per_client);

  // The merged work tally is exactly the sum over the retained outputs.
  SchedulerWork sum;
  for (const SessionOutput& out : run.outputs) {
    sum += out.result.sim_work;
  }
  EXPECT_EQ(run.work.executed, sum.executed);
  EXPECT_EQ(run.work.cancellations, sum.cancellations);
  EXPECT_EQ(run.work.reschedules, sum.reschedules);
  // And the event-core series in the snapshot agrees with it.
  const obs::MetricValue* executed =
      run.metrics.find("sim.core.events_executed");
  ASSERT_NE(executed, nullptr);
  EXPECT_EQ(executed->count, run.work.executed);
}

TEST(RunSharded, PerShardReducerShedsOutputsNotResults) {
  const FleetSpec spec = small_fleet();
  const SyntheticFleet fleet(spec);

  const ShardRunResult keep = run_sharded(plan_fleet_shards(spec, fleet), 2);
  const ShardRunResult shed = run_sharded(
      plan_fleet_shards(spec, fleet), 2, [](ShardResult& shard) {
        shard.sessions.clear();
      });
  EXPECT_TRUE(shed.outputs.empty());
  EXPECT_EQ(shed.summary.digest, keep.summary.digest);
  EXPECT_EQ(shed.summary.transfers, keep.summary.transfers);
  EXPECT_EQ(shed.metrics.to_json(), keep.metrics.to_json());
  EXPECT_EQ(shed.work.executed, keep.work.executed);
}

}  // namespace
}  // namespace idr::testbed
