#include "http/message.hpp"

#include <gtest/gtest.h>

#include "http/traceparent.hpp"

namespace idr::http {
namespace {

TEST(Method, Names) {
  EXPECT_EQ(method_name(Method::GET), "GET");
  EXPECT_EQ(parse_method("GET"), Method::GET);
  EXPECT_EQ(parse_method("DELETE"), Method::DELETE);
  EXPECT_FALSE(parse_method("get").has_value());  // methods are case-sensitive
  EXPECT_FALSE(parse_method("BREW").has_value());
}

TEST(HeaderMap, CaseInsensitiveLookup) {
  HeaderMap h;
  h.add("Content-Length", "10");
  EXPECT_EQ(h.get("content-length"), "10");
  EXPECT_EQ(h.get("CONTENT-LENGTH"), "10");
  EXPECT_TRUE(h.has("Content-length"));
  EXPECT_FALSE(h.has("Content-Type"));
}

TEST(HeaderMap, AddKeepsDuplicatesSetReplaces) {
  HeaderMap h;
  h.add("X", "1");
  h.add("X", "2");
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.get("X"), "1");  // first value wins on lookup
  h.set("x", "3");
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HeaderMap, RemoveCountsAll) {
  HeaderMap h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  EXPECT_EQ(h.remove("A"), 2u);
  EXPECT_EQ(h.size(), 1u);
  EXPECT_EQ(h.remove("missing"), 0u);
}

TEST(Request, SerializeBasics) {
  Request req;
  req.method = Method::GET;
  req.target = "/file";
  req.headers.add("Host", "ebay.com");
  req.headers.add("Range", "bytes=0-102399");
  const std::string wire = req.serialize();
  EXPECT_EQ(wire.substr(0, 20), "GET /file HTTP/1.1\r\n");
  EXPECT_NE(wire.find("Host: ebay.com\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Range: bytes=0-102399\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n"), std::string::npos);
  // No body and no forced Content-Length for requests.
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
}

TEST(Request, SerializeAddsLengthForBody) {
  Request req;
  req.method = Method::POST;
  req.body = "hello";
  const std::string wire = req.serialize();
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_EQ(wire.substr(wire.size() - 5), "hello");
}

TEST(Response, SerializeAlwaysFramesBody) {
  Response resp;
  resp.status = 206;
  resp.reason = "Partial Content";
  resp.body = "0123456789";
  const std::string wire = resp.serialize();
  EXPECT_EQ(wire.substr(0, 26), "HTTP/1.1 206 Partial Conte");
  EXPECT_NE(wire.find("Content-Length: 10\r\n"), std::string::npos);
}

TEST(Response, EmptyBodyStillGetsZeroLength) {
  Response resp;
  const std::string wire = resp.serialize();
  EXPECT_NE(wire.find("Content-Length: 0\r\n"), std::string::npos);
}

TEST(Response, ExplicitLengthNotDuplicated) {
  Response resp;
  resp.headers.add("Content-Length", "4");
  resp.body = "abcd";
  const std::string wire = resp.serialize();
  EXPECT_EQ(wire.find("Content-Length"), wire.rfind("Content-Length"));
}

TEST(DefaultReason, KnownCodes) {
  EXPECT_EQ(default_reason(200), "OK");
  EXPECT_EQ(default_reason(206), "Partial Content");
  EXPECT_EQ(default_reason(416), "Range Not Satisfiable");
  EXPECT_EQ(default_reason(502), "Bad Gateway");
  EXPECT_EQ(default_reason(299), "Unknown");
}

TEST(Url, ParseVariants) {
  auto p = parse_http_url("http://ebay.com/big.bin");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->host, "ebay.com");
  EXPECT_EQ(p->port, 80);
  EXPECT_EQ(p->path, "/big.bin");

  p = parse_http_url("http://127.0.0.1:8080/x/y?z=1");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->host, "127.0.0.1");
  EXPECT_EQ(p->port, 8080);
  EXPECT_EQ(p->path, "/x/y?z=1");

  p = parse_http_url("http://host");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->path, "/");
}

TEST(Url, Rejections) {
  EXPECT_FALSE(parse_http_url("https://secure").has_value());
  EXPECT_FALSE(parse_http_url("ftp://x/").has_value());
  EXPECT_FALSE(parse_http_url("http://").has_value());
  EXPECT_FALSE(parse_http_url("http://h:0/").has_value());
  EXPECT_FALSE(parse_http_url("http://h:99999/").has_value());
  EXPECT_FALSE(parse_http_url("http://h:abc/").has_value());
}

TEST(Traceparent, FormatIsVersion00SampledWithPaddedIds) {
  obs::TraceContext ctx;
  ctx.trace_id = 0xDEADBEEFCAFEBABEull;
  ctx.span_id = 0xabc;
  EXPECT_EQ(format_traceparent(ctx),
            "00-0000000000000000deadbeefcafebabe-0000000000000abc-01");
  // An invalid context encodes as empty so callers can skip the header.
  EXPECT_EQ(format_traceparent(obs::TraceContext{}), "");
}

TEST(Traceparent, RoundTripsBitwise) {
  obs::TraceContext ctx;
  ctx.trace_id = 0x0123456789abcdefull;
  ctx.span_id = 0xfedcba9876543210ull;
  const auto parsed = parse_traceparent(format_traceparent(ctx));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, ctx.trace_id);
  EXPECT_EQ(parsed->span_id, ctx.span_id);
}

TEST(Traceparent, Foreign128BitTraceIdFoldsByXor) {
  const auto parsed = parse_traceparent(
      "00-00000000000000ff000000000000000f-0000000000000001-01");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, 0xffull ^ 0x0full);
  // Foreign versions and flag bytes we don't emit still parse (only ff
  // and malformed hex are rejected).
  EXPECT_TRUE(parse_traceparent(
                  "01-0000000000000000000000000000000a-"
                  "000000000000000b-00")
                  .has_value());
}

}  // namespace
}  // namespace idr::http
