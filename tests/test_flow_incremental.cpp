// Tests for the scoped incremental reallocation path of FlowSimulator.
//
// The core contract: confining each recompute to the connected component
// of the changed flow/link produces rates *bitwise identical* to a
// from-scratch global max-min allocation (the decomposition is exact, and
// the canonical ascending-id flow order fixes the floating-point op
// sequence). The property test churns flows over a random topology and
// compares against the pure allocator at checkpoints; the counter
// regression pins exact work counts for a scripted scenario so an
// accidental return to global recomputes fails loudly. The event-skip and
// capacity-clamp fixes riding on the same path are covered at the end.
#include "flow/flow_simulator.hpp"

#include <gtest/gtest.h>
#include <map>

#include "flow/max_min.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace idr::flow {
namespace {

using util::mbps;
using util::milliseconds;

// --- Bitwise agreement with the from-scratch allocator --------------------

// What the test knows about each live flow; enough to rebuild the global
// allocation problem independently of the simulator's internals.
struct Tracked {
  std::vector<std::size_t> links;
  Rate ceiling = 0.0;
  Rate extra_cap = kUnlimitedRate;
};

class IncrementalMatchesScratch
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalMatchesScratch, RatesBitwiseEqualUnderChurn) {
  util::Rng rng(GetParam());

  sim::Simulator sim;
  net::Topology topo;
  const auto link_count = static_cast<std::size_t>(rng.uniform_int(3, 10));
  net::NodeId prev = topo.add_node("n0");
  for (std::size_t l = 0; l < link_count; ++l) {
    const net::NodeId next = topo.add_node("n" + std::to_string(l + 1));
    topo.add_link(prev, next, rng.uniform(1e5, 4e6), milliseconds(10));
    prev = next;
  }
  FlowSimulator fsim(sim, topo, util::Rng(GetParam() ^ 0xf10f));

  // Keep link 0 time-varying so capacity-change events interleave with the
  // flow churn.
  class Jitter final : public net::CapacityProcess {
   public:
    Rate initial(util::Rng& r) override { return r.uniform(5e5, 2e6); }
    net::CapacityChange next(util::Rng& r) override {
      return {0.4, r.uniform(5e4, 2e6)};
    }
  };
  fsim.attach_capacity_process(0, std::make_unique<Jitter>());

  std::map<FlowId, Tracked> live;  // ordered: ascending id

  // Pre-sample every arrival (and its follow-up actions) so the RNG draw
  // sequence does not depend on event interleaving.
  struct Arrival {
    double at = 0.0;
    std::vector<std::size_t> links;
    double size = 0.0;
    Rate ceiling = 0.0;
    double recap_at = -1.0;  // set_extra_cap time; < 0 = never
    Rate recap = kUnlimitedRate;
    double cancel_at = -1.0;
  };
  std::vector<Arrival> plan(30);
  for (Arrival& a : plan) {
    a.at = rng.uniform(0.0, 8.0);
    const auto hops = static_cast<std::size_t>(
        rng.uniform_int(1, std::min<std::int64_t>(4, link_count)));
    a.links = rng.sample_without_replacement(link_count, hops);
    a.size = rng.uniform(5e4, 5e6);
    a.ceiling = rng.bernoulli(0.5) ? rng.uniform(5e4, 2e6) : 1e9;
    if (rng.bernoulli(0.5)) {
      a.recap_at = a.at + rng.uniform(0.1, 2.0);
      a.recap =
          rng.bernoulli(0.2) ? kUnlimitedRate : rng.uniform(2e4, 2e6);
    }
    if (rng.bernoulli(0.25)) a.cancel_at = a.at + rng.uniform(0.2, 3.0);
  }

  for (const Arrival& a : plan) {
    sim.schedule_at(a.at, [&, a] {
      FlowOptions opt;
      opt.model_slow_start = false;
      opt.rtt = 0.05;
      opt.ceiling_override = a.ceiling;
      net::Path path;
      for (const std::size_t l : a.links) {
        path.links.push_back(static_cast<net::LinkId>(l));
      }
      const FlowId id = fsim.start_flow(
          path, a.size, opt,
          [&live](const FlowStats& s) { live.erase(s.id); });
      live.emplace(id, Tracked{a.links, a.ceiling, kUnlimitedRate});
      if (a.recap_at >= a.at) {
        sim.schedule_at(a.recap_at, [&, id, cap = a.recap] {
          if (!fsim.flow_active(id)) return;
          fsim.set_extra_cap(id, cap);
          live.at(id).extra_cap = cap;
        });
      }
      if (a.cancel_at >= a.at) {
        sim.schedule_at(a.cancel_at, [&, id] {
          if (fsim.cancel_flow(id)) live.erase(id);
        });
      }
    });
  }

  for (const double checkpoint : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    sim.run_until(checkpoint);
    std::vector<Rate> capacities(topo.link_count());
    for (std::size_t l = 0; l < capacities.size(); ++l) {
      capacities[l] = topo.link(static_cast<net::LinkId>(l)).capacity;
    }
    std::vector<FlowDemand> demands;
    std::vector<FlowId> ids;
    for (const auto& [id, t] : live) {
      FlowDemand d;
      d.links = t.links;
      // Mirror FlowSimulator::effective_cap for a flow with slow start off
      // and the default cap_scale, term by term, so the caps fed to the
      // reference allocator are bitwise those the simulator used.
      d.cap = std::min(t.ceiling * 1.0, t.extra_cap);
      demands.push_back(std::move(d));
      ids.push_back(id);
    }
    const std::vector<Rate> expect = max_min_allocate(capacities, demands);
    for (std::size_t i = 0; i < ids.size(); ++i) {
      EXPECT_EQ(expect[i], fsim.current_rate(ids[i]))
          << "flow " << ids[i] << " at t=" << checkpoint;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomChurn, IncrementalMatchesScratch,
                         ::testing::Range<std::uint64_t>(1, 26));

// --- Counter regression: scoped work, pinned exactly ----------------------

TEST(FlowSimulatorCounters, ScriptedScenarioPinsWorkCounts) {
  sim::Simulator sim;
  net::Topology topo;
  const auto a1 = topo.add_node("a1");
  const auto a2 = topo.add_node("a2");
  const auto b1 = topo.add_node("b1");
  const auto b2 = topo.add_node("b2");
  const net::Path pa{{topo.add_link(a1, a2, mbps(8.0), 0.01)}};
  const net::Path pb{{topo.add_link(b1, b2, mbps(8.0), 0.01)}};
  FlowSimulator fsim(sim, topo, util::Rng(3));

  FlowOptions opt;
  opt.model_slow_start = false;
  opt.rtt = 0.1;
  opt.ceiling_override = 1e9;  // never binding at these capacities

  // Two independent single-link components, two flows each.
  const FlowId f1 = fsim.start_flow(pa, 1e12, opt, nullptr);
  const FlowId f2 = fsim.start_flow(pa, 1e12, opt, nullptr);
  const FlowId f3 = fsim.start_flow(pb, 1e12, opt, nullptr);
  const FlowId f4 = fsim.start_flow(pb, 1e12, opt, nullptr);
  EXPECT_EQ(fsim.current_rate(f1), 0.5e6);
  EXPECT_EQ(fsim.current_rate(f3), 0.5e6);

  // Cap f1 below its share: only component A may be touched.
  fsim.set_extra_cap(f1, 2e5);
  EXPECT_EQ(fsim.current_rate(f1), 2e5);
  EXPECT_EQ(fsim.current_rate(f2), 8e5);
  EXPECT_EQ(fsim.current_rate(f3), 0.5e6);
  EXPECT_EQ(fsim.current_rate(f4), 0.5e6);

  // Re-posting the same cap is proven rate-neutral without a recompute.
  fsim.set_extra_cap(f1, 2e5);

  // Departure in component B touches only the survivor there.
  EXPECT_TRUE(fsim.cancel_flow(f3));
  EXPECT_EQ(fsim.current_rate(f4), 1e6);

  // Exact work ledger for the six rate-affecting events above (4 arrivals,
  // 1 binding cap change, 1 cancellation). flows_touched counts component
  // members only: 1+2+1+2 for the arrivals, 2 for the cap change, 1 for
  // the survivor — a global recompute would give 1+2+3+4+4+3 = 17 instead.
  const FlowSimulator::Counters& c = fsim.counters();
  EXPECT_EQ(c.reallocations, 6u);
  EXPECT_EQ(c.flows_touched, 9u);
  EXPECT_EQ(c.maxmin_rounds, 7u);
  EXPECT_EQ(c.timer_rearms, 9u);
  EXPECT_EQ(c.skipped_events, 1u);
  // Re-arms of already-armed timers move the event in place instead of
  // cancelling and re-scheduling: 2 at arrival time (f1 when f2 joins its
  // link, f3 when f4 joins), f1+f2 on the cap change, f4 on f3's
  // departure. Only f3's abort is an actual cancellation.
  EXPECT_EQ(sim.cancellations(), 1u);
  EXPECT_EQ(sim.reschedules(), 5u);
}

// --- Event-skip and clamp fixes -------------------------------------------

TEST(FlowSimulatorCounters, UnchangedExtraCapSkipsRecompute) {
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const net::Path p{{topo.add_link(a, b, mbps(8.0), 0.01)}};
  FlowSimulator fsim(sim, topo, util::Rng(4));
  FlowOptions opt;
  opt.model_slow_start = false;
  const FlowId id = fsim.start_flow(p, 1e9, opt, nullptr);

  fsim.set_extra_cap(id, 1e5);
  const std::uint64_t before = fsim.counters().reallocations;
  fsim.set_extra_cap(id, 1e5);  // relay coupling re-posts unchanged caps
  EXPECT_EQ(fsim.counters().reallocations, before);
  EXPECT_EQ(fsim.counters().skipped_events, 1u);
  EXPECT_EQ(fsim.current_rate(id), 1e5);
}

TEST(FlowSimulatorCounters, NonBindingSlowStartRoundsSkipRecompute) {
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const net::Path p{{topo.add_link(a, b, mbps(800.0), milliseconds(50))}};
  FlowSimulator fsim(sim, topo, util::Rng(5));
  FlowOptions opt;  // slow start on
  opt.ceiling_override = 1e9;
  const FlowId id = fsim.start_flow(p, 1e15, opt, nullptr);

  // The ramp crosses the link share (1e8 B/s) around round 10; later
  // rounds relax a cap that is no longer binding and must not recompute.
  sim.run_until(3.0);
  EXPECT_EQ(fsim.current_rate(id), 1e8);
  EXPECT_GT(fsim.counters().skipped_events, 0u);
}

TEST(FlowSimulator, InitialCapacityDrawIsClampedLikeLaterOnes) {
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto link = topo.add_link(a, b, mbps(8.0), 0.01);
  FlowSimulator fsim(sim, topo, util::Rng(6));

  // A process whose every draw is degenerate (well under the 1 B/s floor).
  class Tiny final : public net::CapacityProcess {
   public:
    Rate initial(util::Rng&) override { return 0.25; }
    net::CapacityChange next(util::Rng&) override { return {0.5, 0.125}; }
  };
  fsim.attach_capacity_process(link, std::make_unique<Tiny>());
  EXPECT_EQ(topo.link(link).capacity, 1.0);

  // Subsequent draws clamp to the same floor, which also makes them
  // detectably no-ops.
  sim.run_until(1.1);
  EXPECT_EQ(topo.link(link).capacity, 1.0);
  EXPECT_GE(fsim.counters().skipped_events, 2u);
}

}  // namespace
}  // namespace idr::flow
