#include "http/parser.hpp"

#include <gtest/gtest.h>

namespace idr::http {
namespace {

TEST(RequestParser, SimpleGet) {
  RequestParser p;
  const std::string wire =
      "GET /file HTTP/1.1\r\nHost: ebay.com\r\nRange: bytes=0-99\r\n\r\n";
  EXPECT_EQ(p.feed(wire), wire.size());
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.request().method, Method::GET);
  EXPECT_EQ(p.request().target, "/file");
  EXPECT_EQ(p.request().headers.get("Range"), "bytes=0-99");
  EXPECT_TRUE(p.request().body.empty());
}

TEST(RequestParser, ByteAtATime) {
  RequestParser p;
  const std::string wire =
      "GET / HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc";
  for (char ch : wire) {
    ASSERT_NE(p.state(), ParseState::Error);
    EXPECT_EQ(p.feed(std::string_view(&ch, 1)), 1u);
  }
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.request().body, "abc");
}

TEST(RequestParser, StopsAtMessageBoundary) {
  RequestParser p;
  const std::string two =
      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
  const std::size_t consumed = p.feed(two);
  EXPECT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.request().target, "/a");
  // The second message is untouched and parseable after reset().
  p.reset();
  EXPECT_EQ(p.feed(std::string_view(two).substr(consumed)),
            two.size() - consumed);
  EXPECT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.request().target, "/b");
}

TEST(RequestParser, BodyRemainingCountsDown) {
  RequestParser p;
  p.feed("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Body);
  EXPECT_EQ(p.body_remaining(), 10u);
  p.feed("01234");
  EXPECT_EQ(p.body_remaining(), 5u);
  p.feed("56789");
  EXPECT_EQ(p.state(), ParseState::Complete);
}

TEST(RequestParser, MalformedStartLine) {
  for (const char* bad :
       {"GET /\r\n\r\n", "BREW / HTTP/1.1\r\n\r\n",
        "GET / HTTP/2.0\r\n\r\n", "GET  HTTP/1.1 extra\r\n\r\n"}) {
    RequestParser p;
    p.feed(bad);
    EXPECT_EQ(p.state(), ParseState::Error) << bad;
    EXPECT_FALSE(p.error().empty());
  }
}

TEST(RequestParser, MalformedHeaders) {
  for (const char* bad :
       {"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n",
        "GET / HTTP/1.1\r\n: empty-name\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n",
        "GET / HTTP/1.1\r\nContent-Length: 12junk\r\n\r\n",
        "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"}) {
    RequestParser p;
    p.feed(bad);
    EXPECT_EQ(p.state(), ParseState::Error) << bad;
  }
}

TEST(RequestParser, HeaderLimitEnforced) {
  RequestParser p;
  std::string huge = "GET / HTTP/1.1\r\n";
  huge.append(70 * 1024, 'x');  // never terminates the header block
  p.feed(huge);
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(RequestParser, Http10Accepted) {
  RequestParser p;
  p.feed("GET / HTTP/1.0\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.request().version, "HTTP/1.0");
}

TEST(ResponseParser, PartialContent) {
  ResponseParser p;
  const std::string wire =
      "HTTP/1.1 206 Partial Content\r\n"
      "Content-Range: bytes 0-4/10\r\n"
      "Content-Length: 5\r\n\r\n01234";
  EXPECT_EQ(p.feed(wire), wire.size());
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.response().status, 206);
  EXPECT_EQ(p.response().reason, "Partial Content");
  EXPECT_EQ(p.response().body, "01234");
}

TEST(ResponseParser, EmptyReasonAllowed) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 \r\nContent-Length: 0\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.response().reason, "");
}

TEST(ResponseParser, ReasonWithSpaces) {
  ResponseParser p;
  p.feed("HTTP/1.1 416 Range Not Satisfiable\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.response().reason, "Range Not Satisfiable");
}

TEST(ResponseParser, BadStatusLines) {
  for (const char* bad :
       {"HTTP/1.1\r\n\r\n", "HTTP/1.1 2000 OK\r\n\r\n",
        "HTTP/1.1 20 OK\r\n\r\n", "HTTP/1.1 abc OK\r\n\r\n",
        "SPDY/1 200 OK\r\n\r\n", "HTTP/1.1 099 OK\r\n\r\n"}) {
    ResponseParser p;
    p.feed(bad);
    EXPECT_EQ(p.state(), ParseState::Error) << bad;
  }
}

TEST(ResponseParser, SplitAcrossFeeds) {
  ResponseParser p;
  p.feed("HTTP/1.1 200 OK\r\nContent-Le");
  EXPECT_EQ(p.state(), ParseState::Headers);
  p.feed("ngth: 6\r\n\r\nfoo");
  EXPECT_EQ(p.state(), ParseState::Body);
  p.feed("bar");
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.response().body, "foobar");
}

TEST(ResponseParser, ResetClearsState) {
  ResponseParser p;
  p.feed("garbage that errors\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Error);
  p.reset();
  EXPECT_EQ(p.state(), ParseState::Headers);
  p.feed("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Complete);
}

TEST(RoundTrip, SerializeThenParse) {
  Request req;
  req.method = Method::GET;
  req.target = "http://ebay.com/content";
  req.headers.add("Host", "ebay.com");
  req.headers.add("Range", "bytes=102400-");
  RequestParser rp;
  rp.feed(req.serialize());
  ASSERT_EQ(rp.state(), ParseState::Complete);
  EXPECT_EQ(rp.request().target, req.target);
  EXPECT_EQ(rp.request().headers.get("Range"), "bytes=102400-");

  Response resp;
  resp.status = 206;
  resp.reason = std::string(default_reason(206));
  resp.headers.add("Content-Range", "bytes 102400-3999999/4000000");
  resp.body = std::string(1000, 'd');
  ResponseParser sp;
  sp.feed(resp.serialize());
  ASSERT_EQ(sp.state(), ParseState::Complete);
  EXPECT_EQ(sp.response().status, 206);
  EXPECT_EQ(sp.response().body.size(), 1000u);
}

// Property: any split point of a valid wire message yields the same parse.
class SplitPointProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SplitPointProperty, ResponseParseIsSplitInvariant) {
  const std::string wire =
      "HTTP/1.1 206 Partial Content\r\n"
      "Content-Range: bytes 0-9/100\r\n"
      "Content-Length: 10\r\n\r\n0123456789";
  const std::size_t cut = std::min(GetParam(), wire.size());
  ResponseParser p;
  p.feed(wire.substr(0, cut));
  p.feed(wire.substr(cut));
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.response().body, "0123456789");
  EXPECT_EQ(p.response().headers.get("Content-Range"),
            "bytes 0-9/100");
}

INSTANTIATE_TEST_SUITE_P(Cuts, SplitPointProperty,
                         ::testing::Values(0, 1, 8, 17, 30, 57, 70, 80, 85,
                                           90, 1000));

}  // namespace
}  // namespace idr::http
