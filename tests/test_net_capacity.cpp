#include <cmath>
#include <gtest/gtest.h>

#include "net/capacity_process.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace idr::net {
namespace {

TEST(ConstantCapacity, NeverChanges) {
  util::Rng rng(1);
  ConstantCapacity p(5e6);
  EXPECT_DOUBLE_EQ(p.initial(rng), 5e6);
  const auto change = p.next(rng);
  EXPECT_TRUE(std::isinf(change.dwell));
  EXPECT_DOUBLE_EQ(change.capacity, 5e6);
}

TEST(ConstantCapacity, RejectsNonPositive) {
  EXPECT_THROW(ConstantCapacity(0.0), util::Error);
}

TEST(LognormalAr, StationaryMomentsMatch) {
  util::Rng rng(2);
  LognormalArCapacity::Params params;
  params.mean = 2e6;
  params.cv = 0.3;
  params.rho = 0.9;
  params.step = 10.0;
  LognormalArCapacity p(params);
  util::OnlineStats stats;
  stats.add(p.initial(rng));
  for (int i = 0; i < 200000; ++i) stats.add(p.next(rng).capacity);
  EXPECT_NEAR(stats.mean() / 2e6, 1.0, 0.03);
  EXPECT_NEAR(stats.cv(), 0.3, 0.03);
}

TEST(LognormalAr, DwellIsStep) {
  util::Rng rng(3);
  LognormalArCapacity::Params params;
  params.mean = 1e6;
  params.cv = 0.2;
  params.step = 30.0;
  LognormalArCapacity p(params);
  p.initial(rng);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(p.next(rng).dwell, 30.0);
  }
}

TEST(LognormalAr, ZeroCvIsConstant) {
  util::Rng rng(4);
  LognormalArCapacity::Params params;
  params.mean = 1e6;
  params.cv = 0.0;
  LognormalArCapacity p(params);
  EXPECT_DOUBLE_EQ(p.initial(rng), 1e6);
  const auto change = p.next(rng);
  EXPECT_TRUE(std::isinf(change.dwell));
}

TEST(LognormalAr, FloorRespected) {
  util::Rng rng(5);
  LognormalArCapacity::Params params;
  params.mean = 1e6;
  params.cv = 2.0;  // wild swings
  params.rho = 0.0;
  params.floor = 1e5;
  LognormalArCapacity p(params);
  double min_seen = p.initial(rng);
  for (int i = 0; i < 50000; ++i) {
    min_seen = std::min(min_seen, p.next(rng).capacity);
  }
  EXPECT_GE(min_seen, 1e5);
}

TEST(LognormalAr, HighRhoIsPersistent) {
  // Consecutive samples under rho=0.99 should be far more correlated than
  // under rho=0.
  auto lag1_corr = [](double rho, std::uint64_t seed) {
    util::Rng rng(seed);
    LognormalArCapacity::Params params;
    params.mean = 1e6;
    params.cv = 0.4;
    params.rho = rho;
    LognormalArCapacity p(params);
    std::vector<double> a, b;
    double prev = p.initial(rng);
    for (int i = 0; i < 20000; ++i) {
      const double cur = p.next(rng).capacity;
      a.push_back(prev);
      b.push_back(cur);
      prev = cur;
    }
    return util::pearson_correlation(a, b);
  };
  EXPECT_GT(lag1_corr(0.99, 6), 0.9);
  EXPECT_LT(std::abs(lag1_corr(0.0, 7)), 0.05);
}

TEST(MarkovJump, AlternatesStates) {
  util::Rng rng(8);
  MarkovJumpCapacity::Params params;
  params.base = 4e6;
  params.degraded_multiplier = 0.25;
  params.mean_normal_dwell = 100.0;
  params.mean_degraded_dwell = 10.0;
  MarkovJumpCapacity p(params);
  EXPECT_DOUBLE_EQ(p.initial(rng), 4e6);
  // States must strictly alternate: degraded, normal, degraded, ...
  for (int i = 0; i < 20; ++i) {
    const auto down = p.next(rng);
    EXPECT_DOUBLE_EQ(down.capacity, 1e6);
    const auto up = p.next(rng);
    EXPECT_DOUBLE_EQ(up.capacity, 4e6);
  }
}

TEST(MarkovJump, DutyCycleMatchesDwells) {
  util::Rng rng(9);
  MarkovJumpCapacity::Params params;
  params.base = 1.0;
  params.degraded_multiplier = 0.5;
  params.mean_normal_dwell = 90.0;
  params.mean_degraded_dwell = 10.0;
  MarkovJumpCapacity p(params);
  p.initial(rng);
  double normal_time = 0.0, degraded_time = 0.0;
  bool degraded_next = true;
  for (int i = 0; i < 100000; ++i) {
    const auto change = p.next(rng);
    // The dwell belongs to the state we were in BEFORE the change.
    (degraded_next ? normal_time : degraded_time) += change.dwell;
    degraded_next = !degraded_next;
  }
  EXPECT_NEAR(degraded_time / (normal_time + degraded_time), 0.1, 0.01);
}

TEST(Modulated, CombinesCarrierAndJumps) {
  util::Rng rng(10);
  auto carrier = std::make_unique<ConstantCapacity>(8e6);
  MarkovJumpCapacity::Params j;
  j.base = 1.0;
  j.degraded_multiplier = 0.25;
  j.mean_normal_dwell = 50.0;
  j.mean_degraded_dwell = 5.0;
  ModulatedCapacity p(std::move(carrier),
                      std::make_unique<MarkovJumpCapacity>(j), 1.0);
  EXPECT_DOUBLE_EQ(p.initial(rng), 8e6);
  // Every emitted capacity is either full or quartered.
  for (int i = 0; i < 200; ++i) {
    const auto change = p.next(rng);
    EXPECT_TRUE(change.capacity == 8e6 || change.capacity == 2e6)
        << change.capacity;
    EXPECT_GT(change.dwell, 0.0);
  }
}

TEST(Modulated, BothConstantGoesQuiescent) {
  util::Rng rng(11);
  ModulatedCapacity p(std::make_unique<ConstantCapacity>(1e6),
                      std::make_unique<ConstantCapacity>(2.0), 2.0);
  EXPECT_DOUBLE_EQ(p.initial(rng), 1e6);
  EXPECT_TRUE(std::isinf(p.next(rng).dwell));
}

TEST(Modulated, EventTimesInterleave) {
  // Carrier steps every 10 s; modulator jumps at exponential times. The
  // merged stream must emit the carrier changes at cumulative times that
  // are multiples of 10.
  util::Rng rng(12);
  LognormalArCapacity::Params c;
  c.mean = 1e6;
  c.cv = 0.3;
  c.step = 10.0;
  MarkovJumpCapacity::Params j;
  j.base = 1.0;
  j.degraded_multiplier = 0.5;
  j.mean_normal_dwell = 37.0;
  j.mean_degraded_dwell = 3.0;
  ModulatedCapacity p(std::make_unique<LognormalArCapacity>(c),
                      std::make_unique<MarkovJumpCapacity>(j), 1.0);
  p.initial(rng);
  double t = 0.0;
  int carrier_changes = 0;
  for (int i = 0; i < 500; ++i) {
    const auto change = p.next(rng);
    t += change.dwell;
    const double mod10 = std::fmod(t, 10.0);
    if (mod10 < 1e-6 || mod10 > 10.0 - 1e-6) ++carrier_changes;
  }
  // The carrier contributes one event every 10 s (rate 0.1/s); jump
  // transitions add roughly 0.05/s, so about two thirds of the merged
  // events land on the 10-second grid.
  EXPECT_GT(carrier_changes, 250);
  EXPECT_LT(carrier_changes, 450);
}

}  // namespace
}  // namespace idr::net
