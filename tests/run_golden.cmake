# Golden-output regression gate: runs a figure/table binary at its seed
# default and byte-compares stdout against the committed snapshot.
#
# stdout is the contract — it carries the figure/table data and must stay
# bitwise stable while faults are disabled (the default). stderr is
# deliberately ignored: it carries the [scheduler] work line, which is
# allowed to move with event-core internals.
#
# Usage: cmake -DBIN=<binary> -DGOLDEN=<snapshot> -P run_golden.cmake
# Refresh a snapshot (after an intended output change): <binary> > <snapshot>

if(NOT DEFINED BIN OR NOT DEFINED GOLDEN)
  message(FATAL_ERROR "run_golden.cmake requires -DBIN=... and -DGOLDEN=...")
endif()

execute_process(
  COMMAND "${BIN}"
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE ignored_stderr
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} exited with ${rc}")
endif()

file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  # Leave the observed output next to the snapshot name for a quick diff.
  get_filename_component(name "${GOLDEN}" NAME_WE)
  set(observed "${CMAKE_CURRENT_BINARY_DIR}/${name}.observed.txt")
  file(WRITE "${observed}" "${actual}")
  message(FATAL_ERROR
      "stdout diverged from golden snapshot ${GOLDEN}\n"
      "observed output written to ${observed}\n"
      "diff: diff ${GOLDEN} ${observed}\n"
      "If the change is intended, regenerate: ${BIN} > ${GOLDEN}")
endif()
