#include "util/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::util {
namespace {

TEST(OnlineStats, EmptyIsSafe) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.rms(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.rms(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, RmsMatchesDefinition) {
  OnlineStats s;
  double sum_sq = 0.0;
  for (double x : {1.5, -2.0, 3.25, 0.0, -1.0}) {
    s.add(x);
    sum_sq += x * x;
  }
  EXPECT_NEAR(s.rms(), std::sqrt(sum_sq / 5.0), 1e-12);
}

TEST(OnlineStats, MergeMatchesSequential) {
  Rng rng(7);
  OnlineStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_NEAR(a.rms(), all.rms(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(2.0);
  OnlineStats a_copy = a;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(OnlineStats, CvZeroMeanIsZero) {
  OnlineStats s;
  s.add(1.0);
  s.add(-1.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(SampleSet, QuantilesExact) {
  SampleSet s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 20.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.125), 15.0);  // interpolated
}

TEST(SampleSet, MedianEvenCount) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
}

TEST(SampleSet, AddAfterQuantileKeepsConsistency) {
  SampleSet s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(9.0);  // mutation after a sorted read
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SampleSet, Fractions) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.fraction_in(0.0, 50.0), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_below(10.0), 0.1);
  EXPECT_DOUBLE_EQ(s.fraction_in(90.0, 1000.0), 0.1);
  EXPECT_DOUBLE_EQ(s.fraction_below(-1.0), 0.0);
}

TEST(SampleSet, QuantileOutOfRangeThrows) {
  SampleSet s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(1.5), Error);
  EXPECT_THROW(s.quantile(-0.1), Error);
}

TEST(SampleSet, EmptyQuantileThrows) {
  SampleSet s;
  EXPECT_THROW(s.quantile(0.5), Error);
  EXPECT_THROW(s.min(), Error);
}

TEST(Regression, KnownSlope) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 5, 7, 9};  // slope 2
  EXPECT_NEAR(linear_regression_slope(x, y), 2.0, 1e-12);
}

TEST(Regression, FlatSeriesHasZeroSlope) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {5, 5, 5, 5};
  EXPECT_NEAR(linear_regression_slope(x, y), 0.0, 1e-12);
}

TEST(Regression, DegenerateReturnsNaN) {
  EXPECT_TRUE(std::isnan(linear_regression_slope({1.0}, {2.0})));
  EXPECT_TRUE(std::isnan(linear_regression_slope({1.0, 1.0}, {2.0, 3.0})));
}

TEST(Correlation, PerfectPositiveAndNegative) {
  const std::vector<double> x = {1, 2, 3, 4};
  EXPECT_NEAR(pearson_correlation(x, {2, 4, 6, 8}), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Correlation, SpearmanIsRankBased) {
  // Monotone but nonlinear: Pearson < 1, Spearman == 1.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_LT(pearson_correlation(x, y), 1.0);
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman_correlation(x, y), 1.0, 1e-12);
}

TEST(Correlation, SizeMismatchThrows) {
  EXPECT_THROW(pearson_correlation({1.0}, {1.0, 2.0}), Error);
}

// Property sweep: merge(any split) == sequential accumulation.
class MergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MergeProperty, SplitInvariance) {
  const int split = GetParam();
  Rng rng(1234 + static_cast<std::uint64_t>(split));
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.lognormal_mean_cv(2.0, 0.7));
  OnlineStats whole, left, right;
  for (int i = 0; i < 500; ++i) {
    whole.add(xs[static_cast<std::size_t>(i)]);
    (i < split ? left : right).add(xs[static_cast<std::size_t>(i)]);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Splits, MergeProperty,
                         ::testing::Values(0, 1, 100, 250, 499, 500));

}  // namespace
}  // namespace idr::util
