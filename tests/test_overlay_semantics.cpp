// Focused tests for the transfer-engine semantics added for methodology
// fidelity: warm (keep-alive) connections, persistent upstream relays,
// setup jitter, byte-inflation efficiency, and the probe race's
// steady-phase metric.
#include <cmath>
#include <gtest/gtest.h>
#include <optional>

#include "core/probe_race.hpp"
#include "overlay/transfer_engine.hpp"
#include "util/error.hpp"

namespace idr::overlay {
namespace {

using util::mbps;
using util::milliseconds;

struct World {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<flow::FlowSimulator> fsim;
  std::optional<WebServerModel> server;
  std::optional<TransferEngine> engine;
  net::NodeId server_node, gw, client, relay;

  World() {
    server_node = topo.add_node("server", false);
    gw = topo.add_node("gw");
    client = topo.add_node("client", false);
    relay = topo.add_node("relay", false);
    topo.add_link(server_node, gw, mbps(2.0), milliseconds(80));
    topo.add_link(gw, client, mbps(50), milliseconds(5));
    topo.add_link(server_node, relay, mbps(40), milliseconds(20));
    topo.add_link(relay, gw, mbps(8.0), milliseconds(80));
    fsim.emplace(sim, topo, util::Rng(11));
    server.emplace(server_node, "server");
    server->add_resource("/f", 1.0e6);
    engine.emplace(*fsim);
  }

  TransferResult run(TransferRequest req) {
    std::optional<TransferResult> result;
    engine->begin(req, [&](const TransferResult& r) { result = r; });
    sim.run();
    return *result;
  }

  TransferRequest request(bool via_relay, bool warm) {
    TransferRequest req;
    req.client = client;
    req.server = &*server;
    req.resource = "/f";
    if (via_relay) req.relay = relay;
    req.warm_connection = warm;
    return req;
  }
};

TEST(WarmConnection, FasterThanColdOnDirectPath) {
  World w1, w2;
  const TransferResult cold = w1.run(w1.request(false, false));
  const TransferResult warm = w2.run(w2.request(false, true));
  ASSERT_TRUE(cold.ok && warm.ok);
  // Warm skips the handshakes and the slow-start ramp.
  EXPECT_LT(warm.elapsed(), cold.elapsed());
  // Drain time alone (1 MB at 250 KB/s = 4 s) dominates the warm case.
  EXPECT_NEAR(warm.elapsed(), 4.0, 0.5);
}

TEST(WarmConnection, FasterThanColdViaRelay) {
  World w1, w2;
  const TransferResult cold = w1.run(w1.request(true, false));
  const TransferResult warm = w2.run(w2.request(true, true));
  ASSERT_TRUE(cold.ok && warm.ok);
  EXPECT_LT(warm.elapsed(), cold.elapsed());
}

TEST(PersistentUpstream, SavesSetupLatency) {
  World w1, w2;
  RelayParams cold_params;
  cold_params.persistent_upstream = false;
  w1.engine->set_relay_params(w1.relay, cold_params);
  RelayParams warm_params;
  warm_params.persistent_upstream = true;
  w2.engine->set_relay_params(w2.relay, warm_params);
  const TransferResult cold = w1.run(w1.request(true, false));
  const TransferResult persistent = w2.run(w2.request(true, false));
  ASSERT_TRUE(cold.ok && persistent.ok);
  // 1.5 upstream RTTs saved (~60 ms here).
  EXPECT_LT(persistent.elapsed(), cold.elapsed());
}

TEST(Efficiency, InflatesNetworkBytesNotGoodput) {
  World w1, w2;
  RelayParams lossless;
  lossless.efficiency = 1.0;
  w1.engine->set_relay_params(w1.relay, lossless);
  RelayParams half;
  half.efficiency = 0.5;
  w2.engine->set_relay_params(w2.relay, half);
  const TransferResult full = w1.run(w1.request(true, false));
  const TransferResult padded = w2.run(w2.request(true, false));
  ASSERT_TRUE(full.ok && padded.ok);
  // Both report the same delivered bytes...
  EXPECT_DOUBLE_EQ(full.bytes, padded.bytes);
  // ...but the 50 %-efficient relay moved twice the data: one extra
  // megabyte at the 1 MB/s bottleneck, so about one extra second on top
  // of setup + slow start.
  EXPECT_GT(padded.elapsed(), full.elapsed() + 0.8);
}

TEST(SetupJitter, BoundedAndDeterministicPerSeed) {
  auto elapsed_with_jitter = [](std::uint64_t seed) {
    sim::Simulator sim;
    net::Topology topo;
    const auto server_node = topo.add_node("server", false);
    const auto client = topo.add_node("client", false);
    topo.add_link(server_node, client, mbps(8.0), milliseconds(50));
    flow::FlowSimulator fsim(sim, topo, util::Rng(seed));
    WebServerModel server(server_node, "s");
    server.add_resource("/f", 1e5);
    TransferEngine engine(fsim);
    engine.set_setup_jitter(0.5);
    std::optional<TransferResult> result;
    TransferRequest req;
    req.client = client;
    req.server = &server;
    req.resource = "/f";
    engine.begin(req, [&](const TransferResult& r) { result = r; });
    sim.run();
    return result->elapsed();
  };
  const double a = elapsed_with_jitter(42);
  const double b = elapsed_with_jitter(42);
  const double c = elapsed_with_jitter(43);
  EXPECT_DOUBLE_EQ(a, b);  // same seed, same jitter
  EXPECT_NE(a, c);         // different seed, different draw
}

TEST(SetupJitter, ZeroDisablesAndNegativeThrows) {
  World w;
  EXPECT_NO_THROW(w.engine->set_setup_jitter(0.0));
  EXPECT_THROW(w.engine->set_setup_jitter(-0.1), util::Error);
}

TEST(SteadyThroughput, ExcludesProbePhase) {
  World w;
  core::RaceSpec spec;
  spec.client = w.client;
  spec.server = &*w.server;
  spec.resource = "/f";
  spec.probe_bytes = 2e5;
  spec.candidate_relays = {w.relay};
  std::optional<core::RaceOutcome> outcome;
  core::start_probe_race(*w.engine, spec,
                         [&](const core::RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_GT(outcome->remainder_bytes, 0.0);
  EXPECT_DOUBLE_EQ(outcome->remainder_bytes, 1.0e6 - 2e5);
  // The steady phase is free of n-way probe contention and cold-start,
  // so it must beat the whole-operation number.
  EXPECT_GT(outcome->steady_throughput(),
            outcome->selected_throughput());
}

TEST(SteadyThroughput, FallsBackWhenProbeCoversFile) {
  World w;
  core::RaceSpec spec;
  spec.client = w.client;
  spec.server = &*w.server;
  spec.resource = "/f";
  spec.probe_bytes = 5e6;  // > 1 MB file
  spec.candidate_relays = {w.relay};
  std::optional<core::RaceOutcome> outcome;
  core::start_probe_race(*w.engine, spec,
                         [&](const core::RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_DOUBLE_EQ(outcome->remainder_bytes, 0.0);
  EXPECT_DOUBLE_EQ(outcome->steady_throughput(),
                   outcome->selected_throughput());
}

}  // namespace
}  // namespace idr::overlay
