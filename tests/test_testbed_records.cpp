// Unit tests for the record aggregations and CSV export — built from
// hand-crafted sessions with known answers.
#include <gtest/gtest.h>

#include "testbed/export.hpp"
#include "testbed/parallel.hpp"
#include "testbed/records.hpp"
#include "util/error.hpp"

namespace idr::testbed {
namespace {

TransferObservation obs(const std::string& client,
                        const std::string& session_relay, bool indirect,
                        double selected_mbps, double direct_mbps,
                        double t = 0.0) {
  TransferObservation o;
  o.client = client;
  o.session_relay = session_relay;
  o.start_time = t;
  o.ok = true;
  o.chose_indirect = indirect;
  o.chosen_relay = indirect ? session_relay : "";
  o.selected_rate = util::mbps(selected_mbps);
  o.selected_steady_rate = util::mbps(selected_mbps);
  o.direct_rate = util::mbps(direct_mbps);
  o.improvement_pct = core::improvement_pct(o.selected_rate, o.direct_rate);
  o.improvement_steady_pct = o.improvement_pct;
  return o;
}

SessionResult session(const std::string& client, const std::string& relay,
                      std::vector<TransferObservation> transfers) {
  SessionResult s;
  s.client = client;
  s.session_relay = relay;
  for (const auto& t : transfers) s.direct_rate_stats.add(t.direct_rate);
  s.transfers = std::move(transfers);
  return s;
}

TEST(Records, SessionAccounting) {
  SessionResult s = session("C", "R",
                            {obs("C", "R", true, 2.0, 1.0),
                             obs("C", "R", false, 1.0, 1.0),
                             obs("C", "R", true, 1.5, 1.0),
                             obs("C", "R", false, 0.9, 1.0)});
  EXPECT_EQ(s.indirect_count(), 2u);
  EXPECT_DOUBLE_EQ(s.utilization(), 0.5);
  EXPECT_EQ(s.category(), core::ThroughputCategory::Low);
  EXPECT_EQ(s.variability(), core::VariabilityClass::Low);
}

TEST(Records, FailedTransfersExcluded) {
  TransferObservation bad = obs("C", "R", true, 2.0, 1.0);
  bad.ok = false;
  SessionResult s = session("C", "R", {bad, obs("C", "R", true, 2.0, 1.0)});
  EXPECT_EQ(s.indirect_count(), 1u);
  EXPECT_EQ(indirect_improvements({s}).size(), 1u);
}

TEST(Records, IndirectImprovementsOnlyIndirect) {
  SessionResult s = session("C", "R",
                            {obs("C", "R", true, 2.0, 1.0),
                             obs("C", "R", false, 1.0, 1.0)});
  const auto imps = indirect_improvements({s});
  ASSERT_EQ(imps.size(), 1u);
  EXPECT_DOUBLE_EQ(imps[0], 100.0);
}

TEST(Records, RatePairsMatchFilter) {
  SessionResult low = session("Low", "R", {obs("Low", "R", true, 2.0, 1.0)});
  SessionResult high = session(
      "High", "R", {obs("High", "R", true, 5.0, 4.0)});
  const auto all = indirect_rate_pairs({low, high});
  EXPECT_EQ(all.size(), 2u);
  const auto only_low = indirect_rate_pairs_if(
      {low, high}, [](const SessionResult& s) {
        return s.category() == core::ThroughputCategory::Low;
      });
  ASSERT_EQ(only_low.size(), 1u);
  EXPECT_DOUBLE_EQ(only_low[0].first, util::mbps(2.0));
}

TEST(Records, TopRelaysSortedAndTruncated) {
  std::vector<SessionResult> sessions;
  sessions.push_back(session("C", "A", {obs("C", "A", true, 2, 1),
                                        obs("C", "A", false, 1, 1)}));
  sessions.push_back(session("C", "B", {obs("C", "B", true, 2, 1),
                                        obs("C", "B", true, 2, 1)}));
  sessions.push_back(session("C", "D", {obs("C", "D", false, 1, 1),
                                        obs("C", "D", false, 1, 1)}));
  const auto tops = top_relays_per_client(sessions, 2);
  ASSERT_EQ(tops.size(), 1u);
  ASSERT_EQ(tops[0].top.size(), 2u);
  EXPECT_EQ(tops[0].top[0].relay, "B");
  EXPECT_DOUBLE_EQ(tops[0].top[0].utilization, 1.0);
  EXPECT_EQ(tops[0].top[1].relay, "A");
}

TEST(Records, RelayUtilizationAggregatesAcrossClients) {
  std::vector<SessionResult> sessions;
  // Relay R: client1 1/2 chosen, client2 2/2 chosen -> avg 3/4.
  sessions.push_back(session("C1", "R", {obs("C1", "R", true, 2, 1),
                                         obs("C1", "R", false, 1, 1)}));
  sessions.push_back(session("C2", "R", {obs("C2", "R", true, 2, 1),
                                         obs("C2", "R", true, 2, 1)}));
  const auto rows = relay_utilization_summary(sessions);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].average, 0.75);
  EXPECT_EQ(rows[0].sessions, 2u);
  // Stdev over per-session utilizations {0.5, 1.0}.
  EXPECT_NEAR(rows[0].stdev, 0.25, 1e-12);
  EXPECT_NEAR(rows[0].rms, std::sqrt((0.25 + 1.0) / 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(overall_utilization(sessions), 0.75);
}

TEST(Records, TimeseriesSortedByTime) {
  SessionResult s = session("C", "R",
                            {obs("C", "R", true, 2.0, 1.0, 30.0),
                             obs("C", "R", true, 1.5, 1.0, 10.0),
                             obs("C", "R", false, 1.0, 1.0, 20.0)});
  const auto samples = indirect_throughput_timeseries({s});
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].time, 10.0);
  EXPECT_DOUBLE_EQ(samples[1].time, 30.0);
  EXPECT_DOUBLE_EQ(samples[0].indirect_mbps, 1.5);
}

TEST(Records, ScatterPointsCarryDirectThroughput) {
  SessionResult s = session("C", "R", {obs("C", "R", true, 3.0, 1.5)});
  const auto points = improvement_vs_throughput_points({s});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].direct_mbps, 1.5);
  EXPECT_DOUBLE_EQ(points[0].improvement_pct, 100.0);
  EXPECT_EQ(points[0].relay, "R");
}

TEST(Export, ObservationsCsvShape) {
  SessionResult s = session("C", "R",
                            {obs("C", "R", true, 2.0, 1.0),
                             obs("C", "R", false, 1.0, 1.0)});
  const std::string csv = observations_csv({s}).str();
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("client,session_relay"), std::string::npos);
  EXPECT_NE(csv.find("100.00"), std::string::npos);  // the improvement
}

TEST(Export, RelayUtilizationCsv) {
  SessionResult s = session("C", "R", {obs("C", "R", true, 2.0, 1.0)});
  const std::string csv = relay_utilization_csv({s}).str();
  EXPECT_NE(csv.find("R,1.0000"), std::string::npos);
}

TEST(Parallel, MapPreservesOrder) {
  const auto out = parallel_map<int>(
      100, 4, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i * i));
  }
}

TEST(Parallel, SerialAndParallelAgree) {
  auto task = [](std::size_t i) { return static_cast<int>(i * 7 + 1); };
  const auto serial = parallel_map<int>(50, 1, task);
  const auto parallel = parallel_map<int>(50, 8, task);
  EXPECT_EQ(serial, parallel);
}

TEST(Parallel, RethrowsLowestIndexError) {
  EXPECT_THROW(
      parallel_for(20, 4,
                   [](std::size_t i) {
                     if (i % 5 == 0) {
                       throw util::Error("boom " + std::to_string(i));
                     }
                   }),
      util::Error);
  try {
    parallel_for(20, 4, [](std::size_t i) {
      if (i % 5 == 0) throw util::Error("boom " + std::to_string(i));
    });
    FAIL() << "expected throw";
  } catch (const util::Error& e) {
    EXPECT_STREQ(e.what(), "boom 0");
  }
}

TEST(Parallel, ZeroTasksIsNoop) {
  EXPECT_NO_THROW(parallel_for(0, 4, [](std::size_t) { FAIL(); }));
}

TEST(Parallel, ResolveThreads) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace idr::testbed
