// Adversarial parser corpus: a relay parses bytes from untrusted peers on
// both legs, so every hostile shape here must land in ParseState::Error
// (deterministically, at the bound) rather than in unbounded buffering,
// mis-framing, or a crash.
#include "http/parser.hpp"

#include <gtest/gtest.h>

#include <string>

#include "http/traceparent.hpp"

namespace idr::http {
namespace {

ParserLimits tiny_limits() {
  ParserLimits limits;
  limits.max_start_line_bytes = 64;
  limits.max_header_bytes = 256;
  limits.max_body_bytes = 1024;
  return limits;
}

TEST(HostileParser, OversizedStartLineRejectedAtTheBound) {
  RequestParser p;
  p.set_limits(tiny_limits());
  // No newline ever arrives: the parser must give up once the start line
  // crosses its bound, not buffer the stream forever.
  const std::string flood = "GET /" + std::string(500, 'a');
  const std::size_t consumed = p.feed(flood);
  EXPECT_EQ(p.state(), ParseState::Error);
  EXPECT_LE(consumed, tiny_limits().max_start_line_bytes + 1);
  EXPECT_FALSE(p.error().empty());
}

TEST(HostileParser, OversizedStartLineDefaultLimit) {
  RequestParser p;
  std::string flood = "GET /";
  flood.append(10 * 1024, 'a');  // > default 8 KiB, no newline
  p.feed(flood);
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(HostileParser, OversizedHeaderBlockRejectedAtTheBound) {
  RequestParser p;
  p.set_limits(tiny_limits());
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 40; ++i) {
    wire += "X-Pad-" + std::to_string(i) + ": " + std::string(20, 'y') +
            "\r\n";
  }
  const std::size_t consumed = p.feed(wire);
  EXPECT_EQ(p.state(), ParseState::Error);
  EXPECT_LE(consumed, tiny_limits().max_header_bytes + 1);
}

TEST(HostileParser, NulByteInHeadersRejected) {
  for (const std::string& wire :
       {std::string("GET /\0 HTTP/1.1\r\n\r\n", 19),
        std::string("GET / HTTP/1.1\r\nHost: a\0b\r\n\r\n", 29)}) {
    RequestParser p;
    p.feed(wire);
    EXPECT_EQ(p.state(), ParseState::Error);
  }
}

TEST(HostileParser, NulBytesInBodyAreData) {
  // Binary bodies are legitimate; only the header block is text.
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: 4\r\n\r\n");
  const std::string body("a\0b\0", 4);
  p.feed(body);
  ASSERT_EQ(p.state(), ParseState::Complete);
  EXPECT_EQ(p.request().body, body);
}

TEST(HostileParser, ContentLengthBeyondBodyLimitRejected) {
  RequestParser p;
  p.set_limits(tiny_limits());
  p.feed("POST / HTTP/1.1\r\nContent-Length: 2048\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(HostileParser, ConflictingDuplicateContentLengthRejected) {
  // The classic request-smuggling shape: two Content-Length headers that
  // disagree. Whichever one a naive hop honours, the other desyncs it.
  RequestParser p;
  p.feed(
      "POST / HTTP/1.1\r\nContent-Length: 10\r\nContent-Length: 2\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(HostileParser, AgreeingDuplicateContentLengthAccepted) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Body);
  p.feed("abc");
  EXPECT_EQ(p.state(), ParseState::Complete);
}

TEST(HostileParser, OverflowingContentLengthRejected) {
  RequestParser p;
  // One past UINT64_MAX: must fail integer parsing, not wrap.
  p.feed(
      "POST / HTTP/1.1\r\nContent-Length: 18446744073709551616\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(HostileParser, ChunkedFramingRejectedBeforeAnyChunk) {
  // A truncated chunked body can never desync the relay because chunked
  // framing is refused at the header stage, in both directions.
  RequestParser rq;
  rq.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nab");
  EXPECT_EQ(rq.state(), ParseState::Error);

  ResponseParser rp;
  rp.feed("HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nab");
  EXPECT_EQ(rp.state(), ParseState::Error);
}

TEST(HostileParser, SlowLorisIsCutOffAtTheHeaderBound) {
  // One byte per feed, never finishing the header block — the slow-loris
  // shape. Memory stays bounded because the parser errors at the limit.
  RequestParser p;
  p.set_limits(tiny_limits());
  p.feed("GET / HTTP/1.1\r\n");
  std::size_t fed = 0;
  while (p.state() == ParseState::Headers && fed < 10000) {
    p.feed("x");
    ++fed;
  }
  EXPECT_EQ(p.state(), ParseState::Error);
  EXPECT_LE(fed, tiny_limits().max_header_bytes + 1);
}

TEST(HostileParser, SlowButValidStreamStillCompletes) {
  // The idle-timeout layer, not the parser, is what kills slow-loris
  // connections carrying *valid* bytes; the parser itself must accept an
  // arbitrarily slow well-formed message.
  RequestParser p;
  p.set_limits(tiny_limits());
  const std::string wire = "GET /f HTTP/1.1\r\nHost: h\r\n\r\n";
  for (char ch : wire) {
    ASSERT_NE(p.state(), ParseState::Error);
    p.feed(std::string_view(&ch, 1));
  }
  EXPECT_EQ(p.state(), ParseState::Complete);
}

TEST(HostileParser, ErrorStateIsSticky) {
  RequestParser p;
  p.feed("BREW / HTTP/1.1\r\n\r\n");
  ASSERT_EQ(p.state(), ParseState::Error);
  // Further bytes are not consumed and cannot resurrect the parse.
  EXPECT_EQ(p.feed("GET / HTTP/1.1\r\n\r\n"), 0u);
  EXPECT_EQ(p.state(), ParseState::Error);
  // reset() is the only way back.
  p.reset();
  p.feed("GET / HTTP/1.1\r\n\r\n");
  EXPECT_EQ(p.state(), ParseState::Complete);
}

TEST(HostileParser, ResponseParserSharesTheLimits) {
  ResponseParser p;
  p.set_limits(tiny_limits());
  std::string wire = "HTTP/1.1 200 OK\r\n";
  wire.append(500, 'z');
  p.feed(wire);
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(HostileParser, LimitsSurviveReset) {
  RequestParser p;
  p.set_limits(tiny_limits());
  p.feed("GET /" + std::string(500, 'a'));
  ASSERT_EQ(p.state(), ParseState::Error);
  p.reset();
  EXPECT_EQ(p.limits().max_start_line_bytes,
            tiny_limits().max_start_line_bytes);
  p.feed("GET /" + std::string(500, 'b'));
  EXPECT_EQ(p.state(), ParseState::Error);
}

TEST(HostileTraceparent, MalformedHeadersParseToNothingNotACrash) {
  // A hostile traceparent must never break a transfer: every deviation
  // from the W3C grammar yields nullopt and the hop proceeds untraced.
  const char* corpus[] = {
      // wrong length
      "",
      "00",
      "00-0000000000000000000000000000000a-000000000000000b-0",
      "00-0000000000000000000000000000000a-000000000000000b-012",
      "00-0000000000000000000000000000000a-000000000000000b-01 ",
      // uppercase hex is invalid on the wire
      "00-0000000000000000000000000000000A-000000000000000b-01",
      "00-0000000000000000000000000000000a-000000000000000B-01",
      "0A-0000000000000000000000000000000a-000000000000000b-01",
      // dashes in the wrong positions
      "00_0000000000000000000000000000000a-000000000000000b-01",
      "00-0000000000000000000000000000000a_000000000000000b-01",
      "00-0000000000000000000000000000000a-000000000000000b_01",
      // non-hex filler
      "00-000000000000000000000000000000zz-000000000000000b-01",
      "00-0000000000000000000000000000000a-00000000000000zz-01",
      "00-0000000000000000000000000000000a-000000000000000b-zz",
      // the spec's explicit invalid values
      "00-00000000000000000000000000000000-000000000000000b-01",
      "00-0000000000000000000000000000000a-0000000000000000-01",
      "ff-0000000000000000000000000000000a-000000000000000b-01",
      // a 128-bit trace id whose halves XOR to zero folds to "absent"
      "00-000000000000000a000000000000000a-000000000000000b-01",
  };
  for (const char* value : corpus) {
    EXPECT_FALSE(parse_traceparent(value).has_value()) << value;
  }
  // The well-formed neighbour of the corpus still parses, so the
  // rejections above are the grammar's doing, not a dead parser.
  EXPECT_TRUE(parse_traceparent(
                  "00-0000000000000000000000000000000a-"
                  "000000000000000b-01")
                  .has_value());
}

}  // namespace
}  // namespace idr::http
