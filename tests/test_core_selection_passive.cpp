// The passive estimation plane and the policies built on it: pinned
// expected values for the decayed-EWMA math, staleness monotonicity, the
// race/passive freshness split, best_fresh_estimate's selection rule, and
// utilization-cap enforcement under randomized update streams.
#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <map>
#include <memory>
#include <set>

#include "core/relay_stats.hpp"
#include "core/selection_policy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::core {
namespace {

RelayStatsTable make_table(std::size_t n) {
  RelayStatsTable table;
  for (std::size_t i = 0; i < n; ++i) {
    table.add_relay(static_cast<net::NodeId>(i + 10),
                    "relay" + std::to_string(i));
  }
  return table;
}

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(PassiveEstimate, FirstSampleIsTheEstimate) {
  RelayStatsTable table = make_table(1);
  EXPECT_FALSE(table.has_estimate(10));
  EXPECT_DOUBLE_EQ(table.estimate(10), 0.0);
  EXPECT_EQ(table.estimate_age(10, 1000.0), kInf);
  EXPECT_EQ(table.validated_age(10, 1000.0), kInf);

  table.note_throughput(10, 5.0e5, 100.0, EstimateSource::Race);
  EXPECT_TRUE(table.has_estimate(10));
  EXPECT_DOUBLE_EQ(table.estimate(10), 5.0e5);
  EXPECT_DOUBLE_EQ(table.estimate_age(10, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(table.validated_age(10, 100.0), 0.0);
  EXPECT_EQ(table.record(10).estimate_samples, 1u);
  EXPECT_EQ(table.record(10).validated_samples, 1u);
}

TEST(PassiveEstimate, SameInstantSamplesAverage) {
  RelayStatsTable table = make_table(1);
  table.note_throughput(10, 100.0, 50.0, EstimateSource::Race);
  table.note_throughput(10, 200.0, 50.0, EstimateSource::Race);
  // dt = 0 => no decay: plain running average.
  EXPECT_DOUBLE_EQ(table.estimate(10), 150.0);
  table.note_throughput(10, 600.0, 50.0, EstimateSource::Race);
  EXPECT_DOUBLE_EQ(table.estimate(10), 300.0);
}

TEST(PassiveEstimate, HalfLifeDecayPinnedValues) {
  RelayStatsTable table = make_table(1);
  table.set_estimate_half_life(10.0);
  EXPECT_DOUBLE_EQ(table.estimate_half_life(), 10.0);

  // t=0: first sample.
  table.note_throughput(10, 100.0, 0.0, EstimateSource::Race);
  EXPECT_DOUBLE_EQ(table.estimate(10), 100.0);

  // t=10 (exactly one half-life): old weight 1 fades to 0.5, so
  // estimate = (100 * 0.5 + 200) / (0.5 + 1) = 250 / 1.5.
  table.note_throughput(10, 200.0, 10.0, EstimateSource::Race);
  EXPECT_DOUBLE_EQ(table.estimate(10), 250.0 / 1.5);
  EXPECT_DOUBLE_EQ(table.record(10).ewma_weight, 1.5);

  // t=30 (two more half-lives): weight 1.5 fades to 0.375, so
  // estimate = ((250/1.5) * 0.375 + 50) / 1.375.
  table.note_throughput(10, 50.0, 30.0, EstimateSource::Race);
  EXPECT_DOUBLE_EQ(table.estimate(10),
                   ((250.0 / 1.5) * 0.375 + 50.0) / 1.375);
  EXPECT_DOUBLE_EQ(table.record(10).ewma_weight, 1.375);
  EXPECT_EQ(table.record(10).estimate_samples, 3u);
}

TEST(PassiveEstimate, LongGapEffectivelyReplaces) {
  RelayStatsTable table = make_table(1);
  table.set_estimate_half_life(10.0);
  table.note_throughput(10, 1.0e9, 0.0, EstimateSource::Race);
  // 50 half-lives later the old sample's weight is 2^-50 ~ 1e-15.
  table.note_throughput(10, 100.0, 500.0, EstimateSource::Race);
  EXPECT_NEAR(table.estimate(10), 100.0, 1e-3);
}

TEST(PassiveEstimate, ClockMovingBackwardsThrows) {
  RelayStatsTable table = make_table(1);
  table.note_throughput(10, 100.0, 50.0, EstimateSource::Race);
  EXPECT_THROW(table.note_throughput(10, 100.0, 49.0, EstimateSource::Race),
               util::Error);
  EXPECT_THROW(table.note_throughput(10, -1.0, 60.0, EstimateSource::Race),
               util::Error);
}

TEST(PassiveEstimate, AgesAreMonotoneInNow) {
  RelayStatsTable table = make_table(1);
  table.note_throughput(10, 100.0, 100.0, EstimateSource::Race);
  double last_est = -1.0;
  double last_val = -1.0;
  for (double now = 100.0; now <= 1000.0; now += 37.0) {
    const double est = table.estimate_age(10, now);
    const double val = table.validated_age(10, now);
    EXPECT_GT(est, last_est);
    EXPECT_GT(val, last_val);
    last_est = est;
    last_val = val;
  }
}

TEST(PassiveEstimate, PassiveSamplesRefineButNeverRefreshValidation) {
  RelayStatsTable table = make_table(1);
  table.note_throughput(10, 100.0, 0.0, EstimateSource::Race);
  table.note_throughput(10, 300.0, 0.0, EstimateSource::Passive);
  // The value moved (plain average at dt=0)...
  EXPECT_DOUBLE_EQ(table.estimate(10), 200.0);
  // ...but passive observations never renew freshness: only the race at
  // t=0 validates, so validated age tracks t=0 while estimate age tracks
  // the passive update.
  table.note_throughput(10, 200.0, 40.0, EstimateSource::Passive);
  EXPECT_DOUBLE_EQ(table.estimate_age(10, 50.0), 10.0);
  EXPECT_DOUBLE_EQ(table.validated_age(10, 50.0), 50.0);
  EXPECT_EQ(table.record(10).estimate_samples, 3u);
  EXPECT_EQ(table.record(10).validated_samples, 1u);
}

TEST(BestFreshEstimate, PicksHighestFreshNonBlacklisted) {
  RelayStatsTable table = make_table(4);
  // 10: high estimate but stale. 11: fresh, medium. 12: fresh, best but
  // blacklisted. 13: never measured.
  table.note_throughput(10, 900.0, 0.0, EstimateSource::Race);
  table.note_throughput(11, 500.0, 950.0, EstimateSource::Race);
  table.note_throughput(12, 800.0, 960.0, EstimateSource::Race);
  table.note_failure(12, 990.0, 100.0, 100.0);  // blacklisted until 1090

  EXPECT_EQ(table.best_fresh_estimate(1000.0, 100.0), 11u);
  // With a wide-enough freshness window the stale-but-big one wins.
  EXPECT_EQ(table.best_fresh_estimate(1000.0, 2000.0), 10u);
  // Once the blacklist expires the best fresh estimate is 12 again.
  EXPECT_EQ(table.best_fresh_estimate(1100.0, 200.0), 12u);
  // Nothing fresh at all.
  EXPECT_EQ(table.best_fresh_estimate(5000.0, 10.0), net::kInvalidNode);
}

TEST(BestFreshEstimate, PassiveSamplesDontCountAsFresh) {
  RelayStatsTable table = make_table(1);
  table.note_throughput(10, 100.0, 0.0, EstimateSource::Passive);
  // Passive-only history never qualifies: freshness is race-validated.
  EXPECT_EQ(table.best_fresh_estimate(1.0, 1000.0), net::kInvalidNode);
  table.note_throughput(10, 100.0, 2.0, EstimateSource::Race);
  EXPECT_EQ(table.best_fresh_estimate(3.0, 1000.0), 10u);
}

TEST(BestFreshEstimate, TiesBreakToRegistrationOrder) {
  RelayStatsTable table = make_table(3);
  table.note_throughput(11, 100.0, 0.0, EstimateSource::Race);
  table.note_throughput(10, 100.0, 0.0, EstimateSource::Race);
  table.note_throughput(12, 100.0, 0.0, EstimateSource::Race);
  EXPECT_EQ(table.best_fresh_estimate(1.0, 10.0), 10u);
}

TEST(SelectionShare, TracksSelections) {
  RelayStatsTable table = make_table(2);
  EXPECT_DOUBLE_EQ(table.selection_share(10), 0.0);
  table.note_selection(10);
  table.note_selection(10);
  table.note_selection(11);
  EXPECT_EQ(table.total_selections(), 3u);
  EXPECT_DOUBLE_EQ(table.selection_share(10), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(table.selection_share(11), 1.0 / 3.0);
}

TEST(DecideBase, FiltersBlacklistedAndNeverPins) {
  RelayStatsTable table = make_table(4);
  table.note_failure(11, 0.0, 1000.0, 1000.0);
  util::Rng rng(1);
  FullSetPolicy policy;
  const SelectionDecision decision = policy.decide(table, rng, 10.0);
  EXPECT_FALSE(decision.pinned.has_value());
  ASSERT_EQ(decision.candidates.size(), 3u);
  for (net::NodeId id : decision.candidates) EXPECT_NE(id, 11u);
  // Past the penalty the relay is eligible again.
  util::Rng rng2(1);
  EXPECT_EQ(policy.decide(table, rng2, 2000.0).candidates.size(), 4u);
}

TEST(AlwaysRace, MatchesInnerPolicyDraws) {
  RelayStatsTable table = make_table(8);
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  AlwaysRacePolicy wrapped(std::make_unique<UniformRandomSubsetPolicy>(3));
  UniformRandomSubsetPolicy bare(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(wrapped.choose_candidates(table, rng_a),
              bare.choose_candidates(table, rng_b));
  }
  util::Rng rng(1);
  EXPECT_FALSE(wrapped.decide(table, rng, 0.0).pinned.has_value());
  EXPECT_STREQ(wrapped.name(), "always-race");
}

TEST(RaceOnStaleness, PinsWhileFreshRacesWhenStale) {
  RelayStatsTable table = make_table(5);
  RaceOnStalenessPolicy policy(std::make_unique<UniformRandomSubsetPolicy>(2),
                               100.0);
  util::Rng rng(7);

  // No estimates yet: a plain race.
  SelectionDecision d0 = policy.decide(table, rng, 0.0);
  EXPECT_FALSE(d0.pinned.has_value());
  EXPECT_EQ(d0.candidates.size(), 2u);

  // A race win at t=10 makes relay 12 pinnable until t=110.
  table.note_throughput(12, 700.0, 10.0, EstimateSource::Race);
  SelectionDecision d1 = policy.decide(table, rng, 60.0);
  ASSERT_TRUE(d1.pinned.has_value());
  EXPECT_EQ(*d1.pinned, 12u);
  EXPECT_DOUBLE_EQ(d1.pinned_age, 50.0);
  // The fallback candidate set is still drawn.
  EXPECT_EQ(d1.candidates.size(), 2u);

  // Past the threshold the pin expires.
  EXPECT_FALSE(policy.decide(table, rng, 111.0).pinned.has_value());
  EXPECT_STREQ(policy.name(), "race-on-staleness");
}

TEST(RaceOnStaleness, RngConsumptionIndependentOfPinning) {
  // Whether a pin exists must not change how much of the caller's RNG
  // stream a decision consumes — downstream draws would shift otherwise.
  RelayStatsTable fresh = make_table(5);
  fresh.note_throughput(12, 700.0, 0.0, EstimateSource::Race);
  RelayStatsTable stale = make_table(5);

  RaceOnStalenessPolicy policy_a(
      std::make_unique<UniformRandomSubsetPolicy>(2), 100.0);
  RaceOnStalenessPolicy policy_b(
      std::make_unique<UniformRandomSubsetPolicy>(2), 100.0);
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  for (int i = 0; i < 20; ++i) {
    const SelectionDecision da = policy_a.decide(fresh, rng_a, 1.0);
    const SelectionDecision db = policy_b.decide(stale, rng_b, 1.0);
    EXPECT_TRUE(da.pinned.has_value());
    EXPECT_FALSE(db.pinned.has_value());
    EXPECT_EQ(da.candidates, db.candidates);
  }
}

TEST(RaceOnStaleness, NeverPinsBlacklistedRelay) {
  RelayStatsTable table = make_table(3);
  table.note_throughput(11, 900.0, 0.0, EstimateSource::Race);
  table.note_throughput(12, 100.0, 0.0, EstimateSource::Race);
  table.note_failure(11, 1.0, 1000.0, 1000.0);
  RaceOnStalenessPolicy policy(std::make_unique<UniformRandomSubsetPolicy>(1),
                               1000.0);
  util::Rng rng(3);
  const SelectionDecision d = policy.decide(table, rng, 2.0);
  ASSERT_TRUE(d.pinned.has_value());
  EXPECT_EQ(*d.pinned, 12u);  // the lesser-but-clean estimate wins
}

TEST(HybridPassive, PrefersHighEstimates) {
  RelayStatsTable table = make_table(3);
  table.note_throughput(10, 1000.0, 0.0, EstimateSource::Race);
  table.note_throughput(11, 100.0, 0.0, EstimateSource::Race);
  HybridWeightedPassivePolicy policy(1, /*cap=*/1.0, /*floor=*/0.05);
  util::Rng rng(11);
  std::map<net::NodeId, int> counts;
  for (int i = 0; i < 3000; ++i) {
    ++counts[policy.choose_candidates(table, rng).at(0)];
  }
  // Weights: 10 -> 1.05, 11 -> 0.15, 12 (unmeasured) -> 0.05.
  EXPECT_GT(counts[10], counts[11] * 3);
  EXPECT_GT(counts[11], counts[12]);
  EXPECT_GT(counts[12], 0);  // exploration floor keeps it alive
  EXPECT_STREQ(policy.name(), "hybrid-weighted-passive");
}

TEST(HybridPassive, CapEnforcedUnderRandomizedStreams) {
  // Closed loop under a randomized update stream: relay 10 always has a
  // dominating estimate, every draw is recorded as a selection, and
  // estimates jitter randomly — yet 10's share of selections must stay
  // pinned near the cap instead of running away to 100%.
  RelayStatsTable table = make_table(4);
  const double cap = 0.4;
  HybridWeightedPassivePolicy policy(1, cap, 0.05);
  util::Rng rng(123);
  double now = 0.0;
  for (int i = 0; i < 2000; ++i) {
    now += 1.0;
    table.note_throughput(10, 1.0e6 * (1.0 + rng.uniform()), now,
                          EstimateSource::Race);
    table.note_throughput(11, 10.0 * rng.uniform(), now,
                          EstimateSource::Race);
    const auto picks = policy.choose_candidates(table, rng);
    ASSERT_EQ(picks.size(), 1u);
    table.note_selection(picks[0]);
  }
  const double total = static_cast<double>(table.total_selections());
  // One draw of slack: the cap check runs against the pre-draw totals.
  EXPECT_LE(table.record(10).selections / total, cap + 2.0 / total);
  // The cap redistributes, it does not starve: the dominating relay still
  // gets picked up to its cap, and the others absorb the remainder.
  EXPECT_GT(table.record(10).selections / total, cap * 0.8);
  EXPECT_GT(table.record(11).selections, 0u);
  EXPECT_GT(table.record(12).selections, 0u);
  EXPECT_GT(table.record(13).selections, 0u);
}

TEST(HybridPassive, AllCappedFallsBackToUniform) {
  RelayStatsTable table = make_table(2);
  // Both relays above a tiny cap: the weighted draw would see all zeros,
  // which weighted_index resolves as a uniform choice — set size must
  // still be honored.
  for (int i = 0; i < 10; ++i) {
    table.note_selection(10);
    table.note_selection(11);
  }
  HybridWeightedPassivePolicy policy(2, 0.1, 0.05);
  util::Rng rng(5);
  const auto picks = policy.choose_candidates(table, rng);
  EXPECT_EQ(picks.size(), 2u);
  std::set<net::NodeId> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 2u);
}

TEST(NewPolicies, InvalidConstruction) {
  EXPECT_THROW(AlwaysRacePolicy(nullptr), util::Error);
  EXPECT_THROW(RaceOnStalenessPolicy(nullptr, 10.0), util::Error);
  EXPECT_THROW(RaceOnStalenessPolicy(
                   std::make_unique<UniformRandomSubsetPolicy>(1), 0.0),
               util::Error);
  EXPECT_THROW(HybridWeightedPassivePolicy(0), util::Error);
  EXPECT_THROW(HybridWeightedPassivePolicy(1, 0.0), util::Error);
  EXPECT_THROW(HybridWeightedPassivePolicy(1, 1.5), util::Error);
  EXPECT_THROW(HybridWeightedPassivePolicy(1, 0.5, 0.0), util::Error);
  RelayStatsTable table = make_table(1);
  EXPECT_THROW(table.set_estimate_half_life(0.0), util::Error);
  EXPECT_THROW(table.note_throughput(99, 1.0, 0.0, EstimateSource::Race),
               util::Error);
}

}  // namespace
}  // namespace idr::core
