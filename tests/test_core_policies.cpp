#include <algorithm>
#include <functional>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/relay_stats.hpp"
#include "core/selection_policy.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::core {
namespace {

RelayStatsTable make_table(std::size_t n) {
  RelayStatsTable table;
  for (std::size_t i = 0; i < n; ++i) {
    table.add_relay(static_cast<net::NodeId>(i + 10),
                    "relay" + std::to_string(i));
  }
  return table;
}

TEST(RelayStats, RegistrationIdempotent) {
  RelayStatsTable table;
  table.add_relay(5, "a");
  table.add_relay(5, "a-again");
  EXPECT_EQ(table.relay_count(), 1u);
  EXPECT_EQ(table.record(5).name, "a");
  EXPECT_TRUE(table.has_relay(5));
  EXPECT_FALSE(table.has_relay(6));
  EXPECT_THROW(table.record(6), util::Error);
}

TEST(RelayStats, UtilizationRatio) {
  RelayStatsTable table = make_table(1);
  const net::NodeId r = 10;
  EXPECT_DOUBLE_EQ(table.record(r).utilization(), 0.0);
  for (int i = 0; i < 4; ++i) table.note_appearance(r);
  table.note_selection(r);
  EXPECT_DOUBLE_EQ(table.record(r).utilization(), 0.25);
}

TEST(RelayStats, ImprovementAccumulates) {
  RelayStatsTable table = make_table(1);
  table.note_improvement(10, 50.0);
  table.note_improvement(10, 70.0);
  EXPECT_EQ(table.record(10).improvement_pct.count(), 2u);
  EXPECT_DOUBLE_EQ(table.record(10).improvement_pct.mean(), 60.0);
}

TEST(RelayStats, SortedByUtilization) {
  RelayStatsTable table = make_table(3);
  // relay 10: 1/2, relay 11: 1/1, relay 12: 0/1
  table.note_appearance(10);
  table.note_appearance(10);
  table.note_selection(10);
  table.note_appearance(11);
  table.note_selection(11);
  table.note_appearance(12);
  const auto sorted = table.by_utilization();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].relay, 11u);
  EXPECT_EQ(sorted[1].relay, 10u);
  EXPECT_EQ(sorted[2].relay, 12u);
  const auto top2 = table.top(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].relay, 11u);
}

TEST(RelayStats, SelectionWeightsHaveFloor) {
  RelayStatsTable table = make_table(2);
  table.note_appearance(10);
  table.note_selection(10);
  const auto weights = table.selection_weights(0.1);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0].second, 1.1);
  EXPECT_DOUBLE_EQ(weights[1].second, 0.1);  // unexplored still reachable
}

TEST(DirectOnly, ReturnsNothing) {
  RelayStatsTable table = make_table(5);
  util::Rng rng(1);
  DirectOnlyPolicy policy;
  EXPECT_TRUE(policy.choose_candidates(table, rng).empty());
}

TEST(StaticRelay, AlwaysTheSame) {
  RelayStatsTable table = make_table(5);
  util::Rng rng(1);
  StaticRelayPolicy policy(12);
  for (int i = 0; i < 10; ++i) {
    const auto c = policy.choose_candidates(table, rng);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0], 12u);
  }
}

TEST(StaticRelay, UnregisteredRelayThrows) {
  RelayStatsTable table = make_table(2);
  util::Rng rng(1);
  StaticRelayPolicy policy(99);
  EXPECT_THROW(policy.choose_candidates(table, rng), util::Error);
}

TEST(UniformSubset, SizeAndDistinctness) {
  RelayStatsTable table = make_table(10);
  util::Rng rng(2);
  UniformRandomSubsetPolicy policy(4);
  for (int i = 0; i < 50; ++i) {
    const auto c = policy.choose_candidates(table, rng);
    EXPECT_EQ(c.size(), 4u);
    std::set<net::NodeId> unique(c.begin(), c.end());
    EXPECT_EQ(unique.size(), 4u);
    for (net::NodeId id : c) EXPECT_TRUE(table.has_relay(id));
  }
}

TEST(UniformSubset, ClampsToFullSet) {
  RelayStatsTable table = make_table(3);
  util::Rng rng(3);
  UniformRandomSubsetPolicy policy(10);
  EXPECT_EQ(policy.choose_candidates(table, rng).size(), 3u);
}

TEST(UniformSubset, CoversAllRelaysOverTime) {
  RelayStatsTable table = make_table(8);
  util::Rng rng(4);
  UniformRandomSubsetPolicy policy(2);
  std::set<net::NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    for (net::NodeId id : policy.choose_candidates(table, rng)) {
      seen.insert(id);
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(WeightedSubset, PrefersUtilizedRelays) {
  RelayStatsTable table = make_table(2);
  // relay 10 heavily utilized; relay 11 never chosen.
  for (int i = 0; i < 100; ++i) {
    table.note_appearance(10);
    table.note_selection(10);
    table.note_appearance(11);
  }
  util::Rng rng(5);
  WeightedRandomSubsetPolicy policy(1, 0.05);
  std::map<net::NodeId, int> counts;
  for (int i = 0; i < 2000; ++i) {
    ++counts[policy.choose_candidates(table, rng).at(0)];
  }
  // Weights are 1.05 vs 0.05: the hot relay should dominate ~95/5.
  EXPECT_GT(counts[10], counts[11] * 10);
  EXPECT_GT(counts[11], 0);  // exploration floor keeps it alive
}

TEST(WeightedSubset, WithoutHistoryActsUniformly) {
  RelayStatsTable table = make_table(4);
  util::Rng rng(6);
  WeightedRandomSubsetPolicy policy(2, 0.05);
  std::map<net::NodeId, int> counts;
  for (int i = 0; i < 4000; ++i) {
    for (net::NodeId id : policy.choose_candidates(table, rng)) {
      ++counts[id];
    }
  }
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count / 4000.0, 0.5, 0.05) << id;
  }
}

TEST(WeightedSubset, DistinctMembers) {
  RelayStatsTable table = make_table(5);
  table.note_appearance(10);
  table.note_selection(10);
  util::Rng rng(7);
  WeightedRandomSubsetPolicy policy(3, 0.05);
  for (int i = 0; i < 100; ++i) {
    const auto c = policy.choose_candidates(table, rng);
    std::set<net::NodeId> unique(c.begin(), c.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(FullSet, ReturnsEveryRelay) {
  RelayStatsTable table = make_table(6);
  util::Rng rng(8);
  FullSetPolicy policy;
  const auto c = policy.choose_candidates(table, rng);
  EXPECT_EQ(c.size(), 6u);
}

TEST(Policies, InvalidConstruction) {
  EXPECT_THROW(UniformRandomSubsetPolicy(0), util::Error);
  EXPECT_THROW(WeightedRandomSubsetPolicy(0), util::Error);
  EXPECT_THROW(WeightedRandomSubsetPolicy(2, 0.0), util::Error);
  EXPECT_THROW(StaticRelayPolicy(net::kInvalidNode), util::Error);
}

TEST(Policies, Names) {
  EXPECT_STREQ(DirectOnlyPolicy().name(), "direct-only");
  EXPECT_STREQ(UniformRandomSubsetPolicy(1).name(),
               "uniform-random-subset");
  EXPECT_STREQ(WeightedRandomSubsetPolicy(1).name(),
               "weighted-random-subset");
  EXPECT_STREQ(FullSetPolicy().name(), "full-set");
}

// --- Policy-conformance matrix ----------------------------------------------
//
// Every SelectionPolicy — old and new — must satisfy the same contract
// through the decide() hook: candidates exist in the stats table, the set
// respects its size bound, blacklisted relays never appear (as candidate
// or pin), and the decision is bitwise-deterministic given the same
// util::Rng stream. One factory per policy, the whole matrix over all.

struct PolicyCase {
  std::string label;
  std::function<std::unique_ptr<SelectionPolicy>()> make;
  std::size_t size_bound;  // max candidates for a 10-relay table
};

std::vector<PolicyCase> conformance_cases() {
  std::vector<PolicyCase> cases;
  cases.push_back({"direct-only",
                   [] { return std::make_unique<DirectOnlyPolicy>(); }, 0});
  cases.push_back({"static-relay",
                   [] { return std::make_unique<StaticRelayPolicy>(12); }, 1});
  cases.push_back(
      {"uniform-random-subset",
       [] { return std::make_unique<UniformRandomSubsetPolicy>(3); }, 3});
  cases.push_back(
      {"weighted-random-subset",
       [] { return std::make_unique<WeightedRandomSubsetPolicy>(3); }, 3});
  cases.push_back({"full-set",
                   [] { return std::make_unique<FullSetPolicy>(); }, 10});
  cases.push_back({"always-race",
                   [] {
                     return std::make_unique<AlwaysRacePolicy>(
                         std::make_unique<UniformRandomSubsetPolicy>(3));
                   },
                   3});
  cases.push_back({"race-on-staleness",
                   [] {
                     return std::make_unique<RaceOnStalenessPolicy>(
                         std::make_unique<UniformRandomSubsetPolicy>(3),
                         100.0);
                   },
                   3});
  cases.push_back(
      {"hybrid-weighted-passive",
       [] { return std::make_unique<HybridWeightedPassivePolicy>(3); }, 3});
  return cases;
}

/// A 10-relay table with history every policy family reacts to: passive
/// estimates (some fresh, some stale), utilization history, and two
/// blacklisted relays (13 until t=500, 17 until t=2000).
RelayStatsTable conformance_table() {
  RelayStatsTable table = make_table(10);
  for (int i = 0; i < 5; ++i) {
    table.note_appearance(11);
    table.note_selection(11);
    table.note_appearance(14);
  }
  table.note_throughput(11, 800.0, 90.0, EstimateSource::Race);
  table.note_throughput(13, 950.0, 95.0, EstimateSource::Race);  // blacklisted
  table.note_throughput(14, 400.0, 10.0, EstimateSource::Race);  // stale-ish
  table.note_throughput(15, 600.0, 80.0, EstimateSource::Passive);
  table.note_failure(13, 99.0, 401.0, 401.0);   // blacklisted until 500
  table.note_failure(17, 99.0, 1901.0, 1901.0);  // blacklisted until 2000
  return table;
}

TEST(PolicyConformance, CandidatesExistAndRespectBounds) {
  for (const PolicyCase& c : conformance_cases()) {
    RelayStatsTable table = conformance_table();
    auto policy = c.make();
    util::Rng rng(31);
    for (int i = 0; i < 100; ++i) {
      const util::TimePoint now = 100.0 + i;
      const SelectionDecision d = policy->decide(table, rng, now);
      EXPECT_LE(d.candidates.size(), c.size_bound) << c.label;
      std::set<net::NodeId> unique;
      for (net::NodeId id : d.candidates) {
        EXPECT_TRUE(table.has_relay(id)) << c.label;
        unique.insert(id);
      }
      EXPECT_EQ(unique.size(), d.candidates.size())
          << c.label << ": duplicate candidates";
      if (d.pinned.has_value()) {
        EXPECT_TRUE(table.has_relay(*d.pinned)) << c.label;
        EXPECT_GE(d.pinned_age, 0.0) << c.label;
      }
    }
  }
}

TEST(PolicyConformance, NeverReturnsBlacklistedRelays) {
  for (const PolicyCase& c : conformance_cases()) {
    RelayStatsTable table = conformance_table();
    auto policy = c.make();
    util::Rng rng(32);
    for (int i = 0; i < 200; ++i) {
      // Sweep now across relay 13's blacklist expiry so both regimes are
      // exercised; relay 17 stays blacklisted throughout.
      const util::TimePoint now = 100.0 + 4.0 * i;
      const SelectionDecision d = policy->decide(table, rng, now);
      for (net::NodeId id : d.candidates) {
        EXPECT_FALSE(table.blacklisted(id, now))
            << c.label << " at t=" << now;
      }
      if (d.pinned.has_value()) {
        EXPECT_FALSE(table.blacklisted(*d.pinned, now))
            << c.label << " pinned at t=" << now;
      }
    }
  }
}

TEST(PolicyConformance, BitwiseDeterministicGivenSameRngStream) {
  for (const PolicyCase& c : conformance_cases()) {
    RelayStatsTable table_a = conformance_table();
    RelayStatsTable table_b = conformance_table();
    auto policy_a = c.make();
    auto policy_b = c.make();
    util::Rng rng_a(33);
    util::Rng rng_b(33);
    for (int i = 0; i < 100; ++i) {
      const util::TimePoint now = 100.0 + i;
      const SelectionDecision da = policy_a->decide(table_a, rng_a, now);
      const SelectionDecision db = policy_b->decide(table_b, rng_b, now);
      EXPECT_EQ(da.candidates, db.candidates) << c.label;
      EXPECT_EQ(da.pinned.has_value(), db.pinned.has_value()) << c.label;
      if (da.pinned.has_value() && db.pinned.has_value()) {
        EXPECT_EQ(*da.pinned, *db.pinned) << c.label;
        EXPECT_EQ(da.pinned_age, db.pinned_age) << c.label;
      }
      // Feed identical selection history back so stateful weighting sees
      // the same table evolution on both sides.
      for (net::NodeId id : da.candidates) table_a.note_appearance(id);
      for (net::NodeId id : db.candidates) table_b.note_appearance(id);
      if (!da.candidates.empty()) {
        table_a.note_selection(da.candidates.front());
        table_b.note_selection(db.candidates.front());
      }
    }
  }
}

TEST(PolicyConformance, OnlyStalenessPolicyEverPins) {
  for (const PolicyCase& c : conformance_cases()) {
    RelayStatsTable table = conformance_table();
    auto policy = c.make();
    util::Rng rng(34);
    bool pinned_once = false;
    for (int i = 0; i < 50; ++i) {
      if (policy->decide(table, rng, 100.0 + i).pinned.has_value()) {
        pinned_once = true;
      }
    }
    if (c.label == "race-on-staleness") {
      EXPECT_TRUE(pinned_once) << c.label;  // relay 11 is fresh at t~100
    } else {
      EXPECT_FALSE(pinned_once) << c.label;
    }
  }
}

}  // namespace
}  // namespace idr::core
