#include <algorithm>
#include <gtest/gtest.h>
#include <map>
#include <set>

#include "core/relay_stats.hpp"
#include "core/selection_policy.hpp"
#include "util/error.hpp"

namespace idr::core {
namespace {

RelayStatsTable make_table(std::size_t n) {
  RelayStatsTable table;
  for (std::size_t i = 0; i < n; ++i) {
    table.add_relay(static_cast<net::NodeId>(i + 10),
                    "relay" + std::to_string(i));
  }
  return table;
}

TEST(RelayStats, RegistrationIdempotent) {
  RelayStatsTable table;
  table.add_relay(5, "a");
  table.add_relay(5, "a-again");
  EXPECT_EQ(table.relay_count(), 1u);
  EXPECT_EQ(table.record(5).name, "a");
  EXPECT_TRUE(table.has_relay(5));
  EXPECT_FALSE(table.has_relay(6));
  EXPECT_THROW(table.record(6), util::Error);
}

TEST(RelayStats, UtilizationRatio) {
  RelayStatsTable table = make_table(1);
  const net::NodeId r = 10;
  EXPECT_DOUBLE_EQ(table.record(r).utilization(), 0.0);
  for (int i = 0; i < 4; ++i) table.note_appearance(r);
  table.note_selection(r);
  EXPECT_DOUBLE_EQ(table.record(r).utilization(), 0.25);
}

TEST(RelayStats, ImprovementAccumulates) {
  RelayStatsTable table = make_table(1);
  table.note_improvement(10, 50.0);
  table.note_improvement(10, 70.0);
  EXPECT_EQ(table.record(10).improvement_pct.count(), 2u);
  EXPECT_DOUBLE_EQ(table.record(10).improvement_pct.mean(), 60.0);
}

TEST(RelayStats, SortedByUtilization) {
  RelayStatsTable table = make_table(3);
  // relay 10: 1/2, relay 11: 1/1, relay 12: 0/1
  table.note_appearance(10);
  table.note_appearance(10);
  table.note_selection(10);
  table.note_appearance(11);
  table.note_selection(11);
  table.note_appearance(12);
  const auto sorted = table.by_utilization();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].relay, 11u);
  EXPECT_EQ(sorted[1].relay, 10u);
  EXPECT_EQ(sorted[2].relay, 12u);
  const auto top2 = table.top(2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].relay, 11u);
}

TEST(RelayStats, SelectionWeightsHaveFloor) {
  RelayStatsTable table = make_table(2);
  table.note_appearance(10);
  table.note_selection(10);
  const auto weights = table.selection_weights(0.1);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0].second, 1.1);
  EXPECT_DOUBLE_EQ(weights[1].second, 0.1);  // unexplored still reachable
}

TEST(DirectOnly, ReturnsNothing) {
  RelayStatsTable table = make_table(5);
  util::Rng rng(1);
  DirectOnlyPolicy policy;
  EXPECT_TRUE(policy.choose_candidates(table, rng).empty());
}

TEST(StaticRelay, AlwaysTheSame) {
  RelayStatsTable table = make_table(5);
  util::Rng rng(1);
  StaticRelayPolicy policy(12);
  for (int i = 0; i < 10; ++i) {
    const auto c = policy.choose_candidates(table, rng);
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0], 12u);
  }
}

TEST(StaticRelay, UnregisteredRelayThrows) {
  RelayStatsTable table = make_table(2);
  util::Rng rng(1);
  StaticRelayPolicy policy(99);
  EXPECT_THROW(policy.choose_candidates(table, rng), util::Error);
}

TEST(UniformSubset, SizeAndDistinctness) {
  RelayStatsTable table = make_table(10);
  util::Rng rng(2);
  UniformRandomSubsetPolicy policy(4);
  for (int i = 0; i < 50; ++i) {
    const auto c = policy.choose_candidates(table, rng);
    EXPECT_EQ(c.size(), 4u);
    std::set<net::NodeId> unique(c.begin(), c.end());
    EXPECT_EQ(unique.size(), 4u);
    for (net::NodeId id : c) EXPECT_TRUE(table.has_relay(id));
  }
}

TEST(UniformSubset, ClampsToFullSet) {
  RelayStatsTable table = make_table(3);
  util::Rng rng(3);
  UniformRandomSubsetPolicy policy(10);
  EXPECT_EQ(policy.choose_candidates(table, rng).size(), 3u);
}

TEST(UniformSubset, CoversAllRelaysOverTime) {
  RelayStatsTable table = make_table(8);
  util::Rng rng(4);
  UniformRandomSubsetPolicy policy(2);
  std::set<net::NodeId> seen;
  for (int i = 0; i < 200; ++i) {
    for (net::NodeId id : policy.choose_candidates(table, rng)) {
      seen.insert(id);
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(WeightedSubset, PrefersUtilizedRelays) {
  RelayStatsTable table = make_table(2);
  // relay 10 heavily utilized; relay 11 never chosen.
  for (int i = 0; i < 100; ++i) {
    table.note_appearance(10);
    table.note_selection(10);
    table.note_appearance(11);
  }
  util::Rng rng(5);
  WeightedRandomSubsetPolicy policy(1, 0.05);
  std::map<net::NodeId, int> counts;
  for (int i = 0; i < 2000; ++i) {
    ++counts[policy.choose_candidates(table, rng).at(0)];
  }
  // Weights are 1.05 vs 0.05: the hot relay should dominate ~95/5.
  EXPECT_GT(counts[10], counts[11] * 10);
  EXPECT_GT(counts[11], 0);  // exploration floor keeps it alive
}

TEST(WeightedSubset, WithoutHistoryActsUniformly) {
  RelayStatsTable table = make_table(4);
  util::Rng rng(6);
  WeightedRandomSubsetPolicy policy(2, 0.05);
  std::map<net::NodeId, int> counts;
  for (int i = 0; i < 4000; ++i) {
    for (net::NodeId id : policy.choose_candidates(table, rng)) {
      ++counts[id];
    }
  }
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count / 4000.0, 0.5, 0.05) << id;
  }
}

TEST(WeightedSubset, DistinctMembers) {
  RelayStatsTable table = make_table(5);
  table.note_appearance(10);
  table.note_selection(10);
  util::Rng rng(7);
  WeightedRandomSubsetPolicy policy(3, 0.05);
  for (int i = 0; i < 100; ++i) {
    const auto c = policy.choose_candidates(table, rng);
    std::set<net::NodeId> unique(c.begin(), c.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(FullSet, ReturnsEveryRelay) {
  RelayStatsTable table = make_table(6);
  util::Rng rng(8);
  FullSetPolicy policy;
  const auto c = policy.choose_candidates(table, rng);
  EXPECT_EQ(c.size(), 6u);
}

TEST(Policies, InvalidConstruction) {
  EXPECT_THROW(UniformRandomSubsetPolicy(0), util::Error);
  EXPECT_THROW(WeightedRandomSubsetPolicy(0), util::Error);
  EXPECT_THROW(WeightedRandomSubsetPolicy(2, 0.0), util::Error);
  EXPECT_THROW(StaticRelayPolicy(net::kInvalidNode), util::Error);
}

TEST(Policies, Names) {
  EXPECT_STREQ(DirectOnlyPolicy().name(), "direct-only");
  EXPECT_STREQ(UniformRandomSubsetPolicy(1).name(),
               "uniform-random-subset");
  EXPECT_STREQ(WeightedRandomSubsetPolicy(1).name(),
               "weighted-random-subset");
  EXPECT_STREQ(FullSetPolicy().name(), "full-set");
}

}  // namespace
}  // namespace idr::core
