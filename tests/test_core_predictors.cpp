#include "core/predictors.hpp"

#include <gtest/gtest.h>
#include <map>

#include "core/oracle.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace idr::core {
namespace {

TEST(Ewma, MeasuresEveryArmFirst) {
  EwmaSelector s(3);
  util::Rng rng(1);
  EXPECT_EQ(s.choose(rng), 0u);
  s.observe(0, 100.0);
  EXPECT_EQ(s.choose(rng), 1u);
  s.observe(1, 200.0);
  EXPECT_EQ(s.choose(rng), 2u);
  s.observe(2, 50.0);
  // All measured: greedy arm is 1.
  EXPECT_EQ(s.best(), 1u);
}

TEST(Ewma, GreedyFollowsBestScore) {
  EwmaSelector s(2, /*alpha=*/0.5, /*epsilon=*/0.0);
  util::Rng rng(2);
  s.observe(0, 10.0);
  s.observe(1, 20.0);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(s.choose(rng), 1u);
  // Arm 1 collapses; repeated bad observations flip the preference.
  for (int i = 0; i < 10; ++i) s.observe(1, 1.0);
  EXPECT_EQ(s.best(), 0u);
}

TEST(Ewma, EwmaArithmetic) {
  EwmaSelector s(1, /*alpha=*/0.25);
  s.observe(0, 100.0);
  EXPECT_DOUBLE_EQ(*s.score(0), 100.0);  // first observation seeds
  s.observe(0, 200.0);
  EXPECT_DOUBLE_EQ(*s.score(0), 0.25 * 200.0 + 0.75 * 100.0);
}

TEST(Ewma, UnseenArmHasNoScore) {
  EwmaSelector s(2);
  EXPECT_FALSE(s.score(0).has_value());
  EXPECT_THROW(s.best(), util::Error);
}

TEST(Ewma, EpsilonExploresNonGreedyArms) {
  EwmaSelector s(3, 0.3, 0.5);
  util::Rng rng(3);
  s.observe(0, 1.0);
  s.observe(1, 100.0);
  s.observe(2, 1.0);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[s.choose(rng)];
  // Greedy (1) gets 1 - epsilon = 50 %; exploration splits the other
  // 50 % between the two non-greedy arms.
  EXPECT_NEAR(counts[1], 2000, 150);
  EXPECT_NEAR(counts[0], 1000, 120);
  EXPECT_NEAR(counts[2], 1000, 120);
}

TEST(Ewma, ZeroEpsilonNeverExplores) {
  EwmaSelector s(3, 0.3, 0.0);
  util::Rng rng(4);
  s.observe(0, 1.0);
  s.observe(1, 9.0);
  s.observe(2, 5.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.choose(rng), 1u);
}

TEST(Ewma, InvalidConstruction) {
  EXPECT_THROW(EwmaSelector(0), util::Error);
  EXPECT_THROW(EwmaSelector(2, 0.0), util::Error);
  EXPECT_THROW(EwmaSelector(2, 1.5), util::Error);
  EXPECT_THROW(EwmaSelector(2, 0.5, 1.0), util::Error);
}

TEST(Ewma, ObserveValidation) {
  EwmaSelector s(2);
  EXPECT_THROW(s.observe(5, 1.0), util::Error);
  EXPECT_THROW(s.observe(0, -1.0), util::Error);
}

TEST(Oracle, PicksBestInstantaneousRelay) {
  net::Topology topo;
  const auto server = topo.add_node("server", false);
  const auto gw = topo.add_node("gw");
  const auto client = topo.add_node("client", false);
  const auto fast = topo.add_node("fast", false);
  const auto slow = topo.add_node("slow", false);
  topo.add_link(server, gw, util::mbps(1.0), 0.05);
  topo.add_link(gw, client, util::mbps(50.0), 0.005);
  topo.add_link(server, fast, util::mbps(40.0), 0.02);
  const auto fast_leg = topo.add_link(fast, gw, util::mbps(8.0), 0.05);
  topo.add_link(server, slow, util::mbps(40.0), 0.02);
  topo.add_link(slow, gw, util::mbps(2.0), 0.05);

  RelayStatsTable stats;
  stats.add_relay(fast, "fast");
  stats.add_relay(slow, "slow");
  util::Rng rng(5);

  InstantaneousOraclePolicy oracle(topo, client, server);
  auto picks = oracle.choose_candidates(stats, rng);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], fast);

  // Degrade the fast leg below the direct path: the oracle now prefers
  // the slow relay (2 > 1 Mbps) — it tracks *current* state.
  topo.mutable_link(fast_leg).capacity = util::mbps(0.5);
  picks = oracle.choose_candidates(stats, rng);
  ASSERT_EQ(picks.size(), 1u);
  EXPECT_EQ(picks[0], slow);
}

TEST(Oracle, EmptyWhenDirectDominates) {
  net::Topology topo;
  const auto server = topo.add_node("server", false);
  const auto gw = topo.add_node("gw");
  const auto client = topo.add_node("client", false);
  const auto relay = topo.add_node("relay", false);
  topo.add_link(server, gw, util::mbps(20.0), 0.05);
  topo.add_link(gw, client, util::mbps(50.0), 0.005);
  topo.add_link(server, relay, util::mbps(40.0), 0.02);
  topo.add_link(relay, gw, util::mbps(2.0), 0.05);

  RelayStatsTable stats;
  stats.add_relay(relay, "relay");
  util::Rng rng(6);
  InstantaneousOraclePolicy oracle(topo, client, server);
  EXPECT_TRUE(oracle.choose_candidates(stats, rng).empty());
  EXPECT_STREQ(oracle.name(), "instantaneous-oracle");
}

TEST(Oracle, UnroutableRelayScoresZero) {
  net::Topology topo;
  const auto server = topo.add_node("server", false);
  const auto gw = topo.add_node("gw");
  const auto client = topo.add_node("client", false);
  const auto island = topo.add_node("island", false);
  topo.add_link(server, gw, util::mbps(1.0), 0.05);
  topo.add_link(gw, client, util::mbps(50.0), 0.005);

  RelayStatsTable stats;
  stats.add_relay(island, "island");
  util::Rng rng(7);
  InstantaneousOraclePolicy oracle(topo, client, server);
  EXPECT_TRUE(oracle.choose_candidates(stats, rng).empty());
}

}  // namespace
}  // namespace idr::core
