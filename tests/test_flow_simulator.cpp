#include "flow/flow_simulator.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <optional>

#include "util/error.hpp"
#include "util/units.hpp"

namespace idr::flow {
namespace {

using util::mbps;
using util::megabytes;
using util::milliseconds;

struct Fixture {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<FlowSimulator> fsim;
  net::NodeId a = 0, b = 0;
  net::LinkId link = 0;

  explicit Fixture(util::Rate capacity = mbps(8.0),
                   util::Duration delay = milliseconds(10)) {
    a = topo.add_node("a");
    b = topo.add_node("b");
    link = topo.add_link(a, b, capacity, delay);
    fsim.emplace(sim, topo, util::Rng(1));
  }

  net::Path path() const { return net::Path{{link}}; }
};

FlowOptions no_slow_start() {
  FlowOptions opt;
  opt.model_slow_start = false;
  return opt;
}

TEST(FlowSimulator, SingleFlowDrainsAtCapacity) {
  Fixture fx(mbps(8.0));  // 1 MB/s
  std::optional<FlowStats> done;
  fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                      [&](const FlowStats& s) { done = s; });
  fx.sim.run();
  ASSERT_TRUE(done.has_value());
  EXPECT_NEAR(done->elapsed(), 1.0, 1e-9);
  EXPECT_NEAR(done->average_rate(), 1e6, 1.0);
}

TEST(FlowSimulator, TwoFlowsShareFairly) {
  Fixture fx(mbps(8.0));
  std::optional<FlowStats> s1, s2;
  fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                      [&](const FlowStats& s) { s1 = s; });
  fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                      [&](const FlowStats& s) { s2 = s; });
  fx.sim.run();
  ASSERT_TRUE(s1 && s2);
  // Both share 1 MB/s: each runs at 0.5 MB/s, finishing at t = 2.
  EXPECT_NEAR(s1->finish_time, 2.0, 1e-9);
  EXPECT_NEAR(s2->finish_time, 2.0, 1e-9);
}

TEST(FlowSimulator, DepartureSpeedsUpSurvivor) {
  Fixture fx(mbps(8.0));
  std::optional<FlowStats> small, large;
  fx.fsim->start_flow(fx.path(), 0.5e6, no_slow_start(),
                      [&](const FlowStats& s) { small = s; });
  fx.fsim->start_flow(fx.path(), 1.5e6, no_slow_start(),
                      [&](const FlowStats& s) { large = s; });
  fx.sim.run();
  ASSERT_TRUE(small && large);
  // Shared at 0.5 MB/s until the small one finishes at t = 1; the large
  // one then has 1.0 MB left at full rate: finishes at t = 2.
  EXPECT_NEAR(small->finish_time, 1.0, 1e-9);
  EXPECT_NEAR(large->finish_time, 2.0, 1e-9);
}

TEST(FlowSimulator, SlowStartDelaysCompletion) {
  Fixture fx(mbps(80.0), milliseconds(50));
  std::optional<FlowStats> with_ss, without_ss;
  FlowOptions opt_ss;  // defaults model slow start
  fx.fsim->start_flow(fx.path(), 1e6, opt_ss,
                      [&](const FlowStats& s) { with_ss = s; });
  fx.sim.run();
  Fixture fx2(mbps(80.0), milliseconds(50));
  fx2.fsim->start_flow(fx2.path(), 1e6, no_slow_start(),
                       [&](const FlowStats& s) { without_ss = s; });
  fx2.sim.run();
  ASSERT_TRUE(with_ss && without_ss);
  EXPECT_GT(with_ss->elapsed(), without_ss->elapsed());
}

TEST(FlowSimulator, SlowStartRampIsExponential) {
  // With a huge file, measure the rate after a few RTTs: it should match
  // cwnd doubling, not the link capacity.
  Fixture fx(mbps(800.0), milliseconds(50));  // rtt = 0.1 s
  FlowOptions opt;
  const FlowId id = fx.fsim->start_flow(fx.path(), 1e9, opt,
                                        [](const FlowStats&) {});
  // After 3 full RTTs the flow is in round 3: cap = 2 * 1460 * 8 / 0.1.
  fx.sim.run_until(0.35);
  const double expected = 2.0 * 1460.0 * 8.0 / 0.1;
  EXPECT_NEAR(fx.fsim->current_rate(id), expected, expected * 1e-9);
}

TEST(FlowSimulator, CeilingOverrideCapsRate) {
  Fixture fx(mbps(8.0));
  FlowOptions opt = no_slow_start();
  opt.ceiling_override = 1e5;  // 100 KB/s
  std::optional<FlowStats> done;
  fx.fsim->start_flow(fx.path(), 1e5, opt,
                      [&](const FlowStats& s) { done = s; });
  fx.sim.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(done->elapsed(), 1.0, 1e-9);
}

TEST(FlowSimulator, LossCapsViaPftk) {
  // High loss should throttle the flow well under link capacity.
  sim::Simulator sim;
  net::Topology topo;
  const auto a = topo.add_node("a");
  const auto b = topo.add_node("b");
  const auto link = topo.add_link(a, b, mbps(100.0), 0.05, 0.02);
  FlowSimulator fsim(sim, topo, util::Rng(2));
  std::optional<FlowStats> done;
  fsim.start_flow(net::Path{{link}}, 1e6, no_slow_start(),
                  [&](const FlowStats& s) { done = s; });
  sim.run();
  ASSERT_TRUE(done);
  const double ceiling = steady_state_ceiling(TcpConfig{}, 0.1, 0.02);
  EXPECT_NEAR(done->average_rate(), ceiling, ceiling * 0.01);
  EXPECT_LT(done->average_rate(), mbps(100.0) / 4.0);
}

TEST(FlowSimulator, CapScaleReducesRate) {
  Fixture fx(mbps(8.0));
  FlowOptions opt = no_slow_start();
  opt.ceiling_override = 1e6;
  opt.cap_scale = 0.5;
  std::optional<FlowStats> done;
  fx.fsim->start_flow(fx.path(), 1e6, opt,
                      [&](const FlowStats& s) { done = s; });
  fx.sim.run();
  ASSERT_TRUE(done);
  EXPECT_NEAR(done->average_rate(), 0.5e6, 1.0);
}

TEST(FlowSimulator, ExtraCapAdjustableMidFlight) {
  Fixture fx(mbps(8.0));
  std::optional<FlowStats> done;
  const FlowId id =
      fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                          [&](const FlowStats& s) { done = s; });
  fx.sim.schedule_at(0.5, [&] { fx.fsim->set_extra_cap(id, 0.25e6); });
  fx.sim.run();
  ASSERT_TRUE(done);
  // 0.5 MB at 1 MB/s, then 0.5 MB at 0.25 MB/s -> total 2.5 s.
  EXPECT_NEAR(done->finish_time, 2.5, 1e-9);
}

TEST(FlowSimulator, CancelStopsFlow) {
  Fixture fx;
  bool fired = false;
  const FlowId id = fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                                        [&](const FlowStats&) {
                                          fired = true;
                                        });
  fx.sim.run_until(0.1);
  EXPECT_TRUE(fx.fsim->cancel_flow(id));
  fx.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_FALSE(fx.fsim->cancel_flow(id));
  EXPECT_EQ(fx.fsim->active_flows(), 0u);
}

TEST(FlowSimulator, BytesRemainingTracksProgress) {
  Fixture fx(mbps(8.0));
  const FlowId id = fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                                        [](const FlowStats&) {});
  fx.sim.run_until(0.25);
  EXPECT_NEAR(fx.fsim->bytes_remaining(id), 0.75e6, 1.0);
}

TEST(FlowSimulator, CapacityChangeRepartitionsMidFlight) {
  Fixture fx(mbps(8.0));
  // Halve the link at t = 0.5 via a scripted process.
  class Script final : public net::CapacityProcess {
   public:
    util::Rate initial(util::Rng&) override { return mbps(8.0); }
    net::CapacityChange next(util::Rng&) override {
      if (fired_) {
        return {std::numeric_limits<double>::infinity(), mbps(4.0)};
      }
      fired_ = true;
      return {0.5, mbps(4.0)};
    }
   private:
    bool fired_ = false;
  };
  fx.fsim->attach_capacity_process(fx.link, std::make_unique<Script>());
  std::optional<FlowStats> done;
  fx.fsim->start_flow(fx.path(), 1e6, no_slow_start(),
                      [&](const FlowStats& s) { done = s; });
  fx.sim.run();
  ASSERT_TRUE(done);
  // 0.5 MB at 1 MB/s, then 0.5 MB at 0.5 MB/s -> total 1.5 s.
  EXPECT_NEAR(done->finish_time, 1.5, 1e-9);
}

TEST(FlowSimulator, CompletionCallbackCanStartNextFlow) {
  Fixture fx(mbps(8.0));
  std::optional<FlowStats> second;
  fx.fsim->start_flow(fx.path(), 0.5e6, no_slow_start(),
                      [&](const FlowStats&) {
                        fx.fsim->start_flow(
                            fx.path(), 0.5e6, no_slow_start(),
                            [&](const FlowStats& s) { second = s; });
                      });
  fx.sim.run();
  ASSERT_TRUE(second);
  EXPECT_NEAR(second->finish_time, 1.0, 1e-9);
}

TEST(FlowSimulator, RejectsBadArguments) {
  Fixture fx;
  EXPECT_THROW(fx.fsim->start_flow(net::Path{}, 1e6, no_slow_start(),
                                   [](const FlowStats&) {}),
               util::Error);
  EXPECT_THROW(fx.fsim->start_flow(fx.path(), 0.0, no_slow_start(),
                                   [](const FlowStats&) {}),
               util::Error);
  FlowOptions bad = no_slow_start();
  bad.cap_scale = 0.0;
  EXPECT_THROW(fx.fsim->start_flow(fx.path(), 1.0, bad,
                                   [](const FlowStats&) {}),
               util::Error);
}

TEST(FlowSimulator, ManyFlowsConservation) {
  // 10 flows over one 10 Mbps link, each 1 Mb: aggregate drain time is
  // exactly total-bytes / capacity regardless of completion pattern.
  Fixture fx(mbps(10.0));
  int finished = 0;
  double last_finish = 0.0;
  for (int i = 0; i < 10; ++i) {
    fx.fsim->start_flow(fx.path(), 125000.0, no_slow_start(),
                        [&](const FlowStats& s) {
                          ++finished;
                          last_finish = std::max(last_finish, s.finish_time);
                        });
  }
  fx.sim.run();
  EXPECT_EQ(finished, 10);
  EXPECT_NEAR(last_finish, 1.0, 1e-9);
}

}  // namespace
}  // namespace idr::flow
