#include "core/probe_race.hpp"

#include <gtest/gtest.h>
#include <optional>

#include "core/client.hpp"
#include "util/error.hpp"

namespace idr::core {
namespace {

using util::mbps;
using util::milliseconds;

// Star world: direct path server->gw->client plus two relays with
// controllable leg capacities.
struct RaceWorld {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<flow::FlowSimulator> fsim;
  std::optional<overlay::WebServerModel> server;
  std::optional<overlay::TransferEngine> engine;
  net::NodeId server_node, gw, client;
  net::NodeId fast_relay, slow_relay;

  RaceWorld(util::Rate direct, util::Rate fast_leg, util::Rate slow_leg) {
    server_node = topo.add_node("server");
    gw = topo.add_node("gw");
    client = topo.add_node("client");
    fast_relay = topo.add_node("fast");
    slow_relay = topo.add_node("slow");
    topo.add_link(server_node, gw, direct, milliseconds(90));
    topo.add_link(gw, client, mbps(50), milliseconds(5));
    topo.add_link(server_node, fast_relay, mbps(40), milliseconds(20));
    topo.add_link(fast_relay, gw, fast_leg, milliseconds(85));
    topo.add_link(server_node, slow_relay, mbps(40), milliseconds(25));
    topo.add_link(slow_relay, gw, slow_leg, milliseconds(95));
    fsim.emplace(sim, topo, util::Rng(9));
    server.emplace(server_node, "server");
    server->add_resource("/f", 2.0e6);
    engine.emplace(*fsim);
  }

  RaceSpec spec(std::vector<net::NodeId> candidates) {
    RaceSpec s;
    s.client = client;
    s.server = &*server;
    s.resource = "/f";
    s.candidate_relays = std::move(candidates);
    return s;
  }
};

TEST(ProbeRace, DirectWinsWhenFaster) {
  RaceWorld w(mbps(16.0), mbps(1.0), mbps(0.5));
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, w.spec({w.fast_relay, w.slow_relay}),
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_FALSE(outcome->chose_indirect);
  EXPECT_EQ(outcome->relay, net::kInvalidNode);
  EXPECT_EQ(outcome->total_bytes, 2.0e6);
  EXPECT_GT(outcome->probe_elapsed, 0.0);
  EXPECT_GE(outcome->total_elapsed, outcome->probe_elapsed);
}

TEST(ProbeRace, BestRelayWinsWhenDirectIsNarrow) {
  RaceWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, w.spec({w.fast_relay, w.slow_relay}),
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_TRUE(outcome->chose_indirect);
  EXPECT_EQ(outcome->relay, w.fast_relay);
}

TEST(ProbeRace, AllTransfersCleanedUpAfterRace) {
  RaceWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  bool done = false;
  start_probe_race(*w.engine, w.spec({w.fast_relay, w.slow_relay}),
                   [&](const RaceOutcome&) { done = true; });
  w.sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(w.engine->in_flight(), 0u);
  EXPECT_EQ(w.fsim->active_flows(), 0u);
}

TEST(ProbeRace, ProbeCoveringWholeFileSkipsRemainder) {
  RaceWorld w(mbps(8.0), mbps(1.0), mbps(1.0));
  RaceSpec spec = w.spec({w.fast_relay});
  spec.probe_bytes = 5.0e6;  // larger than the 2 MB file
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, spec,
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_DOUBLE_EQ(outcome->total_elapsed, outcome->probe_elapsed);
  EXPECT_EQ(outcome->total_bytes, 2.0e6);
}

TEST(ProbeRace, NoCandidatesStillFetches) {
  RaceWorld w(mbps(8.0), mbps(1.0), mbps(1.0));
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, w.spec({}),
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome && outcome->ok);
  EXPECT_FALSE(outcome->chose_indirect);
}

TEST(ProbeRace, UnknownResourceFails) {
  RaceWorld w(mbps(8.0), mbps(1.0), mbps(1.0));
  RaceSpec spec = w.spec({w.fast_relay});
  spec.resource = "/missing";
  std::optional<RaceOutcome> outcome;
  start_probe_race(*w.engine, spec,
                   [&](const RaceOutcome& o) { outcome = o; });
  w.sim.run();
  ASSERT_TRUE(outcome);
  EXPECT_FALSE(outcome->ok);
  EXPECT_FALSE(outcome->error.empty());
}

TEST(ProbeRace, SelectedThroughputChargesProbeOverhead) {
  RaceWorld w(mbps(2.0), mbps(1.0), mbps(1.0));
  std::optional<RaceOutcome> race;
  start_probe_race(*w.engine, w.spec({w.slow_relay}),
                   [&](const RaceOutcome& o) { race = o; });
  w.sim.run();
  ASSERT_TRUE(race && race->ok);
  ASSERT_FALSE(race->chose_indirect);

  // A plain direct download of the same file in a fresh identical world
  // must be at least as fast: the race pays for losing probes.
  RaceWorld fresh(mbps(2.0), mbps(1.0), mbps(1.0));
  std::optional<overlay::TransferResult> plain;
  overlay::TransferRequest req;
  req.client = fresh.client;
  req.server = &*fresh.server;
  req.resource = "/f";
  fresh.engine->begin(req,
                      [&](const overlay::TransferResult& r) { plain = r; });
  fresh.sim.run();
  ASSERT_TRUE(plain && plain->ok);
  EXPECT_GE(race->total_elapsed, plain->elapsed() * 0.999);
  EXPECT_LE(race->selected_throughput(), plain->throughput() * 1.001);
}

TEST(ProbeRace, InvalidSpecThrows) {
  RaceWorld w(mbps(1.0), mbps(1.0), mbps(1.0));
  RaceSpec spec = w.spec({});
  spec.probe_bytes = 0.0;
  EXPECT_THROW(start_probe_race(*w.engine, spec, [](const RaceOutcome&) {}),
               util::Error);
  EXPECT_THROW(start_probe_race(*w.engine, w.spec({}), nullptr),
               util::Error);
}

// --- IndirectRoutingClient facade -----------------------------------------

TEST(Client, FetchUpdatesStats) {
  RaceWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  IndirectRoutingClient client(*w.engine, config,
                               std::make_unique<FullSetPolicy>(),
                               util::Rng(10));
  client.register_relay(w.fast_relay, "fast");
  client.register_relay(w.slow_relay, "slow");

  std::optional<FetchRecord> record;
  client.fetch([&](const FetchRecord& r) { record = r; });
  w.sim.run();
  ASSERT_TRUE(record && record->outcome.ok);
  EXPECT_EQ(record->candidates.size(), 2u);
  EXPECT_TRUE(record->outcome.chose_indirect);
  EXPECT_EQ(record->outcome.relay, w.fast_relay);

  const auto& stats = client.stats();
  EXPECT_EQ(stats.record(w.fast_relay).appearances, 1u);
  EXPECT_EQ(stats.record(w.fast_relay).selections, 1u);
  EXPECT_EQ(stats.record(w.slow_relay).appearances, 1u);
  EXPECT_EQ(stats.record(w.slow_relay).selections, 0u);

  client.record_improvement(w.fast_relay, 42.0);
  EXPECT_DOUBLE_EQ(stats.record(w.fast_relay).improvement_pct.mean(), 42.0);
}

TEST(Client, SequentialFetchesAccumulate) {
  RaceWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  IndirectRoutingClient client(*w.engine, config,
                               std::make_unique<StaticRelayPolicy>(
                                   w.fast_relay),
                               util::Rng(11));
  client.register_relay(w.fast_relay, "fast");
  int fetches = 0;
  std::function<void(const FetchRecord&)> chain =
      [&](const FetchRecord& r) {
        ASSERT_TRUE(r.outcome.ok);
        if (++fetches < 3) client.fetch(chain);
      };
  client.fetch(chain);
  w.sim.run();
  EXPECT_EQ(fetches, 3);
  EXPECT_EQ(client.stats().record(w.fast_relay).appearances, 3u);
}

TEST(Client, RegisterRelayRejectsEndpoints) {
  RaceWorld w(mbps(1.0), mbps(1.0), mbps(1.0));
  ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  IndirectRoutingClient client(*w.engine, config,
                               std::make_unique<DirectOnlyPolicy>(),
                               util::Rng(12));
  EXPECT_THROW(client.register_relay(w.client, "self"), util::Error);
  EXPECT_THROW(client.register_relay(w.server_node, "srv"), util::Error);
}

TEST(Client, PolicySwapKeepsHistory) {
  RaceWorld w(mbps(0.8), mbps(8.0), mbps(2.0));
  ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  IndirectRoutingClient client(*w.engine, config,
                               std::make_unique<FullSetPolicy>(),
                               util::Rng(13));
  client.register_relay(w.fast_relay, "fast");
  client.fetch([](const FetchRecord&) {});
  w.sim.run();
  client.set_policy(std::make_unique<DirectOnlyPolicy>());
  EXPECT_EQ(client.stats().record(w.fast_relay).appearances, 1u);
  EXPECT_THROW(client.set_policy(nullptr), util::Error);
}

}  // namespace
}  // namespace idr::core
