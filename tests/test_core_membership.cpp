// Unit tests for the fleet membership state machine (core/membership.hpp):
// miss-driven degradation, probation on recovery, self-advertised
// draining/shedding, and the eligibility rules selection relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/membership.hpp"
#include "core/relay_stats.hpp"
#include "core/selection_policy.hpp"
#include "util/rng.hpp"

namespace idr::core {
namespace {

MembershipConfig fast_config() {
  MembershipConfig config;
  config.suspect_after_misses = 1;
  config.down_after_misses = 2;
  config.probation_s = 1.0;
  config.default_shed_hold_s = 0.5;
  return config;
}

TEST(Membership, NewRelayStartsAliveAndEligible) {
  MembershipTable table(fast_config());
  table.add_relay(7, "r7", 10.0);
  EXPECT_TRUE(table.has_relay(7));
  EXPECT_EQ(table.health(7), RelayHealth::Alive);
  EXPECT_TRUE(table.eligible(7, 10.0));
  EXPECT_EQ(table.record(7).last_contact, 10.0);
  EXPECT_EQ(table.alive_count(), 1u);
}

TEST(Membership, UnknownRelayIsNeverVetoed) {
  MembershipTable table(fast_config());
  EXPECT_TRUE(table.eligible(999, 0.0));
  EXPECT_EQ(table.health(999), RelayHealth::Alive);
}

TEST(Membership, MissesDegradeAliveToSuspectToDown) {
  MembershipTable table(fast_config());
  table.add_relay(1, "r1", 0.0);
  table.note_heartbeat(1, HeartbeatStatus::Ok, 0.0, 1.0);

  auto first = table.note_miss(1, 2.0);
  EXPECT_EQ(first.before, RelayHealth::Alive);
  EXPECT_EQ(first.after, RelayHealth::Suspect);
  // Suspect is still eligible: one lost probe must not evict a relay.
  EXPECT_TRUE(table.eligible(1, 2.0));

  auto second = table.note_miss(1, 3.0);
  EXPECT_EQ(second.before, RelayHealth::Suspect);
  EXPECT_EQ(second.after, RelayHealth::Down);
  EXPECT_FALSE(table.eligible(1, 3.0));
  // Detection latency: measured from the last answered heartbeat — the
  // conservative bound on how long the death went unnoticed.
  EXPECT_DOUBLE_EQ(second.since_last_contact, 2.0);
  EXPECT_EQ(table.record(1).times_suspect, 1u);
  EXPECT_EQ(table.record(1).times_down, 1u);
}

TEST(Membership, RecoveryPassesThroughProbation) {
  MembershipTable table(fast_config());
  table.add_relay(1, "r1", 0.0);
  table.note_miss(1, 1.0);
  table.note_miss(1, 2.0);
  ASSERT_EQ(table.health(1), RelayHealth::Down);

  // First "ok" after Down: probation, still excluded.
  auto back = table.note_heartbeat(1, HeartbeatStatus::Ok, 0.0, 5.0);
  EXPECT_EQ(back.after, RelayHealth::Probation);
  EXPECT_FALSE(table.eligible(1, 5.0));

  // Healthy answers inside the window do not readmit early.
  auto early = table.note_heartbeat(1, HeartbeatStatus::Ok, 0.0, 5.5);
  EXPECT_EQ(early.after, RelayHealth::Probation);
  EXPECT_FALSE(table.eligible(1, 5.5));

  // After probation_s of good behavior: alive again.
  auto readmit = table.note_heartbeat(1, HeartbeatStatus::Ok, 0.0, 6.2);
  EXPECT_EQ(readmit.after, RelayHealth::Alive);
  EXPECT_TRUE(table.eligible(1, 6.2));
  EXPECT_EQ(table.record(1).readmissions, 1u);
}

TEST(Membership, FlappingRelayRestartsProbationFromDown) {
  MembershipTable table(fast_config());
  table.add_relay(1, "r1", 0.0);
  table.note_miss(1, 1.0);
  table.note_miss(1, 2.0);
  table.note_heartbeat(1, HeartbeatStatus::Ok, 0.0, 3.0);  // probation
  // Misses during probation collapse straight back toward Down.
  table.note_miss(1, 3.2);
  EXPECT_EQ(table.health(1), RelayHealth::Suspect);
  table.note_miss(1, 3.4);
  EXPECT_EQ(table.health(1), RelayHealth::Down);
  EXPECT_EQ(table.record(1).times_down, 2u);
}

TEST(Membership, DrainingExcludedImmediately) {
  MembershipTable table(fast_config());
  table.add_relay(1, "r1", 0.0);
  auto outcome =
      table.note_heartbeat(1, HeartbeatStatus::Draining, 0.0, 1.0);
  EXPECT_EQ(outcome.after, RelayHealth::Draining);
  EXPECT_FALSE(table.eligible(1, 1.0));
  // A draining relay that stops answering (listener closed) goes Down.
  table.note_miss(1, 2.0);
  EXPECT_EQ(table.health(1), RelayHealth::Draining);  // one miss: keep label
  table.note_miss(1, 3.0);
  EXPECT_EQ(table.health(1), RelayHealth::Down);
}

TEST(Membership, SheddingHeldForRetryAfterHint) {
  MembershipTable table(fast_config());
  table.add_relay(1, "r1", 0.0);
  auto outcome =
      table.note_heartbeat(1, HeartbeatStatus::Shedding, 2.0, 10.0);
  EXPECT_EQ(outcome.after, RelayHealth::Shedding);
  EXPECT_FALSE(table.eligible(1, 10.0));
  EXPECT_FALSE(table.eligible(1, 11.9));
  // Past the hint the relay is selectable again (deprioritized, not
  // banished) even before the next heartbeat flips it back to Alive.
  EXPECT_TRUE(table.eligible(1, 12.1));
  // An "ok" heartbeat readmits directly — no probation for overload.
  auto ok = table.note_heartbeat(1, HeartbeatStatus::Ok, 0.0, 13.0);
  EXPECT_EQ(ok.after, RelayHealth::Alive);
}

TEST(Membership, SheddingWithoutHintUsesDefaultHold) {
  MembershipTable table(fast_config());
  table.add_relay(1, "r1", 0.0);
  table.note_heartbeat(1, HeartbeatStatus::Shedding, 0.0, 10.0);
  EXPECT_FALSE(table.eligible(1, 10.4));
  EXPECT_TRUE(table.eligible(1, 10.6));
}

TEST(Membership, CountsAndRemoval) {
  MembershipTable table(fast_config());
  table.add_relay(1, "a", 0.0);
  table.add_relay(2, "b", 0.0);
  table.add_relay(3, "c", 0.0);
  table.note_miss(2, 1.0);
  table.note_miss(2, 2.0);  // down
  table.note_heartbeat(3, HeartbeatStatus::Draining, 0.0, 1.0);
  EXPECT_EQ(table.alive_count(), 1u);
  EXPECT_EQ(table.eligible_count(2.0), 1u);
  table.remove_relay(2);
  EXPECT_FALSE(table.has_relay(2));
  EXPECT_EQ(table.relay_count(), 2u);
  // Re-adding starts a fresh record.
  table.add_relay(2, "b2", 9.0);
  EXPECT_EQ(table.health(2), RelayHealth::Alive);
  EXPECT_EQ(table.record(2).times_down, 0u);
}

TEST(Membership, AddIsIdempotent) {
  MembershipTable table(fast_config());
  table.add_relay(1, "a", 0.0);
  table.note_miss(1, 1.0);
  table.add_relay(1, "a", 2.0);  // no reset
  EXPECT_EQ(table.health(1), RelayHealth::Suspect);
  EXPECT_EQ(table.relay_count(), 1u);
}

// --- Selection integration: the membership veto in SelectionPolicy. ---

RelayStatsTable stats_table(std::size_t n) {
  RelayStatsTable table;
  for (std::size_t i = 0; i < n; ++i) {
    table.add_relay(static_cast<net::NodeId>(i + 10),
                    "relay" + std::to_string(i));
  }
  return table;
}

TEST(SelectionMembership, IneligibleCandidatesDroppedBeforeTheRace) {
  RelayStatsTable stats = stats_table(3);  // relays 10, 11, 12
  MembershipTable membership(fast_config());
  for (net::NodeId id : {10u, 11u, 12u}) membership.add_relay(id, "", 0.0);
  membership.note_miss(11, 1.0);
  membership.note_miss(11, 2.0);  // 11 is Down
  membership.note_heartbeat(12, HeartbeatStatus::Draining, 0.0, 2.0);

  FullSetPolicy policy;
  util::Rng rng(1);
  auto before = policy.decide(stats, rng, 3.0);
  EXPECT_EQ(before.candidates.size(), 3u);

  policy.set_membership(&membership);
  auto after = policy.decide(stats, rng, 3.0);
  ASSERT_EQ(after.candidates.size(), 1u);
  EXPECT_EQ(after.candidates[0], 10u);
}

TEST(SelectionMembership, FilterDoesNotPerturbTheRngStream) {
  // The veto runs after the policy's draw, like the blacklist, so a
  // configured membership table must leave RNG consumption bitwise
  // identical — the determinism the golden gates stand on.
  RelayStatsTable stats = stats_table(6);
  MembershipTable membership(fast_config());
  for (std::size_t i = 0; i < 6; ++i) {
    membership.add_relay(static_cast<net::NodeId>(i + 10), "", 0.0);
  }
  membership.note_miss(12, 1.0);
  membership.note_miss(12, 2.0);  // 12 is Down

  UniformRandomSubsetPolicy bare(3);
  UniformRandomSubsetPolicy vetoed(3);
  vetoed.set_membership(&membership);
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  for (int i = 0; i < 50; ++i) {
    const auto a = bare.decide(stats, rng_a, 3.0);
    const auto b = vetoed.decide(stats, rng_b, 3.0);
    // Same draw, minus the down relay.
    std::vector<net::NodeId> expect;
    for (net::NodeId id : a.candidates) {
      if (id != 12u) expect.push_back(id);
    }
    EXPECT_EQ(b.candidates, expect);
  }
  // Streams stayed in lockstep through 50 decisions.
  EXPECT_DOUBLE_EQ(rng_a.uniform(), rng_b.uniform());
}

TEST(SelectionMembership, StalenessPinRefusedForIneligibleRelay) {
  RelayStatsTable stats = stats_table(2);  // relays 10, 11
  // Relay 10 holds the only fresh race-validated estimate: it would be
  // the pin.
  stats.note_throughput(10, 5e6, 100.0, EstimateSource::Race);

  RaceOnStalenessPolicy policy(std::make_unique<FullSetPolicy>(), 300.0);
  util::Rng rng(7);
  auto pinned = policy.decide(stats, rng, 150.0);
  ASSERT_TRUE(pinned.pinned.has_value());
  EXPECT_EQ(*pinned.pinned, 10u);

  // Mark 10 draining: the pin must be refused and the race fall through
  // to the (filtered) candidate set.
  MembershipTable membership(fast_config());
  membership.add_relay(10, "", 0.0);
  membership.note_heartbeat(10, HeartbeatStatus::Draining, 0.0, 120.0);
  policy.set_membership(&membership);
  auto refused = policy.decide(stats, rng, 150.0);
  EXPECT_FALSE(refused.pinned.has_value());
  ASSERT_EQ(refused.candidates.size(), 1u);
  EXPECT_EQ(refused.candidates[0], 11u);
}

TEST(Membership, HealthNamesAreStable) {
  EXPECT_STREQ(relay_health_name(RelayHealth::Alive), "alive");
  EXPECT_STREQ(relay_health_name(RelayHealth::Suspect), "suspect");
  EXPECT_STREQ(relay_health_name(RelayHealth::Down), "down");
  EXPECT_STREQ(relay_health_name(RelayHealth::Probation), "probation");
  EXPECT_STREQ(relay_health_name(RelayHealth::Draining), "draining");
  EXPECT_STREQ(relay_health_name(RelayHealth::Shedding), "shedding");
}

}  // namespace
}  // namespace idr::core
