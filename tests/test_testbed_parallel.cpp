// parallel_for / parallel_map / claim_chunk: the fork-join substrate the
// shard layer rides on. The properties that matter are exactly-once
// coverage at any thread count, deterministic exception selection (lowest
// task index wins, so a failing run reports the same error at
// IDR_THREADS=1 and =8), and index-ordered results from parallel_map.
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testbed/parallel.hpp"

namespace idr::testbed {
namespace {

TEST(ClaimChunk, BoundsAndScaling) {
  // Degenerate inputs: always a positive claim so workers make progress.
  EXPECT_EQ(claim_chunk(0, 4), 1u);
  EXPECT_EQ(claim_chunk(100, 0), 1u);
  // Coarse task lists (shards: tens of items) claim one at a time so a
  // slow shard never strands queued work behind it.
  EXPECT_EQ(claim_chunk(16, 4), 1u);
  EXPECT_EQ(claim_chunk(64, 8), 1u);
  // Cheap fine-grained lists amortize the shared counter...
  EXPECT_GT(claim_chunk(10000, 4), 1u);
  // ...but the chunk is capped, keeping the tail imbalance bounded.
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    for (std::size_t count : {1u, 7u, 100u, 4096u, 1000000u}) {
      const std::size_t chunk = claim_chunk(count, workers);
      EXPECT_GE(chunk, 1u);
      EXPECT_LE(chunk, 16u);
    }
  }
}

TEST(ParallelFor, RunsEveryIndexExactlyOnce) {
  for (unsigned threads : {1u, 2u, 3u, 4u, 8u}) {
    for (std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{5}, std::size_t{64},
          std::size_t{1000}}) {
      std::vector<std::atomic<int>> hits(count);
      parallel_for(count, threads,
                   [&](std::size_t i) { hits[i].fetch_add(1); });
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "index " << i << " at " << threads << " threads";
      }
    }
  }
}

TEST(ParallelFor, CountSmallerThanThreads) {
  std::atomic<int> total{0};
  parallel_for(2, 8, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 2);
}

TEST(ParallelFor, RethrowsLowestIndexAtAnyThreadCount) {
  // Several tasks throw; the rethrown error must be the lowest index's
  // regardless of which worker reached it first, and the non-throwing
  // tasks must all still have run (workers drain, they don't abort).
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::vector<std::atomic<int>> hits(200);
    try {
      parallel_for(200, threads, [&](std::size_t i) {
        hits[i].fetch_add(1);
        if (i == 17 || i == 100 || i == 199) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected parallel_for to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 17") << "at " << threads << " threads";
    }
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
  }
}

TEST(ParallelMap, PreservesIndexOrder) {
  for (unsigned threads : {1u, 2u, 4u}) {
    const std::vector<std::size_t> out = parallel_map<std::size_t>(
        500, threads, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 500u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
}

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(1), 1u);
}

TEST(ResolveThreads, EnvFallback) {
  ::setenv("IDR_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5u);
  // Explicit request still beats the env.
  EXPECT_EQ(resolve_threads(2), 2u);
  // Junk and non-positive values fall through to hardware concurrency.
  ::setenv("IDR_THREADS", "0", 1);
  EXPECT_GE(resolve_threads(0), 1u);
  ::setenv("IDR_THREADS", "banana", 1);
  EXPECT_GE(resolve_threads(0), 1u);
  ::unsetenv("IDR_THREADS");
  EXPECT_GE(resolve_threads(0), 1u);
}

}  // namespace
}  // namespace idr::testbed
