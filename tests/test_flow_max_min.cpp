#include "flow/max_min.hpp"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "flow/tcp_model.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::flow {
namespace {

constexpr Rate kInf = kUnlimitedRate;

FlowDemand demand(std::vector<std::size_t> links, Rate cap = kInf) {
  FlowDemand d;
  d.links = std::move(links);
  d.cap = cap;
  return d;
}

TEST(MaxMin, SingleFlowGetsBottleneck) {
  const auto rates = max_min_allocate({10.0, 4.0}, {demand({0, 1})});
  ASSERT_EQ(rates.size(), 1u);
  EXPECT_DOUBLE_EQ(rates[0], 4.0);
}

TEST(MaxMin, EqualShareOnSharedLink) {
  const auto rates =
      max_min_allocate({9.0}, {demand({0}), demand({0}), demand({0})});
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 3.0);
}

TEST(MaxMin, TextbookThreeLinkExample) {
  // Links: L0 cap 10 shared by f0,f1; L1 cap 4 used by f1 only.
  // f1 bottlenecked at 4 on L1; f0 then takes the remaining 6 on L0.
  const auto rates =
      max_min_allocate({10.0, 4.0}, {demand({0}), demand({0, 1})});
  EXPECT_DOUBLE_EQ(rates[1], 4.0);
  EXPECT_DOUBLE_EQ(rates[0], 6.0);
}

TEST(MaxMin, CapFreesCapacityForOthers) {
  // Two flows share a 10-capacity link; one is capped at 2, the other
  // should absorb the slack (8), not stop at the equal share (5).
  const auto rates =
      max_min_allocate({10.0}, {demand({0}, 2.0), demand({0})});
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
  EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

TEST(MaxMin, CapAboveShareIsInert) {
  const auto rates =
      max_min_allocate({10.0}, {demand({0}, 100.0), demand({0})});
  EXPECT_DOUBLE_EQ(rates[0], 5.0);
  EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMin, ZeroCapFlow) {
  const auto rates =
      max_min_allocate({10.0}, {demand({0}, 0.0), demand({0})});
  EXPECT_DOUBLE_EQ(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 10.0);
}

TEST(MaxMin, EmptyPathGetsCapOrZero) {
  const auto rates =
      max_min_allocate({}, {demand({}, 7.0), demand({}, kInf)});
  EXPECT_DOUBLE_EQ(rates[0], 7.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(MaxMin, NoFlows) {
  EXPECT_TRUE(max_min_allocate({1.0, 2.0}, {}).empty());
}

TEST(MaxMin, UnboundedWithNoConstraintThrows) {
  // A flow with an unbounded cap must cross at least one finite link.
  EXPECT_NO_THROW(max_min_allocate({5.0}, {demand({0})}));
}

TEST(MaxMin, ParkingLotFairness) {
  // Classic parking-lot: one long flow over L0,L1,L2 (cap 1 each) plus a
  // short flow per link. Max-min gives everyone 0.5.
  const auto rates = max_min_allocate(
      {1.0, 1.0, 1.0},
      {demand({0, 1, 2}), demand({0}), demand({1}), demand({2})});
  for (double r : rates) EXPECT_DOUBLE_EQ(r, 0.5);
}

TEST(MaxMin, AsymmetricParkingLot) {
  // L0 cap 1 (long + short0), L1 cap 10 (long + short1).
  // long and short0 split L0 at 0.5; short1 then gets 9.5 on L1.
  const auto rates = max_min_allocate(
      {1.0, 10.0}, {demand({0, 1}), demand({0}), demand({1})});
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 9.5);
}

TEST(MaxMin, BadInputsThrow) {
  EXPECT_THROW(max_min_allocate({1.0}, {demand({5})}), util::Error);
  EXPECT_THROW(max_min_allocate({0.0}, {demand({0})}), util::Error);
  EXPECT_THROW(max_min_allocate({1.0}, {demand({0}, -1.0)}), util::Error);
}

// ---- Property tests over random instances --------------------------------

struct RandomInstance {
  std::vector<Rate> capacities;
  std::vector<FlowDemand> flows;
};

RandomInstance make_instance(std::uint64_t seed) {
  util::Rng rng(seed);
  RandomInstance inst;
  const auto links = static_cast<std::size_t>(rng.uniform_int(1, 12));
  for (std::size_t l = 0; l < links; ++l) {
    inst.capacities.push_back(rng.uniform(0.5, 20.0));
  }
  const auto flows = static_cast<std::size_t>(rng.uniform_int(1, 16));
  for (std::size_t f = 0; f < flows; ++f) {
    const auto hop_count = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(links)));
    FlowDemand d;
    d.links = rng.sample_without_replacement(links, hop_count);
    d.cap = rng.bernoulli(0.4) ? rng.uniform(0.1, 10.0) : kInf;
    inst.flows.push_back(std::move(d));
  }
  return inst;
}

class MaxMinProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxMinProperty, FeasibilityAndBottleneckOptimality) {
  const RandomInstance inst = make_instance(GetParam());
  const auto rates = max_min_allocate(inst.capacities, inst.flows);
  ASSERT_EQ(rates.size(), inst.flows.size());

  // 1. No link oversubscribed.
  std::vector<double> load(inst.capacities.size(), 0.0);
  for (std::size_t f = 0; f < inst.flows.size(); ++f) {
    EXPECT_GE(rates[f], 0.0);
    if (std::isfinite(inst.flows[f].cap)) {
      EXPECT_LE(rates[f], inst.flows[f].cap * (1.0 + 1e-9));
    }
    for (std::size_t l : inst.flows[f].links) load[l] += rates[f];
  }
  for (std::size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], inst.capacities[l] * (1.0 + 1e-9)) << "link " << l;
  }

  // 2. Max-min bottleneck condition: every flow either meets its cap or
  // crosses a saturated link on which it has a maximal rate.
  for (std::size_t f = 0; f < inst.flows.size(); ++f) {
    if (std::isfinite(inst.flows[f].cap) &&
        rates[f] >= inst.flows[f].cap * (1.0 - 1e-9)) {
      continue;  // cap-bottlenecked
    }
    bool has_bottleneck_link = false;
    for (std::size_t l : inst.flows[f].links) {
      if (load[l] < inst.capacities[l] * (1.0 - 1e-9)) continue;
      bool is_max_on_link = true;
      for (std::size_t g = 0; g < inst.flows.size(); ++g) {
        if (g == f) continue;
        const auto& gl = inst.flows[g].links;
        if (std::find(gl.begin(), gl.end(), l) != gl.end() &&
            rates[g] > rates[f] * (1.0 + 1e-9)) {
          is_max_on_link = false;
          break;
        }
      }
      if (is_max_on_link) {
        has_bottleneck_link = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck_link) << "flow " << f << " not bottlenecked";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinProperty,
                         ::testing::Range<std::uint64_t>(1, 41));

// ---- Workspace entry point -----------------------------------------------

void fill_workspace(MaxMinWorkspace& ws, const RandomInstance& inst) {
  ws.clear();
  ws.avail = inst.capacities;
  for (const FlowDemand& d : inst.flows) {
    ws.add_flow(d.cap);
    for (const std::size_t l : d.links) ws.add_link(l);
  }
}

TEST(MaxMinWorkspace, MatchesVectorSignatureBitwise) {
  // One workspace reused across all instances: also exercises clear()
  // leaving no state behind between solves.
  MaxMinWorkspace ws;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const RandomInstance inst = make_instance(seed);
    const auto expect = max_min_allocate(inst.capacities, inst.flows);
    fill_workspace(ws, inst);
    max_min_allocate(ws);
    ASSERT_EQ(ws.rate.size(), expect.size()) << "seed " << seed;
    for (std::size_t f = 0; f < expect.size(); ++f) {
      EXPECT_EQ(ws.rate[f], expect[f]) << "seed " << seed << " flow " << f;
    }
  }
}

TEST(MaxMinWorkspace, CountsProgressiveFillingRounds) {
  // Textbook three-link example: round 1 saturates L1 (freezing f1), round
  // 2 saturates L0 (freezing f0).
  MaxMinWorkspace ws;
  ws.avail = {10.0, 4.0};
  ws.add_flow(kInf);
  ws.add_link(0);
  ws.add_flow(kInf);
  ws.add_link(0);
  ws.add_link(1);
  max_min_allocate(ws);
  EXPECT_DOUBLE_EQ(ws.rate[0], 6.0);
  EXPECT_DOUBLE_EQ(ws.rate[1], 4.0);
  EXPECT_EQ(ws.rounds, 2u);
}

TEST(MaxMinWorkspace, ReportsLeftoverCapacity) {
  // avail holds residual capacity after the solve: a capped flow leaves
  // headroom behind.
  MaxMinWorkspace ws;
  ws.avail = {10.0};
  ws.add_flow(2.0);
  ws.add_link(0);
  max_min_allocate(ws);
  EXPECT_DOUBLE_EQ(ws.rate[0], 2.0);
  EXPECT_DOUBLE_EQ(ws.avail[0], 8.0);
  EXPECT_EQ(ws.rounds, 1u);
}

}  // namespace
}  // namespace idr::flow
