#include "http/range.hpp"

#include <gtest/gtest.h>

namespace idr::http {
namespace {

TEST(RangeParse, ClosedForm) {
  const auto spec = parse_range_header("bytes=100-199");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->first, 100u);
  EXPECT_EQ(spec->last, 199u);
  EXPECT_FALSE(spec->suffix_length.has_value());
}

TEST(RangeParse, OpenForm) {
  const auto spec = parse_range_header("bytes=102400-");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->first, 102400u);
  EXPECT_FALSE(spec->last.has_value());
}

TEST(RangeParse, SuffixForm) {
  const auto spec = parse_range_header("bytes=-500");
  ASSERT_TRUE(spec);
  EXPECT_EQ(spec->suffix_length, 500u);
  EXPECT_FALSE(spec->first.has_value());
}

TEST(RangeParse, WhitespaceTolerated) {
  EXPECT_TRUE(parse_range_header("  bytes=0-1  ").has_value());
  EXPECT_TRUE(parse_range_header("bytes= 0 - 1 ").has_value());
}

TEST(RangeParse, Rejections) {
  EXPECT_FALSE(parse_range_header("items=0-1").has_value());
  EXPECT_FALSE(parse_range_header("bytes=0-1,5-9").has_value());  // multi
  EXPECT_FALSE(parse_range_header("bytes=").has_value());
  EXPECT_FALSE(parse_range_header("bytes=abc-").has_value());
  EXPECT_FALSE(parse_range_header("bytes=5").has_value());       // no dash
  EXPECT_FALSE(parse_range_header("bytes=5-x").has_value());
  EXPECT_FALSE(parse_range_header("bytes=-").has_value());
}

TEST(RangeFormat, RoundTripsThroughParse) {
  for (const RangeSpec spec :
       {range_first_bytes(102400), range_from_offset(102400),
        range_suffix(500)}) {
    const auto reparsed = parse_range_header(format_range_header(spec));
    ASSERT_TRUE(reparsed);
    EXPECT_EQ(*reparsed, spec);
  }
}

TEST(RangeConvenience, FirstBytes) {
  const RangeSpec spec = range_first_bytes(100000);
  EXPECT_EQ(spec.first, 0u);
  EXPECT_EQ(spec.last, 99999u);
  EXPECT_EQ(format_range_header(spec), "bytes=0-99999");
}

TEST(Resolve, FullWithinResource) {
  const auto r = resolve_range(range_first_bytes(100), 1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ByteRange{0, 99}));
  EXPECT_EQ(r->length(), 100u);
}

TEST(Resolve, ClampsLastToEnd) {
  const auto r = resolve_range(range_first_bytes(5000), 1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ByteRange{0, 999}));
}

TEST(Resolve, OpenEndedGoesToEnd) {
  const auto r = resolve_range(range_from_offset(400), 1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ByteRange{400, 999}));
}

TEST(Resolve, SuffixTakesTail) {
  const auto r = resolve_range(range_suffix(100), 1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ByteRange{900, 999}));
}

TEST(Resolve, SuffixLargerThanResource) {
  const auto r = resolve_range(range_suffix(5000), 1000);
  ASSERT_TRUE(r);
  EXPECT_EQ(*r, (ByteRange{0, 999}));
}

TEST(Resolve, Unsatisfiable) {
  EXPECT_FALSE(resolve_range(range_from_offset(1000), 1000).has_value());
  EXPECT_FALSE(resolve_range(range_suffix(0), 1000).has_value());
  EXPECT_FALSE(resolve_range(range_first_bytes(10), 0).has_value());
  RangeSpec inverted;
  inverted.first = 10;
  inverted.last = 5;
  EXPECT_FALSE(resolve_range(inverted, 1000).has_value());
}

TEST(ContentRange, FormatAndParse) {
  const std::string s = format_content_range(ByteRange{0, 102399}, 4000000);
  EXPECT_EQ(s, "bytes 0-102399/4000000");
  const auto parsed = parse_content_range(s);
  ASSERT_TRUE(parsed);
  EXPECT_EQ(parsed->first, (ByteRange{0, 102399}));
  EXPECT_EQ(parsed->second, 4000000u);
}

TEST(ContentRange, Rejections) {
  EXPECT_FALSE(parse_content_range("bytes 0-99/*").has_value());
  EXPECT_FALSE(parse_content_range("bytes 99-0/1000").has_value());
  EXPECT_FALSE(parse_content_range("bytes 0-1000/1000").has_value());
  EXPECT_FALSE(parse_content_range("octets 0-9/10").has_value());
  EXPECT_FALSE(parse_content_range("bytes 0to9/10").has_value());
}

// Property sweep: resolve + split at x reproduces the paper's two-request
// pattern exactly: [0, x) followed by [x, n) partitions the file.
class SplitProperty
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(SplitProperty, ProbePlusRemainderPartitions) {
  const auto [x, n] = GetParam();
  const auto probe = resolve_range(range_first_bytes(x), n);
  ASSERT_TRUE(probe);
  if (x >= n) {
    EXPECT_EQ(probe->length(), n);
    return;  // probe covered the file; no remainder request
  }
  const auto rest = resolve_range(range_from_offset(x), n);
  ASSERT_TRUE(rest);
  EXPECT_EQ(probe->length() + rest->length(), n);
  EXPECT_EQ(probe->last + 1, rest->first);
  EXPECT_EQ(rest->last, n - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Splits, SplitProperty,
    ::testing::Values(std::make_pair(102400ull, 4000000ull),
                      std::make_pair(1ull, 2ull),
                      std::make_pair(102400ull, 102401ull),
                      std::make_pair(102400ull, 102400ull),
                      std::make_pair(500000ull, 400000ull),
                      std::make_pair(1ull, 1000000ull)));

}  // namespace
}  // namespace idr::http
