#include <gtest/gtest.h>

#include "net/routing.hpp"
#include "net/topology.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace idr::net {
namespace {

using util::mbps;
using util::milliseconds;

TEST(Topology, AddAndLookupNodes) {
  Topology topo;
  const NodeId a = topo.add_node("alpha");
  const NodeId b = topo.add_node("beta");
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.node(a).name, "alpha");
  EXPECT_EQ(topo.find_node("beta"), b);
  EXPECT_FALSE(topo.find_node("gamma").has_value());
}

TEST(Topology, DuplicateNameRejected) {
  Topology topo;
  topo.add_node("x");
  EXPECT_THROW(topo.add_node("x"), util::Error);
  EXPECT_THROW(topo.add_node(""), util::Error);
}

TEST(Topology, LinkValidation) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  EXPECT_THROW(topo.add_link(a, a, mbps(1), 0.01), util::Error);
  EXPECT_THROW(topo.add_link(a, b, 0.0, 0.01), util::Error);
  EXPECT_THROW(topo.add_link(a, b, mbps(1), -0.01), util::Error);
  EXPECT_THROW(topo.add_link(a, b, mbps(1), 0.01, 1.0), util::Error);
  EXPECT_THROW(topo.add_link(a, 99, mbps(1), 0.01), util::Error);
}

TEST(Topology, DuplexAddsBothDirections) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const auto [fwd, rev] = topo.add_duplex(a, b, mbps(10), 0.01);
  EXPECT_EQ(topo.link(fwd).from, a);
  EXPECT_EQ(topo.link(rev).from, b);
  EXPECT_EQ(topo.link_between(a, b), fwd);
  EXPECT_EQ(topo.link_between(b, a), rev);
}

TEST(Topology, PathMetrics) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId l1 = topo.add_link(a, b, mbps(10), 0.010, 0.01);
  const LinkId l2 = topo.add_link(b, c, mbps(2), 0.020, 0.02);
  Path p{{l1, l2}};
  topo.check_path(p, a, c);
  EXPECT_DOUBLE_EQ(topo.path_delay(p), 0.030);
  EXPECT_DOUBLE_EQ(topo.path_rtt(p), 0.060);
  EXPECT_DOUBLE_EQ(topo.path_bottleneck(p), mbps(2));
  EXPECT_NEAR(topo.path_loss(p), 1.0 - 0.99 * 0.98, 1e-12);
  EXPECT_EQ(topo.path_source(p), a);
  EXPECT_EQ(topo.path_destination(p), c);
}

TEST(Topology, CheckPathRejectsDisconnected) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const NodeId d = topo.add_node("d");
  const LinkId l1 = topo.add_link(a, b, mbps(1), 0.01);
  const LinkId l2 = topo.add_link(c, d, mbps(1), 0.01);
  Path p{{l1, l2}};
  EXPECT_THROW(topo.check_path(p, a, d), util::Error);
}

TEST(Routing, ShortestPathByDelay) {
  // a -> b -> d is shorter than a -> c -> d.
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const NodeId d = topo.add_node("d");
  topo.add_link(a, b, mbps(1), 0.010);
  topo.add_link(b, d, mbps(1), 0.010);
  topo.add_link(a, c, mbps(100), 0.030);
  topo.add_link(c, d, mbps(100), 0.030);
  const auto path = shortest_path(topo, a, d);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 2u);
  EXPECT_DOUBLE_EQ(topo.path_delay(*path), 0.020);
  EXPECT_EQ(topo.path_destination(*path), d);
}

TEST(Routing, DirectLinkPreferredWhenShorter) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  topo.add_link(a, c, mbps(1), 0.015);
  topo.add_link(a, b, mbps(1), 0.010);
  topo.add_link(b, c, mbps(1), 0.010);
  const auto path = shortest_path(topo, a, c);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 1u);
}

TEST(Routing, UnreachableReturnsNullopt) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_node("island");
  topo.add_link(a, b, mbps(1), 0.01);
  EXPECT_FALSE(shortest_path(topo, a, 2).has_value());
  // Directionality respected: b -> a has no link.
  EXPECT_FALSE(shortest_path(topo, b, a).has_value());
}

TEST(Routing, ViaRelayConcatenates) {
  Topology topo;
  const NodeId server = topo.add_node("server");
  const NodeId relay = topo.add_node("relay");
  const NodeId client = topo.add_node("client");
  topo.add_link(server, relay, mbps(50), 0.020);
  topo.add_link(relay, client, mbps(5), 0.080);
  topo.add_link(server, client, mbps(1), 0.090);
  const auto indirect = via_relay(topo, server, relay, client);
  ASSERT_TRUE(indirect.has_value());
  EXPECT_EQ(indirect->hops(), 2u);
  EXPECT_DOUBLE_EQ(topo.path_delay(*indirect), 0.100);
  EXPECT_DOUBLE_EQ(topo.path_bottleneck(*indirect), mbps(5));
}

TEST(Routing, ViaRelayRejectsDegenerateRelay) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  topo.add_link(a, b, mbps(1), 0.01);
  EXPECT_THROW(via_relay(topo, a, a, b), util::Error);
  EXPECT_THROW(via_relay(topo, a, b, b), util::Error);
}

TEST(Routing, ConcatenateJunctionMismatch) {
  Topology topo;
  const NodeId a = topo.add_node("a");
  const NodeId b = topo.add_node("b");
  const NodeId c = topo.add_node("c");
  const LinkId l1 = topo.add_link(a, b, mbps(1), 0.01);
  const LinkId l2 = topo.add_link(a, c, mbps(1), 0.01);
  EXPECT_THROW(concatenate(topo, Path{{l1}}, Path{{l2}}), util::Error);
}

}  // namespace
}  // namespace idr::net
