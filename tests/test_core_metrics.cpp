#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/units.hpp"

namespace idr::core {
namespace {

using util::mbps;

TEST(Improvement, PaperExamples) {
  // Doubling throughput is +100 %; halving is -50 % (paper Section 3.1).
  EXPECT_DOUBLE_EQ(improvement_pct(2.0, 1.0), 100.0);
  EXPECT_DOUBLE_EQ(improvement_pct(0.5, 1.0), -50.0);
  EXPECT_DOUBLE_EQ(improvement_pct(1.0, 1.0), 0.0);
}

TEST(Improvement, BoundedBelow) {
  EXPECT_DOUBLE_EQ(improvement_pct(0.0, 5.0), -100.0);
  EXPECT_GT(improvement_pct(1e-9, 5.0), -100.0);
}

TEST(Improvement, InvalidInputsThrow) {
  EXPECT_THROW(improvement_pct(1.0, 0.0), util::Error);
  EXPECT_THROW(improvement_pct(-1.0, 1.0), util::Error);
}

TEST(Penalty, RelativeToSelectedPath) {
  // Direct at 39.4x the selected path is a 3840 % penalty — Table I's
  // maximum is only expressible in this form.
  EXPECT_NEAR(penalty_pct(1.0, 39.4), 3840.0, 1e-9);
  EXPECT_DOUBLE_EQ(penalty_pct(1.0, 2.0), 100.0);
  EXPECT_DOUBLE_EQ(penalty_pct(2.0, 1.0), -50.0);  // negative = we won
}

TEST(Penalty, SignsMirrorImprovement) {
  for (double selected : {0.5, 1.0, 2.0, 7.0}) {
    const double imp = improvement_pct(selected, 1.0);
    const double pen = penalty_pct(selected, 1.0);
    EXPECT_EQ(imp < 0, pen > 0);
    EXPECT_EQ(imp > 0, pen < 0);
  }
}

TEST(Categories, PaperThresholds) {
  EXPECT_EQ(categorize_throughput(mbps(0.5)), ThroughputCategory::Low);
  EXPECT_EQ(categorize_throughput(mbps(1.5)), ThroughputCategory::Low);
  EXPECT_EQ(categorize_throughput(mbps(1.51)), ThroughputCategory::Medium);
  EXPECT_EQ(categorize_throughput(mbps(3.0)), ThroughputCategory::Medium);
  EXPECT_EQ(categorize_throughput(mbps(3.01)), ThroughputCategory::High);
  EXPECT_EQ(category_name(ThroughputCategory::Medium), "Medium");
}

TEST(Variability, SplitsOnCv) {
  util::OnlineStats stable, wild;
  for (int i = 0; i < 100; ++i) {
    stable.add(100.0 + (i % 2));         // CV ~ 0
    wild.add(i % 2 == 0 ? 20.0 : 200.0); // CV ~ 0.8
  }
  EXPECT_EQ(classify_variability(stable), VariabilityClass::Low);
  EXPECT_EQ(classify_variability(wild), VariabilityClass::High);
  // Threshold is adjustable.
  EXPECT_EQ(classify_variability(wild, 2.0), VariabilityClass::Low);
  EXPECT_EQ(variability_name(VariabilityClass::High), "HighVar");
}

TEST(PenaltySummary, CountsAndMoments) {
  // Three wins, one loss (selected 1 vs direct 3 -> penalty 200 %).
  std::vector<std::pair<util::Rate, util::Rate>> pairs = {
      {2.0, 1.0}, {3.0, 1.0}, {1.5, 1.0}, {1.0, 3.0}};
  const PenaltySummary s = summarize_penalties(pairs);
  EXPECT_EQ(s.total_points, 4u);
  EXPECT_EQ(s.penalty_points, 1u);
  EXPECT_DOUBLE_EQ(s.penalty_fraction, 0.25);
  EXPECT_DOUBLE_EQ(s.avg_penalty_pct, 200.0);
  EXPECT_DOUBLE_EQ(s.max_penalty_pct, 200.0);
  EXPECT_DOUBLE_EQ(s.stddev_penalty_pct, 0.0);
}

TEST(PenaltySummary, NoLosses) {
  const PenaltySummary s = summarize_penalties({{2.0, 1.0}, {1.1, 1.0}});
  EXPECT_EQ(s.penalty_points, 0u);
  EXPECT_DOUBLE_EQ(s.penalty_fraction, 0.0);
  EXPECT_DOUBLE_EQ(s.avg_penalty_pct, 0.0);
}

TEST(PenaltySummary, Empty) {
  const PenaltySummary s = summarize_penalties({});
  EXPECT_EQ(s.total_points, 0u);
  EXPECT_DOUBLE_EQ(s.penalty_fraction, 0.0);
}

TEST(PenaltySummary, TiesAreNotPenalties) {
  const PenaltySummary s = summarize_penalties({{1.0, 1.0}});
  EXPECT_EQ(s.penalty_points, 0u);
}

}  // namespace
}  // namespace idr::core
