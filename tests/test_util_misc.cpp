// Histogram, table/CSV renderers, string helpers, units.
#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/histogram.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace idr::util {
namespace {

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.bins(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 30.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 40.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 2);
  h.add(-1.0);   // underflow
  h.add(0.0);    // bin 0
  h.add(4.999);  // bin 0
  h.add(5.0);    // bin 1
  h.add(10.0);   // overflow (hi is exclusive)
  h.add(42.0);   // overflow
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 2.0 / 6.0);
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 3.0, 3);
  h.add(1.5);
  h.add(1.6);
  h.add(0.5);
  EXPECT_EQ(h.mode_bin(), 1u);
}

TEST(Histogram, RenderContainsCounts) {
  Histogram h(0.0, 10.0, 2);
  h.add(1.0);
  h.add(2.0);
  h.add(7.0);
  const std::string out = h.render();
  EXPECT_NE(out.find("2 (66.7%)"), std::string::npos);
  EXPECT_NE(out.find("1 (33.3%)"), std::string::npos);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(5.0, 5.0, 3), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"Node", "Util"});
  t.row().cell("Texas").cell(76.1, 1);
  t.row().cell("NU").cell(65.9, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("Texas"), std::string::npos);
  EXPECT_NE(out.find("76.1"), std::string::npos);
  // Header rule present.
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(TextTable, RejectsTooManyCells) {
  TextTable t({"A"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), Error);
}

TEST(TextTable, CellBeforeRowThrows) {
  TextTable t({"A"});
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(Csv, EscapesSpecials) {
  CsvWriter w({"a", "b"});
  w.add_row({"plain", "with,comma"});
  w.add_row({"with\"quote", "with\nnewline"});
  const std::string out = w.str();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, RowWidthEnforced) {
  CsvWriter w({"a", "b"});
  EXPECT_THROW(w.add_row({"only-one"}), Error);
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\r\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, CaseHelpers) {
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_EQ(to_lower("MiXeD"), "mixed");
  EXPECT_TRUE(starts_with("http://x", "http://"));
  EXPECT_FALSE(starts_with("ht", "http://"));
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("102400"), 102400u);
  EXPECT_EQ(parse_u64("18446744073709551615"), UINT64_MAX);
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());  // overflow
  EXPECT_FALSE(parse_u64("").has_value());
  EXPECT_FALSE(parse_u64("-3").has_value());
  EXPECT_FALSE(parse_u64("12x").has_value());
  EXPECT_FALSE(parse_u64("+5").has_value());
}

TEST(Units, RateConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(mbps(8.0), 1e6);          // 8 Mbit/s == 1 MB/s
  EXPECT_DOUBLE_EQ(to_mbps(mbps(3.3)), 3.3);
  EXPECT_DOUBLE_EQ(kbps(8.0), 1000.0);
}

TEST(Units, TimeHelpers) {
  EXPECT_DOUBLE_EQ(minutes(6.0), 360.0);
  EXPECT_DOUBLE_EQ(hours(10.0), 36000.0);
  EXPECT_DOUBLE_EQ(milliseconds(250.0), 0.25);
}

TEST(Units, SizeHelpers) {
  EXPECT_DOUBLE_EQ(kilobytes(100.0), 100000.0);
  EXPECT_DOUBLE_EQ(megabytes(2.0), 2e6);
}

}  // namespace
}  // namespace idr::util
