# Observability snapshot gate: runs a figure binary with IDR_OBS_OUT set
# and checks three contracts at once:
#
#   1. stdout stays byte-identical to the committed golden snapshot —
#      enabling the sink must not perturb the figure data;
#   2. the dumped metrics JSON and Chrome trace JSON both parse
#      (string(JSON ...), no external tools);
#   3. the trace carries exactly EXPECTED_SPANS "probe_race" spans — one
#      per simulated transfer at the scaled seed defaults.
#
# Usage: cmake -DBIN=<binary> -DGOLDEN=<snapshot> -DRUN=<run name>
#              -DOUT_DIR=<scratch dir> -DEXPECTED_SPANS=<count>
#              -P run_obs_snapshot.cmake

foreach(var BIN GOLDEN RUN OUT_DIR EXPECTED_SPANS)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "run_obs_snapshot.cmake requires -D${var}=...")
  endif()
endforeach()

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
  COMMAND ${CMAKE_COMMAND} -E env "IDR_OBS_OUT=${OUT_DIR}" "${BIN}"
  OUTPUT_VARIABLE actual
  ERROR_VARIABLE ignored_stderr
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "${BIN} exited with ${rc}")
endif()

# 1. stdout is still the golden figure output, byte for byte.
file(READ "${GOLDEN}" expected)
if(NOT actual STREQUAL expected)
  set(observed "${OUT_DIR}/${RUN}.observed.txt")
  file(WRITE "${observed}" "${actual}")
  message(FATAL_ERROR
      "stdout diverged from ${GOLDEN} with IDR_OBS_OUT set\n"
      "observed output written to ${observed}")
endif()

# 2. Both JSON artifacts exist and parse.
foreach(artifact "${RUN}_metrics.json" "${RUN}_trace.json")
  set(path "${OUT_DIR}/${artifact}")
  if(NOT EXISTS "${path}")
    message(FATAL_ERROR "expected artifact missing: ${path}")
  endif()
  file(READ "${path}" doc)
  string(JSON ignored ERROR_VARIABLE json_error GET "${doc}")
  if(NOT json_error STREQUAL "NOTFOUND")
    message(FATAL_ERROR "${path} is not valid JSON: ${json_error}")
  endif()
endforeach()

if(NOT EXISTS "${OUT_DIR}/${RUN}_metrics.prom")
  message(FATAL_ERROR
      "expected artifact missing: ${OUT_DIR}/${RUN}_metrics.prom")
endif()

# 3. One probe_race span per transfer.
file(READ "${OUT_DIR}/${RUN}_trace.json" trace)
string(REGEX MATCHALL "\"name\":\"probe_race\"" spans "${trace}")
list(LENGTH spans span_count)
if(NOT span_count EQUAL EXPECTED_SPANS)
  message(FATAL_ERROR
      "trace has ${span_count} probe_race spans, expected "
      "${EXPECTED_SPANS} (one per transfer at the scaled defaults)")
endif()
