// Fault-shim tests for the real-socket stack: armed socket faults must
// surface as clean results (never hangs), and the hardened probe race
// must retry and fall back the same way its simulated twin does.
#include <gtest/gtest.h>

#include <optional>

#include "rt/fault_shim.hpp"
#include "rt/http_client.hpp"
#include "rt/http_server.hpp"
#include "rt/probe_race.hpp"
#include "rt/relay_daemon.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

// The shim is process-global; every test starts and ends with a clean
// rule table so armed-but-unused rules cannot leak across tests.
struct ShimGuard {
  ShimGuard() { FaultShim::instance().clear(); }
  ~ShimGuard() { FaultShim::instance().clear(); }
};

struct Fixture {
  ShimGuard guard;
  Reactor reactor;
  HttpOriginServer origin{reactor, 0};
  RelayDaemon relay{reactor, 0};

  explicit Fixture(std::uint64_t resource = 400000) {
    origin.add_resource("/blob", resource);
  }

  void shape(double direct_rate, double relayed_rate) {
    origin.set_shaping_policy(
        [direct_rate, relayed_rate](const http::Request& r) {
          return r.headers.has("Via") ? relayed_rate : direct_rate;
        });
  }

  FetchRequest direct_request() {
    FetchRequest req;
    req.origin.port = origin.port();
    req.path = "/blob";
    req.timeout_s = 10.0;
    return req;
  }

  FetchRequest relayed_request() {
    FetchRequest req = direct_request();
    req.proxy = Endpoint{"127.0.0.1", relay.port()};
    return req;
  }
};

TEST(RtFault, DropOnConnectRefusesOneDialThenExpires) {
  Fixture fx;
  const std::uint64_t before = FaultShim::instance().injected();
  FaultRule rule;
  rule.kind = FaultKind::kDropOnConnect;
  FaultShim::instance().arm(fx.origin.port(), rule);

  std::optional<FetchResult> dropped;
  fetch(fx.reactor, fx.direct_request(),
        [&](const FetchResult& r) { dropped = r; });
  spin_until(fx.reactor, 10.0, [&] { return dropped.has_value(); });
  EXPECT_FALSE(dropped->ok);
  EXPECT_NE(dropped->error.find("injected fault"), std::string::npos);
  EXPECT_EQ(FaultShim::instance().injected(), before + 1);

  // Single-use rule: the next dial goes through untouched.
  std::optional<FetchResult> clean;
  fetch(fx.reactor, fx.direct_request(),
        [&](const FetchResult& r) { clean = r; });
  spin_until(fx.reactor, 10.0, [&] { return clean.has_value(); });
  ASSERT_TRUE(clean->ok) << clean->error;
  EXPECT_TRUE(clean->body_verified);
}

TEST(RtFault, TruncatedBodyReportsUnverifiedWithoutHanging) {
  Fixture fx;
  FaultRule rule;
  rule.kind = FaultKind::kTruncateBody;
  rule.after_bytes = 60000;  // headers + a body prefix, then orderly EOF
  FaultShim::instance().arm(fx.origin.port(), rule);

  std::optional<FetchResult> result;
  fetch(fx.reactor, fx.direct_request(),
        [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_FALSE(result->body_verified);
  EXPECT_LT(result->body_bytes, 400000u);
  EXPECT_GT(result->body_bytes, 0u);
}

TEST(RtFault, MidStreamResetOnRelayUpstreamLeavesDaemonHealthy) {
  Fixture fx;
  // The rule is keyed on the origin's port, so it rides the relay
  // daemon's upstream leg — the client-to-relay hop stays clean.
  FaultRule rule;
  rule.kind = FaultKind::kMidStreamReset;
  rule.after_bytes = 80000;
  FaultShim::instance().arm(fx.origin.port(), rule);

  std::optional<FetchResult> reset;
  fetch(fx.reactor, fx.relayed_request(),
        [&](const FetchResult& r) { reset = r; });
  spin_until(fx.reactor, 10.0, [&] { return reset.has_value(); });
  EXPECT_FALSE(reset->ok);
  EXPECT_FALSE(reset->body_verified);

  // The daemon must shrug off the dead session and serve the next one.
  std::optional<FetchResult> after;
  fetch(fx.reactor, fx.relayed_request(),
        [&](const FetchResult& r) { after = r; });
  spin_until(fx.reactor, 10.0, [&] { return after.has_value(); });
  ASSERT_TRUE(after->ok) << after->error;
  EXPECT_TRUE(after->body_verified);
  EXPECT_EQ(after->body_bytes, 400000u);
}

TEST(RtFault, StalledRelayLosesRaceToSlowerDirectLane) {
  Fixture fx;
  // Direct is throttled but alive; the relay lane — normally much faster
  // — freezes for two seconds, long enough for direct to take the probe.
  fx.shape(/*direct=*/150000.0, /*relayed=*/0.0);
  FaultRule rule;
  rule.kind = FaultKind::kStall;
  rule.stall_s = 2.0;
  FaultShim::instance().arm(fx.relay.port(), rule);

  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_FALSE(result->chose_indirect);
  EXPECT_TRUE(result->body_verified);
  EXPECT_EQ(result->total_bytes, 400000u);
}

TEST(RtFault, RemainderResetRetriesOnSameRelayAndSucceeds) {
  Fixture fx;
  fx.shape(/*direct=*/60000.0, /*relayed=*/0.0);
  // FIFO per port: rule 1 rides the probe lane but cuts far past the
  // probe size (a no-op), rule 2 resets the remainder mid-stream, and
  // the retry — the third dial — finds the table empty and completes.
  FaultRule benign;
  benign.kind = FaultKind::kMidStreamReset;
  benign.after_bytes = 1ull << 30;
  FaultShim::instance().arm(fx.relay.port(), benign);
  FaultRule reset;
  reset.kind = FaultKind::kMidStreamReset;
  reset.after_bytes = 50000;
  FaultShim::instance().arm(fx.relay.port(), reset);

  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(result->chose_indirect);
  EXPECT_GE(result->retries, 1u);
  EXPECT_FALSE(result->fell_back_direct);
  EXPECT_TRUE(result->body_verified);
  EXPECT_EQ(result->total_bytes, 400000u);
}

TEST(RtFault, EverythingRefusedYieldsCleanErrorCallback) {
  Fixture fx;
  FaultRule refuse_all;
  refuse_all.kind = FaultKind::kDropOnConnect;
  refuse_all.uses = -1;  // every dial, including the fallback retries
  FaultShim::instance().arm(fx.origin.port(), refuse_all);
  FaultShim::instance().arm(fx.relay.port(), refuse_all);

  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.timeout_s = 5.0;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 20.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_NE(result->error.find("direct fallback died"), std::string::npos);
  EXPECT_EQ(result->probe_failures, 2u);
  EXPECT_TRUE(result->fell_back_direct);
  EXPECT_GE(result->retries, 1u);
}

}  // namespace
}  // namespace idr::rt
