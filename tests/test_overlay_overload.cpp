// Admission-control tests for the simulated relay (TransferEngine):
// concurrency caps with queue-or-reject semantics, slot accounting across
// finish/cancel/abort, and the overload signal feeding the client's
// short-penalty relay statistics.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "core/client.hpp"
#include "core/selection_policy.hpp"
#include "overlay/transfer_engine.hpp"
#include "overlay/web_server.hpp"
#include "util/error.hpp"

namespace idr::overlay {
namespace {

using util::mbps;
using util::milliseconds;

// The 4-node world of test_overlay.cpp: server -> gw -> client direct,
// server -> relay -> gw indirect, constant capacities.
struct World {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<flow::FlowSimulator> fsim;
  std::optional<WebServerModel> server;
  std::optional<TransferEngine> engine;
  net::NodeId server_node, gw, client, relay;

  World() {
    server_node = topo.add_node("server");
    gw = topo.add_node("gw");
    client = topo.add_node("client");
    relay = topo.add_node("relay");
    topo.add_link(server_node, gw, mbps(1.0), milliseconds(90));
    topo.add_link(gw, client, mbps(50), milliseconds(5));
    topo.add_link(server_node, relay, mbps(40), milliseconds(20));
    topo.add_link(relay, gw, mbps(4.0), milliseconds(90));
    fsim.emplace(sim, topo, util::Rng(3));
    server.emplace(server_node, "server");
    server->add_resource("/f", 1.0e6);
    engine.emplace(*fsim);
  }

  TransferRequest request(std::optional<net::NodeId> via = std::nullopt) {
    TransferRequest req;
    req.client = client;
    req.server = &*server;
    req.resource = "/f";
    req.relay = via;
    return req;
  }

  void govern(std::size_t max_concurrent, std::size_t queue_limit,
              util::Duration retry_after = 1.0) {
    RelayParams params;
    params.max_concurrent = max_concurrent;
    params.queue_limit = queue_limit;
    params.retry_after = retry_after;
    engine->set_relay_params(relay, params);
  }
};

TEST(OverlayOverload, RejectsBeyondCapWhenQueueDisabled) {
  World w;
  w.govern(/*max_concurrent=*/1, /*queue_limit=*/0, /*retry_after=*/0.75);
  std::optional<TransferResult> first, second;
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& r) { first = r; });
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& r) { second = r; });
  w.sim.run();
  ASSERT_TRUE(first && second);
  EXPECT_TRUE(first->ok);
  EXPECT_FALSE(second->ok);
  EXPECT_TRUE(second->overloaded);
  EXPECT_DOUBLE_EQ(second->retry_after, 0.75);
  // The rejection is immediate, long before the active transfer ends.
  EXPECT_LT(second->finish_time, first->finish_time);
  EXPECT_EQ(w.engine->transfers_shed(), 1u);
  EXPECT_EQ(w.engine->transfers_queued(), 0u);
}

TEST(OverlayOverload, QueueAdmitsInFifoOrder) {
  World w;
  w.govern(/*max_concurrent=*/1, /*queue_limit=*/2);
  std::vector<std::optional<TransferResult>> r(4);
  for (std::size_t i = 0; i < 4; ++i) {
    w.engine->begin(w.request(w.relay),
                    [&, i](const TransferResult& res) { r[i] = res; });
  }
  // One active, two queued, the fourth overflows the queue and is shed.
  EXPECT_EQ(w.engine->relay_active(w.relay), 1u);
  EXPECT_EQ(w.engine->relay_queued(w.relay), 2u);
  w.sim.run();
  for (const auto& res : r) ASSERT_TRUE(res.has_value());
  EXPECT_TRUE(r[0]->ok);
  EXPECT_TRUE(r[1]->ok);
  EXPECT_TRUE(r[2]->ok);
  EXPECT_FALSE(r[3]->ok);
  EXPECT_TRUE(r[3]->overloaded);
  // FIFO admission: the first queued transfer finishes before the second.
  EXPECT_LT(r[1]->finish_time, r[2]->finish_time);
  // Queued transfers record their waiting time; the head waited less.
  EXPECT_EQ(r[0]->queued_delay, 0.0);
  EXPECT_GT(r[1]->queued_delay, 0.0);
  EXPECT_GT(r[2]->queued_delay, r[1]->queued_delay);
  EXPECT_EQ(w.engine->transfers_queued(), 2u);
  EXPECT_EQ(w.engine->transfers_shed(), 1u);
  EXPECT_EQ(w.engine->relay_active(w.relay), 0u);
  EXPECT_EQ(w.engine->relay_queued(w.relay), 0u);
}

TEST(OverlayOverload, CancelReleasesSlotAndUnqueues) {
  World w;
  w.govern(/*max_concurrent=*/1, /*queue_limit=*/2);
  std::optional<TransferResult> queued_result;
  const TransferHandle active =
      w.engine->begin(w.request(w.relay), [](const TransferResult&) {});
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& r) { queued_result = r; });
  bool third_fired = false;
  const TransferHandle third = w.engine->begin(
      w.request(w.relay), [&](const TransferResult&) { third_fired = true; });
  EXPECT_EQ(w.engine->relay_queued(w.relay), 2u);

  // Cancelling a queued transfer removes it without a callback.
  EXPECT_TRUE(w.engine->cancel(third));
  EXPECT_EQ(w.engine->relay_queued(w.relay), 1u);

  // Cancelling the active transfer frees its slot for the queued one.
  EXPECT_TRUE(w.engine->cancel(active));
  EXPECT_EQ(w.engine->relay_active(w.relay), 1u);
  EXPECT_EQ(w.engine->relay_queued(w.relay), 0u);
  w.sim.run();
  ASSERT_TRUE(queued_result.has_value());
  EXPECT_TRUE(queued_result->ok);
  EXPECT_FALSE(third_fired);
}

TEST(OverlayOverload, RelayCrashDrainsQueueAndFreesSlots) {
  World w;
  w.govern(/*max_concurrent=*/1, /*queue_limit=*/2);
  std::vector<std::optional<TransferResult>> r(2);
  for (std::size_t i = 0; i < 2; ++i) {
    w.engine->begin(w.request(w.relay),
                    [&, i](const TransferResult& res) { r[i] = res; });
  }
  w.sim.schedule_at(0.5, [&] { w.engine->set_relay_down(w.relay, true); });
  w.sim.run();
  // Both the active and the queued transfer die with the relay, and the
  // gate is left clean for when it comes back.
  ASSERT_TRUE(r[0] && r[1]);
  EXPECT_FALSE(r[0]->ok);
  EXPECT_FALSE(r[1]->ok);
  EXPECT_FALSE(r[0]->overloaded);  // a crash, not a shed
  EXPECT_EQ(w.engine->relay_active(w.relay), 0u);
  EXPECT_EQ(w.engine->relay_queued(w.relay), 0u);

  w.engine->set_relay_down(w.relay, false);
  std::optional<TransferResult> after;
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& res) { after = res; });
  w.sim.run();
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(after->ok);
}

TEST(OverlayOverload, SlotIsReusableFromTheDoneCallback) {
  World w;
  w.govern(/*max_concurrent=*/1, /*queue_limit=*/0);
  // A retry begun from on_done of the transfer that just vacated the slot
  // must be admitted immediately, not shed: the slot is released before
  // the callback fires.
  std::optional<TransferResult> retry;
  w.engine->begin(w.request(w.relay), [&](const TransferResult& r) {
    ASSERT_TRUE(r.ok);
    w.engine->begin(w.request(w.relay),
                    [&](const TransferResult& r2) { retry = r2; });
  });
  w.sim.run();
  ASSERT_TRUE(retry.has_value());
  EXPECT_TRUE(retry->ok);
  EXPECT_EQ(retry->queued_delay, 0.0);
  EXPECT_EQ(w.engine->transfers_shed(), 0u);
}

TEST(OverlayOverload, GovernanceOffKeepsCountersSilent) {
  World w;  // default RelayParams: max_concurrent = 0 (unlimited)
  std::size_t done = 0;
  for (int i = 0; i < 5; ++i) {
    w.engine->begin(w.request(w.relay), [&](const TransferResult& r) {
      EXPECT_TRUE(r.ok);
      EXPECT_EQ(r.queued_delay, 0.0);
      ++done;
    });
  }
  w.sim.run();
  EXPECT_EQ(done, 5u);
  EXPECT_EQ(w.engine->transfers_shed(), 0u);
  EXPECT_EQ(w.engine->transfers_queued(), 0u);
  EXPECT_EQ(w.engine->relay_active(w.relay), 0u);
}

TEST(OverlayOverload, ClientRecordsShortOverloadPenalty) {
  World w;
  w.govern(/*max_concurrent=*/1, /*queue_limit=*/0);

  // Occupy the relay's slot so the client's probe through it is shed.
  std::optional<TransferResult> blocker;
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& r) { blocker = r; });

  core::ClientConfig config;
  config.client_node = w.client;
  config.server = &*w.server;
  config.resource = "/f";
  config.probe_bytes = 100.0e3;
  config.overload_penalty = 5.0;
  core::IndirectRoutingClient client(
      *w.engine, config, std::make_unique<core::StaticRelayPolicy>(w.relay),
      util::Rng(7));
  client.register_relay(w.relay, "relay");

  std::optional<core::FetchRecord> record;
  client.fetch([&](const core::FetchRecord& r) { record = r; });
  w.sim.run();

  ASSERT_TRUE(record.has_value());
  EXPECT_TRUE(record->outcome.ok) << record->outcome.error;
  EXPECT_FALSE(record->outcome.chose_indirect);  // direct salvaged it
  EXPECT_GE(record->outcome.overload_rejections, 1u);
  ASSERT_EQ(record->outcome.overloaded_relays.size(), 1u);
  EXPECT_EQ(record->outcome.overloaded_relays[0], w.relay);
  EXPECT_TRUE(record->outcome.failed_relays.empty());  // soft, not a crash

  // The stats table took the short flat penalty: an overload mark, no
  // consecutive-failure run, blacklisted only for the configured window.
  const core::RelayRecord& rec = client.stats().record(w.relay);
  EXPECT_EQ(rec.overloads, 1u);
  EXPECT_EQ(rec.consecutive_failures, 0u);
  EXPECT_EQ(rec.failures, 0u);
  const util::TimePoint now = w.sim.now();
  EXPECT_TRUE(client.stats().blacklisted(w.relay, now));
  EXPECT_FALSE(client.stats().blacklisted(w.relay, now + 5.1));
  ASSERT_TRUE(blocker.has_value());
  EXPECT_TRUE(blocker->ok);
}

}  // namespace
}  // namespace idr::overlay
