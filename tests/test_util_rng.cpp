#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>
#include <set>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace idr::util {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ChildStreamsAreIndependentOfParentDraws) {
  // child(salt) must not depend on how many numbers the parent drew.
  Rng a(99);
  Rng b(99);
  static_cast<void>(b.uniform());  // advance b only
  // Both children must match because child() works off a copy of the
  // engine state... which differs after a draw; so derive children FIRST.
  Rng a_child = a.child(5);
  // Re-derive from a fresh parent to show same-salt determinism.
  Rng c(99);
  Rng c_child = c.child(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(a_child.uniform(), c_child.uniform());
  }
}

TEST(Rng, ChildSaltsDecorrelate) {
  Rng root(7);
  Rng c1 = root.child(1);
  Rng c2 = root.child(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniform() == c2.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(4);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);  // all faces appear
}

TEST(Rng, BernoulliEdges) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(6);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, LognormalMeanCvMoments) {
  Rng rng(8);
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.lognormal_mean_cv(2.5, 0.4));
  EXPECT_NEAR(s.mean(), 2.5, 0.02);
  EXPECT_NEAR(s.cv(), 0.4, 0.02);
}

TEST(Rng, LognormalZeroCvIsDeterministic) {
  Rng rng(9);
  EXPECT_DOUBLE_EQ(rng.lognormal_mean_cv(3.0, 0.0), 3.0);
}

TEST(Rng, LognormalRejectsBadParams) {
  Rng rng(10);
  EXPECT_THROW(rng.lognormal_mean_cv(0.0, 0.5), Error);
  EXPECT_THROW(rng.lognormal_mean_cv(1.0, -0.1), Error);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 4.0, 0.08);
}

TEST(Rng, ParetoSupport) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, SampleWithoutReplacementIsASubset) {
  Rng rng(13);
  const auto picks = rng.sample_without_replacement(10, 4);
  EXPECT_EQ(picks.size(), 4u);
  std::set<std::size_t> unique(picks.begin(), picks.end());
  EXPECT_EQ(unique.size(), 4u);
  for (std::size_t p : picks) EXPECT_LT(p, 10u);
}

TEST(Rng, SampleFullSetIsPermutation) {
  Rng rng(14);
  auto picks = rng.sample_without_replacement(6, 6);
  std::sort(picks.begin(), picks.end());
  for (std::size_t i = 0; i < 6; ++i) EXPECT_EQ(picks[i], i);
}

TEST(Rng, SampleKGreaterThanNThrows) {
  Rng rng(15);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), Error);
}

TEST(Rng, SampleIsUniform) {
  // Each of 5 items should appear in a 2-subset with probability 2/5.
  Rng rng(16);
  std::vector<int> counts(5, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (std::size_t p : rng.sample_without_replacement(5, 2)) {
      ++counts[p];
    }
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.4, 0.02);
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) ++counts[rng.weighted_index(weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.3, 0.02);
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.6, 0.02);
}

TEST(Rng, WeightedIndexAllZeroFallsBackToUniform) {
  Rng rng(18);
  std::vector<double> weights = {0.0, 0.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int t = 0; t < 30000; ++t) ++counts[rng.weighted_index(weights)];
  for (int c : counts) {
    EXPECT_NEAR(c / 30000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(Rng, WeightedIndexNegativeTreatedAsZero) {
  Rng rng(19);
  std::vector<double> weights = {-5.0, 1.0};
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(ChildStream, PinnedDerivedSeeds) {
  // child_stream is THE seed-derivation rule for sharded and parallel
  // execution: every client, shard and capacity stream keys off it, so
  // these exact values are load-bearing — changing them silently reseeds
  // every golden run. If this test fails, the derivation changed; fix the
  // derivation, do not re-pin.
  EXPECT_EQ(child_stream(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(child_stream(2026, 0), 0xdb9c559891948d23ULL);
  EXPECT_EQ(child_stream(2026, 1), 0x5924737f701295a0ULL);
  EXPECT_EQ(child_stream(2026, 0xABCDEF), 0xeda41ac3b198ca1cULL);
  EXPECT_EQ(child_stream(0xDEADBEEFCAFEF00DULL, 0x9E3779B97F4A7C15ULL),
            0xdce65c9145b41db8ULL);
}

TEST(ChildStream, IsSplitmixOfParentXorSalt) {
  // The definition the ad-hoc call sites were migrated from — kept as an
  // executable statement of the rule.
  const std::uint64_t parents[] = {0, 1, 2026, 0xDEADBEEFULL};
  const std::uint64_t salts[] = {0, 7, 0xABCDEF, 0x100000001b3ULL};
  for (std::uint64_t p : parents) {
    for (std::uint64_t s : salts) {
      EXPECT_EQ(child_stream(p, s), splitmix64(p ^ s));
    }
  }
}

TEST(ChildStream, SaltsDecorrelate) {
  // Sibling streams (same parent, adjacent salts) must not be shifted
  // copies of each other.
  Rng a{child_stream(99, 1)};
  Rng b{child_stream(99, 2)};
  int agree = 0;
  constexpr int kDraws = 256;
  for (int t = 0; t < kDraws; ++t) {
    const bool bit_a = a.uniform(0.0, 1.0) < 0.5;
    const bool bit_b = b.uniform(0.0, 1.0) < 0.5;
    if (bit_a == bit_b) ++agree;
  }
  // Independent streams agree ~half the time; identical or inverted
  // streams agree always/never.
  EXPECT_GT(agree, kDraws / 4);
  EXPECT_LT(agree, 3 * kDraws / 4);
}

TEST(Splitmix, AvalanchesNearbySeeds) {
  // Adjacent inputs should produce very different outputs.
  const auto a = splitmix64(1);
  const auto b = splitmix64(2);
  int differing_bits = std::popcount(a ^ b);
  EXPECT_GT(differing_bits, 16);
}

}  // namespace
}  // namespace idr::util
