#include "flow/tcp_model.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "util/error.hpp"

namespace idr::flow {
namespace {

TEST(Pftk, LosslessIsUnbounded) {
  TcpConfig cfg;
  EXPECT_TRUE(std::isinf(pftk_ceiling(cfg, 0.1, 0.0)));
}

TEST(Pftk, MatchesClosedFormAtSmallLoss) {
  // At small p the timeout term is negligible: B ~ MSS/(RTT*sqrt(2p/3)).
  TcpConfig cfg;
  const double rtt = 0.1;
  const double p = 1e-4;
  const double expected = cfg.mss / (rtt * std::sqrt(2.0 * p / 3.0));
  EXPECT_NEAR(pftk_ceiling(cfg, rtt, p) / expected, 1.0, 0.02);
}

TEST(Pftk, DecreasesWithLoss) {
  TcpConfig cfg;
  double prev = pftk_ceiling(cfg, 0.1, 0.0001);
  for (double p : {0.001, 0.005, 0.01, 0.05, 0.1}) {
    const double cur = pftk_ceiling(cfg, 0.1, p);
    EXPECT_LT(cur, prev) << "p=" << p;
    prev = cur;
  }
}

TEST(Pftk, DecreasesWithRtt) {
  TcpConfig cfg;
  EXPECT_GT(pftk_ceiling(cfg, 0.05, 0.01), pftk_ceiling(cfg, 0.2, 0.01));
}

TEST(Pftk, SplitBeatsEndToEnd) {
  // The split-TCP identity the relay model relies on: two legs with half
  // the RTT and the same per-leg loss each beat the end-to-end connection
  // with compounded loss over the full RTT.
  TcpConfig cfg;
  const double rtt = 0.2, p = 0.01;
  const double end_to_end = pftk_ceiling(cfg, rtt, 2 * p - p * p);
  const double leg = pftk_ceiling(cfg, rtt / 2, p);
  EXPECT_GT(leg, end_to_end);
}

TEST(Pftk, InvalidArgsThrow) {
  TcpConfig cfg;
  EXPECT_THROW(pftk_ceiling(cfg, 0.0, 0.01), util::Error);
  EXPECT_THROW(pftk_ceiling(cfg, 0.1, 1.0), util::Error);
  EXPECT_THROW(pftk_ceiling(cfg, 0.1, -0.1), util::Error);
}

TEST(Rwnd, CapsAtWindowOverRtt) {
  TcpConfig cfg;
  cfg.receiver_window = 65536.0;
  EXPECT_DOUBLE_EQ(rwnd_ceiling(cfg, 0.1), 655360.0);
}

TEST(SteadyState, TakesTheMin) {
  TcpConfig cfg;
  cfg.receiver_window = 65536.0;
  const double rtt = 0.1;
  // Tiny loss: rwnd binds.
  EXPECT_DOUBLE_EQ(steady_state_ceiling(cfg, rtt, 1e-7),
                   rwnd_ceiling(cfg, rtt));
  // Heavy loss: PFTK binds.
  EXPECT_DOUBLE_EQ(steady_state_ceiling(cfg, rtt, 0.05),
                   pftk_ceiling(cfg, rtt, 0.05));
}

TEST(SlowStart, DoublesPerRound) {
  TcpConfig cfg;
  const double rtt = 0.1;
  const double base = slow_start_cap(cfg, rtt, 0);
  EXPECT_DOUBLE_EQ(base, cfg.initial_window_segments * cfg.mss / rtt);
  for (int k = 1; k < 10; ++k) {
    EXPECT_DOUBLE_EQ(slow_start_cap(cfg, rtt, k),
                     base * std::pow(2.0, k));
  }
}

TEST(SlowStart, RoundsToReach) {
  TcpConfig cfg;
  const double rtt = 0.1;
  const double target = slow_start_cap(cfg, rtt, 7);
  EXPECT_EQ(rounds_to_reach(cfg, rtt, target), 7);
  // A hair above round 7's cap needs one more round.
  EXPECT_EQ(rounds_to_reach(cfg, rtt, target * 1.001), 8);
  // Already reachable at round 0.
  EXPECT_EQ(rounds_to_reach(cfg, rtt, 1.0), 0);
}

TEST(SlowStart, RoundsToReachSaturates) {
  TcpConfig cfg;
  EXPECT_LE(rounds_to_reach(cfg, 0.1, 1e30), 64);
}

TEST(SlowStart, InvalidArgsThrow) {
  TcpConfig cfg;
  EXPECT_THROW(slow_start_cap(cfg, 0.0, 1), util::Error);
  EXPECT_THROW(slow_start_cap(cfg, 0.1, -1), util::Error);
}

// Property: the 100 KB probe of the paper outlasts slow start for typical
// paths — i.e. by the time 100 KB have been delivered under the ramp, the
// instantaneous cap has reached a multi-Mbps steady rate. (This is the
// justification for x = 100 KB in Section 2.1.)
class ProbeOutlastsSlowStart : public ::testing::TestWithParam<double> {};

TEST_P(ProbeOutlastsSlowStart, RampCompletesWithin100KB) {
  TcpConfig cfg;
  const double rtt = GetParam();
  double delivered = 0.0;
  int round = 0;
  // Bytes delivered during rounds until the cap exceeds 2 Mbps.
  while (slow_start_cap(cfg, rtt, round) < util::mbps(2.0)) {
    delivered += slow_start_cap(cfg, rtt, round) * rtt;
    ++round;
    ASSERT_LT(round, 64);
  }
  EXPECT_LT(delivered, 100e3);
}

INSTANTIATE_TEST_SUITE_P(Rtts, ProbeOutlastsSlowStart,
                         ::testing::Values(0.04, 0.08, 0.16, 0.24, 0.32));

}  // namespace
}  // namespace idr::flow
