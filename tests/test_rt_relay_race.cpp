// End-to-end loopback tests of the relay daemon and the real probe race —
// the full indirect-routing pipeline on actual sockets.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <optional>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/http_client.hpp"
#include "rt/http_server.hpp"
#include "rt/probe_race.hpp"
#include "rt/relay_daemon.hpp"
#include "rt/selection.hpp"
#include "util/rng.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

struct Fixture {
  Reactor reactor;
  HttpOriginServer origin{reactor, 0};
  RelayDaemon relay{reactor, 0};

  explicit Fixture(std::uint64_t resource = 400000) {
    origin.add_resource("/blob", resource);
  }

  /// Shapes direct requests to `direct_rate` and relayed ones (Via
  /// header) to `relayed_rate` — the loopback stand-in for asymmetric
  /// wide-area paths. 0 = unthrottled.
  void shape(double direct_rate, double relayed_rate) {
    origin.set_shaping_policy(
        [direct_rate, relayed_rate](const http::Request& r) {
          return r.headers.has("Via") ? relayed_rate : direct_rate;
        });
  }
};

TEST(RtRelay, ForwardsVerbatimBody) {
  Fixture fx;
  FetchRequest req;
  req.origin.port = fx.origin.port();
  req.path = "/blob";
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body_bytes, 400000u);
  EXPECT_TRUE(result->body_verified);
  EXPECT_EQ(fx.relay.transfers_forwarded(), 1u);
  EXPECT_GT(fx.relay.bytes_forwarded(), 400000u);  // body + headers
}

TEST(RtRelay, ForwardsRangeRequests) {
  Fixture fx;
  FetchRequest req;
  req.origin.port = fx.origin.port();
  req.path = "/blob";
  req.range = http::range_first_bytes(100000);
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->status, 206);
  EXPECT_EQ(result->body_bytes, 100000u);
  EXPECT_TRUE(result->body_verified);
}

TEST(RtRelay, BadGatewayOnDeadOrigin) {
  Fixture fx;
  FetchRequest req;
  req.origin.host = "127.0.0.1";
  req.origin.port = 1;  // closed
  req.path = "/blob";
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  req.timeout_s = 5.0;
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(result->status == 502 || result->status == 504)
      << result->status << " " << result->error;
}

TEST(RtRelay, NonProxyRequestRejected) {
  Fixture fx;
  // Talk to the relay as if it were an origin (origin-form target).
  FetchRequest req;
  req.origin.port = fx.relay.port();
  req.path = "/blob";
  req.timeout_s = 5.0;
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->status, 400);
}

TEST(RtRace, PicksRelayWhenDirectIsSlow) {
  Fixture fx;
  fx.shape(/*direct=*/60000.0, /*relayed=*/0.0);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(result->chose_indirect);
  EXPECT_EQ(result->relay_index, 0u);
  EXPECT_EQ(result->total_bytes, 400000u);
  EXPECT_TRUE(result->body_verified);
  EXPECT_GE(result->total_elapsed, result->probe_elapsed);
}

TEST(RtRace, PicksDirectWhenRelayIsSlow) {
  Fixture fx;
  fx.shape(/*direct=*/0.0, /*relayed=*/60000.0);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_FALSE(result->chose_indirect);
  EXPECT_TRUE(result->body_verified);
}

TEST(RtRace, BestOfTwoRelaysWins) {
  Fixture fx;
  RelayDaemon relay2{fx.reactor, 0};
  // Direct slow; relayed fast — both relays see the same origin policy,
  // so the race between the two relays is decided by readiness; either
  // is a correct indirect choice.
  fx.shape(/*direct=*/40000.0, /*relayed=*/0.0);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 80000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()},
                 Endpoint{"127.0.0.1", relay2.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(result->chose_indirect);
  EXPECT_LT(result->relay_index, 2u);
  EXPECT_TRUE(result->body_verified);
}

TEST(RtRace, ProbeCoveringFileSkipsRemainder) {
  Fixture fx(50000);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 50000;
  spec.probe_bytes = 100000;  // > file
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_DOUBLE_EQ(result->total_elapsed, result->probe_elapsed);
}

std::uint64_t counter_of(const obs::Registry& registry, const char* name) {
  const obs::MetricValue* m = registry.snapshot().find(name);
  return m != nullptr ? m->count : 0;
}

TEST(RtSelect, FreshEstimateSkipsRaceWithZeroProbeConnections) {
  Fixture fx;
  fx.shape(/*direct=*/60000.0, /*relayed=*/0.0);
  obs::Registry registry;
  PassiveSelectorConfig config;
  config.staleness_threshold_s = 300.0;
  PassiveSelector selector(1, config);

  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  spec.metrics = &registry;

  // Race 1: a real race. The relay wins (direct is shaped slow) and its
  // observed throughput becomes a race-validated estimate.
  ASSERT_FALSE(selector.prepare(spec, fx.reactor.now()).has_value());
  std::optional<RaceResult> first;
  start_probe_race(fx.reactor, spec, [&](const RaceResult& r) { first = r; });
  spin_until(fx.reactor, 30.0, [&] { return first.has_value(); });
  ASSERT_TRUE(first->ok) << first->error;
  ASSERT_TRUE(first->chose_indirect);
  EXPECT_FALSE(first->race_skipped);
  selector.observe(*first, fx.reactor.now());
  EXPECT_EQ(counter_of(registry, "rt.select.races_run"), 1u);

  // Race 2: the estimate is seconds old — prepare() pins, and the whole
  // transfer rides the relay in a single request: no probe connections
  // at all (the first race cost three origin requests: two probe lanes
  // plus the winner's remainder).
  const std::size_t origin_before = fx.origin.requests_served();
  const std::size_t forwarded_before = fx.relay.transfers_forwarded();
  const auto pinned = selector.prepare(spec, fx.reactor.now());
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(*pinned, 0u);
  std::optional<RaceResult> second;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { second = r; });
  spin_until(fx.reactor, 30.0, [&] { return second.has_value(); });
  ASSERT_TRUE(second->ok) << second->error;
  EXPECT_TRUE(second->race_skipped);
  EXPECT_TRUE(second->chose_indirect);
  EXPECT_EQ(second->relay_index, 0u);
  EXPECT_EQ(second->total_bytes, 400000u);
  EXPECT_TRUE(second->body_verified);
  EXPECT_DOUBLE_EQ(second->probe_elapsed, 0.0);
  EXPECT_EQ(fx.origin.requests_served() - origin_before, 1u);
  EXPECT_EQ(fx.relay.transfers_forwarded() - forwarded_before, 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.races_skipped"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.races_run"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.pinned_fallbacks"), 0u);
  selector.observe(*second, fx.reactor.now());
  // The skipped race's sample refines the estimate passively but must
  // not re-validate freshness: only real races renew the pin.
  EXPECT_EQ(selector.stats().record(0).validated_samples, 1u);
  EXPECT_EQ(selector.stats().record(0).estimate_samples, 2u);
}

TEST(RtSelect, DeadPinnedRelayFallsBackToFullRace) {
  Fixture fx;
  obs::Registry registry;
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  // Pin points at a crashed relay (closed port); the live relay and the
  // direct path remain as the fallback race.
  spec.relays = {Endpoint{"127.0.0.1", 1},
                 Endpoint{"127.0.0.1", fx.relay.port()}};
  spec.metrics = &registry;
  spec.timeout_s = 10.0;
  spec.pinned_relay = 0;
  spec.pinned_estimate_age_s = 1.0;

  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  // The transfer must still succeed — via the full race, not the pin.
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_FALSE(result->race_skipped);
  EXPECT_EQ(result->total_bytes, 400000u);
  EXPECT_TRUE(result->body_verified);
  EXPECT_EQ(counter_of(registry, "rt.select.races_skipped"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.pinned_fallbacks"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.races_run"), 1u);
}

TEST(RtRelay, AppendsToExistingViaChainWithReceivedProtocol) {
  Fixture fx;
  // Capture the Via header as the origin sees it; the shaping policy is
  // the one hook that reads the forwarded request's headers.
  std::string via_at_origin;
  fx.origin.set_shaping_policy([&](const http::Request& r) {
    if (const auto via = r.headers.get("Via")) via_at_origin = *via;
    return 0.0;
  });

  // A raw absolute-form request already carrying a Via chain — two
  // headers, as an earlier multi-hop proxy path would leave them. RFC
  // 7230 §5.7.1: the relay must append its own token to the collapsed
  // chain, not add a duplicate header, and the token carries the
  // protocol version the request actually arrived with.
  FdHandle sock = connect_nonblocking("127.0.0.1", fx.relay.port());
  const std::string wire =
      "GET http://127.0.0.1:" + std::to_string(fx.origin.port()) +
      "/blob HTTP/1.1\r\n"
      "Host: 127.0.0.1\r\n"
      "Via: 1.0 edge-cache\r\n"
      "Via: 1.1 corp-proxy\r\n"
      "\r\n";
  std::size_t sent = 0;
  spin_until(fx.reactor, 10.0, [&] {
    if (sent < wire.size()) {
      const ssize_t n = ::send(sock.get(), wire.data() + sent,
                               wire.size() - sent, MSG_NOSIGNAL);
      if (n > 0) sent += static_cast<std::size_t>(n);
    }
    return !via_at_origin.empty();
  });
  EXPECT_EQ(via_at_origin, "1.0 edge-cache, 1.1 corp-proxy, "
                           "1.1 indiroute-relay");
}

TEST(RtTrace, MergedTraceLinksClientRelayAndOriginSpans) {
  Fixture fx;
  fx.shape(/*direct=*/60000.0, /*relayed=*/0.0);  // the relay wins
  obs::Tracer tracer;
  tracer.set_enabled(true);
  fx.relay.set_tracer(&tracer, /*pid=*/10, /*track=*/0);
  fx.origin.set_tracer(&tracer, /*pid=*/2, /*track=*/0);

  util::Rng rng(7);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  spec.tracer = &tracer;
  spec.trace = obs::make_trace_context(rng);
  spec.trace_pid = 1;
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  ASSERT_TRUE(result->chose_indirect);

  // One causally linked trace: the client's race span plus both hops'
  // server spans all carry the caller's trace id, and the flow binds use
  // it as the flow id so the viewer draws one arrowed chain.
  bool client_race = false, relay_parse = false, relay_stream = false;
  bool origin_parse = false, origin_stream = false;
  bool flow_start = false, flow_step = false, flow_finish = false;
  for (const auto& ev : tracer.events()) {
    if (ev.phase == 's') flow_start |= ev.flow_id == spec.trace.trace_id;
    if (ev.phase == 't') flow_step |= ev.flow_id == spec.trace.trace_id;
    if (ev.phase == 'f') flow_finish |= ev.flow_id == spec.trace.trace_id;
    if (ev.phase != 'X') continue;
    // Every span of this run belongs to the one trace — nothing orphaned,
    // nothing cross-linked.
    EXPECT_EQ(ev.trace_id, spec.trace.trace_id) << ev.name;
    EXPECT_NE(ev.span_id, 0u) << ev.name;
    if (ev.name == "probe_race") {
      client_race = true;
      EXPECT_EQ(ev.pid, 1u);
      EXPECT_EQ(ev.span_id, spec.trace.span_id);
    } else if (ev.name == "relay.parse") {
      relay_parse = true;
      EXPECT_EQ(ev.pid, 10u);
      EXPECT_NE(ev.parent_span, 0u);
    } else if (ev.name == "relay.stream") {
      relay_stream = true;
    } else if (ev.name == "origin.parse") {
      origin_parse = true;
      EXPECT_EQ(ev.pid, 2u);
      EXPECT_NE(ev.parent_span, 0u);
    } else if (ev.name == "origin.stream") {
      origin_stream = true;
    }
  }
  EXPECT_TRUE(client_race);
  EXPECT_TRUE(relay_parse);
  EXPECT_TRUE(relay_stream);
  EXPECT_TRUE(origin_parse);
  EXPECT_TRUE(origin_stream);
  EXPECT_TRUE(flow_start);
  EXPECT_TRUE(flow_step);
  EXPECT_TRUE(flow_finish);

  // A context-free transfer through the same traced daemons emits no
  // server spans at all: requests without a traceparent stay invisible,
  // so a merged fleet trace can never contain orphan server spans.
  const std::size_t before = tracer.size();
  std::optional<FetchResult> plain;
  FetchRequest req;
  req.origin.port = fx.origin.port();
  req.path = "/blob";
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  fetch(fx.reactor, req, [&](const FetchResult& r) { plain = r; });
  spin_until(fx.reactor, 30.0, [&] { return plain.has_value(); });
  ASSERT_TRUE(plain->ok) << plain->error;
  EXPECT_EQ(tracer.size(), before);
}

TEST(RtRace, AllLanesFailingReportsError) {
  Reactor reactor;
  RaceSpec spec;
  spec.origin.port = 1;  // closed port, no relays
  spec.path = "/blob";
  spec.resource_size = 1000;
  spec.probe_bytes = 100;
  spec.timeout_s = 5.0;
  std::optional<RaceResult> result;
  start_probe_race(reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_FALSE(result->error.empty());
}

}  // namespace
}  // namespace idr::rt
