// End-to-end loopback tests of the relay daemon and the real probe race —
// the full indirect-routing pipeline on actual sockets.
#include <gtest/gtest.h>

#include <optional>

#include "obs/metrics.hpp"
#include "rt/http_client.hpp"
#include "rt/http_server.hpp"
#include "rt/probe_race.hpp"
#include "rt/relay_daemon.hpp"
#include "rt/selection.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

struct Fixture {
  Reactor reactor;
  HttpOriginServer origin{reactor, 0};
  RelayDaemon relay{reactor, 0};

  explicit Fixture(std::uint64_t resource = 400000) {
    origin.add_resource("/blob", resource);
  }

  /// Shapes direct requests to `direct_rate` and relayed ones (Via
  /// header) to `relayed_rate` — the loopback stand-in for asymmetric
  /// wide-area paths. 0 = unthrottled.
  void shape(double direct_rate, double relayed_rate) {
    origin.set_shaping_policy(
        [direct_rate, relayed_rate](const http::Request& r) {
          return r.headers.has("Via") ? relayed_rate : direct_rate;
        });
  }
};

TEST(RtRelay, ForwardsVerbatimBody) {
  Fixture fx;
  FetchRequest req;
  req.origin.port = fx.origin.port();
  req.path = "/blob";
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->status, 200);
  EXPECT_EQ(result->body_bytes, 400000u);
  EXPECT_TRUE(result->body_verified);
  EXPECT_EQ(fx.relay.transfers_forwarded(), 1u);
  EXPECT_GT(fx.relay.bytes_forwarded(), 400000u);  // body + headers
}

TEST(RtRelay, ForwardsRangeRequests) {
  Fixture fx;
  FetchRequest req;
  req.origin.port = fx.origin.port();
  req.path = "/blob";
  req.range = http::range_first_bytes(100000);
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_EQ(result->status, 206);
  EXPECT_EQ(result->body_bytes, 100000u);
  EXPECT_TRUE(result->body_verified);
}

TEST(RtRelay, BadGatewayOnDeadOrigin) {
  Fixture fx;
  FetchRequest req;
  req.origin.host = "127.0.0.1";
  req.origin.port = 1;  // closed
  req.path = "/blob";
  req.proxy = Endpoint{"127.0.0.1", fx.relay.port()};
  req.timeout_s = 5.0;
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_TRUE(result->status == 502 || result->status == 504)
      << result->status << " " << result->error;
}

TEST(RtRelay, NonProxyRequestRejected) {
  Fixture fx;
  // Talk to the relay as if it were an origin (origin-form target).
  FetchRequest req;
  req.origin.port = fx.relay.port();
  req.path = "/blob";
  req.timeout_s = 5.0;
  std::optional<FetchResult> result;
  fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_EQ(result->status, 400);
}

TEST(RtRace, PicksRelayWhenDirectIsSlow) {
  Fixture fx;
  fx.shape(/*direct=*/60000.0, /*relayed=*/0.0);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(result->chose_indirect);
  EXPECT_EQ(result->relay_index, 0u);
  EXPECT_EQ(result->total_bytes, 400000u);
  EXPECT_TRUE(result->body_verified);
  EXPECT_GE(result->total_elapsed, result->probe_elapsed);
}

TEST(RtRace, PicksDirectWhenRelayIsSlow) {
  Fixture fx;
  fx.shape(/*direct=*/0.0, /*relayed=*/60000.0);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_FALSE(result->chose_indirect);
  EXPECT_TRUE(result->body_verified);
}

TEST(RtRace, BestOfTwoRelaysWins) {
  Fixture fx;
  RelayDaemon relay2{fx.reactor, 0};
  // Direct slow; relayed fast — both relays see the same origin policy,
  // so the race between the two relays is decided by readiness; either
  // is a correct indirect choice.
  fx.shape(/*direct=*/40000.0, /*relayed=*/0.0);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 80000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()},
                 Endpoint{"127.0.0.1", relay2.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(result->chose_indirect);
  EXPECT_LT(result->relay_index, 2u);
  EXPECT_TRUE(result->body_verified);
}

TEST(RtRace, ProbeCoveringFileSkipsRemainder) {
  Fixture fx(50000);
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 50000;
  spec.probe_bytes = 100000;  // > file
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_DOUBLE_EQ(result->total_elapsed, result->probe_elapsed);
}

std::uint64_t counter_of(const obs::Registry& registry, const char* name) {
  const obs::MetricValue* m = registry.snapshot().find(name);
  return m != nullptr ? m->count : 0;
}

TEST(RtSelect, FreshEstimateSkipsRaceWithZeroProbeConnections) {
  Fixture fx;
  fx.shape(/*direct=*/60000.0, /*relayed=*/0.0);
  obs::Registry registry;
  PassiveSelectorConfig config;
  config.staleness_threshold_s = 300.0;
  PassiveSelector selector(1, config);

  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  spec.relays = {Endpoint{"127.0.0.1", fx.relay.port()}};
  spec.metrics = &registry;

  // Race 1: a real race. The relay wins (direct is shaped slow) and its
  // observed throughput becomes a race-validated estimate.
  ASSERT_FALSE(selector.prepare(spec, fx.reactor.now()).has_value());
  std::optional<RaceResult> first;
  start_probe_race(fx.reactor, spec, [&](const RaceResult& r) { first = r; });
  spin_until(fx.reactor, 30.0, [&] { return first.has_value(); });
  ASSERT_TRUE(first->ok) << first->error;
  ASSERT_TRUE(first->chose_indirect);
  EXPECT_FALSE(first->race_skipped);
  selector.observe(*first, fx.reactor.now());
  EXPECT_EQ(counter_of(registry, "rt.select.races_run"), 1u);

  // Race 2: the estimate is seconds old — prepare() pins, and the whole
  // transfer rides the relay in a single request: no probe connections
  // at all (the first race cost three origin requests: two probe lanes
  // plus the winner's remainder).
  const std::size_t origin_before = fx.origin.requests_served();
  const std::size_t forwarded_before = fx.relay.transfers_forwarded();
  const auto pinned = selector.prepare(spec, fx.reactor.now());
  ASSERT_TRUE(pinned.has_value());
  EXPECT_EQ(*pinned, 0u);
  std::optional<RaceResult> second;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { second = r; });
  spin_until(fx.reactor, 30.0, [&] { return second.has_value(); });
  ASSERT_TRUE(second->ok) << second->error;
  EXPECT_TRUE(second->race_skipped);
  EXPECT_TRUE(second->chose_indirect);
  EXPECT_EQ(second->relay_index, 0u);
  EXPECT_EQ(second->total_bytes, 400000u);
  EXPECT_TRUE(second->body_verified);
  EXPECT_DOUBLE_EQ(second->probe_elapsed, 0.0);
  EXPECT_EQ(fx.origin.requests_served() - origin_before, 1u);
  EXPECT_EQ(fx.relay.transfers_forwarded() - forwarded_before, 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.races_skipped"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.races_run"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.pinned_fallbacks"), 0u);
  selector.observe(*second, fx.reactor.now());
  // The skipped race's sample refines the estimate passively but must
  // not re-validate freshness: only real races renew the pin.
  EXPECT_EQ(selector.stats().record(0).validated_samples, 1u);
  EXPECT_EQ(selector.stats().record(0).estimate_samples, 2u);
}

TEST(RtSelect, DeadPinnedRelayFallsBackToFullRace) {
  Fixture fx;
  obs::Registry registry;
  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 400000;
  spec.probe_bytes = 100000;
  // Pin points at a crashed relay (closed port); the live relay and the
  // direct path remain as the fallback race.
  spec.relays = {Endpoint{"127.0.0.1", 1},
                 Endpoint{"127.0.0.1", fx.relay.port()}};
  spec.metrics = &registry;
  spec.timeout_s = 10.0;
  spec.pinned_relay = 0;
  spec.pinned_estimate_age_s = 1.0;

  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  // The transfer must still succeed — via the full race, not the pin.
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_FALSE(result->race_skipped);
  EXPECT_EQ(result->total_bytes, 400000u);
  EXPECT_TRUE(result->body_verified);
  EXPECT_EQ(counter_of(registry, "rt.select.races_skipped"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.pinned_fallbacks"), 1u);
  EXPECT_EQ(counter_of(registry, "rt.select.races_run"), 1u);
}

TEST(RtRace, AllLanesFailingReportsError) {
  Reactor reactor;
  RaceSpec spec;
  spec.origin.port = 1;  // closed port, no relays
  spec.path = "/blob";
  spec.resource_size = 1000;
  spec.probe_bytes = 100;
  spec.timeout_s = 5.0;
  std::optional<RaceResult> result;
  start_probe_race(reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_FALSE(result->ok);
  EXPECT_FALSE(result->error.empty());
}

}  // namespace
}  // namespace idr::rt
