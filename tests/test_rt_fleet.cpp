// Fleet control-plane tests over real loopback sockets: the
// FleetDirectory's heartbeat probes must drive the membership state
// machine through every transition the fleet model promises —
// fault-injected death (suspect, then down), recovery through probation,
// advertised draining before the listener closes, shedding held out via
// Retry-After — plus hot reload of both the relay list and a daemon's
// ServerLimits mid-run.
//
// The FleetSoak suite (ctest label `soak`) rolls a seeded sequence of
// kill/restart rounds under concurrent transfer load and requires zero
// failed transfers throughout.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "rt/fault_shim.hpp"
#include "rt/fleet.hpp"
#include "rt/http_server.hpp"
#include "rt/probe_race.hpp"
#include "rt/relay_daemon.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.01);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

struct ShimGuard {
  ShimGuard() { FaultShim::instance().clear(); }
  ~ShimGuard() { FaultShim::instance().clear(); }
};

/// Fast fleet config: 20 ms heartbeats so state transitions land well
/// inside test deadlines even under sanitizers.
FleetConfig fast_fleet() {
  FleetConfig config;
  config.heartbeat_interval_s = 0.02;
  config.probe_timeout_s = 0.2;
  config.probe_connect_timeout_s = 0.1;
  config.probe_backoff_max_s = 0.08;
  config.membership.probation_s = 0.1;
  return config;
}

std::uint64_t fleet_count(const FleetDirectory& directory,
                          const char* name) {
  const obs::Snapshot snap = directory.metrics().snapshot();
  const obs::MetricValue* metric = snap.find(name);
  return metric ? metric->count : 0;
}

TEST(RtFleet, DropOnConnectDrivesSuspectThenDownThenProbationRecovery) {
  ShimGuard guard;
  Reactor reactor;
  RelayDaemon relay(reactor, 0);
  const Endpoint endpoint{"127.0.0.1", relay.port()};

  FleetDirectory directory(reactor, fast_fleet());
  directory.add_relay(endpoint, "victim");
  directory.start();
  spin_until(reactor, 5.0, [&] {
    return fleet_count(directory, "rt.fleet.probes_ok") >= 2;
  });
  EXPECT_EQ(directory.health(endpoint), core::RelayHealth::Alive);

  // Every subsequent probe dial is refused: the injected equivalent of a
  // crashed relay host.
  FaultRule rule;
  rule.kind = FaultKind::kDropOnConnect;
  rule.uses = -1;
  FaultShim::instance().arm(relay.port(), rule);

  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Suspect;
  });
  // One miss: suspected but still eligible.
  EXPECT_TRUE(directory.eligible(endpoint));

  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Down;
  });
  EXPECT_FALSE(directory.eligible(endpoint));
  EXPECT_EQ(fleet_count(directory, "rt.fleet.marked_down"), 1u);
  // Detection latency was recorded, bounded by two heartbeat intervals
  // plus probe-timeout slack.
  const obs::Snapshot snap = directory.metrics().snapshot();
  const obs::MetricValue* detect =
      snap.find("rt.fleet.detect_seconds_max");
  ASSERT_NE(detect, nullptr);
  EXPECT_GT(detect->value, 0.0);
  EXPECT_LE(detect->value, 2 * 0.02 + 0.1 + 0.2);

  // Recovery: probes reach the (still-running) daemon again. The relay
  // must pass through Probation — excluded — before re-admission.
  FaultShim::instance().clear();
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Probation;
  });
  EXPECT_FALSE(directory.eligible(endpoint));
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Alive;
  });
  EXPECT_TRUE(directory.eligible(endpoint));
  EXPECT_EQ(fleet_count(directory, "rt.fleet.readmitted"), 1u);
}

TEST(RtFleet, DrainingAdvertisedBeforeListenerClosesAndExcluded) {
  ShimGuard guard;
  Reactor reactor;
  HttpOriginServer origin(reactor, 0);
  origin.add_resource("/blob", 400000);
  origin.set_shaping_policy([](const http::Request&) { return 100e3; });

  RelayDaemon relay(reactor, 0);
  const Endpoint endpoint{"127.0.0.1", relay.port()};

  FleetDirectory directory(reactor, fast_fleet());
  directory.add_relay(endpoint, "drainer");
  directory.start();
  spin_until(reactor, 5.0, [&] {
    return fleet_count(directory, "rt.fleet.probes_ok") >= 1;
  });

  // A slow relayed transfer holds the drain open for multiple heartbeat
  // intervals (400 KB at 100 KB/s = ~4 s).
  FetchRequest req;
  req.origin.port = origin.port();
  req.path = "/blob";
  req.proxy = endpoint;
  req.timeout_s = 30.0;
  std::optional<FetchResult> transfer;
  fetch(reactor, req, [&](const FetchResult& r) { transfer = r; });
  spin_until(reactor, 5.0,
             [&] { return relay.transfers_forwarded() == 1; });

  bool drained = false;
  relay.drain([&] { drained = true; });

  // The advertisement is observable IMMEDIATELY — while the in-flight
  // transfer still runs and the listener still answers probes.
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Draining;
  });
  EXPECT_FALSE(drained);
  EXPECT_FALSE(transfer.has_value());
  EXPECT_FALSE(directory.eligible(endpoint));

  // Selection spends zero race probes on it: the candidate filter drops
  // the endpoint and counts the exclusion.
  const std::uint64_t excluded_before =
      fleet_count(directory, "rt.fleet.candidates_excluded");
  EXPECT_TRUE(directory.eligible_indices({endpoint}).empty());
  EXPECT_EQ(fleet_count(directory, "rt.fleet.candidates_excluded"),
            excluded_before + 1);

  // Heartbeats keep landing while draining (the listener is open until
  // the last pre-drain session finishes).
  const std::uint64_t ok_before =
      fleet_count(directory, "rt.fleet.probes_ok");
  spin_until(reactor, 5.0, [&] {
    return fleet_count(directory, "rt.fleet.probes_ok") >= ok_before + 3;
  });
  EXPECT_EQ(directory.health(endpoint), core::RelayHealth::Draining);

  // The in-flight transfer completes intact; only then does the drain
  // finish and the listener close — after which misses take the relay
  // Down (still labelled draining until the down threshold).
  // The relay-side drop and the client-side parse completion land a
  // poll apart; wait for both.
  spin_until(reactor, 30.0,
             [&] { return drained && transfer.has_value(); });
  EXPECT_TRUE(transfer->ok);
  EXPECT_TRUE(transfer->body_verified);
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Down;
  });
}

TEST(RtFleet, SheddingDeprioritizedViaRetryAfterThenReadmitted) {
  ShimGuard guard;
  Reactor reactor;
  HttpOriginServer origin(reactor, 0);
  origin.add_resource("/blob", 300000);
  origin.set_shaping_policy([](const http::Request&) { return 100e3; });

  ServerLimits limits;
  limits.max_sessions = 1;
  limits.retry_after_s = 30.0;  // hold must clearly outlast the test spin
  RelayDaemon relay(reactor, 0, limits);
  const Endpoint endpoint{"127.0.0.1", relay.port()};

  FleetDirectory directory(reactor, fast_fleet());
  directory.add_relay(endpoint, "shedder");
  directory.start();

  // Saturate the single admission slot with a slow transfer.
  FetchRequest req;
  req.origin.port = origin.port();
  req.path = "/blob";
  req.proxy = endpoint;
  req.timeout_s = 30.0;
  std::optional<FetchResult> transfer;
  fetch(reactor, req, [&](const FetchResult& r) { transfer = r; });
  spin_until(reactor, 5.0,
             [&] { return relay.transfers_forwarded() == 1; });

  // Heartbeats read daemon-level "shedding" + the Retry-After hint —
  // they are served, not shed, yet report the overload.
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Shedding;
  });
  EXPECT_FALSE(directory.eligible(endpoint));
  EXPECT_GE(directory.table().record(0).shed_hold_until,
            reactor.now() + 20.0);

  // Load clears; the next "ok" heartbeat readmits with no probation.
  spin_until(reactor, 30.0, [&] { return transfer.has_value(); });
  EXPECT_TRUE(transfer->ok);
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Alive;
  });
  EXPECT_TRUE(directory.eligible(endpoint));
}

TEST(RtFleet, HotReloadSwapsRelaySetWithoutDisturbingSurvivors) {
  ShimGuard guard;
  Reactor reactor;
  RelayDaemon relay_a(reactor, 0);
  RelayDaemon relay_b(reactor, 0);
  RelayDaemon relay_c(reactor, 0);
  const Endpoint a{"127.0.0.1", relay_a.port()};
  const Endpoint b{"127.0.0.1", relay_b.port()};
  const Endpoint c{"127.0.0.1", relay_c.port()};

  FleetDirectory directory(reactor, fast_fleet());
  directory.add_relay(a, "a");
  directory.add_relay(b, "b");
  directory.start();
  spin_until(reactor, 5.0, [&] {
    return fleet_count(directory, "rt.fleet.probes_ok") >= 4;
  });

  // Degrade b so the reload demonstrably preserves survivor state.
  FaultRule rule;
  rule.kind = FaultKind::kDropOnConnect;
  rule.uses = -1;
  FaultShim::instance().arm(relay_b.port(), rule);
  spin_until(reactor, 5.0, [&] {
    return directory.health(b) == core::RelayHealth::Down;
  });

  directory.reload({b, c});  // a leaves, c joins, b survives
  EXPECT_EQ(directory.relay_count(), 2u);
  EXPECT_FALSE(directory.eligible(b));  // still Down — history kept
  EXPECT_EQ(directory.health(c), core::RelayHealth::Alive);
  // The departed relay is no longer tracked (and never vetoed).
  EXPECT_TRUE(directory.eligible(a));
  EXPECT_EQ(fleet_count(directory, "rt.fleet.reloads"), 1u);
  EXPECT_EQ(fleet_count(directory, "rt.fleet.relays_removed"), 1u);

  // The new member is probed for real.
  const std::uint64_t ok_before =
      fleet_count(directory, "rt.fleet.probes_ok");
  spin_until(reactor, 5.0, [&] {
    return fleet_count(directory, "rt.fleet.probes_ok") >= ok_before + 2;
  });
}

TEST(RtFleet, ReloadLimitsAppliesGovernanceMidRun) {
  ShimGuard guard;
  Reactor reactor;
  HttpOriginServer origin(reactor, 0);
  origin.add_resource("/blob", 300000);
  origin.set_shaping_policy([](const http::Request&) { return 100e3; });

  RelayDaemon relay(reactor, 0);  // ungoverned at birth
  const Endpoint endpoint{"127.0.0.1", relay.port()};
  EXPECT_FALSE(relay.limits().governs_admission());

  // Occupy the daemon, then hot-reload a 1-session cap under it.
  FetchRequest req;
  req.origin.port = origin.port();
  req.path = "/blob";
  req.proxy = endpoint;
  req.timeout_s = 30.0;
  std::optional<FetchResult> transfer;
  fetch(reactor, req, [&](const FetchResult& r) { transfer = r; });
  spin_until(reactor, 5.0,
             [&] { return relay.transfers_forwarded() == 1; });

  ServerLimits limits;
  limits.max_sessions = 1;
  limits.retry_after_s = 7.0;
  relay.reload_limits(limits);
  EXPECT_TRUE(relay.limits().governs_admission());

  // The very next heartbeat sees daemon-level "shedding" with the new
  // Retry-After — governance took effect without a restart.
  FleetDirectory directory(reactor, fast_fleet());
  directory.add_relay(endpoint, "reloaded");
  directory.start();
  spin_until(reactor, 5.0, [&] {
    return directory.health(endpoint) == core::RelayHealth::Shedding;
  });

  // And the in-flight transfer admitted under the old limits finishes
  // untouched.
  spin_until(reactor, 30.0, [&] { return transfer.has_value(); });
  EXPECT_TRUE(transfer->ok);
  EXPECT_TRUE(transfer->body_verified);
  const obs::Snapshot snap = relay.metrics().snapshot();
  const obs::MetricValue* reloaded =
      snap.find("rt.relay.limits_reloaded");
  ASSERT_NE(reloaded, nullptr);
  EXPECT_EQ(reloaded->count, 1u);
}

// --- Soak: seeded rolling kill/restart rounds under transfer load. ---

TEST(FleetSoak, SeededKillRestartRoundsLoseNothing) {
  ShimGuard guard;
  Reactor reactor;
  HttpOriginServer origin(reactor, 0);
  constexpr std::uint64_t kSize = 150000;
  origin.add_resource("/blob", kSize);
  origin.set_shaping_policy([](const http::Request& r) {
    return r.headers.has("Via") ? 4e6 : 400e3;
  });

  constexpr std::size_t kRelays = 3;
  struct Slot {
    std::uint16_t port = 0;
    std::unique_ptr<RelayDaemon> daemon;
  };
  std::vector<Slot> slots(kRelays);
  std::vector<Endpoint> endpoints;
  for (auto& slot : slots) {
    slot.daemon = std::make_unique<RelayDaemon>(reactor, 0);
    slot.port = slot.daemon->port();
    endpoints.push_back(Endpoint{"127.0.0.1", slot.port});
  }

  FleetConfig config = fast_fleet();
  config.heartbeat_interval_s = 0.05;
  FleetDirectory directory(reactor, config);
  for (std::size_t i = 0; i < kRelays; ++i) {
    directory.add_relay(endpoints[i], "soak-" + std::to_string(i));
  }
  directory.start();

  std::size_t completed = 0, failed = 0;
  bool stop = false;
  std::size_t inflight = 0;
  std::function<void()> launch = [&] {
    if (stop) return;
    ++inflight;
    RaceSpec spec;
    spec.origin = Endpoint{"127.0.0.1", origin.port()};
    spec.path = "/blob";
    spec.resource_size = kSize;
    spec.probe_bytes = 30000;
    spec.timeout_s = 20.0;
    spec.retry.max_retries = 2;
    spec.retry.base_delay = 0.05;
    spec.retry.max_delay = 0.5;
    for (std::size_t i : directory.eligible_indices(endpoints)) {
      spec.relays.push_back(endpoints[i]);
    }
    start_probe_race(reactor, spec, [&](const RaceResult& result) {
      --inflight;
      result.ok ? ++completed : ++failed;
      launch();
    });
  };
  for (int i = 0; i < 3; ++i) launch();

  // The seed fixes the victim sequence; the run itself is real sockets.
  util::Rng rng(0x5eedf1ee7u);
  constexpr int kRounds = 5;
  for (int round = 0; round < kRounds; ++round) {
    const std::size_t victim = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(kRelays) - 1));
    Slot& slot = slots[victim];

    slot.daemon.reset();  // abrupt kill, mid-whatever
    spin_until(reactor, 20.0, [&] {
      return directory.health(endpoints[victim]) ==
             core::RelayHealth::Down;
    });

    // Rebind the same port (SO_REUSEADDR); retry briefly if the kernel
    // still holds it.
    spin_until(reactor, 20.0, [&] {
      if (slot.daemon) return true;
      try {
        slot.daemon = std::make_unique<RelayDaemon>(reactor, slot.port);
      } catch (const util::Error&) {
      }
      return slot.daemon != nullptr;
    });
    spin_until(reactor, 20.0, [&] {
      return directory.health(endpoints[victim]) ==
             core::RelayHealth::Alive;
    });
    ASSERT_EQ(failed, 0u) << "transfers lost in round " << round;
  }

  const std::size_t floor = completed + 3;
  spin_until(reactor, 20.0, [&] { return completed >= floor; });
  stop = true;
  spin_until(reactor, 30.0, [&] { return inflight == 0; });

  EXPECT_EQ(failed, 0u);
  EXPECT_GE(completed, static_cast<std::size_t>(kRounds));
  EXPECT_GE(fleet_count(directory, "rt.fleet.marked_down"),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_GE(fleet_count(directory, "rt.fleet.readmitted"),
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(directory.table().eligible_count(reactor.now()), kRelays);
}

}  // namespace
}  // namespace idr::rt
