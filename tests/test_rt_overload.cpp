// Overload-governance tests for the real-socket daemons: session caps and
// 503 shedding, accept-pause backpressure, idle reaping, accept() failure
// survival (fd exhaustion), graceful drain, and the race treating a shed
// as a soft failure.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <optional>
#include <vector>

#include "obs/json.hpp"
#include "rt/governance.hpp"
#include "rt/http_client.hpp"
#include "rt/http_server.hpp"
#include "rt/probe_race.hpp"
#include "rt/relay_daemon.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

struct Fixture {
  Reactor reactor;
  HttpOriginServer origin{reactor, 0};

  explicit Fixture(std::uint64_t resource = 300000) {
    origin.add_resource("/blob", resource);
  }

  /// Throttles relayed (Via) requests so a relay session stays busy long
  /// enough to overload deterministically; direct stays unthrottled.
  void slow_relayed(double rate) {
    origin.set_shaping_policy([rate](const http::Request& r) {
      return r.headers.has("Via") ? rate : 0.0;
    });
  }

  FetchRequest via(const RelayDaemon& relay) {
    FetchRequest req;
    req.origin.port = origin.port();
    req.path = "/blob";
    req.proxy = Endpoint{"127.0.0.1", relay.port()};
    return req;
  }
};

TEST(Governance, OverloadResponseShape) {
  const http::Response resp = make_overload_response(2.2);
  EXPECT_EQ(resp.status, 503);
  EXPECT_EQ(resp.headers.get("Retry-After"), "3");  // rounded up
  EXPECT_EQ(resp.headers.get("Connection"), "close");
}

TEST(Governance, TransientAcceptErrnos) {
  for (int err : {EMFILE, ENFILE, ENOBUFS, ENOMEM, ECONNABORTED, EINTR}) {
    EXPECT_TRUE(accept_errno_is_transient(err)) << err;
  }
  for (int err : {EBADF, EINVAL, ENOTSOCK}) {
    EXPECT_FALSE(accept_errno_is_transient(err)) << err;
  }
}

TEST(RtOverload, RelayShedsBeyondSessionCapWith503) {
  Fixture fx;
  fx.slow_relayed(50000.0);  // 300 KB at 50 KB/s: ~6 s busy
  ServerLimits limits;
  limits.max_sessions = 1;
  limits.retry_after_s = 2.5;
  RelayDaemon relay{fx.reactor, 0, limits};

  // First transfer occupies the only session slot.
  std::optional<FetchResult> first;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { first = r; });
  spin_until(fx.reactor, 10.0, [&] { return relay.active_sessions() == 1; });

  // Second arrival is told 503 with the advertised Retry-After.
  std::optional<FetchResult> second;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { second = r; });
  spin_until(fx.reactor, 10.0, [&] { return second.has_value(); });
  EXPECT_FALSE(second->ok);
  EXPECT_EQ(second->status, 503);
  EXPECT_TRUE(second->overloaded());
  EXPECT_DOUBLE_EQ(second->retry_after_s, 3.0);  // ceil(2.5)
  EXPECT_EQ(relay.counters().shed, 1u);

  // The occupying transfer is unharmed by the shedding around it.
  spin_until(fx.reactor, 30.0, [&] { return first.has_value(); });
  EXPECT_TRUE(first->ok) << first->error;
  EXPECT_TRUE(first->body_verified);
  EXPECT_EQ(relay.counters().accepted, 1u);
}

TEST(RtOverload, HardCapPausesAcceptAndAllClientsGetAnswers) {
  Fixture fx;
  fx.slow_relayed(50000.0);
  ServerLimits limits;
  limits.max_sessions = 1;
  limits.shed_burst = 1;  // hard cap at 2 open sessions
  RelayDaemon relay{fx.reactor, 0, limits};

  // Six simultaneous arrivals against one slot: one is served, the rest
  // are shed — possibly after waiting in the paused listener's backlog —
  // and nobody is left hanging.
  std::vector<std::optional<FetchResult>> results(6);
  for (auto& slot : results) {
    fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { slot = r; });
  }
  spin_until(fx.reactor, 30.0, [&] {
    for (const auto& r : results) {
      if (!r.has_value()) return false;
    }
    return true;
  });

  std::size_t ok_count = 0, shed_count = 0;
  for (const auto& r : results) {
    if (r->ok) {
      ++ok_count;
    } else {
      EXPECT_EQ(r->status, 503);
      ++shed_count;
    }
  }
  EXPECT_EQ(ok_count, 1u);
  EXPECT_EQ(shed_count, 5u);
  EXPECT_EQ(relay.counters().shed, 5u);
  EXPECT_GE(relay.counters().accept_pauses, 1u);
  EXPECT_EQ(relay.active_sessions(), 0u);
}

TEST(RtOverload, IdleConnectionsAreReaped) {
  Fixture fx;
  ServerLimits limits;
  limits.idle_timeout_s = 0.1;
  RelayDaemon relay{fx.reactor, 0, limits};

  // Connect and send nothing: the slow-loris shape the parser alone
  // cannot catch (no bytes ever arrive to reject).
  FdHandle mute = connect_nonblocking("127.0.0.1", relay.port());
  spin_until(fx.reactor, 5.0, [&] { return relay.active_sessions() == 1; });
  spin_until(fx.reactor, 5.0, [&] { return relay.active_sessions() == 0; });
  EXPECT_EQ(relay.counters().idle_reaped, 1u);

  // An active transfer is not idle: it survives many timeout windows.
  fx.slow_relayed(60000.0);  // ~5 s of continuous forwarding
  std::optional<FetchResult> result;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_EQ(relay.counters().idle_reaped, 1u);  // unchanged
}

TEST(RtOverload, OriginServerShedsAndReapsToo) {
  Reactor reactor;
  ServerLimits limits;
  limits.max_sessions = 1;
  limits.idle_timeout_s = 0.1;
  HttpOriginServer origin{reactor, 0, limits};
  origin.add_resource("/blob", 300000);
  origin.set_shaping_policy([](const http::Request&) { return 50000.0; });

  FetchRequest req;
  req.origin.port = origin.port();
  req.path = "/blob";
  std::optional<FetchResult> first, second;
  fetch(reactor, req, [&](const FetchResult& r) { first = r; });
  spin_until(reactor, 10.0, [&] { return origin.active_sessions() == 1; });
  fetch(reactor, req, [&](const FetchResult& r) { second = r; });
  spin_until(reactor, 10.0, [&] { return second.has_value(); });
  EXPECT_EQ(second->status, 503);
  EXPECT_EQ(origin.counters().shed, 1u);
  spin_until(reactor, 30.0, [&] { return first.has_value(); });
  EXPECT_TRUE(first->ok) << first->error;

  // Idle reaping on the origin as well.
  FdHandle mute = connect_nonblocking("127.0.0.1", origin.port());
  spin_until(reactor, 5.0, [&] { return origin.active_sessions() == 1; });
  spin_until(reactor, 5.0, [&] { return origin.active_sessions() == 0; });
  EXPECT_EQ(origin.counters().idle_reaped, 1u);
}

TEST(RtOverload, AcceptFailureBacksOffAndRecovers) {
  Fixture fx;
  RelayDaemon relay{fx.reactor, 0};

  // Start the connect first so the SYN lands in the listener's backlog,
  // then exhaust the fd table before the reactor gets to accept it.
  std::optional<FetchResult> result;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { result = r; });

  rlimit original{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &original), 0);
  rlimit lowered = original;
  lowered.rlim_cur = 128;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &lowered), 0);
  std::vector<int> hogs;
  for (int fd = ::dup(0); fd >= 0; fd = ::dup(0)) hogs.push_back(fd);
  ASSERT_EQ(errno, EMFILE);

  // accept() now fails with EMFILE: the daemon must log + back off, not
  // abort the process.
  spin_until(fx.reactor, 10.0,
             [&] { return relay.counters().accept_failures >= 1; });
  EXPECT_FALSE(result.has_value());

  for (int fd : hogs) ::close(fd);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &original), 0);

  // Once pressure lifts, the backoff timer re-enables accepting and the
  // queued connection is served normally.
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_TRUE(result->body_verified);
  EXPECT_GE(relay.counters().accept_failures, 1u);
}

TEST(RtOverload, DrainFinishesInFlightThenClosesListener) {
  Fixture fx;
  fx.slow_relayed(60000.0);  // ~5 s transfer
  RelayDaemon relay{fx.reactor, 0};

  std::optional<FetchResult> result;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return relay.active_sessions() >= 1; });

  bool drained = false;
  relay.drain([&] { drained = true; });
  EXPECT_TRUE(relay.draining());
  EXPECT_FALSE(drained);  // a session is still in flight

  // The drain callback fires when the last session closes; the client's
  // callback lands a poll later, once it has read to EOF.
  spin_until(fx.reactor, 30.0, [&] { return drained && result.has_value(); });
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok) << result->error;  // in-flight work completed
  EXPECT_GE(relay.counters().drained, 1u);
  EXPECT_EQ(relay.active_sessions(), 0u);

  // The listener is gone: a new connection cannot be established.
  std::optional<FetchResult> late;
  FetchRequest req = fx.via(relay);
  req.timeout_s = 3.0;
  fetch(fx.reactor, req, [&](const FetchResult& r) { late = r; });
  spin_until(fx.reactor, 10.0, [&] { return late.has_value(); });
  EXPECT_FALSE(late->ok);
}

TEST(RtOverload, DrainWhenIdleFiresImmediately) {
  Reactor reactor;
  RelayDaemon relay{reactor, 0};
  bool drained = false;
  relay.drain([&] { drained = true; });
  EXPECT_TRUE(drained);
}

TEST(RtOverload, RaceTreatsShedAsSoftFailureAndWinsDirect) {
  Fixture fx(200000);
  ServerLimits limits;
  limits.max_sessions = 1;
  RelayDaemon relay{fx.reactor, 0, limits};
  // Shape BOTH paths: the relayed blocker is slow enough to hold the slot
  // for the whole race, and the direct path is slow enough that the
  // relay's immediate 503 lands before the direct probe completes (else
  // the winning probe would cancel the relay lane before the shed is
  // observed).
  fx.origin.set_shaping_policy([](const http::Request& r) {
    return r.headers.has("Via") ? 40000.0 : 200000.0;
  });

  // Occupy the relay's only slot, then race through it: the relay lane is
  // shed (503), the race counts an overload rejection — not a crash — and
  // completes over the direct path.
  std::optional<FetchResult> blocker;
  fetch(fx.reactor, fx.via(relay),
        [&](const FetchResult& r) { blocker = r; });
  spin_until(fx.reactor, 10.0, [&] { return relay.active_sessions() == 1; });

  RaceSpec spec;
  spec.origin.port = fx.origin.port();
  spec.path = "/blob";
  spec.resource_size = 200000;
  spec.probe_bytes = 50000;
  spec.relays = {Endpoint{"127.0.0.1", relay.port()}};
  std::optional<RaceResult> result;
  start_probe_race(fx.reactor, spec,
                   [&](const RaceResult& r) { result = r; });
  spin_until(fx.reactor, 30.0, [&] { return result.has_value(); });
  ASSERT_TRUE(result->ok) << result->error;
  EXPECT_FALSE(result->chose_indirect);
  EXPECT_TRUE(result->body_verified);
  EXPECT_GE(result->overload_rejections, 1u);

  spin_until(fx.reactor, 30.0, [&] { return blocker.has_value(); });
  EXPECT_TRUE(blocker->ok) << blocker->error;
}

TEST(RtOverload, GovernanceOffChangesNothing) {
  Fixture fx;
  RelayDaemon relay{fx.reactor, 0};  // default limits: governs nothing
  EXPECT_FALSE(relay.limits().governs_admission());
  EXPECT_FALSE(relay.limits().governs_idle());

  std::optional<FetchResult> result;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { result = r; });
  spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
  EXPECT_TRUE(result->ok) << result->error;
  EXPECT_EQ(relay.counters().shed, 0u);
  EXPECT_EQ(relay.counters().idle_reaped, 0u);
  EXPECT_EQ(relay.counters().accept_pauses, 0u);
  EXPECT_EQ(relay.counters().accept_failures, 0u);
}

// --- Introspection plane (/metrics, /healthz) ---------------------------

std::size_t prometheus_series(const std::string& exposition) {
  std::size_t count = 0;
  for (std::size_t pos = exposition.find("# TYPE");
       pos != std::string::npos;
       pos = exposition.find("# TYPE", pos + 1)) {
    ++count;
  }
  return count;
}

TEST(RtIntrospection, RelayServesMetricsWithMergedReactorSeries) {
  Fixture fx;
  RelayDaemon relay{fx.reactor, 0};

  // Real traffic first, so the counters have something to say.
  std::optional<FetchResult> transfer;
  fetch(fx.reactor, fx.via(relay),
        [&](const FetchResult& r) { transfer = r; });
  spin_until(fx.reactor, 10.0, [&] { return transfer.has_value(); });
  ASSERT_TRUE(transfer->ok) << transfer->error;

  // Origin-form GET /metrics against the relay's own port.
  FetchRequest req;
  req.origin.port = relay.port();
  req.path = "/metrics";
  req.capture_body = true;
  std::optional<FetchResult> metrics;
  fetch(fx.reactor, req, [&](const FetchResult& r) { metrics = r; });
  spin_until(fx.reactor, 10.0, [&] { return metrics.has_value(); });
  ASSERT_TRUE(metrics->ok) << metrics->error;
  EXPECT_EQ(metrics->status, 200);

  // The exposition carries the relay's own series plus the reactor's.
  EXPECT_GE(prometheus_series(metrics->body), 20u);
  EXPECT_NE(metrics->body.find("idr_rt_relay_transfers_forwarded 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("idr_rt_relay_sessions_shed 0"),
            std::string::npos);
  EXPECT_NE(metrics->body.find("idr_rt_reactor_polls"), std::string::npos);

  // Introspection is accounted apart from forwarded traffic.
  EXPECT_EQ(relay.transfers_forwarded(), 1u);
  const obs::Snapshot snap = relay.metrics().snapshot();
  EXPECT_EQ(snap.find("rt.relay.metrics_served")->count, 1u);
}

TEST(RtIntrospection, HealthzReportsStatusAndSessionsAsJson) {
  Fixture fx;
  RelayDaemon relay{fx.reactor, 0};

  FetchRequest req;
  req.origin.port = relay.port();
  req.path = "/healthz";
  req.capture_body = true;
  std::optional<FetchResult> health;
  fetch(fx.reactor, req, [&](const FetchResult& r) { health = r; });
  spin_until(fx.reactor, 10.0, [&] { return health.has_value(); });
  ASSERT_TRUE(health->ok) << health->error;
  std::string error;
  EXPECT_TRUE(obs::json_validate(health->body, &error))
      << error << "\n" << health->body;
  EXPECT_NE(health->body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_EQ(relay.metrics().snapshot().find("rt.relay.healthz_served")->count,
            1u);
}

TEST(RtIntrospection, ServedEvenWhileSheddingAndCountedSeparately) {
  Fixture fx;
  fx.slow_relayed(50000.0);  // hold the only slot ~6 s
  ServerLimits limits;
  limits.max_sessions = 1;
  RelayDaemon relay{fx.reactor, 0, limits};

  std::optional<FetchResult> blocker;
  fetch(fx.reactor, fx.via(relay),
        [&](const FetchResult& r) { blocker = r; });
  spin_until(fx.reactor, 10.0, [&] { return relay.active_sessions() == 1; });

  // Over the cap, a forward request is shed — but /metrics and /healthz
  // still answer 200: an overloaded daemon must stay observable.
  FetchRequest metrics_req;
  metrics_req.origin.port = relay.port();
  metrics_req.path = "/metrics";
  metrics_req.capture_body = true;
  std::optional<FetchResult> metrics;
  fetch(fx.reactor, metrics_req, [&](const FetchResult& r) { metrics = r; });
  spin_until(fx.reactor, 10.0, [&] { return metrics.has_value(); });
  ASSERT_TRUE(metrics->ok) << metrics->error;
  EXPECT_EQ(metrics->status, 200);

  FetchRequest health_req;
  health_req.origin.port = relay.port();
  health_req.path = "/healthz";
  health_req.capture_body = true;
  std::optional<FetchResult> health;
  fetch(fx.reactor, health_req, [&](const FetchResult& r) { health = r; });
  spin_until(fx.reactor, 10.0, [&] { return health.has_value(); });
  ASSERT_TRUE(health->ok) << health->error;
  EXPECT_NE(health->body.find("\"status\":\"shedding\""), std::string::npos)
      << health->body;

  // Introspection hits are not shed sessions and not forwarded transfers.
  EXPECT_EQ(relay.counters().shed, 0u);
  EXPECT_EQ(relay.transfers_forwarded(), 1u);
  const obs::Snapshot snap = relay.metrics().snapshot();
  EXPECT_EQ(snap.find("rt.relay.metrics_served")->count, 1u);
  EXPECT_EQ(snap.find("rt.relay.healthz_served")->count, 1u);

  // A forward request over the cap is still shed as before.
  std::optional<FetchResult> shed;
  fetch(fx.reactor, fx.via(relay), [&](const FetchResult& r) { shed = r; });
  spin_until(fx.reactor, 10.0, [&] { return shed.has_value(); });
  EXPECT_EQ(shed->status, 503);
  EXPECT_EQ(relay.counters().shed, 1u);

  spin_until(fx.reactor, 30.0, [&] { return blocker.has_value(); });
  EXPECT_TRUE(blocker->ok) << blocker->error;
}

TEST(RtIntrospection, OriginServesMetricsAndHealthzToo) {
  Reactor reactor;
  HttpOriginServer origin{reactor, 0};
  origin.add_resource("/blob", 50000);

  FetchRequest req;
  req.origin.port = origin.port();
  req.path = "/blob";
  std::optional<FetchResult> transfer;
  fetch(reactor, req, [&](const FetchResult& r) { transfer = r; });
  spin_until(reactor, 10.0, [&] { return transfer.has_value(); });
  ASSERT_TRUE(transfer->ok) << transfer->error;

  FetchRequest metrics_req;
  metrics_req.origin.port = origin.port();
  metrics_req.path = "/metrics";
  metrics_req.capture_body = true;
  std::optional<FetchResult> metrics;
  fetch(reactor, metrics_req, [&](const FetchResult& r) { metrics = r; });
  spin_until(reactor, 10.0, [&] { return metrics.has_value(); });
  ASSERT_TRUE(metrics->ok) << metrics->error;
  EXPECT_NE(metrics->body.find("idr_rt_origin_requests_served 1"),
            std::string::npos)
      << metrics->body;
  EXPECT_NE(metrics->body.find("idr_rt_origin_bytes_sent"),
            std::string::npos);

  FetchRequest health_req;
  health_req.origin.port = origin.port();
  health_req.path = "/healthz";
  health_req.capture_body = true;
  std::optional<FetchResult> health;
  fetch(reactor, health_req, [&](const FetchResult& r) { health = r; });
  spin_until(reactor, 10.0, [&] { return health.has_value(); });
  ASSERT_TRUE(health->ok) << health->error;
  std::string error;
  EXPECT_TRUE(obs::json_validate(health->body, &error)) << error;

  // /metrics and /healthz do not count as served requests.
  EXPECT_EQ(origin.requests_served(), 1u);
}

// --- Introspection plane, part 2: JSON, windows, flights ----------------

TEST(Governance, IntrospectionQueryParsing) {
  using Kind = IntrospectionQuery::Kind;

  IntrospectionQuery q = parse_introspection_target("/metrics");
  EXPECT_EQ(q.kind, Kind::Metrics);
  EXPECT_FALSE(q.json);
  EXPECT_DOUBLE_EQ(q.window_s, 0.0);

  q = parse_introspection_target("/metrics?format=json");
  EXPECT_EQ(q.kind, Kind::Metrics);
  EXPECT_TRUE(q.json);

  // Unknown format values keep the default exposition.
  q = parse_introspection_target("/metrics?format=xml");
  EXPECT_EQ(q.kind, Kind::Metrics);
  EXPECT_FALSE(q.json);

  // A window implies JSON (windowed rates have no text exposition).
  q = parse_introspection_target("/metrics?window=2.5");
  EXPECT_EQ(q.kind, Kind::Metrics);
  EXPECT_TRUE(q.json);
  EXPECT_DOUBLE_EQ(q.window_s, 2.5);

  // Bad window values are ignored, not errors.
  for (const char* target :
       {"/metrics?window=0", "/metrics?window=-3", "/metrics?window=abc",
        "/metrics?window="}) {
    q = parse_introspection_target(target);
    EXPECT_EQ(q.kind, Kind::Metrics) << target;
    EXPECT_DOUBLE_EQ(q.window_s, 0.0) << target;
  }

  q = parse_introspection_target("/debug/flights");
  EXPECT_EQ(q.kind, Kind::Flights);
  EXPECT_EQ(q.last_n, 64u);
  q = parse_introspection_target("/debug/flights?n=5");
  EXPECT_EQ(q.last_n, 5u);
  // Non-integral or non-positive n keeps the default.
  for (const char* target :
       {"/debug/flights?n=0", "/debug/flights?n=2.5",
        "/debug/flights?n=many"}) {
    EXPECT_EQ(parse_introspection_target(target).last_n, 64u) << target;
  }

  // Unknown query keys are ignored so probes can evolve.
  q = parse_introspection_target("/healthz?verbose=1&foo=bar");
  EXPECT_EQ(q.kind, Kind::Healthz);

  // Everything else stays off the introspection plane.
  for (const char* target :
       {"/blob", "/metricsx", "/debug", "/debug/flightsx", "/", ""}) {
    EXPECT_EQ(parse_introspection_target(target).kind, Kind::None)
        << target;
  }
}

TEST(RtIntrospection, MetricsAsJsonOnBothDaemons) {
  Fixture fx;
  RelayDaemon relay{fx.reactor, 0};

  std::optional<FetchResult> transfer;
  fetch(fx.reactor, fx.via(relay),
        [&](const FetchResult& r) { transfer = r; });
  spin_until(fx.reactor, 10.0, [&] { return transfer.has_value(); });
  ASSERT_TRUE(transfer->ok) << transfer->error;

  auto fetch_body = [&](std::uint16_t port,
                        const char* path) -> std::string {
    FetchRequest req;
    req.origin.port = port;
    req.path = path;
    req.capture_body = true;
    std::optional<FetchResult> result;
    fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
    spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
    EXPECT_TRUE(result->ok) << result->error;
    EXPECT_EQ(result->status, 200);
    return result->body;
  };

  // Same registries as the text exposition, rendered as one JSON object.
  const std::string relay_json =
      fetch_body(relay.port(), "/metrics?format=json");
  std::string error;
  EXPECT_TRUE(obs::json_validate(relay_json, &error)) << error;
  EXPECT_NE(relay_json.find("\"rt.relay.transfers_forwarded\""),
            std::string::npos)
      << relay_json;
  EXPECT_NE(relay_json.find("\"rt.reactor.polls\""), std::string::npos);

  const std::string origin_json =
      fetch_body(fx.origin.port(), "/metrics?format=json");
  EXPECT_TRUE(obs::json_validate(origin_json, &error)) << error;
  EXPECT_NE(origin_json.find("\"rt.origin.requests_served\""),
            std::string::npos)
      << origin_json;

  // The JSON variant counts as a metrics hit, not as traffic.
  EXPECT_EQ(relay.metrics().snapshot().find("rt.relay.metrics_served")
                ->count,
            1u);
  EXPECT_EQ(relay.transfers_forwarded(), 1u);
  EXPECT_EQ(fx.origin.requests_served(), 1u);
}

TEST(RtIntrospection, WindowedMetricsNeedASamplerButStayWellFormed) {
  Fixture fx;
  RelayDaemon sampled{fx.reactor, 0};
  sampled.enable_sampling(/*period_s=*/0.05);
  RelayDaemon unsampled{fx.reactor, 0};

  std::optional<FetchResult> transfer;
  fetch(fx.reactor, fx.via(sampled),
        [&](const FetchResult& r) { transfer = r; });
  spin_until(fx.reactor, 10.0, [&] { return transfer.has_value(); });
  ASSERT_TRUE(transfer->ok) << transfer->error;
  // Let at least one sampler tick land after the transfer so the window
  // delta sees the forwarded counters (the query itself adds the closing
  // sample).
  const double until = fx.reactor.now() + 0.2;
  while (fx.reactor.now() < until) fx.reactor.poll(0.02);

  auto fetch_window = [&](const RelayDaemon& relay) -> std::string {
    FetchRequest req;
    req.origin.port = relay.port();
    req.path = "/metrics?window=30";
    req.capture_body = true;
    std::optional<FetchResult> result;
    fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
    spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
    EXPECT_TRUE(result->ok) << result->error;
    EXPECT_EQ(result->status, 200);
    return result->body;
  };

  // Sampled daemon: the window carries real per-second rates.
  const std::string live = fetch_window(sampled);
  std::string error;
  EXPECT_TRUE(obs::json_validate(live, &error)) << error << "\n" << live;
  EXPECT_NE(live.find("\"window_seconds\":30"), std::string::npos) << live;
  EXPECT_NE(live.find("\"rt.relay.transfers_forwarded\""),
            std::string::npos)
      << live;
  EXPECT_NE(live.find("\"rate\":"), std::string::npos) << live;

  // Without enable_sampling there is nothing to diff, but the answer is
  // still well-formed JSON with an empty metrics list — not an error.
  const std::string empty = fetch_window(unsampled);
  EXPECT_TRUE(obs::json_validate(empty, &error)) << error << "\n" << empty;
  EXPECT_NE(empty.find("\"samples\":0"), std::string::npos) << empty;
  EXPECT_NE(empty.find("\"metrics\":[]"), std::string::npos) << empty;
}

TEST(RtIntrospection, FlightRecordsServedAsJsonl) {
  Fixture fx;
  RelayDaemon relay{fx.reactor, 0};

  // Two forwarded transfers: two relay flight records, two origin ones.
  for (int i = 0; i < 2; ++i) {
    std::optional<FetchResult> transfer;
    fetch(fx.reactor, fx.via(relay),
          [&](const FetchResult& r) { transfer = r; });
    spin_until(fx.reactor, 10.0, [&] { return transfer.has_value(); });
    ASSERT_TRUE(transfer->ok) << transfer->error;
  }
  EXPECT_EQ(relay.flights().size(), 2u);
  EXPECT_EQ(fx.origin.flights().size(), 2u);

  auto fetch_flights = [&](std::uint16_t port,
                           const char* path) -> std::string {
    FetchRequest req;
    req.origin.port = port;
    req.path = path;
    req.capture_body = true;
    std::optional<FetchResult> result;
    fetch(fx.reactor, req, [&](const FetchResult& r) { result = r; });
    spin_until(fx.reactor, 10.0, [&] { return result.has_value(); });
    EXPECT_TRUE(result->ok) << result->error;
    EXPECT_EQ(result->status, 200);
    return result->body;
  };

  auto line_count = [](const std::string& body) {
    std::size_t lines = 0;
    for (char c : body) lines += c == '\n';
    return lines;
  };

  const std::string relay_flights =
      fetch_flights(relay.port(), "/debug/flights");
  EXPECT_EQ(line_count(relay_flights), 2u) << relay_flights;
  EXPECT_NE(relay_flights.find("\"source\":\"rt.relay\""),
            std::string::npos)
      << relay_flights;
  EXPECT_NE(relay_flights.find("\"peer\":"), std::string::npos);

  // Every line is one valid JSON object.
  std::size_t start = 0;
  while (start < relay_flights.size()) {
    const std::size_t end = relay_flights.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    std::string error;
    EXPECT_TRUE(obs::json_validate(
        relay_flights.substr(start, end - start), &error))
        << error;
    start = end + 1;
  }

  // ?n=1 trims to the newest record only.
  EXPECT_EQ(line_count(fetch_flights(relay.port(), "/debug/flights?n=1")),
            1u);

  const std::string origin_flights =
      fetch_flights(fx.origin.port(), "/debug/flights");
  EXPECT_NE(origin_flights.find("\"source\":\"rt.origin\""),
            std::string::npos)
      << origin_flights;
  EXPECT_NE(origin_flights.find("\"status\":200"), std::string::npos);

  // Flight serving is accounted on its own counter, apart from traffic.
  EXPECT_EQ(relay.metrics().snapshot().find("rt.relay.flights_served")
                ->count,
            2u);
  EXPECT_EQ(fx.origin.metrics()
                .snapshot()
                .find("rt.origin.flights_served")
                ->count,
            1u);
  EXPECT_EQ(relay.transfers_forwarded(), 2u);
}

}  // namespace
}  // namespace idr::rt
