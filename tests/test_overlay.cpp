#include <cmath>
#include <gtest/gtest.h>
#include <optional>

#include "overlay/transfer_engine.hpp"
#include "overlay/web_server.hpp"
#include "util/error.hpp"

namespace idr::overlay {
namespace {

using util::mbps;
using util::milliseconds;

TEST(WebServer, ResourceRegistry) {
  WebServerModel server(0, "ebay.com");
  server.add_resource("/a", 1000.0);
  server.add_resource("/b", 2000.0);
  EXPECT_EQ(server.resource_count(), 2u);
  EXPECT_EQ(server.resource_size("/a"), 1000.0);
  EXPECT_FALSE(server.resource_size("/missing").has_value());
  EXPECT_THROW(server.add_resource("/a", 5.0), util::Error);
  EXPECT_THROW(server.add_resource("no-slash", 5.0), util::Error);
  EXPECT_THROW(server.add_resource("/zero", 0.0), util::Error);
}

TEST(WebServer, TransferSizeResolvesRanges) {
  WebServerModel server(0, "ebay.com");
  server.add_resource("/f", 1000.0);
  EXPECT_EQ(server.transfer_size("/f", std::nullopt), 1000.0);
  EXPECT_EQ(server.transfer_size("/f", http::range_first_bytes(100)), 100.0);
  EXPECT_EQ(server.transfer_size("/f", http::range_from_offset(100)),
            900.0);
  EXPECT_EQ(server.transfer_size("/f", http::range_first_bytes(5000)),
            1000.0);  // clamped
  EXPECT_FALSE(
      server.transfer_size("/f", http::range_from_offset(1000)).has_value());
  EXPECT_FALSE(server.transfer_size("/nope", std::nullopt).has_value());
}

// A 4-node world: server -> gw -> client direct; server -> relay -> gw
// indirect, all stable capacities for exact timing checks.
struct World {
  sim::Simulator sim;
  net::Topology topo;
  std::optional<flow::FlowSimulator> fsim;
  std::optional<WebServerModel> server;
  std::optional<TransferEngine> engine;
  net::NodeId server_node, gw, client, relay;

  explicit World(util::Rate direct_capacity = mbps(1.0),
                 util::Rate relay_leg_capacity = mbps(4.0)) {
    server_node = topo.add_node("server");
    gw = topo.add_node("gw");
    client = topo.add_node("client");
    relay = topo.add_node("relay");
    topo.add_link(server_node, gw, direct_capacity, milliseconds(90));
    topo.add_link(gw, client, mbps(50), milliseconds(5));
    topo.add_link(server_node, relay, mbps(40), milliseconds(20));
    topo.add_link(relay, gw, relay_leg_capacity, milliseconds(90));
    fsim.emplace(sim, topo, util::Rng(3));
    server.emplace(server_node, "server");
    server->add_resource("/f", 1.0e6);
    engine.emplace(*fsim);
  }

  TransferRequest request(std::optional<net::NodeId> via = std::nullopt) {
    TransferRequest req;
    req.client = client;
    req.server = &*server;
    req.resource = "/f";
    req.relay = via;
    return req;
  }
};

TEST(TransferEngine, DirectTransferTiming) {
  World w;
  std::optional<TransferResult> result;
  TransferRequest req = w.request();
  w.engine->begin(req, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result);
  EXPECT_TRUE(result->ok);
  EXPECT_FALSE(result->indirect);
  EXPECT_EQ(result->bytes, 1.0e6);
  // Setup (2 RTT = 0.38 s) + drain (1 MB at 125 KB/s with slow start)
  // + tail (0.095 s): elapsed must exceed the pure drain time of 8 s.
  EXPECT_GT(result->elapsed(), 8.0);
  EXPECT_LT(result->elapsed(), 12.0);
  EXPECT_GT(result->throughput(), 0.0);
}

TEST(TransferEngine, IndirectBeatsNarrowDirect) {
  World w(/*direct=*/mbps(1.0), /*relay leg=*/mbps(8.0));
  std::optional<TransferResult> direct, indirect;
  w.engine->begin(w.request(), [&](const TransferResult& r) { direct = r; });
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& r) { indirect = r; });
  w.sim.run();
  ASSERT_TRUE(direct && indirect);
  EXPECT_TRUE(indirect->indirect);
  EXPECT_EQ(indirect->relay, w.relay);
  EXPECT_LT(indirect->elapsed(), direct->elapsed());
}

TEST(TransferEngine, RangeLimitsBytes) {
  World w;
  TransferRequest req = w.request();
  req.range = http::range_first_bytes(100000);
  std::optional<TransferResult> result;
  w.engine->begin(req, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result && result->ok);
  EXPECT_EQ(result->bytes, 100000.0);
}

TEST(TransferEngine, UnknownResourceFailsAsync) {
  World w;
  TransferRequest req = w.request();
  req.resource = "/missing";
  std::optional<TransferResult> result;
  w.engine->begin(req, [&](const TransferResult& r) { result = r; });
  EXPECT_FALSE(result.has_value());  // async even for failures
  w.sim.run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->ok);
  EXPECT_FALSE(result->error.empty());
}

TEST(TransferEngine, UnroutableFailsAsync) {
  World w;
  const net::NodeId island = w.topo.add_node("island");
  TransferRequest req = w.request();
  req.client = island;
  std::optional<TransferResult> result;
  w.engine->begin(req, [&](const TransferResult& r) { result = r; });
  w.sim.run();
  ASSERT_TRUE(result);
  EXPECT_FALSE(result->ok);
}

TEST(TransferEngine, RelayEfficiencyCapsRate) {
  World fast(mbps(8.0), mbps(8.0));
  RelayParams half;
  half.efficiency = 0.5;
  half.processing_delay = 0.0;
  fast.engine->set_relay_params(fast.relay, half);
  std::optional<TransferResult> direct, indirect;
  fast.engine->begin(fast.request(),
                     [&](const TransferResult& r) { direct = r; });
  fast.engine->begin(fast.request(fast.relay),
                     [&](const TransferResult& r) { indirect = r; });
  fast.sim.run();
  ASSERT_TRUE(direct && indirect);
  // Same bottleneck either way, but the relay forwards at half the
  // TCP-feasible rate, so the indirect transfer is clearly slower.
  EXPECT_GT(indirect->elapsed(), direct->elapsed() * 1.3);
}

TEST(TransferEngine, RelayForwardRateCap) {
  World w(mbps(1.0), mbps(8.0));
  RelayParams capped;
  capped.max_forward_rate = 50e3;  // 50 KB/s hard cap
  w.engine->set_relay_params(w.relay, capped);
  std::optional<TransferResult> indirect;
  w.engine->begin(w.request(w.relay),
                  [&](const TransferResult& r) { indirect = r; });
  w.sim.run();
  ASSERT_TRUE(indirect && indirect->ok);
  EXPECT_LE(indirect->throughput(), 50e3 * 1.01);
}

TEST(TransferEngine, CancelDuringSetup) {
  World w;
  bool fired = false;
  const TransferHandle h =
      w.engine->begin(w.request(), [&](const TransferResult&) {
        fired = true;
      });
  EXPECT_TRUE(w.engine->cancel(h));
  w.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(w.engine->in_flight(), 0u);
  EXPECT_FALSE(w.engine->cancel(h));
}

TEST(TransferEngine, CancelMidFlight) {
  World w;
  bool fired = false;
  const TransferHandle h =
      w.engine->begin(w.request(), [&](const TransferResult&) {
        fired = true;
      });
  w.sim.run_until(2.0);  // past setup, mid-drain
  EXPECT_GT(w.engine->current_rate(h), 0.0);
  EXPECT_TRUE(w.engine->cancel(h));
  w.sim.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(w.fsim->active_flows(), 0u);
}

TEST(TransferEngine, ConcurrentTransfersShareDirectPath) {
  World w;
  std::vector<double> finishes;
  for (int i = 0; i < 2; ++i) {
    w.engine->begin(w.request(), [&](const TransferResult& r) {
      finishes.push_back(r.finish_time);
    });
  }
  w.sim.run();
  ASSERT_EQ(finishes.size(), 2u);
  // Two 1 MB transfers over a 125 KB/s bottleneck: aggregate drain is 16 s
  // minimum; sharing means both finish well after a lone transfer would.
  EXPECT_GT(finishes[0], 16.0);
}

TEST(TransferEngine, SplitTcpCeilingAdvantage) {
  // Lossy long direct path vs. two half-RTT legs with the same per-link
  // loss: the relay transfer must win despite equal link capacities.
  sim::Simulator sim;
  net::Topology topo;
  const auto server_node = topo.add_node("server");
  const auto gw = topo.add_node("gw");
  const auto client = topo.add_node("client");
  const auto relay = topo.add_node("relay");
  topo.add_link(server_node, gw, mbps(50), milliseconds(90), 0.01);
  topo.add_link(gw, client, mbps(50), milliseconds(5), 0.0);
  topo.add_link(server_node, relay, mbps(50), milliseconds(45), 0.005);
  topo.add_link(relay, gw, mbps(50), milliseconds(45), 0.005);
  flow::FlowSimulator fsim(sim, topo, util::Rng(4));
  WebServerModel server(server_node, "s");
  server.add_resource("/f", 2.0e6);
  TransferEngine engine(fsim);

  std::optional<TransferResult> direct, indirect;
  TransferRequest req;
  req.client = client;
  req.server = &server;
  req.resource = "/f";
  engine.begin(req, [&](const TransferResult& r) { direct = r; });
  req.relay = relay;
  engine.begin(req, [&](const TransferResult& r) { indirect = r; });
  sim.run();
  ASSERT_TRUE(direct && indirect);
  EXPECT_LT(indirect->elapsed(), direct->elapsed());
}

}  // namespace
}  // namespace idr::overlay
