// Loopback integration tests: real origin server + real client.
#include <gtest/gtest.h>

#include <optional>

#include "rt/http_client.hpp"
#include "rt/http_server.hpp"

namespace idr::rt {
namespace {

void spin_until(Reactor& reactor, double deadline_s,
                const std::function<bool()>& done) {
  const double deadline = reactor.now() + deadline_s;
  while (!done() && reactor.now() < deadline) {
    reactor.poll(0.02);
  }
  ASSERT_TRUE(done()) << "condition not reached within deadline";
}

struct Fixture {
  Reactor reactor;
  HttpOriginServer server{reactor, 0};

  Fixture() { server.add_resource("/blob", 300000); }

  FetchResult fetch_sync(FetchRequest req, double deadline = 10.0) {
    std::optional<FetchResult> result;
    req.origin.port = req.origin.port ? req.origin.port : server.port();
    fetch(reactor, req, [&](const FetchResult& r) { result = r; });
    spin_until(reactor, deadline, [&] { return result.has_value(); });
    return *result;
  }
};

TEST(RtHttp, FullDownloadVerified) {
  Fixture fx;
  FetchRequest req;
  req.path = "/blob";
  const FetchResult result = fx.fetch_sync(req);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 200);
  EXPECT_EQ(result.body_bytes, 300000u);
  EXPECT_TRUE(result.body_verified);
  EXPECT_GT(result.elapsed(), 0.0);
  EXPECT_GE(result.first_byte_time, result.start_time);
  EXPECT_EQ(fx.server.requests_served(), 1u);
}

TEST(RtHttp, RangeRequestReturns206WithCorrectSlice) {
  Fixture fx;
  FetchRequest req;
  req.path = "/blob";
  req.range = http::range_first_bytes(100000);
  FetchResult result = fx.fetch_sync(req);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.status, 206);
  EXPECT_EQ(result.body_bytes, 100000u);
  EXPECT_TRUE(result.body_verified);

  req.range = http::range_from_offset(100000);
  result = fx.fetch_sync(req);
  EXPECT_EQ(result.status, 206);
  EXPECT_EQ(result.body_bytes, 200000u);
  // Verified against the correct absolute offsets (Content-Range).
  EXPECT_TRUE(result.body_verified);
}

TEST(RtHttp, UnsatisfiableRangeIs416) {
  Fixture fx;
  FetchRequest req;
  req.path = "/blob";
  req.range = http::range_from_offset(300000);
  const FetchResult result = fx.fetch_sync(req);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.status, 416);
}

TEST(RtHttp, MissingResourceIs404) {
  Fixture fx;
  FetchRequest req;
  req.path = "/nope";
  const FetchResult result = fx.fetch_sync(req);
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.status, 404);
}

TEST(RtHttp, ConnectToClosedPortFails) {
  Fixture fx;
  FetchRequest req;
  req.path = "/blob";
  req.origin.port = 1;  // privileged, surely closed
  req.timeout_s = 5.0;
  const FetchResult result = fx.fetch_sync(req);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());
}

TEST(RtHttp, ThrottleShapesThroughput) {
  Fixture fx;
  fx.server.set_shaping_policy(
      [](const http::Request&) { return 200000.0; });  // 200 KB/s
  FetchRequest req;
  req.path = "/blob";  // 300 KB -> ~1.5 s
  const FetchResult result = fx.fetch_sync(req, 20.0);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.elapsed(), 0.9);
  EXPECT_LT(result.elapsed(), 5.0);
  EXPECT_TRUE(result.body_verified);
}

TEST(RtHttp, ShapingPolicySeesHeaders) {
  Fixture fx;
  // Unthrottled unless the request lacks a Via header; we send direct
  // (no Via), so the 50 KB/s policy applies to a 100 KB range.
  fx.server.set_shaping_policy([](const http::Request& r) {
    return r.headers.has("Via") ? 0.0 : 50000.0;
  });
  FetchRequest req;
  req.path = "/blob";
  req.range = http::range_first_bytes(100000);
  const FetchResult result = fx.fetch_sync(req, 20.0);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.elapsed(), 1.2);
}

TEST(RtHttp, SequentialRequestsOnFreshConnections) {
  Fixture fx;
  for (int i = 0; i < 5; ++i) {
    FetchRequest req;
    req.path = "/blob";
    req.range = http::range_first_bytes(1000);
    const FetchResult result = fx.fetch_sync(req);
    ASSERT_TRUE(result.ok) << result.error;
  }
  EXPECT_EQ(fx.server.requests_served(), 5u);
}

TEST(RtHttp, ConcurrentFetchesAllComplete) {
  Fixture fx;
  int done = 0;
  bool all_ok = true;
  for (int i = 0; i < 8; ++i) {
    FetchRequest req;
    req.origin.port = fx.server.port();
    req.path = "/blob";
    req.range = http::range_first_bytes(50000);
    fetch(fx.reactor, req, [&](const FetchResult& r) {
      ++done;
      all_ok = all_ok && r.ok && r.body_verified;
    });
  }
  spin_until(fx.reactor, 10.0, [&] { return done == 8; });
  EXPECT_TRUE(all_ok);
}

TEST(RtHttp, CancelSuppressesCallback) {
  Fixture fx;
  fx.server.set_shaping_policy(
      [](const http::Request&) { return 50000.0; });  // slow it down
  bool fired = false;
  FetchRequest req;
  req.origin.port = fx.server.port();
  req.path = "/blob";
  FetchHandle handle =
      fetch(fx.reactor, req, [&](const FetchResult&) { fired = true; });
  // Let it start, then cancel mid-body.
  bool waited = false;
  fx.reactor.add_timer(0.2, [&] {
    handle.cancel();
    waited = true;
  });
  spin_until(fx.reactor, 5.0, [&] { return waited; });
  bool sentinel = false;
  fx.reactor.add_timer(0.3, [&] { sentinel = true; });
  spin_until(fx.reactor, 5.0, [&] { return sentinel; });
  EXPECT_FALSE(fired);
  EXPECT_FALSE(handle.active());
}

}  // namespace
}  // namespace idr::rt
