#include "rt/probe_race.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace idr::rt {

namespace {

struct RaceState {
  Reactor* reactor = nullptr;
  RaceSpec spec;
  RaceCallback on_done;
  double start_time = 0.0;
  std::vector<FetchHandle> lanes;  // lane 0 = direct, i+1 = relays[i]
  std::size_t pending = 0;
  bool decided = false;
  bool finished = false;
  bool probe_verified = true;
  /// True while the race is skipped on a pinned relay; cleared by
  /// launch_race when a failed pin forces a real race after all.
  bool race_skipped = false;

  // Winning lane once decided.
  bool indirect = false;
  std::size_t relay_index = SIZE_MAX;
  double probe_elapsed = 0.0;

  // Fault/retry accounting, stamped into every result.
  std::size_t probe_failures = 0;
  std::size_t retries = 0;
  bool fell_back_direct = false;
  std::size_t overload_rejections = 0;

  /// Probe-phase overhead bytes (probe span down every lane beyond the
  /// one that counts toward the file), for the flight record.
  std::uint64_t probe_overhead_bytes = 0;

  /// Jitter stream for backoff delays; fixed seed — wall-clock retry
  /// spacing needs decorrelation, not reproducibility.
  util::Rng backoff_rng{0xF417u};

  /// Child context for one outbound fetch; invalid (no header) when the
  /// race itself carries no context.
  obs::TraceContext fetch_trace(std::uint64_t salt) const {
    return spec.trace.valid() ? spec.trace.child(salt)
                              : obs::TraceContext{};
  }

  void stamp(RaceResult& result) const {
    result.race_skipped = race_skipped;
    result.probe_failures = probe_failures;
    result.retries = retries;
    result.fell_back_direct = fell_back_direct;
    result.overload_rejections = overload_rejections;
  }

  /// Outcome counters and the race span; called exactly once per race.
  void record_obs(const RaceResult& result) {
    if (spec.metrics) {
      obs::Registry& m = *spec.metrics;
      if (!result.ok) {
        m.counter("rt.race.races_failed").inc();
      } else if (result.chose_indirect) {
        m.counter("rt.race.races_won_indirect").inc();
      } else {
        m.counter("rt.race.races_won_direct").inc();
      }
      if (probe_failures > 0) {
        m.counter("rt.race.probe_failures").inc(probe_failures);
      }
      if (retries > 0) m.counter("rt.race.retries").inc(retries);
      if (overload_rejections > 0) {
        m.counter("rt.race.overload_rejections").inc(overload_rejections);
      }
      if (fell_back_direct) m.counter("rt.race.fallbacks_direct").inc();
      if (result.ok && !result.race_skipped) {
        m.histogram("rt.race.probe_seconds",
                    obs::HistogramOptions{1e-4, 1e3, 4})
            .observe(result.probe_elapsed);
      }
    }
    if (spec.tracer && spec.tracer->enabled()) {
      std::string args = "{\"ok\":";
      args += result.ok ? "true" : "false";
      args += ",\"chose_indirect\":";
      args += result.chose_indirect ? "true" : "false";
      args += ",\"relay\":";
      args += result.relay_index == SIZE_MAX
                  ? std::string("-1")
                  : std::to_string(result.relay_index);
      args += ",\"fell_back_direct\":";
      args += result.fell_back_direct ? "true" : "false";
      args += "}";
      const double end_us = reactor->now() * 1e6;
      obs::TraceEvent ev;
      ev.name = "probe_race";
      ev.category = "rt.race";
      ev.phase = 'X';
      ev.pid = spec.trace_pid;
      ev.track = spec.trace_track;
      ev.ts_us = start_time * 1e6;
      ev.dur_us = end_us - ev.ts_us;
      ev.trace_id = spec.trace.trace_id;
      ev.span_id = spec.trace.span_id;
      ev.args_json = std::move(args);
      spec.tracer->append(std::move(ev));
      if (spec.trace.valid()) {
        // Flow chain: 's' here at race start, 't' on each server hop,
        // 'f' back here at completion — one arrowed chain per transfer.
        spec.tracer->flow('s', "transfer", "rt.race", spec.trace_pid,
                          spec.trace_track, start_time * 1e6,
                          spec.trace.trace_id);
        spec.tracer->flow('f', "transfer", "rt.race", spec.trace_pid,
                          spec.trace_track, end_us, spec.trace.trace_id);
      }
    }
    if (spec.flights) {
      obs::FlightRecord rec;
      rec.trace_id = spec.trace.trace_id;
      rec.source = "rt.race";
      rec.peer = spec.origin.host + ":" +
                 std::to_string(spec.origin.port) + spec.path;
      rec.start_time = start_time;
      rec.ok = result.ok;
      rec.chose_indirect = result.chose_indirect;
      rec.race_skipped = result.race_skipped;
      rec.fell_back_direct = result.fell_back_direct;
      rec.relay_index = result.chose_indirect
                            ? static_cast<std::int64_t>(result.relay_index)
                            : -1;
      rec.probe_elapsed_s = result.probe_elapsed;
      rec.total_elapsed_s = result.total_elapsed;
      rec.bytes_total = result.total_bytes;
      rec.bytes_probe = probe_overhead_bytes;
      rec.retries = result.retries;
      rec.probe_failures = result.probe_failures;
      rec.overload_rejections = result.overload_rejections;
      spec.flights->record(std::move(rec));
    }
  }

  void finish(RaceResult result) {
    if (finished) return;
    finished = true;
    for (auto& lane : lanes) lane.cancel();
    stamp(result);
    record_obs(result);
    on_done(result);
  }

  void fail(const std::string& error) {
    RaceResult result;
    result.ok = false;
    result.error = error;
    finish(result);
  }
};

void start_remainder(const std::shared_ptr<RaceState>& state,
                     std::size_t attempt, bool via_direct);

void finish_success(const std::shared_ptr<RaceState>& state,
                    const FetchResult* remainder, bool covered_by_probe) {
  RaceResult final;
  final.ok = true;
  final.chose_indirect = state->indirect;
  final.relay_index = state->relay_index;
  final.probe_elapsed = state->probe_elapsed;
  // When the probe covered the file the race IS the transfer; re-reading
  // the clock here would make the two elapsed times differ by epsilon.
  final.total_elapsed = covered_by_probe
                            ? state->probe_elapsed
                            : state->reactor->now() - state->start_time;
  final.total_bytes = state->spec.resource_size;
  final.body_verified =
      state->probe_verified &&
      (remainder == nullptr || remainder->body_verified);
  state->finish(final);
}

/// Every lane died before delivering a probe: salvage the transfer with a
/// plain full-file direct fetch under the retry policy instead of failing
/// outright — exactly what a non-selecting client would do.
void start_direct_fallback(const std::shared_ptr<RaceState>& state,
                           std::size_t attempt,
                           const std::string& probe_error) {
  state->fell_back_direct = true;
  FetchRequest req;
  req.origin = state->spec.origin;
  req.path = state->spec.path;
  req.timeout_s = state->spec.timeout_s;
  req.trace = state->fetch_trace(0x300 + attempt);
  fetch(*state->reactor, req,
        [state, attempt, probe_error](const FetchResult& result) {
          if (state->finished) return;
          if (result.ok) {
            state->indirect = false;
            state->relay_index = SIZE_MAX;
            state->probe_verified = result.body_verified;
            finish_success(state, nullptr, /*covered_by_probe=*/false);
            return;
          }
          if (result.overloaded()) ++state->overload_rejections;
          if (attempt < state->spec.retry.max_retries) {
            ++state->retries;
            // An overloaded peer's Retry-After floor beats our backoff:
            // retrying sooner would just be shed again.
            const double delay =
                std::max(fault::backoff_delay(state->spec.retry, attempt,
                                              state->backoff_rng),
                         result.retry_after_s);
            state->reactor->add_timer(delay, [state, attempt, probe_error] {
              if (!state->finished) {
                start_direct_fallback(state, attempt + 1, probe_error);
              }
            });
            return;
          }
          state->fail("all probes failed (" + probe_error +
                      ") and direct fallback died: " + result.error);
        });
}

/// Remainder with bounded retry: the winner's lane first (retries
/// reconnect from scratch), then the direct path, then a clean error —
/// a dead winner no longer fails the whole transfer.
void start_remainder(const std::shared_ptr<RaceState>& state,
                     std::size_t attempt, bool via_direct) {
  FetchRequest rest;
  rest.origin = state->spec.origin;
  rest.path = state->spec.path;
  rest.range = http::range_from_offset(state->spec.probe_bytes);
  if (!via_direct && state->indirect) {
    rest.proxy = state->spec.relays[state->relay_index];
  }
  rest.timeout_s = state->spec.timeout_s;
  rest.trace =
      state->fetch_trace(0x200 + attempt * 4 + (via_direct ? 1 : 0));
  fetch(*state->reactor, rest,
        [state, attempt, via_direct](const FetchResult& remainder) {
          if (state->finished) return;
          if (remainder.ok) {
            if (via_direct) state->fell_back_direct = true;
            finish_success(state, &remainder, /*covered_by_probe=*/false);
            return;
          }
          if (remainder.overloaded()) ++state->overload_rejections;
          if (attempt < state->spec.retry.max_retries) {
            ++state->retries;
            const double delay =
                std::max(fault::backoff_delay(state->spec.retry, attempt,
                                              state->backoff_rng),
                         remainder.retry_after_s);
            state->reactor->add_timer(delay, [state, attempt, via_direct] {
              if (!state->finished) {
                start_remainder(state, attempt + 1, via_direct);
              }
            });
            return;
          }
          if (!via_direct && state->indirect) {
            // Selected relay is dead: degrade to the direct path.
            state->fell_back_direct = true;
            start_remainder(state, 0, /*via_direct=*/true);
            return;
          }
          state->fail("remainder failed after retries: " + remainder.error);
        });
}

void on_probe_done(const std::shared_ptr<RaceState>& state,
                   std::size_t lane, const FetchResult& result) {
  --state->pending;
  if (state->decided || state->finished) return;
  if (!result.ok) {
    ++state->probe_failures;
    if (result.overloaded()) ++state->overload_rejections;
    if (state->pending == 0) {
      start_direct_fallback(state, 0, result.error);
    }
    return;
  }

  state->decided = true;
  state->probe_verified = result.body_verified;
  state->probe_elapsed = state->reactor->now() - state->start_time;
  // Abort the losers.
  for (std::size_t i = 0; i < state->lanes.size(); ++i) {
    if (i != lane) state->lanes[i].cancel();
  }

  state->indirect = lane > 0;
  state->relay_index = state->indirect ? lane - 1 : SIZE_MAX;

  if (state->spec.probe_bytes >= state->spec.resource_size) {
    finish_success(state, nullptr, /*covered_by_probe=*/true);
    return;
  }
  start_remainder(state, 0, /*via_direct=*/false);
}

/// Launches the actual probe race: one lane per path, first probe wins.
/// Called directly for always-race specs and as the fallback when a
/// pinned (skipped-race) fetch fails.
void launch_race(const std::shared_ptr<RaceState>& state) {
  const RaceSpec& spec = state->spec;
  state->race_skipped = false;
  const std::uint64_t probe =
      std::min(spec.probe_bytes, spec.resource_size);
  if (spec.metrics) {
    // Selection-plane accounting: a race ran; its probe overhead is the
    // probe span down every losing lane (exactly one lane's probe counts
    // toward the file).
    spec.metrics->counter("rt.select.races_run").inc();
    spec.metrics->counter("rt.select.probe_bytes")
        .inc(probe * static_cast<std::uint64_t>(spec.relays.size()));
  }
  state->probe_overhead_bytes =
      probe * static_cast<std::uint64_t>(spec.relays.size());
  state->pending = 1 + spec.relays.size();
  for (std::size_t lane = 0; lane < 1 + spec.relays.size(); ++lane) {
    FetchRequest req;
    req.origin = spec.origin;
    req.path = spec.path;
    req.range = http::range_first_bytes(probe);
    if (lane > 0) req.proxy = spec.relays[lane - 1];
    req.timeout_s = spec.timeout_s;
    req.trace = state->fetch_trace(0x100 + lane);
    state->lanes.push_back(
        fetch(*state->reactor, req, [state, lane](const FetchResult& result) {
          on_probe_done(state, lane, result);
        }));
  }
}

/// The skipped-race path: fetch the whole resource through the pinned
/// relay in one request — zero probe connections. On failure, fall back
/// to the full race honestly (the pin is charged as a probe failure so
/// callers' relay accounting sees the dead relay).
void start_pinned(const std::shared_ptr<RaceState>& state) {
  const RaceSpec& spec = state->spec;
  state->race_skipped = true;
  const std::size_t pinned = *spec.pinned_relay;
  if (spec.metrics) {
    spec.metrics->counter("rt.select.races_skipped").inc();
    spec.metrics
        ->histogram("rt.select.estimate_age",
                    obs::HistogramOptions{1e-3, 1e5, 4})
        .observe(spec.pinned_estimate_age_s);
  }
  FetchRequest req;
  req.origin = spec.origin;
  req.path = spec.path;
  req.proxy = spec.relays[pinned];
  req.timeout_s = spec.timeout_s;
  req.trace = state->fetch_trace(0x400);
  fetch(*state->reactor, req,
        [state, pinned](const FetchResult& result) {
          if (state->finished) return;
          if (result.ok) {
            state->indirect = true;
            state->relay_index = pinned;
            state->probe_verified = result.body_verified;
            // probe_elapsed stays 0: no probe phase existed.
            finish_success(state, nullptr, /*covered_by_probe=*/false);
            return;
          }
          ++state->probe_failures;
          if (result.overloaded()) ++state->overload_rejections;
          if (state->spec.metrics) {
            state->spec.metrics->counter("rt.select.pinned_fallbacks").inc();
          }
          launch_race(state);
        });
}

}  // namespace

void start_probe_race(Reactor& reactor, const RaceSpec& spec,
                      RaceCallback on_done) {
  IDR_REQUIRE(on_done != nullptr, "start_probe_race: null callback");
  IDR_REQUIRE(spec.resource_size > 0, "start_probe_race: zero resource");
  IDR_REQUIRE(spec.probe_bytes > 0, "start_probe_race: zero probe");
  IDR_REQUIRE(!spec.pinned_relay.has_value() ||
                  *spec.pinned_relay < spec.relays.size(),
              "start_probe_race: pinned relay index out of range");

  auto state = std::make_shared<RaceState>();
  state->reactor = &reactor;
  state->spec = spec;
  state->on_done = std::move(on_done);
  state->start_time = reactor.now();
  if (spec.metrics) spec.metrics->counter("rt.race.races_started").inc();

  if (spec.pinned_relay.has_value()) {
    start_pinned(state);
  } else {
    launch_race(state);
  }
}

}  // namespace idr::rt
