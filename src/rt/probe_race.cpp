#include "rt/probe_race.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"

namespace idr::rt {

namespace {

struct RaceState {
  Reactor* reactor = nullptr;
  RaceSpec spec;
  RaceCallback on_done;
  double start_time = 0.0;
  std::vector<FetchHandle> lanes;  // lane 0 = direct, i+1 = relays[i]
  std::size_t pending = 0;
  bool decided = false;
  bool finished = false;
  bool probe_verified = true;

  void finish(const RaceResult& result) {
    if (finished) return;
    finished = true;
    for (auto& lane : lanes) lane.cancel();
    on_done(result);
  }

  void fail(const std::string& error) {
    RaceResult result;
    result.ok = false;
    result.error = error;
    finish(result);
  }
};

void on_probe_done(const std::shared_ptr<RaceState>& state,
                   std::size_t lane, const FetchResult& result) {
  --state->pending;
  if (state->decided || state->finished) return;
  if (!result.ok) {
    if (state->pending == 0) {
      state->fail("all probes failed: " + result.error);
    }
    return;
  }

  state->decided = true;
  state->probe_verified = result.body_verified;
  const double probe_elapsed = state->reactor->now() - state->start_time;
  // Abort the losers.
  for (std::size_t i = 0; i < state->lanes.size(); ++i) {
    if (i != lane) state->lanes[i].cancel();
  }

  const bool indirect = lane > 0;
  const std::size_t relay_index = indirect ? lane - 1 : SIZE_MAX;

  if (state->spec.probe_bytes >= state->spec.resource_size) {
    RaceResult final;
    final.ok = true;
    final.chose_indirect = indirect;
    final.relay_index = relay_index;
    final.probe_elapsed = probe_elapsed;
    final.total_elapsed = probe_elapsed;
    final.total_bytes = state->spec.resource_size;
    final.body_verified = state->probe_verified;
    state->finish(final);
    return;
  }

  FetchRequest rest;
  rest.origin = state->spec.origin;
  rest.path = state->spec.path;
  rest.range = http::range_from_offset(state->spec.probe_bytes);
  if (indirect) rest.proxy = state->spec.relays[relay_index];
  rest.timeout_s = state->spec.timeout_s;
  fetch(*state->reactor, rest,
        [state, indirect, relay_index, probe_elapsed](
            const FetchResult& remainder) {
          if (!remainder.ok) {
            state->fail("remainder failed: " + remainder.error);
            return;
          }
          RaceResult final;
          final.ok = true;
          final.chose_indirect = indirect;
          final.relay_index = relay_index;
          final.probe_elapsed = probe_elapsed;
          final.total_elapsed = state->reactor->now() - state->start_time;
          final.total_bytes = state->spec.resource_size;
          final.body_verified =
              state->probe_verified && remainder.body_verified;
          state->finish(final);
        });
}

}  // namespace

void start_probe_race(Reactor& reactor, const RaceSpec& spec,
                      RaceCallback on_done) {
  IDR_REQUIRE(on_done != nullptr, "start_probe_race: null callback");
  IDR_REQUIRE(spec.resource_size > 0, "start_probe_race: zero resource");
  IDR_REQUIRE(spec.probe_bytes > 0, "start_probe_race: zero probe");

  auto state = std::make_shared<RaceState>();
  state->reactor = &reactor;
  state->spec = spec;
  state->on_done = std::move(on_done);
  state->start_time = reactor.now();

  const std::uint64_t probe =
      std::min(spec.probe_bytes, spec.resource_size);
  state->pending = 1 + spec.relays.size();
  for (std::size_t lane = 0; lane < 1 + spec.relays.size(); ++lane) {
    FetchRequest req;
    req.origin = spec.origin;
    req.path = spec.path;
    req.range = http::range_first_bytes(probe);
    if (lane > 0) req.proxy = spec.relays[lane - 1];
    req.timeout_s = spec.timeout_s;
    state->lanes.push_back(
        fetch(reactor, req, [state, lane](const FetchResult& result) {
          on_probe_done(state, lane, result);
        }));
  }
}

}  // namespace idr::rt
