#include "rt/timer_wheel.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace idr::rt {

TimerWheel::TimerWheel(Reactor& reactor, double tick_s,
                       std::size_t slot_count)
    : reactor_(reactor), tick_s_(tick_s), slots_(slot_count) {
  IDR_REQUIRE(tick_s > 0.0, "TimerWheel: tick must be positive");
  IDR_REQUIRE(slot_count >= 2, "TimerWheel: need at least two slots");
  // Wheels on one reactor share these series; the counts aggregate.
  c_scheduled_ = reactor_.metrics().counter("rt.wheel.scheduled");
  c_fired_ = reactor_.metrics().counter("rt.wheel.fired");
  c_cancelled_ = reactor_.metrics().counter("rt.wheel.cancelled");
  c_ticks_ = reactor_.metrics().counter("rt.wheel.ticks");
}

TimerWheel::~TimerWheel() { disarm(); }

TimerWheel::Token TimerWheel::add(double delay_s,
                                  std::function<void()> cb) {
  IDR_REQUIRE(cb != nullptr, "TimerWheel::add: null callback");
  const Token token = ++next_token_;
  c_scheduled_.inc();
  place(token, delay_s, std::move(cb));
  arm();
  return token;
}

bool TimerWheel::cancel(Token token) {
  const auto it = locations_.find(token);
  if (it == locations_.end()) return false;
  slots_[it->second.slot].erase(it->second.it);
  locations_.erase(it);
  c_cancelled_.inc();
  if (locations_.empty()) disarm();
  return true;
}

bool TimerWheel::reschedule(Token token, double delay_s) {
  const auto it = locations_.find(token);
  if (it == locations_.end()) return false;
  std::function<void()> cb = std::move(it->second.it->callback);
  slots_[it->second.slot].erase(it->second.it);
  locations_.erase(it);
  place(token, delay_s, std::move(cb));
  arm();
  return true;
}

void TimerWheel::place(Token token, double delay_s,
                       std::function<void()> cb) {
  // Round up so an entry never fires before its deadline; a wheel entry
  // may fire up to one tick late, which callers accept by construction.
  const double raw = std::ceil(std::max(0.0, delay_s) / tick_s_);
  const std::uint64_t ticks =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(raw));
  const std::size_t slot =
      (cursor_ + static_cast<std::size_t>(ticks % slots_.size())) %
      slots_.size();
  Entry entry;
  entry.token = token;
  entry.rounds = (ticks - 1) / slots_.size();
  entry.callback = std::move(cb);
  slots_[slot].push_back(std::move(entry));
  locations_[token] = Location{slot, std::prev(slots_[slot].end())};
}

void TimerWheel::arm() {
  if (armed_ || locations_.empty()) return;
  armed_timer_ = reactor_.add_timer(tick_s_, [this] { on_tick(); });
  armed_ = true;
}

void TimerWheel::disarm() {
  if (!armed_) return;
  reactor_.cancel_timer(armed_timer_);
  armed_ = false;
}

void TimerWheel::on_tick() {
  armed_ = false;  // the one-shot reactor timer has fired
  cursor_ = (cursor_ + 1) % slots_.size();
  c_ticks_.inc();

  // Split the current slot into due and still-waiting entries before
  // running any callback: callbacks may add, cancel, or reschedule other
  // wheel entries (including into this same slot) without invalidating
  // the sweep.
  Slot due;
  Slot& slot = slots_[cursor_];
  for (auto it = slot.begin(); it != slot.end();) {
    if (it->rounds > 0) {
      --it->rounds;
      ++it;
      continue;
    }
    const auto next = std::next(it);
    locations_.erase(it->token);
    due.splice(due.end(), slot, it);
    it = next;
  }
  if (!due.empty()) {
    c_fired_.inc(due.size());
    // The reap span covers the due callbacks of this tick (empty ticks
    // stay out of the trace).
    obs::ScopedSpan span(reactor_.tracer(), reactor_.trace_clock(),
                         "timer.reap", "rt.wheel", reactor_.trace_track());
    for (Entry& entry : due) entry.callback();
  }

  arm();
}

}  // namespace idr::rt
