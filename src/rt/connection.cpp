#include "rt/connection.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace idr::rt {

std::shared_ptr<Connection> Connection::adopt(Reactor& reactor,
                                              FdHandle fd) {
  IDR_REQUIRE(fd.valid(), "Connection::adopt: invalid fd");
  auto conn = std::shared_ptr<Connection>(
      new Connection(reactor, std::move(fd)));
  conn->arm();
  return conn;
}

Connection::Connection(Reactor& reactor, FdHandle fd)
    : reactor_(reactor), fd_(std::move(fd)) {}

Connection::~Connection() { close(); }

void Connection::arm() {
  // Keep a weak reference: the reactor callback must not extend the
  // connection's life after the owner drops it — close() deregisters.
  std::weak_ptr<Connection> weak = weak_from_this();
  reactor_.add_fd(fd_.get(), read_enabled_, !send_queue_.empty(),
                  [weak](IoEvents events) {
                    if (auto self = weak.lock()) self->handle_events(events);
                  });
  registered_ = true;
}

void Connection::await_connect(ConnectCallback cb) {
  IDR_REQUIRE(cb != nullptr, "await_connect: null callback");
  IDR_REQUIRE(!connecting_, "await_connect: already awaiting");
  connecting_ = true;
  on_connect_ = std::move(cb);
  reactor_.update_fd(fd_.get(), read_enabled_, true);
}

void Connection::handle_events(IoEvents events) {
  if (closed()) return;
  // Keep self alive through the callbacks below.
  auto self = shared_from_this();

  if (connecting_ && (events.writable || events.error)) {
    connecting_ = false;
    const int err = connect_error(fd_.get());
    ConnectCallback cb = std::move(on_connect_);
    on_connect_ = nullptr;
    std::string err_msg = err != 0 ? std::strerror(err) : std::string();
    if (err == 0 && fault_ && fault_->kind == FaultKind::kDropOnConnect) {
      fault_.reset();
      FaultShim::instance().count_injection();
      err_msg = "connection refused (injected fault)";
    }
    if (!err_msg.empty()) {
      // Full close(), not just an fd reset: on_data_/on_close_ hold the
      // owner's self-referencing captures, and with the fd already gone a
      // later close() would early-return and never release them.
      close();
      if (cb) cb(err_msg);
      return;
    }
    reactor_.update_fd(fd_.get(), read_enabled_, !send_queue_.empty());
    if (cb) cb("");
    if (closed()) return;
  }

  if (events.readable && read_enabled_) handle_readable();
  if (closed()) return;
  if (events.writable && !connecting_) handle_writable();
  if (closed()) return;
  if (events.error) {
    // Drain any pending bytes first happened above; report as closed.
    fail("socket error/hangup");
  }
}

void Connection::handle_readable() {
  std::array<char, 64 * 1024> buffer;
  while (true) {
    const ssize_t n = ::recv(fd_.get(), buffer.data(), buffer.size(), 0);
    if (n > 0) {
      // A byte-counted fault rule delivers only its budget, then cuts the
      // stream as a reset or an orderly (truncating) EOF.
      std::size_t deliver = static_cast<std::size_t>(n);
      bool cut = false;
      if (fault_ && (fault_->kind == FaultKind::kMidStreamReset ||
                     fault_->kind == FaultKind::kTruncateBody)) {
        const std::uint64_t budget =
            fault_->after_bytes > fault_delivered_
                ? fault_->after_bytes - fault_delivered_
                : 0;
        if (deliver >= budget) {
          deliver = static_cast<std::size_t>(budget);
          cut = true;
        }
        fault_delivered_ += deliver;
      }
      bytes_received_ += deliver;
      if (deliver > 0 && on_data_) {
        // Invoke through a copy: the handler may close() this connection,
        // which clears on_data_ — destroying the very closure that is
        // executing unless we keep it alive here.
        DataCallback cb = on_data_;
        cb(std::string_view(buffer.data(), deliver));
      }
      if (closed() || !read_enabled_) return;
      if (cut) {
        const bool reset = fault_->kind == FaultKind::kMidStreamReset;
        fault_.reset();
        FaultShim::instance().count_injection();
        fail(reset ? "connection reset (injected fault)" : "");
        return;
      }
      continue;
    }
    if (n == 0) {
      fail("");  // orderly EOF
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    fail(std::strerror(errno));
    return;
  }
}

void Connection::handle_writable() {
  while (!send_queue_.empty()) {
    const std::string& chunk = send_queue_.front();
    const char* data = chunk.data() + send_offset_;
    const std::size_t len = chunk.size() - send_offset_;
    const ssize_t n = ::send(fd_.get(), data, len, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_sent_ += static_cast<std::size_t>(n);
      send_offset_ += static_cast<std::size_t>(n);
      if (send_offset_ == chunk.size()) {
        send_queue_.pop_front();
        send_offset_ = 0;
      }
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    fail(std::strerror(errno));
    return;
  }
  reactor_.update_fd(fd_.get(), read_enabled_, !send_queue_.empty());
}

void Connection::write(std::string_view data) {
  IDR_REQUIRE(!closed(), "write on closed connection");
  if (data.empty()) return;
  send_queue_.emplace_back(data);
  if (!connecting_) {
    // Try an eager flush; fall back to EPOLLOUT.
    handle_writable();
  }
}

std::size_t Connection::send_backlog() const {
  std::size_t total = 0;
  for (const auto& chunk : send_queue_) total += chunk.size();
  return total - send_offset_;
}

void Connection::set_fault(const FaultRule& rule) {
  IDR_REQUIRE(!closed(), "set_fault on closed connection");
  fault_ = rule;
  if (rule.kind == FaultKind::kStall) {
    // Freeze inbound delivery; the peer sees an open socket that never
    // drains — a wedged relay. A reactor timer thaws it.
    FaultShim::instance().count_injection();
    set_read_enabled(false);
    std::weak_ptr<Connection> weak = weak_from_this();
    stall_timer_ = reactor_.add_timer(rule.stall_s, [weak] {
      if (auto self = weak.lock()) {
        self->stall_timer_ = 0;
        self->fault_.reset();
        if (!self->closed()) self->set_read_enabled(true);
      }
    });
  }
}

void Connection::set_read_enabled(bool enabled) {
  if (read_enabled_ == enabled || closed()) return;
  read_enabled_ = enabled;
  reactor_.update_fd(fd_.get(), read_enabled_, !send_queue_.empty());
}

void Connection::close() {
  if (closed()) return;
  if (stall_timer_ != 0) {
    reactor_.cancel_timer(stall_timer_);
    stall_timer_ = 0;
  }
  if (registered_) {
    reactor_.remove_fd(fd_.get());
    registered_ = false;
  }
  fd_.reset();
  on_data_ = nullptr;
  on_close_ = nullptr;
  on_connect_ = nullptr;
}

void Connection::fail(const std::string& error) {
  if (closed()) return;
  CloseCallback cb = std::move(on_close_);
  close();
  if (cb) cb(error);
}

}  // namespace idr::rt
