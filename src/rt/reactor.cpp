#include "rt/reactor.hpp"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>

#include "util/error.hpp"

namespace idr::rt {

Reactor::Reactor() : origin_(std::chrono::steady_clock::now()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  IDR_REQUIRE(epoll_fd_ >= 0, "epoll_create1 failed");
  c_polls_ = metrics_.counter("rt.reactor.polls");
  c_io_dispatches_ = metrics_.counter("rt.reactor.io_dispatches");
  c_timers_scheduled_ = metrics_.counter("rt.reactor.timers_scheduled");
  c_timers_fired_ = metrics_.counter("rt.reactor.timers_fired");
  c_timers_cancelled_ = metrics_.counter("rt.reactor.timers_cancelled");
}

namespace {
double reactor_now_us(const void* ctx) {
  return static_cast<const Reactor*>(ctx)->now() * 1e6;
}
}  // namespace

obs::TraceClock Reactor::trace_clock() const {
  return obs::TraceClock{&reactor_now_us, this};
}

Reactor::~Reactor() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

namespace {
std::uint32_t to_mask(bool want_read, bool want_write) {
  std::uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}
}  // namespace

void Reactor::add_fd(int fd, bool want_read, bool want_write,
                     IoCallback cb) {
  IDR_REQUIRE(fd >= 0, "add_fd: bad fd");
  IDR_REQUIRE(cb != nullptr, "add_fd: null callback");
  IDR_REQUIRE(!fds_.contains(fd), "add_fd: fd already registered");
  epoll_event ev{};
  ev.events = to_mask(want_read, want_write);
  ev.data.fd = fd;
  IDR_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
              "epoll_ctl ADD failed");
  fds_[fd] = FdState{std::move(cb), want_read, want_write};
}

void Reactor::update_fd(int fd, bool want_read, bool want_write) {
  auto it = fds_.find(fd);
  IDR_REQUIRE(it != fds_.end(), "update_fd: unknown fd");
  if (it->second.want_read == want_read &&
      it->second.want_write == want_write) {
    return;
  }
  epoll_event ev{};
  ev.events = to_mask(want_read, want_write);
  ev.data.fd = fd;
  IDR_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0,
              "epoll_ctl MOD failed");
  it->second.want_read = want_read;
  it->second.want_write = want_write;
}

void Reactor::remove_fd(int fd) {
  const auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  fds_.erase(it);
}

TimerId Reactor::add_timer(double delay_s, std::function<void()> cb) {
  IDR_REQUIRE(delay_s >= 0.0, "add_timer: negative delay");
  IDR_REQUIRE(cb != nullptr, "add_timer: null callback");
  const TimerId id = ++next_timer_;
  timer_queue_.push(TimerEntry{now() + delay_s, id});
  timers_.emplace(id, std::move(cb));
  c_timers_scheduled_.inc();
  return id;
}

bool Reactor::cancel_timer(TimerId id) {
  const bool cancelled = timers_.erase(id) > 0;
  if (cancelled) c_timers_cancelled_.inc();
  return cancelled;
}

double Reactor::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       origin_)
      .count();
}

void Reactor::run_due_timers() {
  const double t = now();
  while (!timer_queue_.empty() && timer_queue_.top().deadline <= t) {
    const TimerId id = timer_queue_.top().id;
    timer_queue_.pop();
    const auto it = timers_.find(id);
    if (it == timers_.end()) continue;  // cancelled
    std::function<void()> cb = std::move(it->second);
    timers_.erase(it);
    c_timers_fired_.inc();
    cb();
  }
}

int Reactor::next_timeout_ms() const {
  // Skip cancelled entries at the head without mutating (const): a
  // cancelled head just means we may wake early and loop again.
  if (timer_queue_.empty()) return -1;
  const double delta = timer_queue_.top().deadline - now();
  if (delta <= 0.0) return 0;
  return static_cast<int>(std::min(60000.0, std::ceil(delta * 1000.0)));
}

bool Reactor::poll(double max_wait_s) {
  int timeout_ms =
      static_cast<int>(std::llround(std::max(0.0, max_wait_s) * 1000.0));
  const int timer_ms = next_timeout_ms();
  if (timer_ms >= 0) timeout_ms = std::min(timeout_ms, timer_ms);

  std::array<epoll_event, 64> events{};
  const int n = ::epoll_wait(epoll_fd_, events.data(),
                             static_cast<int>(events.size()), timeout_ms);
  c_polls_.inc();
  if (n > 0) c_io_dispatches_.inc(static_cast<std::uint64_t>(n));
  // The dispatch span covers callback execution, not the epoll_wait block
  // itself — the interesting cost is what the loop does, not how long it
  // slept. Emitted only for non-empty wakeups to keep traces readable.
  obs::ScopedSpan span(n > 0 ? tracer_ : nullptr, trace_clock(),
                       "reactor.poll", "rt.reactor", trace_track_);
  bool fired = false;
  for (int i = 0; i < n; ++i) {
    const int fd = events[static_cast<std::size_t>(i)].data.fd;
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;  // removed by an earlier callback
    IoEvents io;
    const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
    io.readable = (mask & EPOLLIN) != 0;
    io.writable = (mask & EPOLLOUT) != 0;
    io.error = (mask & (EPOLLERR | EPOLLHUP)) != 0;
    // Copy the callback: it may remove_fd (erasing the state) mid-call.
    IoCallback cb = it->second.callback;
    cb(io);
    fired = true;
  }
  run_due_timers();
  return fired || n > 0;
}

void Reactor::run() {
  stopped_ = false;
  while (!stopped_) {
    if (fds_.empty() && timers_.empty()) return;  // nothing to wait for
    poll(1.0);
  }
}

}  // namespace idr::rt
