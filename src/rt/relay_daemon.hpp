// The forwarding service the paper deployed on every intermediate node:
// an HTTP forward proxy. A client sends an absolute-form GET; the relay
// connects to the origin (or reuses a warm connection), forwards the
// request with a Via header appended, and streams the response back,
// applying backpressure so a slow client leg does not buffer the world.
//
// Overload governance (ServerLimits) is opt-in: a capped relay sheds
// excess sessions with 503 + Retry-After, pauses the listener past a
// shed burst, reaps idle connections through a timer wheel, and survives
// accept() failures with backoff instead of aborting.
//
// drain() is advertised, not silent: /healthz flips to "draining" at
// call time and the listener KEEPS accepting while in-flight sessions
// finish — new arrivals are answered (introspection served, forward
// requests told 503 + Retry-After) so fleet heartbeats and clients learn
// the relay is going away *before* the listener closes. Once the last
// pre-drain session completes, the listener closes and `on_drained`
// fires.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>

#include "http/parser.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/connection.hpp"
#include "rt/governance.hpp"
#include "rt/sampler.hpp"
#include "rt/timer_wheel.hpp"

namespace idr::rt {

class RelayDaemon {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral). Default limits govern
  /// nothing: behavior is identical to the pre-governance daemon.
  RelayDaemon(Reactor& reactor, std::uint16_t port = 0,
              ServerLimits limits = {});
  ~RelayDaemon();

  RelayDaemon(const RelayDaemon&) = delete;
  RelayDaemon& operator=(const RelayDaemon&) = delete;

  std::uint16_t port() const { return port_; }

  std::size_t transfers_forwarded() const {
    return static_cast<std::size_t>(c_transfers_.value());
  }
  std::uint64_t bytes_forwarded() const { return c_bytes_forwarded_.value(); }

  const ServerLimits& limits() const { return limits_; }
  /// SIGHUP-style hot reload: swaps the governance knobs without
  /// restarting the daemon or disturbing in-flight sessions. Admission
  /// caps apply from the next accept; parser limits from the next
  /// session; the idle reaper is created/destroyed as the new timeout
  /// demands (existing sessions are re-armed or released accordingly).
  void reload_limits(const ServerLimits& limits);
  /// Governance accounting, read from the `rt.relay.*` registry series.
  GovernanceCounters counters() const;
  std::size_t active_sessions() const { return sessions_.size(); }

  /// The daemon's metrics registry (Sync::Atomic). `GET /metrics` serves
  /// this merged with the reactor's registry; tests can snapshot it
  /// directly.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Wires server-side span emission: requests arriving with a valid
  /// `traceparent` get relay.parse / relay.upstream_connect /
  /// relay.first_byte / relay.stream spans under the caller's trace id,
  /// on Chrome process `pid`, row `track`. Null tracer (default) emits
  /// nothing.
  void set_tracer(obs::Tracer* tracer, std::uint64_t pid,
                  std::uint64_t track);

  /// Starts the periodic metrics sampler backing `/metrics?window=<s>`.
  /// Without it, window queries answer with an empty (but well-formed)
  /// window.
  void enable_sampling(double period_s, std::size_t capacity = 256);

  /// Per-session flight records (source "rt.relay"), newest-N ring;
  /// served live as `GET /debug/flights`.
  const obs::FlightRecorder& flights() const { return flights_; }

  /// Graceful, advertised shutdown: /healthz reports "draining"
  /// immediately, new forward requests are refused with 503 while
  /// in-flight sessions complete, then the listener closes and
  /// `on_drained` fires (at most once; immediately when already idle).
  void drain(std::function<void()> on_drained = nullptr);
  bool draining() const { return draining_; }

 private:
  struct Session;
  void on_accept();
  void start_session(FdHandle fd);
  /// Serves "/metrics" / "/healthz" when the parsed request targets them
  /// (origin-form; forwarded absolute-form requests never match).
  /// Returns true when the session was consumed by the introspection
  /// plane.
  bool maybe_serve_introspection(const std::shared_ptr<Session>& session);
  void connect_upstream(const std::shared_ptr<Session>& session);
  void shed_session(const std::shared_ptr<Session>& session);
  /// 503s a forward request that arrived while draining (the session was
  /// accepted only so introspection stays reachable).
  void drain_reject(const std::shared_ptr<Session>& session);
  /// True once every pre-drain session has finished (drain-era
  /// introspection sessions do not hold the drain open).
  bool drain_complete() const;
  void arm_idle(const std::shared_ptr<Session>& session);
  void reject(const std::shared_ptr<Session>& session, int status);
  void drop(const std::shared_ptr<Session>& session);
  void erase_session(const std::shared_ptr<Session>& session);
  void touch_idle(const std::shared_ptr<Session>& session);
  void pause_accept(double delay_s);
  void resume_accept();
  void finish_drain();
  /// Re-enables upstream reads once the client leg's backlog drains.
  void resume_when_drained(std::weak_ptr<Session> session);
  /// Closes the session once its last bytes reach the kernel.
  void drop_when_drained(std::weak_ptr<Session> session);
  /// Daemon + reactor registries, the exposition `GET /metrics` serves.
  obs::Snapshot merged_snapshot();
  /// Appends the session's flight record (forward sessions only, once).
  void record_flight(const std::shared_ptr<Session>& session);

  Reactor& reactor_;
  FdHandle listen_fd_;
  std::uint16_t port_ = 0;
  ServerLimits limits_;
  std::unique_ptr<TimerWheel> idle_wheel_;
  double accept_backoff_s_ = 0.0;
  bool accept_paused_ = false;
  bool listener_open_ = true;
  bool draining_ = false;
  std::function<void()> on_drained_;
  std::unordered_set<std::shared_ptr<Session>> sessions_;

  // Cross-hop tracing (dormant until set_tracer) and per-session flight
  // records (always on: the ring is tiny and lock-light).
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t trace_pid_ = 1;
  std::uint64_t trace_track_ = 0;
  std::uint64_t trace_seq_ = 0;  // per-session child-context salt
  obs::FlightRecorder flights_{128};
  std::unique_ptr<MetricsSampler> sampler_;

  // `rt.relay.*` series; handles resolved once at construction.
  obs::Registry metrics_{obs::Registry::Sync::Atomic};
  obs::Counter c_accepted_;
  obs::Counter c_shed_;
  obs::Counter c_idle_reaped_;
  obs::Counter c_accept_failures_;
  obs::Counter c_accept_pauses_;
  obs::Counter c_drained_;
  obs::Counter c_transfers_;
  obs::Counter c_bytes_forwarded_;
  obs::Counter c_requests_parsed_;
  obs::Counter c_rejects_bad_request_;
  obs::Counter c_rejects_upstream_;
  obs::Counter c_upstream_connects_;
  obs::Counter c_metrics_served_;
  obs::Counter c_healthz_served_;
  obs::Counter c_flights_served_;
  obs::Counter c_drain_rejected_;
  obs::Counter c_limits_reloaded_;
  obs::Gauge g_sessions_active_;
  obs::Gauge g_sessions_peak_;
  obs::Gauge g_draining_;
  obs::Gauge g_accept_backoff_s_;
  obs::Gauge g_limit_max_sessions_;
  obs::Histogram h_forward_chunk_bytes_;
};

}  // namespace idr::rt
