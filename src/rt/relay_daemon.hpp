// The forwarding service the paper deployed on every intermediate node:
// an HTTP forward proxy. A client sends an absolute-form GET; the relay
// connects to the origin (or reuses a warm connection), forwards the
// request with a Via header appended, and streams the response back,
// applying backpressure so a slow client leg does not buffer the world.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>

#include "http/parser.hpp"
#include "rt/connection.hpp"

namespace idr::rt {

class RelayDaemon {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral).
  RelayDaemon(Reactor& reactor, std::uint16_t port = 0);
  ~RelayDaemon();

  RelayDaemon(const RelayDaemon&) = delete;
  RelayDaemon& operator=(const RelayDaemon&) = delete;

  std::uint16_t port() const { return port_; }

  std::size_t transfers_forwarded() const { return transfers_; }
  std::uint64_t bytes_forwarded() const { return bytes_forwarded_; }

 private:
  struct Session;
  void on_accept();
  void start_session(FdHandle fd);
  void connect_upstream(const std::shared_ptr<Session>& session);
  void reject(const std::shared_ptr<Session>& session, int status);
  void drop(const std::shared_ptr<Session>& session);
  /// Re-enables upstream reads once the client leg's backlog drains.
  void resume_when_drained(std::weak_ptr<Session> session);
  /// Closes the session once its last bytes reach the kernel.
  void drop_when_drained(std::weak_ptr<Session> session);

  Reactor& reactor_;
  FdHandle listen_fd_;
  std::uint16_t port_ = 0;
  std::size_t transfers_ = 0;
  std::uint64_t bytes_forwarded_ = 0;
  std::unordered_set<std::shared_ptr<Session>> sessions_;
};

}  // namespace idr::rt
