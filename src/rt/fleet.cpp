#include "rt/fleet.hpp"

#include <algorithm>
#include <set>

#include "obs/log.hpp"
#include "rt/governance.hpp"

namespace idr::rt {

FleetDirectory::FleetDirectory(Reactor& reactor, FleetConfig config)
    : reactor_(reactor), config_(config), table_(config.membership) {
  c_probes_sent_ = metrics_.counter("rt.fleet.probes_sent");
  c_probes_ok_ = metrics_.counter("rt.fleet.probes_ok");
  c_probes_missed_ = metrics_.counter("rt.fleet.probes_missed");
  c_transitions_ = metrics_.counter("rt.fleet.transitions");
  c_marked_suspect_ = metrics_.counter("rt.fleet.marked_suspect");
  c_marked_down_ = metrics_.counter("rt.fleet.marked_down");
  c_readmitted_ = metrics_.counter("rt.fleet.readmitted");
  c_candidates_excluded_ = metrics_.counter("rt.fleet.candidates_excluded");
  c_relays_added_ = metrics_.counter("rt.fleet.relays_added");
  c_relays_removed_ = metrics_.counter("rt.fleet.relays_removed");
  c_reloads_ = metrics_.counter("rt.fleet.reloads");
  g_relays_ = metrics_.gauge("rt.fleet.relays");
  g_alive_ = metrics_.gauge("rt.fleet.alive");
  g_eligible_ = metrics_.gauge("rt.fleet.eligible");
  g_detect_seconds_max_ = metrics_.gauge("rt.fleet.detect_seconds_max");
  h_detect_seconds_ = metrics_.histogram(
      "rt.fleet.detect_seconds", obs::HistogramOptions{1e-3, 60.0, 4});
  h_probe_rtt_seconds_ = metrics_.histogram(
      "rt.fleet.probe_rtt_seconds", obs::HistogramOptions{1e-5, 10.0, 4});
}

FleetDirectory::~FleetDirectory() { stop(); }

std::string FleetDirectory::key(const Endpoint& endpoint) {
  return endpoint.host + ":" + std::to_string(endpoint.port);
}

FleetDirectory::ProbeState* FleetDirectory::find(const Endpoint& endpoint) {
  const auto it = by_endpoint_.find(key(endpoint));
  if (it == by_endpoint_.end()) return nullptr;
  return &members_.at(it->second);
}

const FleetDirectory::ProbeState* FleetDirectory::find(
    const Endpoint& endpoint) const {
  const auto it = by_endpoint_.find(key(endpoint));
  if (it == by_endpoint_.end()) return nullptr;
  return &members_.at(it->second);
}

net::NodeId FleetDirectory::add_relay(const Endpoint& endpoint,
                                      std::string name) {
  if (const ProbeState* existing = find(endpoint)) return existing->id;
  const net::NodeId id = next_id_++;
  ProbeState state;
  state.id = id;
  state.endpoint = endpoint;
  state.name = name.empty() ? key(endpoint) : std::move(name);
  state.cadence_s = config_.heartbeat_interval_s;
  by_endpoint_.emplace(key(endpoint), id);
  table_.add_relay(id, state.name, reactor_.now());
  members_.emplace(id, std::move(state));
  c_relays_added_.inc();
  refresh_gauges();
  // A freshly added relay is probed at once: discovery should not wait
  // out a full interval.
  if (running_) schedule_probe(id, 0.0);
  return id;
}

void FleetDirectory::remove_relay(const Endpoint& endpoint) {
  const auto it = by_endpoint_.find(key(endpoint));
  if (it == by_endpoint_.end()) return;
  const net::NodeId id = it->second;
  ProbeState& state = members_.at(id);
  if (state.timer != 0) {
    reactor_.cancel_timer(state.timer);
    state.timer = 0;
  }
  state.inflight.cancel();
  table_.remove_relay(id);
  members_.erase(id);
  by_endpoint_.erase(it);
  c_relays_removed_.inc();
  refresh_gauges();
}

void FleetDirectory::reload(const std::vector<Endpoint>& relays) {
  c_reloads_.inc();
  std::set<std::string> wanted;
  for (const Endpoint& endpoint : relays) wanted.insert(key(endpoint));
  // Remove first (ids of survivors must not be disturbed), then add.
  std::vector<Endpoint> gone;
  for (const auto& [id, state] : members_) {
    if (wanted.find(key(state.endpoint)) == wanted.end()) {
      gone.push_back(state.endpoint);
    }
  }
  for (const Endpoint& endpoint : gone) remove_relay(endpoint);
  for (const Endpoint& endpoint : relays) add_relay(endpoint);
}

void FleetDirectory::start() {
  if (running_) return;
  running_ = true;
  for (const auto& [id, state] : members_) schedule_probe(id, 0.0);
}

void FleetDirectory::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& [id, state] : members_) {
    if (state.timer != 0) {
      reactor_.cancel_timer(state.timer);
      state.timer = 0;
    }
    state.inflight.cancel();
    state.probe_inflight = false;
  }
}

core::RelayHealth FleetDirectory::health(const Endpoint& endpoint) const {
  const ProbeState* state = find(endpoint);
  return state ? table_.health(state->id) : core::RelayHealth::Alive;
}

bool FleetDirectory::eligible(const Endpoint& endpoint) const {
  const ProbeState* state = find(endpoint);
  return state == nullptr || table_.eligible(state->id, reactor_.now());
}

std::vector<std::size_t> FleetDirectory::eligible_indices(
    const std::vector<Endpoint>& candidates) const {
  std::vector<std::size_t> kept;
  kept.reserve(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (eligible(candidates[i])) {
      kept.push_back(i);
    } else {
      c_candidates_excluded_.inc();
    }
  }
  return kept;
}

std::vector<FleetMember> FleetDirectory::members() const {
  std::vector<FleetMember> out;
  out.reserve(members_.size());
  for (const auto& [id, state] : members_) {
    FleetMember member;
    member.id = id;
    member.endpoint = state.endpoint;
    member.name = state.name;
    member.health = table_.health(id);
    out.push_back(std::move(member));
  }
  return out;
}

void FleetDirectory::schedule_probe(net::NodeId id, double delay_s) {
  ProbeState& state = members_.at(id);
  if (state.timer != 0) reactor_.cancel_timer(state.timer);
  state.timer = reactor_.add_timer(delay_s, [this, id] {
    const auto it = members_.find(id);
    if (it == members_.end()) return;  // removed while the timer slept
    it->second.timer = 0;
    launch_probe(id);
  });
}

void FleetDirectory::launch_probe(net::NodeId id) {
  ProbeState& state = members_.at(id);
  if (state.probe_inflight) {
    // Previous probe still pending (should not outlive its own timeout,
    // but never let the probe loop die): try again next interval.
    schedule_probe(id, state.cadence_s);
    return;
  }
  state.probe_inflight = true;
  c_probes_sent_.inc();
  FetchRequest request;
  request.origin = state.endpoint;
  request.path = "/healthz";
  request.timeout_s = config_.probe_timeout_s;
  request.connect_timeout_s = config_.probe_connect_timeout_s;
  request.capture_body = true;
  state.inflight =
      fetch(reactor_, request, [this, id](const FetchResult& result) {
        // The directory may have dropped this relay while the probe was
        // in flight (hot reload); results for ghosts are ignored.
        const auto it = members_.find(id);
        if (it == members_.end()) return;
        it->second.probe_inflight = false;
        on_probe_result(id, result);
      });
}

void FleetDirectory::on_probe_result(net::NodeId id,
                                     const FetchResult& result) {
  ProbeState& state = members_.at(id);
  const double now = reactor_.now();

  std::optional<HealthzInfo> info;
  if (result.ok && result.status == 200) info = parse_healthz(result.body);

  core::HeartbeatOutcome outcome;
  if (info) {
    c_probes_ok_.inc();
    h_probe_rtt_seconds_.observe(result.elapsed());
    core::HeartbeatStatus status = core::HeartbeatStatus::Ok;
    if (info->status == "draining") {
      status = core::HeartbeatStatus::Draining;
    } else if (info->status == "shedding") {
      status = core::HeartbeatStatus::Shedding;
    }
    outcome = table_.note_heartbeat(id, status, info->retry_after_s, now);
    state.cadence_s = config_.heartbeat_interval_s;
  } else {
    // Timeout, refused connect, non-200, or an unparseable body: a miss.
    c_probes_missed_.inc();
    outcome = table_.note_miss(id, now);
    // Back off only once the relay is confirmed Down: suspicion must be
    // resolved at full cadence (or detection would take longer than the
    // promised down_after_misses intervals), but probing a corpse gets
    // exponentially cheaper up to the cap — and snaps back to the
    // heartbeat interval on first contact.
    if (table_.health(id) == core::RelayHealth::Down) {
      state.cadence_s =
          std::min(state.cadence_s * 2.0, config_.probe_backoff_max_s);
    }
  }
  apply_outcome(state, outcome);
  refresh_gauges();  // a shed hold can expire without a transition
  schedule_probe(id, state.cadence_s);
}

void FleetDirectory::apply_outcome(const ProbeState& state,
                                   const core::HeartbeatOutcome& outcome) {
  if (!outcome.transitioned()) return;
  c_transitions_.inc();
  using core::RelayHealth;
  if (outcome.after == RelayHealth::Suspect) c_marked_suspect_.inc();
  if (outcome.after == RelayHealth::Down) {
    c_marked_down_.inc();
    h_detect_seconds_.observe(outcome.since_last_contact);
    g_detect_seconds_max_.set(std::max(g_detect_seconds_max_.value(),
                                       outcome.since_last_contact));
  }
  if (outcome.before == RelayHealth::Probation &&
      outcome.after == RelayHealth::Alive) {
    c_readmitted_.inc();
  }
  IDR_OBS_LOG(obs::Severity::Info, "rt.fleet",
              "relay " << state.name << ": "
                       << core::relay_health_name(outcome.before) << " -> "
                       << core::relay_health_name(outcome.after));
  refresh_gauges();
}

void FleetDirectory::refresh_gauges() {
  g_relays_.set(static_cast<double>(members_.size()));
  g_alive_.set(static_cast<double>(table_.alive_count()));
  g_eligible_.set(
      static_cast<double>(table_.eligible_count(reactor_.now())));
}

}  // namespace idr::rt
