// Overload-governance knobs and accounting shared by the rt daemons.
//
// A relay is only useful while it has headroom (the paper's Table III ties
// per-relay utilization directly to delivered improvement), so a saturated
// daemon must shed load explicitly — 503 + Retry-After — instead of
// queueing unboundedly and wedging every session it has. ServerLimits is
// the policy, GovernanceCounters the observable record; both default to
// "governance off" so existing callers see byte-identical behavior.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "http/message.hpp"
#include "http/parser.hpp"

namespace idr::rt {

/// Per-daemon admission and resource limits. Zero values disable the
/// corresponding mechanism; a default-constructed ServerLimits governs
/// nothing beyond the parser's standing size bounds.
struct ServerLimits {
  /// Sessions served concurrently before new arrivals are shed with 503.
  /// 0 = unlimited.
  std::size_t max_sessions = 0;
  /// Sessions beyond max_sessions that may be accepted just to be told
  /// 503. Past max_sessions + shed_burst the listener stops accepting
  /// entirely (kernel backlog absorbs the excess) until load drops.
  std::size_t shed_burst = 32;
  /// Idle connections are reaped after this long without bytes in either
  /// direction. 0 = never reap.
  double idle_timeout_s = 0.0;
  /// Advertised in the Retry-After header of shed responses.
  double retry_after_s = 1.0;
  /// accept() failure backoff window (exponential between these bounds).
  double accept_backoff_initial_s = 0.05;
  double accept_backoff_max_s = 1.0;
  /// Request-parsing size bounds (start line / header block / body).
  http::ParserLimits parser{};

  bool governs_admission() const { return max_sessions > 0; }
  bool governs_idle() const { return idle_timeout_s > 0.0; }
};

/// Monotonic counters a daemon exposes so tests and benches can assert on
/// shedding behavior instead of inferring it from timing.
struct GovernanceCounters {
  std::uint64_t accepted = 0;        // connections admitted as sessions
  std::uint64_t shed = 0;            // connections answered 503
  std::uint64_t idle_reaped = 0;     // sessions closed by the idle reaper
  std::uint64_t accept_failures = 0; // accept() errors survived
  std::uint64_t accept_pauses = 0;   // times the listener paused reads
  std::uint64_t drained = 0;         // sessions finished during drain
};

/// True when `err` from accept() indicates transient resource pressure
/// (fd or buffer exhaustion) worth backing off on, as opposed to a
/// programming error that should still fail loudly.
bool accept_errno_is_transient(int err);

/// The shed response: 503 with Retry-After (integral seconds, rounded
/// up) and Connection: close.
http::Response make_overload_response(double retry_after_s);

/// One parsed introspection request. The plane grew query parameters in
/// the observability-part-2 PR:
///   /metrics                 — prometheus text exposition (as before)
///   /metrics?format=json     — Snapshot::to_json of the same registry
///   /metrics?window=<s>      — windowed rates from the daemon's sampler
///                              (JSON; requires enable_sampling)
///   /debug/flights           — last N flight records as JSONL
///   /debug/flights?n=<k>     — last k records
///   /healthz                 — liveness (as before)
/// Unknown query parameters are ignored so probes can evolve.
struct IntrospectionQuery {
  enum class Kind { None, Metrics, Healthz, Flights };
  Kind kind = Kind::None;
  bool json = false;         // /metrics?format=json
  double window_s = 0.0;     // /metrics?window=<s>; 0 = cumulative
  std::size_t last_n = 64;   // /debug/flights?n=<k>

  bool is_introspection() const { return kind != Kind::None; }
};

/// Splits an origin-form target into path + query and classifies it.
/// Kind::None for everything outside the introspection plane.
IntrospectionQuery parse_introspection_target(std::string_view target);

/// True when an origin-form request target addresses the introspection
/// plane ("/metrics", "/healthz", "/debug/flights", with or without a
/// query). Introspection requests are served by every rt daemon — even
/// one that is shedding load, since an operator needs exactly those
/// endpoints to see WHY it is shedding — and are never counted as
/// forwarded/served traffic.
bool is_introspection_target(std::string_view target);

/// 200 text/plain response carrying a prometheus text exposition.
http::Response make_metrics_response(std::string exposition);

/// 200 application/json response (the ?format=json and ?window=<s>
/// variants of /metrics).
http::Response make_json_response(std::string body);

/// 200 application/x-ndjson response carrying flight records, one JSON
/// object per line.
http::Response make_flights_response(std::string jsonl);

/// 200 application/json liveness response. `status` is "ok", "shedding",
/// or "draining"; `sessions` the daemon's current session count. A
/// positive `retry_after_s` adds a `"retry_after"` hint (integral
/// seconds, rounded up) — the shedding relay's pacing advice, mirrored
/// from the 503 plane so heartbeat probes learn it without being shed
/// themselves. Zero keeps the body byte-identical to the pre-fleet
/// shape.
http::Response make_healthz_response(std::string_view status,
                                     std::size_t sessions,
                                     double retry_after_s = 0.0);

/// The fields a /healthz body advertises, as a heartbeat probe reads
/// them back.
struct HealthzInfo {
  std::string status;       // "ok" | "shedding" | "draining"
  std::size_t sessions = 0;
  double retry_after_s = 0.0;  // 0 when the body carried no hint
};

/// Parses a make_healthz_response body. Tolerates unknown extra fields;
/// nullopt when no status field is present (the probe should count the
/// heartbeat as a miss rather than guess).
std::optional<HealthzInfo> parse_healthz(std::string_view body);

}  // namespace idr::rt
