// Periodic metrics sampler for the rt daemons.
//
// Arms a TimerWheel on the daemon's reactor and, every `period_s`, pushes
// one cumulative Snapshot (whatever the daemon's snapshot function
// returns — typically its own registry merged with the reactor's) into an
// obs::TimeSeries stamped with Reactor::now(). The series then answers
// `/metrics?window=<s>` — "what was the shed rate in the 10 s around that
// detect event" — without the daemon keeping any per-window state itself.
//
// Construction is the opt-in: daemons that never call enable_sampling()
// do no periodic work at all, keeping the dormant-by-default contract.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "rt/timer_wheel.hpp"

namespace idr::rt {

class MetricsSampler {
 public:
  using SnapshotFn = std::function<obs::Snapshot()>;

  /// Starts sampling immediately (first sample is taken synchronously so
  /// a window query can never see an empty series after construction).
  MetricsSampler(Reactor& reactor, SnapshotFn snapshot_fn, double period_s,
                 std::size_t capacity = 256);
  ~MetricsSampler();
  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  const obs::TimeSeries& series() const { return series_; }
  double period_seconds() const { return period_s_; }

  /// Takes one sample now, outside the periodic cadence (daemons call it
  /// before answering a window query so the newest edge is current).
  void sample_now();

 private:
  void arm();

  Reactor& reactor_;
  SnapshotFn snapshot_fn_;
  double period_s_;
  obs::TimeSeries series_;
  TimerWheel wheel_;
  TimerWheel::Token token_ = 0;
  bool armed_ = false;
};

}  // namespace idr::rt
