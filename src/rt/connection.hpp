// Buffered asynchronous TCP connection bound to a Reactor.
//
// Owns the fd; delivers inbound bytes via on_data, drains an outbound
// queue when the socket is writable, and reports EOF/errors via on_close.
// Lifetime: Connections are managed via shared_ptr because callbacks may
// destroy the owner mid-event.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "rt/fault_shim.hpp"
#include "rt/reactor.hpp"
#include "rt/socket.hpp"

namespace idr::rt {

class Connection : public std::enable_shared_from_this<Connection> {
 public:
  /// Wraps an already-connected (or connecting) non-blocking fd.
  static std::shared_ptr<Connection> adopt(Reactor& reactor, FdHandle fd);

  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  using DataCallback = std::function<void(std::string_view)>;
  /// `error` is empty on orderly EOF.
  using CloseCallback = std::function<void(const std::string& error)>;
  using ConnectCallback = std::function<void(const std::string& error)>;

  void set_on_data(DataCallback cb) { on_data_ = std::move(cb); }
  void set_on_close(CloseCallback cb) { on_close_ = std::move(cb); }

  /// For fds from connect_nonblocking: fires once the connect resolves.
  /// Must be called before any data is written.
  void await_connect(ConnectCallback cb);

  /// Queues bytes for sending; transparently waits for writability.
  void write(std::string_view data);

  /// Stops reading/writing and closes the socket. on_close does NOT fire
  /// for a locally-initiated close.
  void close();

  /// Pauses/resumes delivery of on_data (flow control for relays).
  void set_read_enabled(bool enabled);

  /// Attaches a fault rule from the shim (testing only): drop-on-connect
  /// fires at connect resolution, stall freezes inbound delivery, and the
  /// byte-counted kinds cut the stream after `after_bytes` inbound bytes.
  void set_fault(const FaultRule& rule);

  bool closed() const { return !fd_.valid(); }
  std::size_t bytes_received() const { return bytes_received_; }
  std::size_t bytes_sent() const { return bytes_sent_; }
  /// Bytes queued but not yet written to the kernel.
  std::size_t send_backlog() const;
  int fd() const { return fd_.get(); }

 private:
  Connection(Reactor& reactor, FdHandle fd);
  void arm();
  void handle_events(IoEvents events);
  void handle_readable();
  void handle_writable();
  void fail(const std::string& error);

  Reactor& reactor_;
  FdHandle fd_;
  DataCallback on_data_;
  CloseCallback on_close_;
  ConnectCallback on_connect_;
  bool connecting_ = false;
  bool read_enabled_ = true;
  std::optional<FaultRule> fault_;
  std::uint64_t fault_delivered_ = 0;
  TimerId stall_timer_ = 0;
  std::deque<std::string> send_queue_;
  std::size_t send_offset_ = 0;  // into send_queue_.front()
  std::size_t bytes_received_ = 0;
  std::size_t bytes_sent_ = 0;
  bool registered_ = false;
};

}  // namespace idr::rt
