#include "rt/sampler.hpp"

#include <utility>

namespace idr::rt {

MetricsSampler::MetricsSampler(Reactor& reactor, SnapshotFn snapshot_fn,
                               double period_s, std::size_t capacity)
    : reactor_(reactor),
      snapshot_fn_(std::move(snapshot_fn)),
      period_s_(period_s > 0.0 ? period_s : 1.0),
      series_(capacity),
      // Tick at the sampling period; the wheel rounds deadlines up to a
      // tick, so one-slot-per-period keeps firings on cadence.
      wheel_(reactor, period_s_ > 0.0 ? period_s_ : 1.0, 8) {
  sample_now();
  arm();
}

MetricsSampler::~MetricsSampler() {
  if (armed_) wheel_.cancel(token_);
}

void MetricsSampler::sample_now() {
  if (snapshot_fn_) series_.push(reactor_.now(), snapshot_fn_());
}

void MetricsSampler::arm() {
  armed_ = true;
  token_ = wheel_.add(period_s_, [this] {
    armed_ = false;
    sample_now();
    arm();
  });
}

}  // namespace idr::rt
