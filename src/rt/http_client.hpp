// Asynchronous HTTP/1.1 GET client for the real-socket runtime.
//
// One fetch = one connection (optionally via a forward proxy, in which
// case the request line carries the absolute-form URL, as the paper's
// measurement framework did). Reports status, body size, wall-clock
// timings and an integrity check against the deterministic origin body.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "http/range.hpp"
#include "obs/trace.hpp"
#include "rt/connection.hpp"

namespace idr::rt {

struct Endpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

struct FetchRequest {
  Endpoint origin;
  std::string path = "/";
  std::optional<http::RangeSpec> range;
  /// When set, connect here and send an absolute-form request instead.
  std::optional<Endpoint> proxy;
  /// Abort if the response hasn't completed within this many seconds.
  double timeout_s = 30.0;
  /// Separate, tighter bound on TCP connect alone (0 = only timeout_s
  /// applies). Heartbeat probes set this so a dead relay is detected in
  /// one probe interval instead of hanging a transfer-sized timeout.
  double connect_timeout_s = 0.0;
  /// Copy the response body into FetchResult::body (off by default:
  /// transfers only need counts, and bulk bodies would double memory).
  bool capture_body = false;
  /// When valid, the request carries a `traceparent` header so relay and
  /// origin can emit server spans under the same trace id. Default
  /// (invalid) adds no header — the wire format is unchanged.
  obs::TraceContext trace{};
};

struct FetchResult {
  bool ok = false;
  std::string error;
  int status = 0;
  std::uint64_t body_bytes = 0;
  double start_time = 0.0;   // reactor clock
  double first_byte_time = 0.0;
  double finish_time = 0.0;
  /// True when every body byte matched the deterministic origin pattern
  /// at its Content-Range offset.
  bool body_verified = false;
  /// Parsed Retry-After header (seconds), if the response carried one —
  /// set on 503 sheds so callers can pace their retry. 0 = absent.
  double retry_after_s = 0.0;
  /// Response body, only when FetchRequest::capture_body was set.
  std::string body;

  /// An overloaded peer said "later" (503): not a crash, not a protocol
  /// error, and worth a shorter blacklist penalty than either.
  bool overloaded() const { return status == 503; }

  double elapsed() const { return finish_time - start_time; }
  double throughput() const {  // bytes/s over the whole operation
    return elapsed() > 0.0 ? static_cast<double>(body_bytes) / elapsed()
                           : 0.0;
  }
};

using FetchCallback = std::function<void(const FetchResult&)>;

/// Handle for cancelling an in-flight fetch (losing probes in a race).
class FetchHandle {
 public:
  FetchHandle() = default;
  explicit FetchHandle(std::weak_ptr<void> state) : state_(std::move(state)) {}
  /// Aborts the fetch; its callback will not fire. No-op if finished.
  void cancel();
  bool active() const { return !state_.expired(); }

 private:
  std::weak_ptr<void> state_;
};

/// Starts a GET; the callback fires on the reactor loop exactly once
/// (unless cancelled).
FetchHandle fetch(Reactor& reactor, const FetchRequest& request,
                  FetchCallback on_done);

}  // namespace idr::rt
