#include "rt/fault_shim.hpp"

namespace idr::rt {

FaultShim& FaultShim::instance() {
  static FaultShim shim;
  return shim;
}

void FaultShim::arm(std::uint16_t port, FaultRule rule) {
  rules_[port].push_back(rule);
}

void FaultShim::clear() { rules_.clear(); }

std::optional<FaultRule> FaultShim::take(std::uint16_t port) {
  const auto it = rules_.find(port);
  if (it == rules_.end() || it->second.empty()) return std::nullopt;
  FaultRule& front = it->second.front();
  const FaultRule rule = front;
  if (front.uses > 0 && --front.uses == 0) {
    it->second.erase(it->second.begin());
    if (it->second.empty()) rules_.erase(it);
  }
  return rule;
}

}  // namespace idr::rt
