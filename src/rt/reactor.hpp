// Single-threaded epoll reactor with monotonic timers — the event loop
// under the real-socket overlay runtime (origin server, relay daemon,
// client, probe race). Everything runs on the loop thread; no locks.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace idr::rt {

/// Event mask bits passed to I/O callbacks.
struct IoEvents {
  bool readable = false;
  bool writable = false;
  bool error = false;  // EPOLLERR / EPOLLHUP
};

using TimerId = std::uint64_t;

class Reactor {
 public:
  Reactor();
  ~Reactor();
  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  using IoCallback = std::function<void(IoEvents)>;

  /// Registers a non-blocking fd. The callback fires on the loop for
  /// every ready event until remove_fd.
  void add_fd(int fd, bool want_read, bool want_write, IoCallback cb);
  /// Changes interest set.
  void update_fd(int fd, bool want_read, bool want_write);
  /// Unregisters; safe to call from inside the fd's own callback.
  void remove_fd(int fd);

  /// One-shot timer after `delay_s` seconds (monotonic clock).
  TimerId add_timer(double delay_s, std::function<void()> cb);
  bool cancel_timer(TimerId id);

  /// Runs until stop() is called or there is nothing left to wait for
  /// (no fds, no timers).
  void run();
  void stop() { stopped_ = true; }

  /// Polls once with at most `max_wait_s`; returns whether any event or
  /// timer fired. Useful for tests.
  bool poll(double max_wait_s);

  /// Seconds since reactor construction (monotonic).
  double now() const;

  /// The loop's metrics registry (Sync::Atomic: the loop writes while a
  /// /metrics scrape snapshots). Daemons on this reactor register their
  /// own series here or merge this registry's snapshot into theirs.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Optional span tracer for poll/dispatch and timer-wheel reaps;
  /// `track` is the Chrome tid. Null/disabled costs one branch per poll.
  void set_tracer(obs::Tracer* tracer, std::uint64_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }
  obs::Tracer* tracer() const { return tracer_; }
  std::uint64_t trace_track() const { return trace_track_; }
  /// Clock stamping this reactor's monotonic time in trace microseconds.
  obs::TraceClock trace_clock() const;

 private:
  struct FdState {
    IoCallback callback;
    bool want_read = false;
    bool want_write = false;
  };
  struct TimerEntry {
    double deadline;
    TimerId id;
    bool operator>(const TimerEntry& other) const {
      if (deadline != other.deadline) return deadline > other.deadline;
      return id > other.id;
    }
  };

  void run_due_timers();
  int next_timeout_ms() const;

  int epoll_fd_ = -1;
  std::chrono::steady_clock::time_point origin_;
  std::unordered_map<int, FdState> fds_;
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>> timer_queue_;
  std::unordered_map<TimerId, std::function<void()>> timers_;
  TimerId next_timer_ = 0;
  bool stopped_ = false;

  // `rt.reactor.*` series; handles resolved once at construction.
  obs::Registry metrics_{obs::Registry::Sync::Atomic};
  obs::Counter c_polls_;
  obs::Counter c_io_dispatches_;
  obs::Counter c_timers_scheduled_;
  obs::Counter c_timers_fired_;
  obs::Counter c_timers_cancelled_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t trace_track_ = 0;
};

}  // namespace idr::rt
