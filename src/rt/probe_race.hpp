// The paper's probe race over real sockets: request the first x bytes of
// the resource over the direct path and through each candidate relay
// simultaneously; the first lane to deliver its probe wins, the losers
// are aborted, and the remaining bytes are fetched over the winner.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/http_client.hpp"
#include "rt/relay_daemon.hpp"

namespace idr::rt {

struct RaceSpec {
  Endpoint origin;
  std::string path = "/";
  std::uint64_t resource_size = 0;  // must match the origin's resource
  std::uint64_t probe_bytes = 100 * 1000;
  /// Candidate relay endpoints; the direct path always races too.
  std::vector<Endpoint> relays;
  double timeout_s = 30.0;
  /// Bounded retry with backoff for the remainder fetch and the direct
  /// fallback — same semantics as the simulated race (fault/fault.hpp):
  /// max_retries extra attempts per phase, then degrade to the direct
  /// path, and only fail once that dies too.
  fault::RetryPolicy retry{};
  /// Optional observability: `rt.race.*` counters land in `metrics`, and
  /// an enabled `tracer` gets one "probe_race" span per race on
  /// `trace_track` (reactor-clock timestamps). Both may be null.
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  std::uint32_t trace_track = 0;
  /// Cross-hop identity for this transfer. When valid, every probe and
  /// transfer request the race issues carries a `traceparent` child of it
  /// (relay and origin answer with server spans under the same trace id),
  /// the probe_race span carries the ids, and flow-bind events link the
  /// chain. Invalid (default): no header, no flow events — byte-identical
  /// wire traffic.
  obs::TraceContext trace{};
  /// Chrome pid for this client's spans in a merged multi-role trace.
  std::uint64_t trace_pid = 1;
  /// When set, the race appends one FlightRecord (source "rt.race") on
  /// completion.
  obs::FlightRecorder* flights = nullptr;

  /// When set (an index into `relays`), the race is skipped: the whole
  /// resource is fetched through that relay in one request — zero probe
  /// connections, zero probe bytes. If the pinned fetch fails, the full
  /// race launches over `relays` as if the pin had never existed. Set by
  /// race-skipping selection (PassiveSelector); nullopt races as before.
  std::optional<std::size_t> pinned_relay;
  /// Age (seconds) of the estimate behind the pin, for the
  /// rt.select.estimate_age histogram. Meaningless without a pin.
  double pinned_estimate_age_s = 0.0;
};

struct RaceResult {
  bool ok = false;
  std::string error;
  bool chose_indirect = false;
  std::size_t relay_index = SIZE_MAX;  // into RaceSpec::relays
  /// True when the race was skipped on a pinned relay and the whole
  /// resource rode it (no probe connections were opened). False whenever
  /// lanes actually raced — including a race forced by a failed pin.
  bool race_skipped = false;
  double probe_elapsed = 0.0;
  double total_elapsed = 0.0;
  std::uint64_t total_bytes = 0;
  bool body_verified = false;
  /// Fault/retry accounting (zero on a clean race): failed probe lanes,
  /// attempts beyond each phase's first try, and whether the transfer was
  /// salvaged over the direct path after the winner died.
  std::size_t probe_failures = 0;
  std::size_t retries = 0;
  bool fell_back_direct = false;
  /// Of the failures above, how many were 503 sheds from an overloaded
  /// peer — a softer signal than a crash (the relay is alive and said
  /// when to come back).
  std::size_t overload_rejections = 0;

  double throughput() const {
    return total_elapsed > 0.0
               ? static_cast<double>(total_bytes) / total_elapsed
               : 0.0;
  }
};

using RaceCallback = std::function<void(const RaceResult&)>;

/// Starts the race on the reactor; the callback fires exactly once.
void start_probe_race(Reactor& reactor, const RaceSpec& spec,
                      RaceCallback on_done);

}  // namespace idr::rt
