#include "rt/http_client.hpp"

#include "http/parser.hpp"
#include "http/traceparent.hpp"
#include "rt/fault_shim.hpp"
#include "rt/http_server.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace idr::rt {

namespace {

struct FetchState {
  Reactor* reactor = nullptr;
  FetchRequest request;
  FetchCallback on_done;
  std::shared_ptr<Connection> conn;
  http::ResponseParser parser;
  FetchResult result;
  std::uint64_t verify_offset = 0;  // absolute offset of next body byte
  bool verify_ok = true;
  bool range_resolved = false;
  bool finished = false;
  TimerId timeout_timer = 0;
  TimerId connect_timer = 0;

  void finish(bool ok, const std::string& error) {
    if (finished) return;
    finished = true;
    reactor_cancel();
    if (conn) conn->close();
    result.ok = ok;
    result.error = error;
    result.finish_time = reactor->now();
    if (on_done) on_done(result);
  }

  void reactor_cancel() {
    if (timeout_timer != 0) {
      reactor->cancel_timer(timeout_timer);
      timeout_timer = 0;
    }
    cancel_connect_timer();
  }

  void cancel_connect_timer() {
    if (connect_timer != 0) {
      reactor->cancel_timer(connect_timer);
      connect_timer = 0;
    }
  }
};

void on_response_progress(const std::shared_ptr<FetchState>& state,
                          std::string_view data) {
  while (!data.empty() && !state->finished) {
    const std::size_t before_body = state->parser.body_remaining();
    const bool in_headers =
        state->parser.state() == http::ParseState::Headers;
    const std::size_t used = state->parser.feed(data);

    if (state->parser.state() == http::ParseState::Error) {
      state->finish(false, "response parse error: " +
                               state->parser.error());
      return;
    }

    // Header completion: learn the body's absolute offset for integrity
    // checking (Content-Range on 206, zero on 200).
    if (in_headers &&
        state->parser.state() != http::ParseState::Headers &&
        !state->range_resolved) {
      state->range_resolved = true;
      state->result.status = state->parser.response().status;
      state->result.first_byte_time = state->reactor->now();
      if (const auto cr =
              state->parser.response().headers.get("Content-Range")) {
        if (const auto parsed = http::parse_content_range(*cr)) {
          state->verify_offset = parsed->first.first;
        }
      }
      // Retry-After (delta-seconds form only): an overloaded server's
      // pacing hint for the retry machinery upstream.
      if (const auto ra =
              state->parser.response().headers.get("Retry-After")) {
        if (const auto secs = util::parse_u64(util::trim(*ra))) {
          state->result.retry_after_s = static_cast<double>(*secs);
        }
      }
    }

    // Verify any body bytes delivered by this feed.
    if (state->range_resolved) {
      const std::string& body = state->parser.response().body;
      const std::uint64_t have = body.size();
      static_cast<void>(before_body);
      // Verify bytes we have not checked yet.
      const std::uint64_t checked = state->result.body_bytes;
      for (std::uint64_t i = checked; i < have; ++i) {
        if (body[static_cast<std::size_t>(i)] !=
            resource_byte(state->verify_offset + i)) {
          state->verify_ok = false;
        }
      }
      state->result.body_bytes = have;
    }

    if (state->parser.state() == http::ParseState::Complete) {
      state->result.body_verified =
          state->verify_ok && state->result.status / 100 == 2;
      if (state->request.capture_body) {
        state->result.body = state->parser.response().body;
      }
      state->finish(state->result.status / 100 == 2,
                    state->result.status / 100 == 2
                        ? ""
                        : "http status " +
                              std::to_string(state->result.status));
      return;
    }
    data.remove_prefix(used);
    if (used == 0) {
      state->finish(false, "parser made no progress");
      return;
    }
  }
}

}  // namespace

void FetchHandle::cancel() {
  if (auto locked = state_.lock()) {
    auto state = std::static_pointer_cast<FetchState>(locked);
    state->finished = true;  // suppress the callback
    state->reactor_cancel();
    if (state->conn) state->conn->close();
  }
}

FetchHandle fetch(Reactor& reactor, const FetchRequest& request,
                  FetchCallback on_done) {
  IDR_REQUIRE(on_done != nullptr, "fetch: null callback");
  IDR_REQUIRE(request.origin.port != 0, "fetch: origin port required");

  auto state = std::make_shared<FetchState>();
  state->reactor = &reactor;
  state->request = request;
  state->on_done = std::move(on_done);
  state->result.start_time = reactor.now();

  const Endpoint& connect_to =
      request.proxy ? *request.proxy : request.origin;

  FdHandle fd;
  try {
    fd = connect_nonblocking(connect_to.host, connect_to.port);
  } catch (const util::Error& e) {
    // Report asynchronously for a uniform interface.
    reactor.add_timer(0.0, [state, error = std::string(e.what())] {
      state->finish(false, error);
    });
    return FetchHandle(state);
  }

  state->conn = Connection::adopt(reactor, std::move(fd));
  // Fault shim: a rule armed against this destination rides the new
  // connection (no-op when the shim table is empty).
  if (const auto rule = FaultShim::instance().take(connect_to.port)) {
    state->conn->set_fault(*rule);
  }
  state->conn->set_on_data([state](std::string_view data) {
    on_response_progress(state, data);
  });
  state->conn->set_on_close([state](const std::string& error) {
    if (!state->finished) {
      state->finish(false, error.empty() ? "connection closed early"
                                         : error);
    }
  });

  state->timeout_timer = reactor.add_timer(request.timeout_s, [state] {
    state->finish(false, "timeout");
  });
  if (request.connect_timeout_s > 0.0) {
    state->connect_timer =
        reactor.add_timer(request.connect_timeout_s, [state] {
          state->finish(false, "connect timeout");
        });
  }

  state->conn->await_connect([state](const std::string& error) {
    if (state->finished) return;
    state->cancel_connect_timer();
    if (!error.empty()) {
      state->finish(false, "connect: " + error);
      return;
    }
    http::Request req;
    req.method = http::Method::GET;
    const std::string authority =
        state->request.origin.host + ":" +
        std::to_string(state->request.origin.port);
    req.target = state->request.proxy
                     ? "http://" + authority + state->request.path
                     : state->request.path;
    req.headers.add("Host", authority);
    if (state->request.range) {
      req.headers.add("Range",
                      http::format_range_header(*state->request.range));
    }
    if (state->request.trace.valid()) {
      req.headers.add(std::string(http::kTraceparentHeader),
                      http::format_traceparent(state->request.trace));
    }
    state->conn->write(req.serialize());
  });

  return FetchHandle(state);
}

}  // namespace idr::rt
