#include "rt/selection.hpp"

#include "util/error.hpp"

namespace idr::rt {

PassiveSelector::PassiveSelector(std::size_t relay_count,
                                 PassiveSelectorConfig config)
    : config_(config) {
  IDR_REQUIRE(relay_count > 0, "PassiveSelector: no relays");
  IDR_REQUIRE(config_.half_life_s > 0.0,
              "PassiveSelector: non-positive half-life");
  IDR_REQUIRE(config_.staleness_threshold_s > 0.0,
              "PassiveSelector: non-positive staleness threshold");
  stats_.set_estimate_half_life(config_.half_life_s);
  // Relay i is NodeId i — valid because kInvalidNode is UINT32_MAX, far
  // above any realistic relay-set size.
  for (std::size_t i = 0; i < relay_count; ++i) {
    stats_.add_relay(static_cast<net::NodeId>(i),
                     "relay-" + std::to_string(i));
  }
}

std::optional<std::size_t> PassiveSelector::prepare(RaceSpec& spec,
                                                    double now_s) {
  IDR_REQUIRE(spec.relays.size() == stats_.relay_count(),
              "PassiveSelector: relay set size changed");
  const net::NodeId best =
      stats_.best_fresh_estimate(now_s, config_.staleness_threshold_s);
  if (best == net::kInvalidNode) {
    spec.pinned_relay.reset();
    return std::nullopt;
  }
  spec.pinned_relay = static_cast<std::size_t>(best);
  spec.pinned_estimate_age_s = stats_.validated_age(best, now_s);
  return spec.pinned_relay;
}

void PassiveSelector::observe(const RaceResult& result, double now_s) {
  if (!result.ok || !result.chose_indirect || result.fell_back_direct) {
    return;
  }
  if (result.relay_index >= stats_.relay_count()) return;
  const auto relay = static_cast<net::NodeId>(result.relay_index);
  stats_.note_selection(relay);
  stats_.note_throughput(relay, result.throughput(), now_s,
                         result.race_skipped
                             ? core::EstimateSource::Passive
                             : core::EstimateSource::Race);
}

}  // namespace idr::rt
