#include "rt/governance.hpp"

#include <cerrno>
#include <cmath>
#include <string>

namespace idr::rt {

bool accept_errno_is_transient(int err) {
  switch (err) {
    case EMFILE:        // process fd table full
    case ENFILE:        // system fd table full
    case ENOBUFS:       // kernel socket buffers exhausted
    case ENOMEM:
    case ECONNABORTED:  // peer gave up while queued; next accept may work
    case EINTR:
      return true;
    default:
      return false;
  }
}

http::Response make_overload_response(double retry_after_s) {
  http::Response response;
  response.status = 503;
  response.reason = std::string(http::default_reason(503));
  const auto seconds = static_cast<long long>(
      std::ceil(std::max(0.0, retry_after_s)));
  response.headers.set("Retry-After", std::to_string(seconds));
  response.headers.set("Connection", "close");
  return response;
}

bool is_introspection_target(std::string_view target) {
  return target == "/metrics" || target == "/healthz";
}

http::Response make_metrics_response(std::string exposition) {
  http::Response response;
  response.status = 200;
  response.reason = std::string(http::default_reason(200));
  response.headers.set("Content-Type", "text/plain; version=0.0.4");
  response.headers.set("Connection", "close");
  response.body = std::move(exposition);
  return response;
}

http::Response make_healthz_response(std::string_view status,
                                     std::size_t sessions) {
  http::Response response;
  response.status = 200;
  response.reason = std::string(http::default_reason(200));
  response.headers.set("Content-Type", "application/json");
  response.headers.set("Connection", "close");
  response.body = "{\"status\":\"" + std::string(status) +
                  "\",\"sessions\":" + std::to_string(sessions) + "}\n";
  return response;
}

}  // namespace idr::rt
