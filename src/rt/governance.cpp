#include "rt/governance.hpp"

#include <cerrno>
#include <cmath>
#include <string>

namespace idr::rt {

bool accept_errno_is_transient(int err) {
  switch (err) {
    case EMFILE:        // process fd table full
    case ENFILE:        // system fd table full
    case ENOBUFS:       // kernel socket buffers exhausted
    case ENOMEM:
    case ECONNABORTED:  // peer gave up while queued; next accept may work
    case EINTR:
      return true;
    default:
      return false;
  }
}

http::Response make_overload_response(double retry_after_s) {
  http::Response response;
  response.status = 503;
  response.reason = std::string(http::default_reason(503));
  const auto seconds = static_cast<long long>(
      std::ceil(std::max(0.0, retry_after_s)));
  response.headers.set("Retry-After", std::to_string(seconds));
  response.headers.set("Connection", "close");
  return response;
}

namespace {

/// Strict non-negative number ("12", "2.5"); false on anything else.
bool parse_number(std::string_view s, double& out) {
  if (s.empty()) return false;
  double value = 0.0;
  std::size_t i = 0;
  bool any = false;
  for (; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
    value = value * 10.0 + (s[i] - '0');
    any = true;
  }
  if (i < s.size() && s[i] == '.') {
    double scale = 0.1;
    for (++i; i < s.size() && s[i] >= '0' && s[i] <= '9'; ++i) {
      value += (s[i] - '0') * scale;
      scale *= 0.1;
      any = true;
    }
  }
  if (!any || i != s.size()) return false;
  out = value;
  return true;
}

}  // namespace

IntrospectionQuery parse_introspection_target(std::string_view target) {
  IntrospectionQuery query;
  const std::size_t qmark = target.find('?');
  const std::string_view path =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  if (path == "/metrics") {
    query.kind = IntrospectionQuery::Kind::Metrics;
  } else if (path == "/healthz") {
    query.kind = IntrospectionQuery::Kind::Healthz;
  } else if (path == "/debug/flights") {
    query.kind = IntrospectionQuery::Kind::Flights;
  } else {
    return query;
  }
  if (qmark == std::string_view::npos) return query;
  std::string_view rest = target.substr(qmark + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (key == "format") {
      query.json = value == "json";
    } else if (key == "window") {
      double seconds = 0.0;
      if (parse_number(value, seconds) && seconds > 0.0) {
        query.window_s = seconds;
        query.json = true;  // windowed rates only exist as JSON
      }
    } else if (key == "n") {
      double n = 0.0;
      if (parse_number(value, n) && n >= 1.0 && n == std::floor(n)) {
        query.last_n = static_cast<std::size_t>(n);
      }
    }
    // unknown keys ignored
  }
  return query;
}

bool is_introspection_target(std::string_view target) {
  return parse_introspection_target(target).is_introspection();
}

http::Response make_metrics_response(std::string exposition) {
  http::Response response;
  response.status = 200;
  response.reason = std::string(http::default_reason(200));
  response.headers.set("Content-Type", "text/plain; version=0.0.4");
  response.headers.set("Connection", "close");
  response.body = std::move(exposition);
  return response;
}

http::Response make_json_response(std::string body) {
  http::Response response;
  response.status = 200;
  response.reason = std::string(http::default_reason(200));
  response.headers.set("Content-Type", "application/json");
  response.headers.set("Connection", "close");
  response.body = std::move(body);
  return response;
}

http::Response make_flights_response(std::string jsonl) {
  http::Response response;
  response.status = 200;
  response.reason = std::string(http::default_reason(200));
  response.headers.set("Content-Type", "application/x-ndjson");
  response.headers.set("Connection", "close");
  response.body = std::move(jsonl);
  return response;
}

http::Response make_healthz_response(std::string_view status,
                                     std::size_t sessions,
                                     double retry_after_s) {
  http::Response response;
  response.status = 200;
  response.reason = std::string(http::default_reason(200));
  response.headers.set("Content-Type", "application/json");
  response.headers.set("Connection", "close");
  response.body = "{\"status\":\"" + std::string(status) +
                  "\",\"sessions\":" + std::to_string(sessions);
  if (retry_after_s > 0.0) {
    response.body +=
        ",\"retry_after\":" +
        std::to_string(static_cast<long long>(std::ceil(retry_after_s)));
  }
  response.body += "}\n";
  return response;
}

namespace {

/// Value of a `"key":` field in a flat JSON object; npos-start when the
/// key is absent.
std::string_view field_value(std::string_view body, std::string_view key) {
  const std::string needle = "\"" + std::string(key) + "\":";
  const std::size_t pos = body.find(needle);
  if (pos == std::string_view::npos) return {};
  std::string_view rest = body.substr(pos + needle.size());
  const std::size_t end = rest.find_first_of(",}");
  return end == std::string_view::npos ? rest : rest.substr(0, end);
}

}  // namespace

std::optional<HealthzInfo> parse_healthz(std::string_view body) {
  std::string_view status = field_value(body, "status");
  if (status.size() < 2 || status.front() != '"' || status.back() != '"') {
    return std::nullopt;
  }
  HealthzInfo info;
  info.status = std::string(status.substr(1, status.size() - 2));
  if (std::string_view sessions = field_value(body, "sessions");
      !sessions.empty()) {
    std::size_t value = 0;
    for (char c : sessions) {
      if (c < '0' || c > '9') { value = 0; break; }
      value = value * 10 + static_cast<std::size_t>(c - '0');
    }
    info.sessions = value;
  }
  if (std::string_view retry = field_value(body, "retry_after");
      !retry.empty()) {
    double value = 0.0;
    bool numeric = !retry.empty();
    for (char c : retry) {
      if (c < '0' || c > '9') { numeric = false; break; }
      value = value * 10.0 + static_cast<double>(c - '0');
    }
    if (numeric) info.retry_after_s = value;
  }
  return info;
}

}  // namespace idr::rt
