// Socket-level fault injection for the real-socket stack — the rt
// counterpart of the simulator's fault plane (see fault/fault.hpp).
//
// Tests arm rules against a destination port; the next connection(s) the
// stack opens to that port execute the fault: refuse the connect, freeze
// inbound bytes for a while, reset mid-stream after N bytes, or truncate
// the stream with an orderly EOF (a short Content-Length body). Rules are
// consumed at the two places the stack dials out — rt::fetch and the relay
// daemon's upstream leg — so both ends of a relayed transfer can be hit.
//
// With no rules armed (the default) every lookup is a miss on an empty
// table and the data path is untouched.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

namespace idr::rt {

enum class FaultKind : std::uint8_t {
  /// The connect resolves as refused.
  kDropOnConnect,
  /// Connection establishes but inbound delivery is frozen for stall_s
  /// seconds (a wedged peer that keeps the socket open).
  kStall,
  /// Deliver after_bytes inbound bytes, then fail like an ECONNRESET.
  kMidStreamReset,
  /// Deliver after_bytes inbound bytes, then orderly EOF — the classic
  /// truncated-body failure the Content-Length verifier must catch.
  kTruncateBody,
};

struct FaultRule {
  FaultKind kind = FaultKind::kDropOnConnect;
  /// Raw connection bytes (headers included) delivered before the cut.
  std::uint64_t after_bytes = 0;
  double stall_s = 0.0;
  /// Connections the rule applies to before expiring; -1 = until clear().
  int uses = 1;
};

class FaultShim {
 public:
  /// Process-global instance: the connect sites are free functions with no
  /// carrier object to hang per-instance state off.
  static FaultShim& instance();

  /// Queues a rule against connections to `port` (FIFO per port).
  void arm(std::uint16_t port, FaultRule rule);
  /// Drops every armed rule (call between tests).
  void clear();

  /// Consumes one use of the front rule for `port`; nullopt when nothing
  /// is armed — the fast path.
  std::optional<FaultRule> take(std::uint16_t port);

  /// Faults that actually fired on a connection.
  std::uint64_t injected() const { return injected_; }
  void count_injection() { ++injected_; }

 private:
  std::map<std::uint16_t, std::vector<FaultRule>> rules_;
  std::uint64_t injected_ = 0;
};

}  // namespace idr::rt
