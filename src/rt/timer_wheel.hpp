// Hashed timing wheel over a Reactor, for cheap idle-deadline tracking.
//
// A daemon with hundreds of sessions needs an idle timeout per connection,
// but arming one reactor timer per session would churn the timer heap on
// every byte of traffic. The wheel instead keeps a slot ring at coarse
// tick granularity and arms a single reactor timer, only while non-empty:
// add, cancel, and reschedule (the per-byte "touch" operation) are all
// O(1), and deadlines fire at most one tick late — exactly the tolerance
// an idle reaper has anyway.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "rt/reactor.hpp"

namespace idr::rt {

class TimerWheel {
 public:
  using Token = std::uint64_t;

  /// `tick_s` is the firing granularity; deadlines round up to it.
  TimerWheel(Reactor& reactor, double tick_s, std::size_t slot_count = 64);
  ~TimerWheel();
  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Schedules `cb` after at least `delay_s` (rounded up to a tick).
  Token add(double delay_s, std::function<void()> cb);
  /// Returns false if the token already fired or was cancelled.
  bool cancel(Token token);
  /// Pushes an entry's deadline out to `delay_s` from now, keeping its
  /// callback. Returns false if the token is no longer live.
  bool reschedule(Token token, double delay_s);

  std::size_t size() const { return locations_.size(); }
  double tick_seconds() const { return tick_s_; }

 private:
  struct Entry {
    Token token = 0;
    std::uint64_t rounds = 0;  // full ring revolutions still to wait
    std::function<void()> callback;
  };
  using Slot = std::list<Entry>;
  struct Location {
    std::size_t slot = 0;
    Slot::iterator it;
  };

  void place(Token token, double delay_s, std::function<void()> cb);
  void arm();
  void disarm();
  void on_tick();

  Reactor& reactor_;
  double tick_s_;
  std::vector<Slot> slots_;
  std::unordered_map<Token, Location> locations_;
  std::size_t cursor_ = 0;
  Token next_token_ = 0;
  TimerId armed_timer_ = 0;
  bool armed_ = false;

  // `rt.wheel.*` series in the reactor's registry.
  obs::Counter c_scheduled_;
  obs::Counter c_fired_;
  obs::Counter c_cancelled_;
  obs::Counter c_ticks_;
};

}  // namespace idr::rt
