#include "rt/relay_daemon.hpp"

#include "http/message.hpp"
#include "rt/fault_shim.hpp"
#include "util/error.hpp"

namespace idr::rt {

struct RelayDaemon::Session {
  std::shared_ptr<Connection> client;
  std::shared_ptr<Connection> upstream;
  http::RequestParser request_parser;
  http::ResponseParser response_parser;
  bool forwarding = false;  // response bytes streaming client-ward
};

RelayDaemon::RelayDaemon(Reactor& reactor, std::uint16_t port)
    : reactor_(reactor), listen_fd_(listen_loopback(port)) {
  port_ = local_port(listen_fd_.get());
  reactor_.add_fd(listen_fd_.get(), true, false,
                  [this](IoEvents) { on_accept(); });
}

RelayDaemon::~RelayDaemon() {
  reactor_.remove_fd(listen_fd_.get());
  for (auto& session : sessions_) {
    session->client->close();
    if (session->upstream) session->upstream->close();
  }
}

void RelayDaemon::on_accept() {
  while (auto fd = accept_nonblocking(listen_fd_.get())) {
    start_session(std::move(*fd));
  }
}

void RelayDaemon::drop(const std::shared_ptr<Session>& session) {
  session->client->close();
  if (session->upstream) session->upstream->close();
  sessions_.erase(session);
}

void RelayDaemon::reject(const std::shared_ptr<Session>& session,
                         int status) {
  http::Response resp;
  resp.status = status;
  resp.reason = std::string(http::default_reason(status));
  session->client->write(resp.serialize());
  drop(session);
}

void RelayDaemon::start_session(FdHandle fd) {
  auto session = std::make_shared<Session>();
  session->client = Connection::adopt(reactor_, std::move(fd));
  sessions_.insert(session);

  std::weak_ptr<Session> weak = session;
  session->client->set_on_close([this, weak](const std::string&) {
    if (auto s = weak.lock()) {
      if (s->upstream) s->upstream->close();
      sessions_.erase(s);
    }
  });
  session->client->set_on_data([this, weak](std::string_view data) {
    auto s = weak.lock();
    if (!s || s->forwarding) return;  // ignore pipelined extra bytes
    s->request_parser.feed(data);
    if (s->request_parser.state() == http::ParseState::Error) {
      reject(s, 400);
      return;
    }
    if (s->request_parser.state() == http::ParseState::Complete) {
      connect_upstream(s);
    }
  });
}

void RelayDaemon::resume_when_drained(std::weak_ptr<Session> session) {
  auto s = session.lock();
  if (!s || s->client->closed()) return;
  constexpr std::size_t kLowWater = 256 * 1024;
  if (s->client->send_backlog() > kLowWater) {
    reactor_.add_timer(0.01,
                       [this, session] { resume_when_drained(session); });
    return;
  }
  if (s->upstream && !s->upstream->closed()) {
    s->upstream->set_read_enabled(true);
  }
}

void RelayDaemon::drop_when_drained(std::weak_ptr<Session> session) {
  auto s = session.lock();
  if (!s) return;
  if (!s->client->closed() && s->client->send_backlog() > 0) {
    reactor_.add_timer(0.005,
                       [this, session] { drop_when_drained(session); });
    return;
  }
  drop(s);
}

void RelayDaemon::connect_upstream(const std::shared_ptr<Session>& session) {
  const http::Request& request = session->request_parser.request();
  const auto url = http::parse_http_url(request.target);
  if (!url || request.method != http::Method::GET) {
    reject(session, 400);
    return;
  }

  FdHandle fd;
  try {
    fd = connect_nonblocking(url->host, url->port);
  } catch (const util::Error&) {
    reject(session, 502);
    return;
  }
  session->upstream = Connection::adopt(reactor_, std::move(fd));
  // Fault shim: rules armed against the origin hit the relay's upstream
  // leg too, so tests can kill a relayed transfer mid-stream.
  if (const auto rule = FaultShim::instance().take(url->port)) {
    session->upstream->set_fault(*rule);
  }
  session->forwarding = true;
  ++transfers_;

  std::weak_ptr<Session> weak = session;
  session->upstream->set_on_close([this, weak](const std::string&) {
    if (auto s = weak.lock()) {
      // Upstream gone: if the response was already fully relayed this is
      // benign; otherwise the truncated stream tells the client.
      drop(s);
    }
  });
  session->upstream->set_on_data([this, weak](std::string_view data) {
    auto s = weak.lock();
    if (!s) return;
    // Stream bytes through; track framing so the session can be dropped
    // cleanly at message end.
    s->response_parser.feed(data);
    s->client->write(data);
    bytes_forwarded_ += data.size();
    // Backpressure: pause upstream reads while the client leg is backed
    // up; resume from a cheap poll timer.
    constexpr std::size_t kHighWater = 512 * 1024;
    if (s->client->send_backlog() > kHighWater) {
      s->upstream->set_read_enabled(false);
      reactor_.add_timer(0.01, [this, w2 = std::weak_ptr<Session>(s)] {
        resume_when_drained(w2);
      });
    }
    if (s->response_parser.state() == http::ParseState::Complete) {
      // One transfer per connection: close the upstream; keep the client
      // connection open until its send queue drains, then close it too.
      s->upstream->close();
      drop_when_drained(s);
    }
  });

  session->upstream->await_connect(
      [this, weak, url = *url](const std::string& error) {
        auto s = weak.lock();
        if (!s) return;
        if (!error.empty()) {
          reject(s, 504);
          return;
        }
        // Forward the request in origin-form with a Via header — both
        // correct proxy behaviour and the seam tests use to emulate
        // asymmetric path quality at the origin.
        http::Request upstream_req = s->request_parser.request();
        upstream_req.target = url.path;
        upstream_req.headers.set("Host", url.host + ":" +
                                             std::to_string(url.port));
        upstream_req.headers.add("Via", "1.1 indiroute-relay");
        s->upstream->write(upstream_req.serialize());
      });
}

}  // namespace idr::rt
