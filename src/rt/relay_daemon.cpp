#include "rt/relay_daemon.hpp"

#include <algorithm>
#include <cstring>

#include "http/message.hpp"
#include "http/traceparent.hpp"
#include "obs/log.hpp"
#include "rt/fault_shim.hpp"
#include "util/error.hpp"

namespace idr::rt {

namespace {
/// How often a hard-capped listener re-checks whether load has dropped.
constexpr double kCapRecheckS = 0.01;
}  // namespace

struct RelayDaemon::Session {
  std::shared_ptr<Connection> client;
  std::shared_ptr<Connection> upstream;
  http::RequestParser request_parser;
  http::ResponseParser response_parser;
  bool forwarding = false;  // response bytes streaming client-ward
  bool shed = false;        // admitted only to be told 503
  /// Accepted after drain() began: may read introspection, forwards get
  /// 503, and its lifetime does not hold the drain open.
  bool drain_exempt = false;
  TimerWheel::Token idle_token = 0;

  // Cross-hop tracing + flight-record state. `trace` is the context the
  // client sent (invalid when the request carried no traceparent);
  // `server_ctx` roots this hop's own span ids under it.
  obs::TraceContext trace;
  obs::TraceContext server_ctx;
  double accept_time = 0.0;
  double connect_start = 0.0;
  double first_byte_time = 0.0;
  bool saw_upstream_byte = false;
  bool is_forward = false;       // reached connect_upstream
  bool flight_recorded = false;
  std::uint64_t bytes_forwarded = 0;
  std::string peer;              // the forwarded target
};

RelayDaemon::RelayDaemon(Reactor& reactor, std::uint16_t port,
                         ServerLimits limits)
    : reactor_(reactor),
      listen_fd_(listen_loopback(port)),
      limits_(limits) {
  port_ = local_port(listen_fd_.get());
  reactor_.add_fd(listen_fd_.get(), true, false,
                  [this](IoEvents) { on_accept(); });
  if (limits_.governs_idle()) {
    // Tick at a quarter of the timeout: reaping lands within
    // [timeout, timeout + tick) of the last activity.
    const double tick = std::max(0.005, limits_.idle_timeout_s / 4.0);
    idle_wheel_ = std::make_unique<TimerWheel>(reactor_, tick);
  }
  c_accepted_ = metrics_.counter("rt.relay.sessions_accepted");
  c_shed_ = metrics_.counter("rt.relay.sessions_shed");
  c_idle_reaped_ = metrics_.counter("rt.relay.sessions_idle_reaped");
  c_accept_failures_ = metrics_.counter("rt.relay.accept_failures");
  c_accept_pauses_ = metrics_.counter("rt.relay.accept_pauses");
  c_drained_ = metrics_.counter("rt.relay.sessions_drained");
  c_transfers_ = metrics_.counter("rt.relay.transfers_forwarded");
  c_bytes_forwarded_ = metrics_.counter("rt.relay.bytes_forwarded");
  c_requests_parsed_ = metrics_.counter("rt.relay.requests_parsed");
  c_rejects_bad_request_ = metrics_.counter("rt.relay.rejects_bad_request");
  c_rejects_upstream_ = metrics_.counter("rt.relay.rejects_upstream");
  c_upstream_connects_ = metrics_.counter("rt.relay.upstream_connects");
  c_metrics_served_ = metrics_.counter("rt.relay.metrics_served");
  c_healthz_served_ = metrics_.counter("rt.relay.healthz_served");
  c_flights_served_ = metrics_.counter("rt.relay.flights_served");
  c_drain_rejected_ = metrics_.counter("rt.relay.drain_rejected");
  c_limits_reloaded_ = metrics_.counter("rt.relay.limits_reloaded");
  g_sessions_active_ = metrics_.gauge("rt.relay.sessions_active");
  g_sessions_peak_ = metrics_.gauge("rt.relay.sessions_peak");
  g_draining_ = metrics_.gauge("rt.relay.draining");
  g_accept_backoff_s_ = metrics_.gauge("rt.relay.accept_backoff_seconds");
  g_limit_max_sessions_ = metrics_.gauge("rt.relay.limit_max_sessions");
  g_limit_max_sessions_.set(static_cast<double>(limits_.max_sessions));
  h_forward_chunk_bytes_ = metrics_.histogram(
      "rt.relay.forward_chunk_bytes", obs::HistogramOptions{1.0, 1e7, 2});
}

void RelayDaemon::set_tracer(obs::Tracer* tracer, std::uint64_t pid,
                             std::uint64_t track) {
  tracer_ = tracer;
  trace_pid_ = pid;
  trace_track_ = track;
}

void RelayDaemon::enable_sampling(double period_s, std::size_t capacity) {
  sampler_ = std::make_unique<MetricsSampler>(
      reactor_, [this] { return merged_snapshot(); }, period_s, capacity);
}

obs::Snapshot RelayDaemon::merged_snapshot() {
  obs::Snapshot snap = metrics_.snapshot();
  snap.merge(reactor_.metrics().snapshot());
  return snap;
}

void RelayDaemon::record_flight(const std::shared_ptr<Session>& session) {
  if (!session->is_forward || session->flight_recorded) return;
  session->flight_recorded = true;
  obs::FlightRecord rec;
  rec.trace_id = session->trace.trace_id;
  rec.source = "rt.relay";
  rec.peer = session->peer;
  rec.start_time = session->accept_time;
  rec.ok = session->response_parser.state() == http::ParseState::Complete;
  rec.total_elapsed_s = reactor_.now() - session->accept_time;
  rec.bytes_total = session->bytes_forwarded;
  // The response status is only meaningful once the header block parsed;
  // a session dropped mid-headers records 0.
  const http::ParseState rstate = session->response_parser.state();
  rec.status = rstate == http::ParseState::Body ||
                       rstate == http::ParseState::Complete
                   ? session->response_parser.response().status
                   : 0;
  flights_.record(std::move(rec));
}

GovernanceCounters RelayDaemon::counters() const {
  GovernanceCounters c;
  c.accepted = c_accepted_.value();
  c.shed = c_shed_.value();
  c.idle_reaped = c_idle_reaped_.value();
  c.accept_failures = c_accept_failures_.value();
  c.accept_pauses = c_accept_pauses_.value();
  c.drained = c_drained_.value();
  return c;
}

RelayDaemon::~RelayDaemon() {
  if (listener_open_) reactor_.remove_fd(listen_fd_.get());
  for (auto& session : sessions_) {
    session->client->close();
    if (session->upstream) session->upstream->close();
  }
}

void RelayDaemon::on_accept() {
  while (true) {
    // Draining does NOT stop accepting: new arrivals must be able to
    // read the "draining" advertisement (heartbeat probes) or a fast
    // 503 (misdirected transfers) until the listener actually closes.
    if (!listener_open_) return;
    if (limits_.governs_admission() &&
        sessions_.size() >= limits_.max_sessions + limits_.shed_burst) {
      // Hard cap: past the shed burst even 503s are too expensive; park
      // arrivals in the kernel backlog and re-check shortly.
      c_accept_pauses_.inc();
      pause_accept(kCapRecheckS);
      return;
    }
    int err = 0;
    auto fd = try_accept(listen_fd_.get(), &err);
    if (!fd) {
      if (err == 0) return;  // accept queue empty
      c_accept_failures_.inc();
      if (!accept_errno_is_transient(err)) {
        ::idr::util::fail(std::string("accept failed: ") +
                          std::strerror(err));
      }
      // Resource exhaustion (EMFILE and friends): existing sessions keep
      // running; retry accepting after an exponentially growing pause.
      accept_backoff_s_ = accept_backoff_s_ == 0.0
                              ? limits_.accept_backoff_initial_s
                              : std::min(accept_backoff_s_ * 2.0,
                                         limits_.accept_backoff_max_s);
      g_accept_backoff_s_.set(accept_backoff_s_);
      IDR_OBS_LOG(obs::Severity::Warn, "rt.relay",
                  "relay " << port_ << ": accept failed ("
                           << std::strerror(err) << "), backing off "
                           << accept_backoff_s_ << "s");
      pause_accept(accept_backoff_s_);
      return;
    }
    accept_backoff_s_ = 0.0;
    g_accept_backoff_s_.set(0.0);
    start_session(std::move(*fd));
  }
}

void RelayDaemon::pause_accept(double delay_s) {
  if (accept_paused_ || !listener_open_) return;
  accept_paused_ = true;
  reactor_.update_fd(listen_fd_.get(), false, false);
  reactor_.add_timer(delay_s, [this] { resume_accept(); });
}

void RelayDaemon::resume_accept() {
  accept_paused_ = false;
  if (!listener_open_) return;
  reactor_.update_fd(listen_fd_.get(), true, false);
  on_accept();  // drain whatever queued while paused
}

void RelayDaemon::erase_session(const std::shared_ptr<Session>& session) {
  record_flight(session);
  if (idle_wheel_ && session->idle_token != 0) {
    idle_wheel_->cancel(session->idle_token);
    session->idle_token = 0;
  }
  sessions_.erase(session);
  g_sessions_active_.set(static_cast<double>(sessions_.size()));
  if (draining_) {
    if (!session->drain_exempt) c_drained_.inc();
    if (drain_complete()) finish_drain();
  }
}

bool RelayDaemon::drain_complete() const {
  for (const auto& session : sessions_) {
    if (!session->drain_exempt) return false;
  }
  return true;
}

void RelayDaemon::drop(const std::shared_ptr<Session>& session) {
  session->client->close();
  if (session->upstream) session->upstream->close();
  erase_session(session);
}

void RelayDaemon::reject(const std::shared_ptr<Session>& session,
                         int status) {
  http::Response resp;
  resp.status = status;
  resp.reason = std::string(http::default_reason(status));
  session->client->write(resp.serialize());
  drop(session);
}

void RelayDaemon::shed_session(const std::shared_ptr<Session>& session) {
  c_shed_.inc();
  session->client->write(
      make_overload_response(limits_.retry_after_s).serialize());
  // Let the 503 reach the kernel before closing, so the peer reads a
  // response instead of a reset.
  drop_when_drained(session);
}

void RelayDaemon::touch_idle(const std::shared_ptr<Session>& session) {
  if (idle_wheel_ && session->idle_token != 0) {
    idle_wheel_->reschedule(session->idle_token, limits_.idle_timeout_s);
  }
}

void RelayDaemon::arm_idle(const std::shared_ptr<Session>& session) {
  if (!idle_wheel_ || session->idle_token != 0) return;
  std::weak_ptr<Session> weak = session;
  session->idle_token =
      idle_wheel_->add(limits_.idle_timeout_s, [this, weak] {
        if (auto s = weak.lock()) {
          s->idle_token = 0;  // fired; nothing to cancel
          c_idle_reaped_.inc();
          drop(s);
        }
      });
}

void RelayDaemon::start_session(FdHandle fd) {
  auto session = std::make_shared<Session>();
  session->client = Connection::adopt(reactor_, std::move(fd));
  session->request_parser.set_limits(limits_.parser);
  session->accept_time = reactor_.now();
  sessions_.insert(session);
  g_sessions_active_.set(static_cast<double>(sessions_.size()));
  g_sessions_peak_.set(std::max(g_sessions_peak_.value(),
                                static_cast<double>(sessions_.size())));

  if (draining_) {
    // Drain era: the session exists to answer introspection (or a fast
    // 503 for a forward request); it never reaches admission control
    // and never holds the drain open.
    session->drain_exempt = true;
    c_accepted_.inc();
  } else if (limits_.governs_admission() &&
             sessions_.size() > limits_.max_sessions) {
    // Admission: past the soft cap the session exists only to be told
    // 503 (sent once the client's first bytes arrive, so the response
    // never races the client's own write).
    session->shed = true;
  } else {
    c_accepted_.inc();
  }

  std::weak_ptr<Session> weak = session;
  arm_idle(session);
  session->client->set_on_close([this, weak](const std::string&) {
    if (auto s = weak.lock()) {
      if (s->upstream) s->upstream->close();
      erase_session(s);
    }
  });
  session->client->set_on_data([this, weak](std::string_view data) {
    auto s = weak.lock();
    if (!s || s->forwarding) return;  // ignore pipelined extra bytes
    touch_idle(s);
    // A shed session still parses its request: introspection targets
    // (/metrics, /healthz) are answered even under overload — that is
    // exactly when an operator needs them — everything else gets the 503.
    s->request_parser.feed(data);
    if (s->request_parser.state() == http::ParseState::Error) {
      if (s->drain_exempt) {
        s->forwarding = true;  // swallow any further request bytes
        drain_reject(s);
      } else if (s->shed) {
        s->forwarding = true;
        shed_session(s);
      } else {
        c_rejects_bad_request_.inc();
        reject(s, 400);
      }
      return;
    }
    if (s->request_parser.state() == http::ParseState::Complete) {
      c_requests_parsed_.inc();
      // Adopt the caller's trace context, if the request carries one, and
      // emit this hop's parse span under it.
      if (tracer_ != nullptr && tracer_->enabled()) {
        const http::Request& request = s->request_parser.request();
        if (const auto tp = request.headers.get(http::kTraceparentHeader)) {
          if (auto ctx = http::parse_traceparent(*tp)) {
            s->trace = *ctx;
            s->server_ctx = ctx->child(++trace_seq_);
            const double now_us = reactor_.now() * 1e6;
            obs::TraceEvent ev;
            ev.name = "relay.parse";
            ev.category = "rt.relay";
            ev.phase = 'X';
            ev.pid = trace_pid_;
            ev.track = trace_track_;
            ev.ts_us = s->accept_time * 1e6;
            ev.dur_us = now_us - ev.ts_us;
            ev.trace_id = s->trace.trace_id;
            ev.span_id = s->server_ctx.child(1).span_id;
            ev.parent_span = s->trace.span_id;
            tracer_->append(std::move(ev));
            tracer_->flow('t', "transfer", "rt.relay", trace_pid_,
                          trace_track_, s->accept_time * 1e6,
                          s->trace.trace_id);
          }
        }
      }
      if (maybe_serve_introspection(s)) return;
      if (s->drain_exempt) {
        s->forwarding = true;
        drain_reject(s);
        return;
      }
      if (s->shed) {
        s->forwarding = true;
        shed_session(s);
        return;
      }
      connect_upstream(s);
    }
  });
}

bool RelayDaemon::maybe_serve_introspection(
    const std::shared_ptr<Session>& session) {
  const http::Request& request = session->request_parser.request();
  const IntrospectionQuery query =
      parse_introspection_target(request.target);
  if (!query.is_introspection()) return false;
  session->forwarding = true;  // request consumed; no upstream leg
  if (query.kind == IntrospectionQuery::Kind::Metrics) {
    if (query.window_s > 0.0) {
      // Windowed rates from the sampler; without one, a well-formed
      // empty window (0 samples) rather than a 404 — probes can tell
      // "sampling off" from "endpoint missing".
      std::string body;
      if (sampler_) {
        sampler_->sample_now();  // make the newest window edge current
        body = sampler_->series().window_json(query.window_s);
      } else {
        body = obs::TimeSeries(1).window_json(query.window_s);
      }
      session->client->write(
          make_json_response(std::move(body)).serialize());
    } else if (query.json) {
      session->client->write(
          make_json_response(merged_snapshot().to_json()).serialize());
    } else {
      session->client->write(
          make_metrics_response(merged_snapshot().to_prometheus())
              .serialize());
    }
    c_metrics_served_.inc();
  } else if (query.kind == IntrospectionQuery::Kind::Flights) {
    session->client->write(
        make_flights_response(flights_.to_jsonl(query.last_n))
            .serialize());
    c_flights_served_.inc();
  } else {
    // Daemon-level status, not just this session's fate: a fleet probe
    // must see "shedding" whenever admission control is engaged, even
    // though the probe itself was served.
    const bool shedding =
        session->shed || (limits_.governs_admission() &&
                          sessions_.size() > limits_.max_sessions);
    const char* status =
        draining_ ? "draining" : (shedding ? "shedding" : "ok");
    session->client->write(
        make_healthz_response(status, sessions_.size(),
                              shedding && !draining_
                                  ? limits_.retry_after_s
                                  : 0.0)
            .serialize());
    c_healthz_served_.inc();
  }
  drop_when_drained(session);
  return true;
}

void RelayDaemon::drain_reject(const std::shared_ptr<Session>& session) {
  c_drain_rejected_.inc();
  session->client->write(
      make_overload_response(limits_.retry_after_s).serialize());
  drop_when_drained(session);
}

void RelayDaemon::drain(std::function<void()> on_drained) {
  on_drained_ = std::move(on_drained);
  if (!draining_) {
    draining_ = true;
    g_draining_.set(1.0);
    // The advertisement flips NOW — before any session finishes, before
    // the listener closes — and the listener keeps accepting so probes
    // can actually read it. Clients get their window to stop dialing.
  }
  if (drain_complete()) finish_drain();
}

void RelayDaemon::reload_limits(const ServerLimits& limits) {
  limits_ = limits;
  c_limits_reloaded_.inc();
  g_limit_max_sessions_.set(static_cast<double>(limits_.max_sessions));
  if (limits_.governs_idle()) {
    if (!idle_wheel_) {
      const double tick = std::max(0.005, limits_.idle_timeout_s / 4.0);
      idle_wheel_ = std::make_unique<TimerWheel>(reactor_, tick);
      // Sessions admitted before the reload join the reaper from now.
      for (const auto& session : sessions_) arm_idle(session);
    }
    // An existing wheel keeps its tick; sessions pick up the new
    // timeout on their next activity (touch_idle reschedules with
    // limits_.idle_timeout_s).
  } else if (idle_wheel_) {
    for (const auto& session : sessions_) session->idle_token = 0;
    idle_wheel_.reset();
  }
  // A raised cap may unblock arrivals parked in the kernel backlog.
  if (!accept_paused_ && listener_open_ && !draining_) on_accept();
}

void RelayDaemon::finish_drain() {
  if (listener_open_) {
    reactor_.remove_fd(listen_fd_.get());
    listen_fd_.reset();
    listener_open_ = false;
  }
  if (on_drained_) {
    auto cb = std::move(on_drained_);
    on_drained_ = nullptr;
    cb();
  }
}

void RelayDaemon::resume_when_drained(std::weak_ptr<Session> session) {
  auto s = session.lock();
  if (!s || s->client->closed()) return;
  constexpr std::size_t kLowWater = 256 * 1024;
  if (s->client->send_backlog() > kLowWater) {
    reactor_.add_timer(0.01,
                       [this, session] { resume_when_drained(session); });
    return;
  }
  if (s->upstream && !s->upstream->closed()) {
    s->upstream->set_read_enabled(true);
  }
}

void RelayDaemon::drop_when_drained(std::weak_ptr<Session> session) {
  auto s = session.lock();
  if (!s) return;
  if (!s->client->closed() && s->client->send_backlog() > 0) {
    reactor_.add_timer(0.005,
                       [this, session] { drop_when_drained(session); });
    return;
  }
  drop(s);
}

void RelayDaemon::connect_upstream(const std::shared_ptr<Session>& session) {
  const http::Request& request = session->request_parser.request();
  const auto url = http::parse_http_url(request.target);
  if (!url || request.method != http::Method::GET) {
    c_rejects_bad_request_.inc();
    reject(session, 400);
    return;
  }

  FdHandle fd;
  try {
    fd = connect_nonblocking(url->host, url->port);
  } catch (const util::Error&) {
    c_rejects_upstream_.inc();
    reject(session, 502);
    return;
  }
  c_upstream_connects_.inc();
  session->upstream = Connection::adopt(reactor_, std::move(fd));
  // Fault shim: rules armed against the origin hit the relay's upstream
  // leg too, so tests can kill a relayed transfer mid-stream.
  if (const auto rule = FaultShim::instance().take(url->port)) {
    session->upstream->set_fault(*rule);
  }
  session->forwarding = true;
  session->is_forward = true;
  session->peer = request.target;
  session->connect_start = reactor_.now();
  c_transfers_.inc();

  std::weak_ptr<Session> weak = session;
  session->upstream->set_on_close([this, weak](const std::string&) {
    if (auto s = weak.lock()) {
      // Upstream gone: if the response was already fully relayed this is
      // benign; otherwise the truncated stream tells the client.
      drop(s);
    }
  });
  session->upstream->set_on_data([this, weak](std::string_view data) {
    auto s = weak.lock();
    if (!s) return;
    touch_idle(s);
    if (!s->saw_upstream_byte) {
      s->saw_upstream_byte = true;
      s->first_byte_time = reactor_.now();
      if (tracer_ != nullptr && tracer_->enabled() && s->trace.valid()) {
        obs::TraceEvent ev;
        ev.name = "relay.first_byte";
        ev.category = "rt.relay";
        ev.phase = 'i';
        ev.pid = trace_pid_;
        ev.track = trace_track_;
        ev.ts_us = s->first_byte_time * 1e6;
        ev.trace_id = s->trace.trace_id;
        ev.span_id = s->server_ctx.child(3).span_id;
        ev.parent_span = s->trace.span_id;
        tracer_->append(std::move(ev));
      }
    }
    // Stream bytes through; track framing so the session can be dropped
    // cleanly at message end.
    s->response_parser.feed(data);
    s->client->write(data);
    c_bytes_forwarded_.inc(data.size());
    s->bytes_forwarded += data.size();
    h_forward_chunk_bytes_.observe(static_cast<double>(data.size()));
    // Backpressure: pause upstream reads while the client leg is backed
    // up; resume from a cheap poll timer.
    constexpr std::size_t kHighWater = 512 * 1024;
    if (s->client->send_backlog() > kHighWater) {
      s->upstream->set_read_enabled(false);
      reactor_.add_timer(0.01, [this, w2 = std::weak_ptr<Session>(s)] {
        resume_when_drained(w2);
      });
    }
    if (s->response_parser.state() == http::ParseState::Complete) {
      if (tracer_ != nullptr && tracer_->enabled() && s->trace.valid()) {
        obs::TraceEvent ev;
        ev.name = "relay.stream";
        ev.category = "rt.relay";
        ev.phase = 'X';
        ev.pid = trace_pid_;
        ev.track = trace_track_;
        ev.ts_us = s->first_byte_time * 1e6;
        ev.dur_us = reactor_.now() * 1e6 - ev.ts_us;
        ev.trace_id = s->trace.trace_id;
        ev.span_id = s->server_ctx.child(4).span_id;
        ev.parent_span = s->trace.span_id;
        ev.args_json =
            "{\"bytes\":" + std::to_string(s->bytes_forwarded) + "}";
        tracer_->append(std::move(ev));
      }
      // One transfer per connection: close the upstream; keep the client
      // connection open until its send queue drains, then close it too.
      s->upstream->close();
      drop_when_drained(s);
    }
  });

  session->upstream->await_connect(
      [this, weak, url = *url](const std::string& error) {
        auto s = weak.lock();
        if (!s) return;
        if (!error.empty()) {
          c_rejects_upstream_.inc();
          reject(s, 504);
          return;
        }
        if (tracer_ != nullptr && tracer_->enabled() && s->trace.valid()) {
          obs::TraceEvent ev;
          ev.name = "relay.upstream_connect";
          ev.category = "rt.relay";
          ev.phase = 'X';
          ev.pid = trace_pid_;
          ev.track = trace_track_;
          ev.ts_us = s->connect_start * 1e6;
          ev.dur_us = reactor_.now() * 1e6 - ev.ts_us;
          ev.trace_id = s->trace.trace_id;
          ev.span_id = s->server_ctx.child(2).span_id;
          ev.parent_span = s->trace.span_id;
          tracer_->append(std::move(ev));
        }
        // Forward the request in origin-form with a Via header — both
        // correct proxy behaviour and the seam tests use to emulate
        // asymmetric path quality at the origin. Per RFC 7230 §5.7.1 we
        // append to any Via chain already present (collapsing it to one
        // header) instead of adding a duplicate, and the token carries
        // the protocol version the request actually arrived with.
        http::Request upstream_req = s->request_parser.request();
        upstream_req.target = url.path;
        upstream_req.headers.set("Host", url.host + ":" +
                                             std::to_string(url.port));
        std::string via;
        for (std::size_t i = 0; i < upstream_req.headers.size(); ++i) {
          const auto& [name, value] = upstream_req.headers.entry(i);
          if (name.size() == 3 && (name[0] == 'V' || name[0] == 'v') &&
              (name[1] == 'I' || name[1] == 'i') &&
              (name[2] == 'A' || name[2] == 'a')) {
            if (!via.empty()) via += ", ";
            via += value;
          }
        }
        std::string_view proto = upstream_req.version;
        if (proto.size() > 5 && proto.substr(0, 5) == "HTTP/") {
          proto.remove_prefix(5);
        }
        if (!via.empty()) via += ", ";
        via += std::string(proto) + " indiroute-relay";
        upstream_req.headers.set("Via", std::move(via));
        s->upstream->write(upstream_req.serialize());
      });
}

}  // namespace idr::rt
