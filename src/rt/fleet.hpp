// The relay fleet control plane: live discovery over the HTTP plane.
//
// A FleetDirectory owns the socket-side half of the membership model
// (core/membership.hpp): it probes every registered relay's /healthz on
// a heartbeat cadence — short per-probe connect and response timeouts,
// exponential backoff while a relay keeps missing — parses the status
// the relay self-advertises ("ok" / "shedding" / "draining" plus a
// Retry-After hint), and feeds each observation into a MembershipTable
// on the reactor clock. Selection consults the directory *before* a
// race: a dead or draining relay never gets a probe lane, so the race's
// probe bytes go only to relays that might actually win.
//
// The directory is strictly opt-in. Nothing in the rt stack constructs
// one implicitly; a client that never wires a directory races exactly
// as before, byte for byte.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "core/membership.hpp"
#include "obs/metrics.hpp"
#include "rt/http_client.hpp"

namespace idr::rt {

struct FleetConfig {
  /// Heartbeat cadence for a healthy relay.
  double heartbeat_interval_s = 0.25;
  /// Per-probe bound on the whole /healthz exchange.
  double probe_timeout_s = 0.2;
  /// Tighter bound on TCP connect alone (a dead host must cost one
  /// connect timeout, not a response timeout).
  double probe_connect_timeout_s = 0.1;
  /// While a relay misses, its probe cadence backs off exponentially
  /// from heartbeat_interval_s up to this cap — a down relay is still
  /// probed (that is how recovery is discovered) but cheaply.
  double probe_backoff_max_s = 1.0;
  /// The shared state machine's thresholds and probation window.
  core::MembershipConfig membership{};
};

/// One relay as the directory tracks it.
struct FleetMember {
  net::NodeId id = net::kInvalidNode;  // directory-assigned, stable
  Endpoint endpoint;
  std::string name;  // "host:port" unless the caller supplied one
  core::RelayHealth health = core::RelayHealth::Alive;
};

/// Heartbeat prober + membership view for a set of relay endpoints.
/// Single-reactor, like every rt daemon; all callbacks fire on the loop.
class FleetDirectory {
 public:
  FleetDirectory(Reactor& reactor, FleetConfig config = {});
  ~FleetDirectory();

  FleetDirectory(const FleetDirectory&) = delete;
  FleetDirectory& operator=(const FleetDirectory&) = delete;

  /// Registers a relay (idempotent per endpoint). Starts Alive —
  /// presumed healthy until heartbeats say otherwise. Returns its
  /// directory id. Probing starts immediately when the directory is
  /// running.
  net::NodeId add_relay(const Endpoint& endpoint, std::string name = "");
  /// Drops a relay: its probes stop, its membership record is erased.
  void remove_relay(const Endpoint& endpoint);
  /// SIGHUP-style hot reload: the directory converges on exactly
  /// `relays` — new endpoints are added (Alive, probed at once), absent
  /// ones removed, surviving ones keep their health state and history.
  void reload(const std::vector<Endpoint>& relays);

  /// Starts / stops the heartbeat plane. start() probes every relay
  /// immediately, then settles into the configured cadence; stop()
  /// cancels timers and in-flight probes (observations already fed to
  /// the table remain).
  void start();
  void stop();
  bool running() const { return running_; }

  std::size_t relay_count() const { return members_.size(); }
  /// Health of a tracked endpoint; Alive for unknown endpoints (the
  /// directory never vetoes what it does not track).
  core::RelayHealth health(const Endpoint& endpoint) const;
  bool eligible(const Endpoint& endpoint) const;

  /// The selection-side filter: indices into `candidates` whose relays
  /// the directory considers eligible right now. Unknown endpoints pass
  /// through. Exclusions land on the rt.fleet.candidates_excluded
  /// counter — the observable proof that no race probe was spent on a
  /// down or draining relay.
  std::vector<std::size_t> eligible_indices(
      const std::vector<Endpoint>& candidates) const;

  /// Current membership snapshot, one entry per tracked relay.
  std::vector<FleetMember> members() const;

  /// The shared state machine (rt feeds it; tests and the sim read it).
  const core::MembershipTable& table() const { return table_; }

  const FleetConfig& config() const { return config_; }

  /// `rt.fleet.*` series (Sync::Atomic).
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

 private:
  struct ProbeState {
    net::NodeId id = net::kInvalidNode;
    Endpoint endpoint;
    std::string name;
    TimerId timer = 0;
    FetchHandle inflight;
    /// Explicit in-flight marker: FetchHandle::active() can lag the
    /// fetch's completion (the connection may keep its callbacks — and
    /// so the fetch state — alive briefly after finish), so the prober
    /// tracks its own lifecycle.
    bool probe_inflight = false;
    /// Current probe delay; heartbeat_interval_s while healthy, doubled
    /// per miss up to probe_backoff_max_s.
    double cadence_s = 0.0;
  };

  static std::string key(const Endpoint& endpoint);
  ProbeState* find(const Endpoint& endpoint);
  const ProbeState* find(const Endpoint& endpoint) const;
  void schedule_probe(net::NodeId id, double delay_s);
  void launch_probe(net::NodeId id);
  void on_probe_result(net::NodeId id, const FetchResult& result);
  void apply_outcome(const ProbeState& state,
                     const core::HeartbeatOutcome& outcome);
  void refresh_gauges();

  Reactor& reactor_;
  FleetConfig config_;
  core::MembershipTable table_;
  bool running_ = false;
  net::NodeId next_id_ = 0;
  std::map<std::string, net::NodeId> by_endpoint_;  // "host:port" -> id
  std::map<net::NodeId, ProbeState> members_;

  obs::Registry metrics_{obs::Registry::Sync::Atomic};
  obs::Counter c_probes_sent_;
  obs::Counter c_probes_ok_;
  obs::Counter c_probes_missed_;
  obs::Counter c_transitions_;
  obs::Counter c_marked_suspect_;
  obs::Counter c_marked_down_;
  obs::Counter c_readmitted_;
  obs::Counter c_candidates_excluded_;
  obs::Counter c_relays_added_;
  obs::Counter c_relays_removed_;
  obs::Counter c_reloads_;
  obs::Gauge g_relays_;
  obs::Gauge g_alive_;
  obs::Gauge g_eligible_;
  obs::Gauge g_detect_seconds_max_;
  obs::Histogram h_detect_seconds_;
  obs::Histogram h_probe_rtt_seconds_;
};

}  // namespace idr::rt
