// Passive relay selection for the socket stack: a PassiveSelector wraps
// the shared core::RelayStatsTable estimation plane (decayed throughput
// EWMA per relay, race-validated freshness) and drives the rt race's
// pinned-relay fields — the race-on-staleness behavior over real
// sockets. Relays are identified by their index in the RaceSpec::relays
// vector; the caller keeps that vector stable across races.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "core/relay_stats.hpp"
#include "rt/probe_race.hpp"

namespace idr::rt {

struct PassiveSelectorConfig {
  /// EWMA half-life (seconds, reactor clock).
  double half_life_s = 300.0;
  /// Pin to the cached best relay while its race-validated estimate is
  /// younger than this; race otherwise.
  double staleness_threshold_s = 300.0;
};

/// Per-client passive estimation state for a fixed relay set. Feed every
/// finished race to observe(); call prepare() before each race to let a
/// fresh estimate skip it. Single-reactor (not thread-safe), like the
/// rest of the rt client side.
class PassiveSelector {
 public:
  PassiveSelector(std::size_t relay_count, PassiveSelectorConfig config);

  /// Sets the spec's pinned-relay fields when some relay's race-validated
  /// estimate is fresher than the staleness threshold at reactor time
  /// `now_s`; leaves the spec racing otherwise. Returns the pinned index.
  std::optional<std::size_t> prepare(RaceSpec& spec, double now_s);

  /// Records a finished race into the estimation plane: an indirect win
  /// feeds the winner's observed throughput — race-validated when a real
  /// race ran, passive when the race was skipped on a pin — and a failed
  /// or direct outcome leaves the estimates untouched.
  void observe(const RaceResult& result, double now_s);

  const core::RelayStatsTable& stats() const { return stats_; }
  core::RelayStatsTable& stats() { return stats_; }

 private:
  core::RelayStatsTable stats_;
  PassiveSelectorConfig config_;
};

}  // namespace idr::rt
