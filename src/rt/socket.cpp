#include "rt/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace idr::rt {

FdHandle& FdHandle::operator=(FdHandle&& other) noexcept {
  if (this != &other) {
    reset();
    fd_ = other.release();
  }
  return *this;
}

int FdHandle::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  IDR_REQUIRE(flags >= 0, "fcntl F_GETFL failed");
  IDR_REQUIRE(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl F_SETFL failed");
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

}  // namespace

FdHandle listen_loopback(std::uint16_t port, int backlog) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  IDR_REQUIRE(fd.valid(), "socket() failed");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = loopback_addr(port);
  IDR_REQUIRE(::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)) == 0,
              std::string("bind failed: ") + std::strerror(errno));
  IDR_REQUIRE(::listen(fd.get(), backlog) == 0, "listen failed");
  set_nonblocking(fd.get());
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  IDR_REQUIRE(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) ==
                  0,
              "getsockname failed");
  return ntohs(addr.sin_port);
}

std::optional<FdHandle> accept_nonblocking(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::nullopt;
    ::idr::util::fail(std::string("accept failed: ") +
                      std::strerror(errno));
  }
  return FdHandle(fd);
}

std::optional<FdHandle> try_accept(int listen_fd, int* error) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd < 0) {
    *error = (errno == EAGAIN || errno == EWOULDBLOCK) ? 0 : errno;
    return std::nullopt;
  }
  *error = 0;
  return FdHandle(fd);
}

FdHandle connect_nonblocking(const std::string& host, std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  IDR_REQUIRE(fd.valid(), "socket() failed");
  set_nonblocking(fd.get());

  sockaddr_in addr = loopback_addr(port);
  if (host != "localhost" && host != "127.0.0.1") {
    IDR_REQUIRE(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                "connect: cannot parse host " + host);
  }
  const int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    ::idr::util::fail(std::string("connect failed: ") +
                      std::strerror(errno));
  }
  return fd;
}

int connect_error(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    return errno;
  }
  return err;
}

}  // namespace idr::rt
