// Thin RAII and non-blocking-socket helpers over POSIX TCP sockets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace idr::rt {

/// Owning file-descriptor handle.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept;
  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset();

 private:
  int fd_ = -1;
};

/// Creates a non-blocking listening socket on 127.0.0.1:`port`
/// (port 0 = ephemeral). Throws util::Error on failure.
FdHandle listen_loopback(std::uint16_t port, int backlog = 64);

/// Local port a socket is bound to.
std::uint16_t local_port(int fd);

/// Accepts one pending connection as non-blocking; nullopt when the
/// accept queue is empty.
std::optional<FdHandle> accept_nonblocking(int listen_fd);

/// Non-throwing accept: nullopt on both "queue empty" and real failures,
/// with the errno stored in `*error` (0 when the queue is merely empty).
/// Daemons use this so transient resource exhaustion (EMFILE, ENFILE,
/// ENOBUFS) can be handled with backoff instead of aborting.
std::optional<FdHandle> try_accept(int listen_fd, int* error);

/// Starts a non-blocking connect to host:port (IPv4 dotted or
/// "localhost"). The socket completes asynchronously — wait for
/// writability and check connect_finished(). Throws on immediate errors.
FdHandle connect_nonblocking(const std::string& host, std::uint16_t port);

/// After writability: 0 if connected, else the errno of the failure.
int connect_error(int fd);

}  // namespace idr::rt
