// Real-socket HTTP/1.1 origin server: serves fixed-size resources with
// deterministic bodies, honours single byte ranges (RFC 7233), and can
// shape each response's send rate through a pluggable policy — which is
// how tests and examples emulate the paper's path asymmetry on loopback
// (e.g. throttle requests without a Via header to model a slow direct
// path, relayed ones faster).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/connection.hpp"
#include "rt/governance.hpp"
#include "rt/sampler.hpp"
#include "rt/timer_wheel.hpp"

namespace idr::rt {

/// Deterministic resource byte at a given offset (so clients can verify
/// integrity of ranged reassembly).
char resource_byte(std::uint64_t offset);

class HttpOriginServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral). Serving starts immediately;
  /// run the reactor to make progress. Default limits govern nothing:
  /// behavior is identical to the pre-governance server.
  HttpOriginServer(Reactor& reactor, std::uint16_t port = 0,
                   ServerLimits limits = {});
  ~HttpOriginServer();

  HttpOriginServer(const HttpOriginServer&) = delete;
  HttpOriginServer& operator=(const HttpOriginServer&) = delete;

  std::uint16_t port() const { return port_; }

  void add_resource(std::string path, std::uint64_t size);

  /// Bytes/second granted to a response; 0 = unthrottled. Evaluated per
  /// request, so policies can differentiate direct vs. relayed requests.
  using ShapingPolicy = std::function<double(const http::Request&)>;
  void set_shaping_policy(ShapingPolicy policy);

  std::size_t requests_served() const {
    return static_cast<std::size_t>(c_requests_served_.value());
  }

  const ServerLimits& limits() const { return limits_; }
  /// Governance accounting, read from the `rt.origin.*` registry series.
  GovernanceCounters counters() const;
  std::size_t active_sessions() const { return sessions_.size(); }

  /// The server's metrics registry (Sync::Atomic). `GET /metrics` serves
  /// this merged with the reactor's registry; tests can snapshot it
  /// directly.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Wires server-side span emission: requests arriving with a valid
  /// `traceparent` get origin.parse / origin.stream spans under the
  /// caller's trace id, on Chrome process `pid`, row `track`. Null tracer
  /// (default) emits nothing.
  void set_tracer(obs::Tracer* tracer, std::uint64_t pid,
                  std::uint64_t track);

  /// Starts the periodic metrics sampler backing `/metrics?window=<s>`.
  void enable_sampling(double period_s, std::size_t capacity = 256);

  /// Per-request flight records (source "rt.origin"), newest-N ring;
  /// served live as `GET /debug/flights`.
  const obs::FlightRecorder& flights() const { return flights_; }

  /// Graceful shutdown: stop accepting, let in-flight sessions complete,
  /// then close the listener and fire `on_drained` (at most once; fires
  /// immediately when already idle).
  void drain(std::function<void()> on_drained = nullptr);
  bool draining() const { return draining_; }

 private:
  struct Session;
  void on_accept();
  void start_session(FdHandle fd);
  /// Serves "/metrics" / "/healthz" when the parsed request targets them.
  /// Returns true when the request was consumed by the introspection
  /// plane.
  bool maybe_serve_introspection(const std::shared_ptr<Session>& session);
  void handle_request(const std::shared_ptr<Session>& session);
  void pump_body(const std::shared_ptr<Session>& session);
  void shed_session(const std::shared_ptr<Session>& session);
  void close_when_drained(std::weak_ptr<Session> session);
  void erase_session(const std::shared_ptr<Session>& session);
  void touch_idle(const std::shared_ptr<Session>& session);
  void pause_accept(double delay_s);
  void resume_accept();
  void finish_drain();
  http::Response make_response(const http::Request& request,
                               std::uint64_t* body_offset,
                               std::uint64_t* body_length) const;
  /// Server + reactor registries, the exposition `GET /metrics` serves.
  obs::Snapshot merged_snapshot();
  /// Emits the request's origin.stream span and flight record once its
  /// last body byte is queued (or immediately for bodyless responses).
  void finish_serve(const std::shared_ptr<Session>& session);

  Reactor& reactor_;
  FdHandle listen_fd_;
  std::uint16_t port_ = 0;
  std::unordered_map<std::string, std::uint64_t> resources_;
  ShapingPolicy shaping_;
  ServerLimits limits_;
  std::unique_ptr<TimerWheel> idle_wheel_;
  double accept_backoff_s_ = 0.0;
  bool accept_paused_ = false;
  bool listener_open_ = true;
  bool draining_ = false;
  std::function<void()> on_drained_;
  std::unordered_set<std::shared_ptr<Session>> sessions_;

  // Cross-hop tracing (dormant until set_tracer) and per-request flight
  // records (always on: the ring is tiny and lock-light).
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t trace_pid_ = 1;
  std::uint64_t trace_track_ = 0;
  std::uint64_t trace_seq_ = 0;  // per-request child-context salt
  obs::FlightRecorder flights_{128};
  std::unique_ptr<MetricsSampler> sampler_;

  // `rt.origin.*` series; handles resolved once at construction.
  obs::Registry metrics_{obs::Registry::Sync::Atomic};
  obs::Counter c_accepted_;
  obs::Counter c_shed_;
  obs::Counter c_idle_reaped_;
  obs::Counter c_accept_failures_;
  obs::Counter c_accept_pauses_;
  obs::Counter c_drained_;
  obs::Counter c_requests_served_;
  obs::Counter c_bytes_sent_;
  obs::Counter c_rejects_bad_request_;
  obs::Counter c_responses_range_;
  obs::Counter c_responses_not_found_;
  obs::Counter c_metrics_served_;
  obs::Counter c_healthz_served_;
  obs::Counter c_flights_served_;
  obs::Gauge g_sessions_active_;
  obs::Gauge g_sessions_peak_;
  obs::Gauge g_draining_;
  obs::Gauge g_accept_backoff_s_;
  obs::Gauge g_limit_max_sessions_;
  obs::Histogram h_response_bytes_;
};

}  // namespace idr::rt
