// Real-socket HTTP/1.1 origin server: serves fixed-size resources with
// deterministic bodies, honours single byte ranges (RFC 7233), and can
// shape each response's send rate through a pluggable policy — which is
// how tests and examples emulate the paper's path asymmetry on loopback
// (e.g. throttle requests without a Via header to model a slow direct
// path, relayed ones faster).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "http/message.hpp"
#include "http/parser.hpp"
#include "rt/connection.hpp"
#include "rt/governance.hpp"
#include "rt/timer_wheel.hpp"

namespace idr::rt {

/// Deterministic resource byte at a given offset (so clients can verify
/// integrity of ranged reassembly).
char resource_byte(std::uint64_t offset);

class HttpOriginServer {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral). Serving starts immediately;
  /// run the reactor to make progress. Default limits govern nothing:
  /// behavior is identical to the pre-governance server.
  HttpOriginServer(Reactor& reactor, std::uint16_t port = 0,
                   ServerLimits limits = {});
  ~HttpOriginServer();

  HttpOriginServer(const HttpOriginServer&) = delete;
  HttpOriginServer& operator=(const HttpOriginServer&) = delete;

  std::uint16_t port() const { return port_; }

  void add_resource(std::string path, std::uint64_t size);

  /// Bytes/second granted to a response; 0 = unthrottled. Evaluated per
  /// request, so policies can differentiate direct vs. relayed requests.
  using ShapingPolicy = std::function<double(const http::Request&)>;
  void set_shaping_policy(ShapingPolicy policy);

  std::size_t requests_served() const { return requests_served_; }

  const ServerLimits& limits() const { return limits_; }
  const GovernanceCounters& counters() const { return counters_; }
  std::size_t active_sessions() const { return sessions_.size(); }

  /// Graceful shutdown: stop accepting, let in-flight sessions complete,
  /// then close the listener and fire `on_drained` (at most once; fires
  /// immediately when already idle).
  void drain(std::function<void()> on_drained = nullptr);
  bool draining() const { return draining_; }

 private:
  struct Session;
  void on_accept();
  void start_session(FdHandle fd);
  void handle_request(const std::shared_ptr<Session>& session);
  void pump_body(const std::shared_ptr<Session>& session);
  void shed_session(const std::shared_ptr<Session>& session);
  void close_when_drained(std::weak_ptr<Session> session);
  void erase_session(const std::shared_ptr<Session>& session);
  void touch_idle(const std::shared_ptr<Session>& session);
  void pause_accept(double delay_s);
  void resume_accept();
  void finish_drain();
  http::Response make_response(const http::Request& request,
                               std::uint64_t* body_offset,
                               std::uint64_t* body_length) const;

  Reactor& reactor_;
  FdHandle listen_fd_;
  std::uint16_t port_ = 0;
  std::unordered_map<std::string, std::uint64_t> resources_;
  ShapingPolicy shaping_;
  std::size_t requests_served_ = 0;
  ServerLimits limits_;
  GovernanceCounters counters_;
  std::unique_ptr<TimerWheel> idle_wheel_;
  double accept_backoff_s_ = 0.0;
  bool accept_paused_ = false;
  bool listener_open_ = true;
  bool draining_ = false;
  std::function<void()> on_drained_;
  std::unordered_set<std::shared_ptr<Session>> sessions_;
};

}  // namespace idr::rt
