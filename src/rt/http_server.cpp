#include "rt/http_server.hpp"

#include <algorithm>
#include <cstring>

#include "http/range.hpp"
#include "http/traceparent.hpp"
#include "obs/log.hpp"
#include "util/error.hpp"

namespace idr::rt {

namespace {
/// How often a hard-capped listener re-checks whether load has dropped.
constexpr double kCapRecheckS = 0.01;
}  // namespace

char resource_byte(std::uint64_t offset) {
  // Cheap keyed pattern: varies with offset, cycles slowly, printable.
  return static_cast<char>('A' + ((offset * 131 + (offset >> 7)) % 53));
}

struct HttpOriginServer::Session {
  std::shared_ptr<Connection> conn;
  http::RequestParser parser;
  // Body streaming state for the in-flight response.
  std::uint64_t body_offset = 0;
  std::uint64_t body_remaining = 0;
  double rate = 0.0;  // bytes/s; 0 = unthrottled
  double next_send_at = 0.0;
  bool sending = false;
  bool shed = false;  // admitted only to be told 503
  TimerWheel::Token idle_token = 0;

  // Cross-hop tracing + flight-record state for the request being served
  // (reset per pipelined request). `trace` is the caller's context
  // (invalid when the request carried no traceparent); `server_ctx`
  // roots this hop's own span ids under it.
  obs::TraceContext trace;
  obs::TraceContext server_ctx;
  double request_start = 0.0;
  double serve_start = 0.0;
  std::uint64_t serve_length = 0;
  int status = 0;
  std::string peer;  // resolved request path
};

HttpOriginServer::HttpOriginServer(Reactor& reactor, std::uint16_t port,
                                   ServerLimits limits)
    : reactor_(reactor),
      listen_fd_(listen_loopback(port)),
      limits_(limits) {
  port_ = local_port(listen_fd_.get());
  reactor_.add_fd(listen_fd_.get(), true, false,
                  [this](IoEvents) { on_accept(); });
  if (limits_.governs_idle()) {
    const double tick = std::max(0.005, limits_.idle_timeout_s / 4.0);
    idle_wheel_ = std::make_unique<TimerWheel>(reactor_, tick);
  }
  c_accepted_ = metrics_.counter("rt.origin.sessions_accepted");
  c_shed_ = metrics_.counter("rt.origin.sessions_shed");
  c_idle_reaped_ = metrics_.counter("rt.origin.sessions_idle_reaped");
  c_accept_failures_ = metrics_.counter("rt.origin.accept_failures");
  c_accept_pauses_ = metrics_.counter("rt.origin.accept_pauses");
  c_drained_ = metrics_.counter("rt.origin.sessions_drained");
  c_requests_served_ = metrics_.counter("rt.origin.requests_served");
  c_bytes_sent_ = metrics_.counter("rt.origin.bytes_sent");
  c_rejects_bad_request_ = metrics_.counter("rt.origin.rejects_bad_request");
  c_responses_range_ = metrics_.counter("rt.origin.responses_range");
  c_responses_not_found_ = metrics_.counter("rt.origin.responses_not_found");
  c_metrics_served_ = metrics_.counter("rt.origin.metrics_served");
  c_healthz_served_ = metrics_.counter("rt.origin.healthz_served");
  c_flights_served_ = metrics_.counter("rt.origin.flights_served");
  g_sessions_active_ = metrics_.gauge("rt.origin.sessions_active");
  g_sessions_peak_ = metrics_.gauge("rt.origin.sessions_peak");
  g_draining_ = metrics_.gauge("rt.origin.draining");
  g_accept_backoff_s_ = metrics_.gauge("rt.origin.accept_backoff_seconds");
  g_limit_max_sessions_ = metrics_.gauge("rt.origin.limit_max_sessions");
  g_limit_max_sessions_.set(static_cast<double>(limits_.max_sessions));
  h_response_bytes_ = metrics_.histogram("rt.origin.response_bytes",
                                         obs::HistogramOptions{1.0, 1e9, 2});
}

void HttpOriginServer::set_tracer(obs::Tracer* tracer, std::uint64_t pid,
                                  std::uint64_t track) {
  tracer_ = tracer;
  trace_pid_ = pid;
  trace_track_ = track;
}

void HttpOriginServer::enable_sampling(double period_s,
                                       std::size_t capacity) {
  sampler_ = std::make_unique<MetricsSampler>(
      reactor_, [this] { return merged_snapshot(); }, period_s, capacity);
}

obs::Snapshot HttpOriginServer::merged_snapshot() {
  obs::Snapshot snap = metrics_.snapshot();
  snap.merge(reactor_.metrics().snapshot());
  return snap;
}

GovernanceCounters HttpOriginServer::counters() const {
  GovernanceCounters c;
  c.accepted = c_accepted_.value();
  c.shed = c_shed_.value();
  c.idle_reaped = c_idle_reaped_.value();
  c.accept_failures = c_accept_failures_.value();
  c.accept_pauses = c_accept_pauses_.value();
  c.drained = c_drained_.value();
  return c;
}

HttpOriginServer::~HttpOriginServer() {
  if (listener_open_) reactor_.remove_fd(listen_fd_.get());
  for (auto& session : sessions_) session->conn->close();
}

void HttpOriginServer::add_resource(std::string path, std::uint64_t size) {
  IDR_REQUIRE(!path.empty() && path.front() == '/',
              "add_resource: path must start with '/'");
  IDR_REQUIRE(size > 0, "add_resource: zero size");
  resources_[std::move(path)] = size;
}

void HttpOriginServer::set_shaping_policy(ShapingPolicy policy) {
  shaping_ = std::move(policy);
}

void HttpOriginServer::on_accept() {
  while (true) {
    if (draining_ || !listener_open_) return;
    if (limits_.governs_admission() &&
        sessions_.size() >= limits_.max_sessions + limits_.shed_burst) {
      c_accept_pauses_.inc();
      pause_accept(kCapRecheckS);
      return;
    }
    int err = 0;
    auto fd = try_accept(listen_fd_.get(), &err);
    if (!fd) {
      if (err == 0) return;  // accept queue empty
      c_accept_failures_.inc();
      if (!accept_errno_is_transient(err)) {
        ::idr::util::fail(std::string("accept failed: ") +
                          std::strerror(err));
      }
      accept_backoff_s_ = accept_backoff_s_ == 0.0
                              ? limits_.accept_backoff_initial_s
                              : std::min(accept_backoff_s_ * 2.0,
                                         limits_.accept_backoff_max_s);
      g_accept_backoff_s_.set(accept_backoff_s_);
      IDR_OBS_LOG(obs::Severity::Warn, "rt.origin",
                  "origin " << port_ << ": accept failed ("
                            << std::strerror(err) << "), backing off "
                            << accept_backoff_s_ << "s");
      pause_accept(accept_backoff_s_);
      return;
    }
    accept_backoff_s_ = 0.0;
    g_accept_backoff_s_.set(0.0);
    start_session(std::move(*fd));
  }
}

void HttpOriginServer::pause_accept(double delay_s) {
  if (accept_paused_ || !listener_open_) return;
  accept_paused_ = true;
  reactor_.update_fd(listen_fd_.get(), false, false);
  reactor_.add_timer(delay_s, [this] { resume_accept(); });
}

void HttpOriginServer::resume_accept() {
  accept_paused_ = false;
  if (!listener_open_ || draining_) return;
  reactor_.update_fd(listen_fd_.get(), true, false);
  on_accept();  // drain whatever queued while paused
}

void HttpOriginServer::erase_session(
    const std::shared_ptr<Session>& session) {
  if (idle_wheel_ && session->idle_token != 0) {
    idle_wheel_->cancel(session->idle_token);
    session->idle_token = 0;
  }
  sessions_.erase(session);
  g_sessions_active_.set(static_cast<double>(sessions_.size()));
  if (draining_) {
    c_drained_.inc();
    if (sessions_.empty()) finish_drain();
  }
}

void HttpOriginServer::touch_idle(const std::shared_ptr<Session>& session) {
  if (idle_wheel_ && session->idle_token != 0) {
    idle_wheel_->reschedule(session->idle_token, limits_.idle_timeout_s);
  }
}

void HttpOriginServer::shed_session(
    const std::shared_ptr<Session>& session) {
  c_shed_.inc();
  session->conn->write(
      make_overload_response(limits_.retry_after_s).serialize());
  // Close once the 503 reaches the kernel, so the peer reads a response
  // instead of a reset.
  close_when_drained(session);
}

void HttpOriginServer::close_when_drained(std::weak_ptr<Session> session) {
  auto s = session.lock();
  if (!s) return;
  if (!s->conn->closed() && s->conn->send_backlog() > 0) {
    reactor_.add_timer(0.005,
                       [this, session] { close_when_drained(session); });
    return;
  }
  s->conn->close();
  erase_session(s);
}

void HttpOriginServer::start_session(FdHandle fd) {
  auto session = std::make_shared<Session>();
  session->conn = Connection::adopt(reactor_, std::move(fd));
  session->parser.set_limits(limits_.parser);
  session->request_start = reactor_.now();
  sessions_.insert(session);
  g_sessions_active_.set(static_cast<double>(sessions_.size()));
  g_sessions_peak_.set(std::max(g_sessions_peak_.value(),
                                static_cast<double>(sessions_.size())));

  if (limits_.governs_admission() &&
      sessions_.size() > limits_.max_sessions) {
    session->shed = true;
  } else {
    c_accepted_.inc();
  }

  std::weak_ptr<Session> weak = session;
  if (idle_wheel_) {
    session->idle_token =
        idle_wheel_->add(limits_.idle_timeout_s, [this, weak] {
          if (auto s = weak.lock()) {
            s->idle_token = 0;
            c_idle_reaped_.inc();
            s->conn->close();
            erase_session(s);
          }
        });
  }
  session->conn->set_on_close([this, weak](const std::string&) {
    if (auto s = weak.lock()) erase_session(s);
  });
  session->conn->set_on_data([this, weak](std::string_view data) {
    auto s = weak.lock();
    if (!s) return;
    touch_idle(s);
    // A shed session still parses its request: introspection targets
    // (/metrics, /healthz) are answered even under overload — that is
    // exactly when an operator needs them — everything else gets the 503.
    while (!data.empty()) {
      const std::size_t used = s->parser.feed(data);
      data.remove_prefix(used);
      if (s->parser.state() == http::ParseState::Error) {
        if (s->shed) {
          shed_session(s);
          return;
        }
        c_rejects_bad_request_.inc();
        http::Response bad;
        bad.status = 400;
        bad.reason = std::string(http::default_reason(400));
        s->conn->write(bad.serialize());
        s->conn->close();
        erase_session(s);
        return;
      }
      if (s->parser.state() == http::ParseState::Complete) {
        if (maybe_serve_introspection(s)) return;
        if (s->shed) {
          shed_session(s);
          return;
        }
        handle_request(s);
        if (!s->conn || s->conn->closed()) return;
        s->parser.reset();  // pipeline-friendly: keep-alive next request
        s->request_start = reactor_.now();
      }
    }
  });
}

bool HttpOriginServer::maybe_serve_introspection(
    const std::shared_ptr<Session>& session) {
  // Accept absolute-form targets like the resource plane does. The query
  // string survives the strip: parse_http_url keeps it in `path`.
  std::string target = session->parser.request().target;
  if (const auto url = http::parse_http_url(target)) target = url->path;
  const IntrospectionQuery query = parse_introspection_target(target);
  if (!query.is_introspection()) return false;
  switch (query.kind) {
    case IntrospectionQuery::Kind::Metrics:
      if (query.window_s > 0.0) {
        // Windowed rates need the sampler's history; without one, answer
        // with a well-formed empty window rather than a 404.
        std::string body;
        if (sampler_) {
          sampler_->sample_now();
          body = sampler_->series().window_json(query.window_s);
        } else {
          body = obs::TimeSeries(1).window_json(query.window_s);
        }
        session->conn->write(make_json_response(body).serialize());
      } else if (query.json) {
        session->conn->write(
            make_json_response(merged_snapshot().to_json()).serialize());
      } else {
        session->conn->write(
            make_metrics_response(merged_snapshot().to_prometheus())
                .serialize());
      }
      c_metrics_served_.inc();
      break;
    case IntrospectionQuery::Kind::Flights:
      session->conn->write(
          make_flights_response(flights_.to_jsonl(query.last_n))
              .serialize());
      c_flights_served_.inc();
      break;
    default: {
      const char* status =
          draining_ ? "draining" : (session->shed ? "shedding" : "ok");
      session->conn->write(
          make_healthz_response(status, sessions_.size()).serialize());
      c_healthz_served_.inc();
      break;
    }
  }
  // Introspection responses carry Connection: close; honour it.
  close_when_drained(session);
  return true;
}

void HttpOriginServer::drain(std::function<void()> on_drained) {
  on_drained_ = std::move(on_drained);
  if (!draining_) {
    draining_ = true;
    g_draining_.set(1.0);
    if (listener_open_ && !accept_paused_) {
      reactor_.update_fd(listen_fd_.get(), false, false);
    }
  }
  if (sessions_.empty()) finish_drain();
}

void HttpOriginServer::finish_drain() {
  if (listener_open_) {
    reactor_.remove_fd(listen_fd_.get());
    listen_fd_.reset();
    listener_open_ = false;
  }
  if (on_drained_) {
    auto cb = std::move(on_drained_);
    on_drained_ = nullptr;
    cb();
  }
}

http::Response HttpOriginServer::make_response(
    const http::Request& request, std::uint64_t* body_offset,
    std::uint64_t* body_length) const {
  *body_offset = 0;
  *body_length = 0;
  http::Response resp;

  // Accept absolute-form targets (a client may talk to us as if through
  // a proxy) by stripping the authority.
  std::string path = request.target;
  if (const auto url = http::parse_http_url(path)) path = url->path;

  const auto it = resources_.find(path);
  if (request.method != http::Method::GET) {
    resp.status = 400;
  } else if (it == resources_.end()) {
    resp.status = 404;
  } else {
    const std::uint64_t total = it->second;
    const auto range_header = request.headers.get("Range");
    if (!range_header) {
      resp.status = 200;
      *body_length = total;
    } else {
      const auto spec = http::parse_range_header(*range_header);
      const auto resolved =
          spec ? http::resolve_range(*spec, total) : std::nullopt;
      if (!resolved) {
        resp.status = 416;
        resp.headers.add("Content-Range",
                         "bytes */" + std::to_string(total));
      } else {
        resp.status = 206;
        resp.headers.add("Content-Range",
                         http::format_content_range(*resolved, total));
        *body_offset = resolved->first;
        *body_length = resolved->length();
      }
    }
  }
  resp.reason = std::string(http::default_reason(resp.status));
  resp.headers.add("Server", "indiroute-origin/1.0");
  resp.headers.set("Content-Length", std::to_string(*body_length));
  return resp;
}

void HttpOriginServer::handle_request(
    const std::shared_ptr<Session>& session) {
  const http::Request& request = session->parser.request();
  c_requests_served_.inc();

  // Adopt the caller's trace context, if the request carries one, and
  // emit this hop's parse span under it.
  session->trace = obs::TraceContext{};
  if (tracer_ != nullptr && tracer_->enabled()) {
    if (const auto tp = request.headers.get(http::kTraceparentHeader)) {
      if (auto ctx = http::parse_traceparent(*tp)) {
        session->trace = *ctx;
        session->server_ctx = ctx->child(++trace_seq_);
        obs::TraceEvent ev;
        ev.name = "origin.parse";
        ev.category = "rt.origin";
        ev.phase = 'X';
        ev.pid = trace_pid_;
        ev.track = trace_track_;
        ev.ts_us = session->request_start * 1e6;
        ev.dur_us = reactor_.now() * 1e6 - ev.ts_us;
        ev.trace_id = session->trace.trace_id;
        ev.span_id = session->server_ctx.child(1).span_id;
        ev.parent_span = session->trace.span_id;
        tracer_->append(std::move(ev));
        tracer_->flow('t', "transfer", "rt.origin", trace_pid_,
                      trace_track_, session->request_start * 1e6,
                      session->trace.trace_id);
      }
    }
  }

  std::uint64_t offset = 0, length = 0;
  const http::Response resp = make_response(request, &offset, &length);
  if (resp.status == 404) c_responses_not_found_.inc();
  if (resp.status == 206 || resp.status == 416) c_responses_range_.inc();
  h_response_bytes_.observe(static_cast<double>(length));
  session->conn->write(resp.serialize());

  std::string path = request.target;
  if (const auto url = http::parse_http_url(path)) path = url->path;
  session->peer = std::move(path);
  session->status = resp.status;
  session->serve_start = reactor_.now();
  session->serve_length = length;

  session->body_offset = offset;
  session->body_remaining = length;
  session->rate = shaping_ ? shaping_(request) : 0.0;
  session->next_send_at = reactor_.now();
  if (!session->sending && length > 0) {
    session->sending = true;
    pump_body(session);
  } else if (length == 0) {
    finish_serve(session);
  }
}

void HttpOriginServer::finish_serve(
    const std::shared_ptr<Session>& session) {
  const double now = reactor_.now();
  if (tracer_ != nullptr && tracer_->enabled() && session->trace.valid() &&
      session->serve_length > 0) {
    obs::TraceEvent ev;
    ev.name = "origin.stream";
    ev.category = "rt.origin";
    ev.phase = 'X';
    ev.pid = trace_pid_;
    ev.track = trace_track_;
    ev.ts_us = session->serve_start * 1e6;
    ev.dur_us = now * 1e6 - ev.ts_us;
    ev.trace_id = session->trace.trace_id;
    ev.span_id = session->server_ctx.child(2).span_id;
    ev.parent_span = session->trace.span_id;
    ev.args_json = "{\"bytes\":" + std::to_string(session->serve_length) +
                   ",\"status\":" + std::to_string(session->status) + "}";
    tracer_->append(std::move(ev));
  }
  obs::FlightRecord rec;
  rec.trace_id = session->trace.trace_id;
  rec.source = "rt.origin";
  rec.peer = session->peer;
  rec.start_time = session->request_start;
  rec.ok = session->status == 200 || session->status == 206;
  rec.status = session->status;
  rec.bytes_total = session->serve_length;
  rec.total_elapsed_s = now - session->request_start;
  flights_.record(std::move(rec));
}

void HttpOriginServer::pump_body(const std::shared_ptr<Session>& session) {
  if (session->conn->closed()) {
    session->sending = false;
    return;
  }
  if (session->body_remaining == 0) {
    session->sending = false;
    return;
  }
  // Backpressure: don't run ahead of the socket.
  constexpr std::size_t kMaxBacklog = 256 * 1024;
  if (session->conn->send_backlog() < kMaxBacklog) {
    // Chunk size: unthrottled sends stream 64 KiB at a time; throttled
    // sends pace ~20 chunks per second.
    std::uint64_t chunk = 64 * 1024;
    double delay = 0.0;
    if (session->rate > 0.0) {
      chunk = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(session->rate / 20.0));
      delay = static_cast<double>(chunk) / session->rate;
    }
    chunk = std::min(chunk, session->body_remaining);
    std::string body(static_cast<std::size_t>(chunk), '\0');
    for (std::uint64_t i = 0; i < chunk; ++i) {
      body[static_cast<std::size_t>(i)] =
          resource_byte(session->body_offset + i);
    }
    session->conn->write(body);
    c_bytes_sent_.inc(chunk);
    touch_idle(session);  // an actively streaming response is not idle
    session->body_offset += chunk;
    session->body_remaining -= chunk;
    if (session->body_remaining == 0) {
      session->sending = false;
      finish_serve(session);
      return;
    }
    std::weak_ptr<Session> weak = session;
    reactor_.add_timer(delay, [this, weak] {
      if (auto s = weak.lock()) pump_body(s);
    });
    return;
  }
  // Socket backed up: retry shortly.
  std::weak_ptr<Session> weak = session;
  reactor_.add_timer(0.005, [this, weak] {
    if (auto s = weak.lock()) pump_body(s);
  });
}

}  // namespace idr::rt
