#include "rt/http_server.hpp"

#include <algorithm>

#include "http/range.hpp"
#include "util/error.hpp"

namespace idr::rt {

char resource_byte(std::uint64_t offset) {
  // Cheap keyed pattern: varies with offset, cycles slowly, printable.
  return static_cast<char>('A' + ((offset * 131 + (offset >> 7)) % 53));
}

struct HttpOriginServer::Session {
  std::shared_ptr<Connection> conn;
  http::RequestParser parser;
  // Body streaming state for the in-flight response.
  std::uint64_t body_offset = 0;
  std::uint64_t body_remaining = 0;
  double rate = 0.0;  // bytes/s; 0 = unthrottled
  double next_send_at = 0.0;
  bool sending = false;
};

HttpOriginServer::HttpOriginServer(Reactor& reactor, std::uint16_t port)
    : reactor_(reactor), listen_fd_(listen_loopback(port)) {
  port_ = local_port(listen_fd_.get());
  reactor_.add_fd(listen_fd_.get(), true, false,
                  [this](IoEvents) { on_accept(); });
}

HttpOriginServer::~HttpOriginServer() {
  reactor_.remove_fd(listen_fd_.get());
  for (auto& session : sessions_) session->conn->close();
}

void HttpOriginServer::add_resource(std::string path, std::uint64_t size) {
  IDR_REQUIRE(!path.empty() && path.front() == '/',
              "add_resource: path must start with '/'");
  IDR_REQUIRE(size > 0, "add_resource: zero size");
  resources_[std::move(path)] = size;
}

void HttpOriginServer::set_shaping_policy(ShapingPolicy policy) {
  shaping_ = std::move(policy);
}

void HttpOriginServer::on_accept() {
  while (auto fd = accept_nonblocking(listen_fd_.get())) {
    start_session(std::move(*fd));
  }
}

void HttpOriginServer::start_session(FdHandle fd) {
  auto session = std::make_shared<Session>();
  session->conn = Connection::adopt(reactor_, std::move(fd));
  sessions_.insert(session);

  std::weak_ptr<Session> weak = session;
  session->conn->set_on_close([this, weak](const std::string&) {
    if (auto s = weak.lock()) sessions_.erase(s);
  });
  session->conn->set_on_data([this, weak](std::string_view data) {
    auto s = weak.lock();
    if (!s) return;
    while (!data.empty()) {
      const std::size_t used = s->parser.feed(data);
      data.remove_prefix(used);
      if (s->parser.state() == http::ParseState::Error) {
        http::Response bad;
        bad.status = 400;
        bad.reason = std::string(http::default_reason(400));
        s->conn->write(bad.serialize());
        s->conn->close();
        sessions_.erase(s);
        return;
      }
      if (s->parser.state() == http::ParseState::Complete) {
        handle_request(s);
        if (!s->conn || s->conn->closed()) return;
        s->parser.reset();  // pipeline-friendly: keep-alive next request
      }
    }
  });
}

http::Response HttpOriginServer::make_response(
    const http::Request& request, std::uint64_t* body_offset,
    std::uint64_t* body_length) const {
  *body_offset = 0;
  *body_length = 0;
  http::Response resp;

  // Accept absolute-form targets (a client may talk to us as if through
  // a proxy) by stripping the authority.
  std::string path = request.target;
  if (const auto url = http::parse_http_url(path)) path = url->path;

  const auto it = resources_.find(path);
  if (request.method != http::Method::GET) {
    resp.status = 400;
  } else if (it == resources_.end()) {
    resp.status = 404;
  } else {
    const std::uint64_t total = it->second;
    const auto range_header = request.headers.get("Range");
    if (!range_header) {
      resp.status = 200;
      *body_length = total;
    } else {
      const auto spec = http::parse_range_header(*range_header);
      const auto resolved =
          spec ? http::resolve_range(*spec, total) : std::nullopt;
      if (!resolved) {
        resp.status = 416;
        resp.headers.add("Content-Range",
                         "bytes */" + std::to_string(total));
      } else {
        resp.status = 206;
        resp.headers.add("Content-Range",
                         http::format_content_range(*resolved, total));
        *body_offset = resolved->first;
        *body_length = resolved->length();
      }
    }
  }
  resp.reason = std::string(http::default_reason(resp.status));
  resp.headers.add("Server", "indiroute-origin/1.0");
  resp.headers.set("Content-Length", std::to_string(*body_length));
  return resp;
}

void HttpOriginServer::handle_request(
    const std::shared_ptr<Session>& session) {
  const http::Request& request = session->parser.request();
  ++requests_served_;

  std::uint64_t offset = 0, length = 0;
  const http::Response resp = make_response(request, &offset, &length);
  session->conn->write(resp.serialize());

  session->body_offset = offset;
  session->body_remaining = length;
  session->rate = shaping_ ? shaping_(request) : 0.0;
  session->next_send_at = reactor_.now();
  if (!session->sending && length > 0) {
    session->sending = true;
    pump_body(session);
  }
}

void HttpOriginServer::pump_body(const std::shared_ptr<Session>& session) {
  if (session->conn->closed()) {
    session->sending = false;
    return;
  }
  if (session->body_remaining == 0) {
    session->sending = false;
    return;
  }
  // Backpressure: don't run ahead of the socket.
  constexpr std::size_t kMaxBacklog = 256 * 1024;
  if (session->conn->send_backlog() < kMaxBacklog) {
    // Chunk size: unthrottled sends stream 64 KiB at a time; throttled
    // sends pace ~20 chunks per second.
    std::uint64_t chunk = 64 * 1024;
    double delay = 0.0;
    if (session->rate > 0.0) {
      chunk = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(session->rate / 20.0));
      delay = static_cast<double>(chunk) / session->rate;
    }
    chunk = std::min(chunk, session->body_remaining);
    std::string body(static_cast<std::size_t>(chunk), '\0');
    for (std::uint64_t i = 0; i < chunk; ++i) {
      body[static_cast<std::size_t>(i)] =
          resource_byte(session->body_offset + i);
    }
    session->conn->write(body);
    session->body_offset += chunk;
    session->body_remaining -= chunk;
    if (session->body_remaining == 0) {
      session->sending = false;
      return;
    }
    std::weak_ptr<Session> weak = session;
    reactor_.add_timer(delay, [this, weak] {
      if (auto s = weak.lock()) pump_body(s);
    });
    return;
  }
  // Socket backed up: retry shortly.
  std::weak_ptr<Session> weak = session;
  reactor_.add_timer(0.005, [this, weak] {
    if (auto s = weak.lock()) pump_body(s);
  });
}

}  // namespace idr::rt
