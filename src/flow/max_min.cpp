#include "flow/max_min.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/tcp_model.hpp"
#include "util/error.hpp"

namespace idr::flow {

// Progressive filling over the workspace's flat arrays.
//
// Per-round cost is bounded by the flows/links still in play, not the
// problem size: the smallest unfixed cap comes from a once-sorted cap
// order behind an advancing cursor, link water levels scan an active-link
// set that is compacted as links exhaust, and the freeze scan walks a
// compacted list of unfixed flows. Freeze order (and therefore every
// floating-point operation on `avail`) is identical to the original
// dense implementation: within a round, flows freeze in ascending index
// order — the cap sort breaks ties by index, and both compactions
// preserve relative order.
void max_min_allocate(MaxMinWorkspace& ws) {
  const std::size_t num_links = ws.avail.size();
  const std::size_t num_flows = ws.cap.size();
  IDR_REQUIRE(ws.offset.size() == num_flows, "max_min: malformed workspace");

  ws.rounds = 0;
  ws.rate.assign(num_flows, 0.0);
  ws.fixed.assign(num_flows, 0);
  ws.active.assign(num_links, 0);
  ws.saturated.assign(num_links, 0);

  const auto span_begin = [&](std::size_t f) { return ws.offset[f]; };
  const auto span_end = [&](std::size_t f) {
    return f + 1 < num_flows ? ws.offset[f + 1] : ws.links.size();
  };

  for (std::size_t f = 0; f < num_flows; ++f) {
    IDR_REQUIRE(ws.cap[f] >= 0.0, "max_min: negative cap");
    if (span_begin(f) == span_end(f)) {
      // Degenerate local flow: no shared resource constrains it.
      ws.rate[f] = std::isinf(ws.cap[f]) ? 0.0 : ws.cap[f];
      ws.fixed[f] = 1;
      continue;
    }
    for (std::size_t i = span_begin(f); i < span_end(f); ++i) {
      const std::size_t l = ws.links[i];
      IDR_REQUIRE(l < num_links, "max_min: link index out of range");
      IDR_REQUIRE(ws.avail[l] > 0.0, "max_min: non-positive capacity");
      ++ws.active[l];
    }
  }

  ws.unfixed.clear();
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (!ws.fixed[f]) ws.unfixed.push_back(static_cast<std::uint32_t>(f));
  }
  ws.cap_order.assign(ws.unfixed.begin(), ws.unfixed.end());
  std::sort(ws.cap_order.begin(), ws.cap_order.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (ws.cap[a] != ws.cap[b]) return ws.cap[a] < ws.cap[b];
              return a < b;
            });
  ws.active_links.clear();
  for (std::size_t l = 0; l < num_links; ++l) {
    if (ws.active[l] > 0) ws.active_links.push_back(static_cast<std::uint32_t>(l));
  }

  std::size_t remaining = ws.unfixed.size();
  std::size_t cap_cursor = 0;

  const auto freeze = [&](std::size_t f, Rate r) {
    ws.rate[f] = r;
    ws.fixed[f] = 1;
    --remaining;
    for (std::size_t i = span_begin(f); i < span_end(f); ++i) {
      const std::size_t l = ws.links[i];
      ws.avail[l] -= r;
      --ws.active[l];
    }
  };

  while (remaining > 0) {
    ++ws.rounds;
    // Water level achievable on each still-active link if all its unfixed
    // flows rise equally; drop exhausted links from the set as we go. The
    // binding constraint this round is the smallest of the link levels and
    // the smallest unfixed cap.
    Rate link_level = std::numeric_limits<Rate>::infinity();
    {
      std::size_t w = 0;
      for (std::size_t i = 0; i < ws.active_links.size(); ++i) {
        const std::uint32_t l = ws.active_links[i];
        if (ws.active[l] == 0) continue;
        ws.active_links[w++] = l;
        link_level = std::min(
            link_level,
            std::max(ws.avail[l], 0.0) / static_cast<Rate>(ws.active[l]));
      }
      ws.active_links.resize(w);
    }
    while (cap_cursor < ws.cap_order.size() &&
           ws.fixed[ws.cap_order[cap_cursor]]) {
      ++cap_cursor;
    }
    const Rate cap_level = cap_cursor < ws.cap_order.size()
                               ? ws.cap[ws.cap_order[cap_cursor]]
                               : std::numeric_limits<Rate>::infinity();

    if (cap_level <= link_level) {
      // Cap-bound flows saturate first: give them exactly their cap. This
      // is feasible because cap_level <= every link's equal-share level.
      while (cap_cursor < ws.cap_order.size()) {
        const std::uint32_t f = ws.cap_order[cap_cursor];
        if (ws.fixed[f]) {
          ++cap_cursor;
          continue;
        }
        if (ws.cap[f] > cap_level) break;
        freeze(f, ws.cap[f]);
        ++cap_cursor;
      }
    } else {
      // Some link saturates at link_level: freeze every unfixed flow that
      // crosses a link whose level equals the minimum.
      IDR_REQUIRE(std::isfinite(link_level),
                  "max_min: unbounded flows with no finite constraint");
      ws.sat_list.clear();
      for (const std::uint32_t l : ws.active_links) {
        const Rate level =
            std::max(ws.avail[l], 0.0) / static_cast<Rate>(ws.active[l]);
        // Tolerate fp noise when comparing levels.
        if (level <= link_level * (1.0 + 1e-12)) {
          ws.saturated[l] = 1;
          ws.sat_list.push_back(l);
        }
      }
      bool froze_any = false;
      std::size_t w = 0;
      for (std::size_t i = 0; i < ws.unfixed.size(); ++i) {
        const std::uint32_t f = ws.unfixed[i];
        if (ws.fixed[f]) continue;  // frozen by an earlier cap round
        bool hit = false;
        for (std::size_t j = span_begin(f); j < span_end(f); ++j) {
          if (ws.saturated[ws.links[j]]) {
            hit = true;
            break;
          }
        }
        if (hit) {
          freeze(f, link_level);
          froze_any = true;
          continue;
        }
        ws.unfixed[w++] = f;
      }
      ws.unfixed.resize(w);
      for (const std::uint32_t l : ws.sat_list) ws.saturated[l] = 0;
      IDR_REQUIRE(froze_any, "max_min: no progress (internal error)");
    }
  }
}

std::vector<Rate> max_min_allocate(const std::vector<Rate>& capacities,
                                   const std::vector<FlowDemand>& flows) {
  MaxMinWorkspace ws;
  ws.avail = capacities;
  ws.cap.reserve(flows.size());
  ws.offset.reserve(flows.size());
  for (const FlowDemand& d : flows) {
    ws.add_flow(d.cap);
    for (std::size_t l : d.links) ws.add_link(l);
  }
  max_min_allocate(ws);
  return std::move(ws.rate);
}

}  // namespace idr::flow
