#include "flow/max_min.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "flow/tcp_model.hpp"
#include "util/error.hpp"

namespace idr::flow {

std::vector<Rate> max_min_allocate(const std::vector<Rate>& capacities,
                                   const std::vector<FlowDemand>& flows) {
  const std::size_t num_links = capacities.size();
  const std::size_t num_flows = flows.size();

  std::vector<Rate> rate(num_flows, 0.0);
  std::vector<bool> fixed(num_flows, false);
  std::vector<Rate> avail = capacities;
  // Unfixed-flow count per link.
  std::vector<std::size_t> active(num_links, 0);

  for (std::size_t f = 0; f < num_flows; ++f) {
    IDR_REQUIRE(flows[f].cap >= 0.0, "max_min: negative cap");
    if (flows[f].links.empty()) {
      // Degenerate local flow: no shared resource constrains it.
      rate[f] = std::isinf(flows[f].cap) ? 0.0 : flows[f].cap;
      fixed[f] = true;
      continue;
    }
    for (std::size_t l : flows[f].links) {
      IDR_REQUIRE(l < num_links, "max_min: link index out of range");
      IDR_REQUIRE(capacities[l] > 0.0, "max_min: non-positive capacity");
      ++active[l];
    }
  }

  std::size_t remaining = 0;
  for (std::size_t f = 0; f < num_flows; ++f) {
    if (!fixed[f]) ++remaining;
  }

  while (remaining > 0) {
    // Water level achievable on each link if all its unfixed flows rise
    // equally; the binding constraint this round is the smallest of the
    // link levels and the smallest unfixed cap.
    Rate link_level = std::numeric_limits<Rate>::infinity();
    for (std::size_t l = 0; l < num_links; ++l) {
      if (active[l] > 0) {
        link_level = std::min(
            link_level,
            std::max(avail[l], 0.0) / static_cast<Rate>(active[l]));
      }
    }
    Rate cap_level = std::numeric_limits<Rate>::infinity();
    for (std::size_t f = 0; f < num_flows; ++f) {
      if (!fixed[f]) cap_level = std::min(cap_level, flows[f].cap);
    }

    auto freeze = [&](std::size_t f, Rate r) {
      rate[f] = r;
      fixed[f] = true;
      --remaining;
      for (std::size_t l : flows[f].links) {
        avail[l] -= r;
        --active[l];
      }
    };

    if (cap_level <= link_level) {
      // Cap-bound flows saturate first: give them exactly their cap. This
      // is feasible because cap_level <= every link's equal-share level.
      for (std::size_t f = 0; f < num_flows; ++f) {
        if (!fixed[f] && flows[f].cap <= cap_level) {
          freeze(f, flows[f].cap);
        }
      }
    } else {
      // Some link saturates at link_level: freeze every unfixed flow that
      // crosses a link whose level equals the minimum.
      IDR_REQUIRE(std::isfinite(link_level),
                  "max_min: unbounded flows with no finite constraint");
      std::vector<bool> saturated(num_links, false);
      for (std::size_t l = 0; l < num_links; ++l) {
        if (active[l] > 0) {
          const Rate level =
              std::max(avail[l], 0.0) / static_cast<Rate>(active[l]);
          // Tolerate fp noise when comparing levels.
          if (level <= link_level * (1.0 + 1e-12)) saturated[l] = true;
        }
      }
      bool froze_any = false;
      for (std::size_t f = 0; f < num_flows; ++f) {
        if (fixed[f]) continue;
        for (std::size_t l : flows[f].links) {
          if (saturated[l]) {
            freeze(f, link_level);
            froze_any = true;
            break;
          }
        }
      }
      IDR_REQUIRE(froze_any, "max_min: no progress (internal error)");
    }
  }

  return rate;
}

}  // namespace idr::flow
