#include "flow/flow_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace idr::flow {

namespace {
// Slow-start stops ramping once its cap reaches this bound even if the
// steady-state ceiling is unbounded (lossless path): beyond it the links,
// not the window, constrain the flow.
constexpr Rate kSlowStartStopBound = 12.5e9;  // 100 Gbit/s

// Link capacities are clamped to this floor whenever a capacity process
// drives them, so a degenerate draw can never park every flow on a link.
constexpr Rate kCapacityFloor = 1.0;

double sim_now_us(const void* ctx) {
  return static_cast<const sim::Simulator*>(ctx)->now() * 1e6;
}
}  // namespace

FlowSimulator::FlowSimulator(sim::Simulator& sim, net::Topology& topo,
                             util::Rng rng)
    : sim_(sim), topo_(topo), rng_(rng) {
  c_reallocations_ = metrics_.counter("sim.flow.reallocations");
  c_flows_touched_ = metrics_.counter("sim.flow.flows_touched");
  c_maxmin_rounds_ = metrics_.counter("sim.flow.maxmin_rounds");
  c_timer_rearms_ = metrics_.counter("sim.flow.timer_rearms");
  c_skipped_events_ = metrics_.counter("sim.flow.skipped_events");
  g_flows_active_ = metrics_.gauge("sim.flow.flows_active");
}

obs::TraceClock FlowSimulator::trace_clock() const {
  return obs::TraceClock{&sim_now_us, &sim_};
}

FlowSimulator::Counters FlowSimulator::counters() const {
  Counters c;
  c.reallocations = c_reallocations_.value();
  c.flows_touched = c_flows_touched_.value();
  c.maxmin_rounds = c_maxmin_rounds_.value();
  c.timer_rearms = c_timer_rearms_.value();
  c.skipped_events = c_skipped_events_.value();
  return c;
}

FlowSimulator::Counters FlowSimulator::counters_from(
    const obs::Snapshot& snapshot) {
  auto series = [&](const char* name) -> std::uint64_t {
    const obs::MetricValue* m = snapshot.find(name);
    return m != nullptr ? m->count : 0;
  };
  Counters c;
  c.reallocations = series("sim.flow.reallocations");
  c.flows_touched = series("sim.flow.flows_touched");
  c.maxmin_rounds = series("sim.flow.maxmin_rounds");
  c.timer_rearms = series("sim.flow.timer_rearms");
  c.skipped_events = series("sim.flow.skipped_events");
  return c;
}

void FlowSimulator::attach_capacity_process(
    net::LinkId link, std::unique_ptr<net::CapacityProcess> process) {
  IDR_REQUIRE(process != nullptr, "attach_capacity_process: null process");
  IDR_REQUIRE(!capacity_slots_.contains(link),
              "attach_capacity_process: link already has a process");
  auto [it, inserted] = capacity_slots_.emplace(
      link,
      CapacitySlot{std::move(process),
                   rng_.child(0x9000 + static_cast<std::uint64_t>(link)), 0,
                   net::CapacityChange{}, false});
  CapacitySlot& slot = it->second;
  // Clamp exactly like subsequent changes so a degenerate initial draw
  // cannot produce a zero-capacity link.
  topo_.mutable_link(link).capacity =
      std::max(slot.process->initial(slot.rng), kCapacityFloor);
  const net::LinkId seed[1] = {link};
  reallocate_for_links(seed);
  schedule_capacity_change(link);
}

void FlowSimulator::schedule_capacity_change(net::LinkId link) {
  CapacitySlot& slot = capacity_slots_.at(link);
  const net::CapacityChange change = slot.process->next(slot.rng);
  if (std::isinf(change.dwell)) {  // process has gone quiescent
    slot.armed = false;
    return;
  }
  slot.pending = change;
  if (slot.armed) {
    // Called from the change event's own callback: re-arm the same event
    // in place for the next dwell, closure and id intact.
    sim_.reschedule_in(slot.event, change.dwell);
  } else {
    slot.armed = true;
    slot.event = sim_.schedule_in(change.dwell,
                                  [this, link] { on_capacity_change(link); });
  }
}

void FlowSimulator::on_capacity_change(net::LinkId link) {
  CapacitySlot& slot = capacity_slots_.at(link);
  const Rate capacity = std::max(slot.pending.capacity, kCapacityFloor);
  if (capacity == topo_.link(link).capacity) {
    // The process re-drew the current level; no rate can change.
    c_skipped_events_.inc();
  } else {
    topo_.mutable_link(link).capacity = capacity;
    const net::LinkId seed[1] = {link};
    reallocate_for_links(seed);
  }
  schedule_capacity_change(link);
}

FlowId FlowSimulator::start_flow(const net::Path& path, Bytes size,
                                 const FlowOptions& options,
                                 CompletionCallback on_done) {
  IDR_REQUIRE(!path.empty(), "start_flow: empty path");
  IDR_REQUIRE(size > 0.0, "start_flow: non-positive size");
  IDR_REQUIRE(options.cap_scale > 0.0 && options.cap_scale <= 1.0,
              "start_flow: cap_scale outside (0,1]");

  FlowState f;
  f.id = ++next_id_;
  f.path = path;
  f.size = size;
  f.remaining = size;
  f.start = sim_.now();
  f.last_update = f.start;
  f.tcp = options.tcp;
  f.cap_scale = options.cap_scale;
  f.extra_cap = options.extra_cap;
  f.rtt = options.rtt > 0.0 ? options.rtt : topo_.path_rtt(path);
  IDR_REQUIRE(f.rtt > 0.0, "start_flow: zero RTT (add propagation delay)");
  if (options.ceiling_override > 0.0) {
    f.ceiling = options.ceiling_override;
  } else {
    const double loss =
        options.loss >= 0.0 ? options.loss : topo_.path_loss(path);
    f.ceiling = steady_state_ceiling(f.tcp, f.rtt, loss);
  }
  f.on_done = std::move(on_done);

  if (options.model_slow_start) {
    f.in_slow_start = true;
    f.ss_round = 0;
    f.ss_cap = slow_start_cap(f.tcp, f.rtt, 0);
    const FlowId id = f.id;
    f.ss_event =
        sim_.schedule_in(f.rtt, [this, id] { on_slow_start_round(id); });
  }

  const FlowId id = f.id;
  const auto [it, inserted] = flows_.emplace(id, std::move(f));
  IDR_REQUIRE(inserted, "start_flow: duplicate flow id");
  index_.ensure_links(topo_.link_count());
  index_.add(id, it->second.path.links);
  g_flows_active_.set(static_cast<double>(flows_.size()));
  reallocate_for_flow(id);
  return id;
}

void FlowSimulator::on_slow_start_round(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  FlowState& f = it->second;
  const Rate cap_before = effective_cap(f);
  ++f.ss_round;
  f.ss_cap = slow_start_cap(f.tcp, f.rtt, f.ss_round);
  const Rate stop_at = std::min(f.ceiling, kSlowStartStopBound);
  if (f.ss_cap >= stop_at) {
    f.in_slow_start = false;  // ramp complete; ceiling governs from here
  } else {
    // Self-reschedule of the firing round event: one event per ramp, no
    // closure re-creation per round.
    sim_.reschedule_in(f.ss_event, f.rtt);
  }
  // The ramp only ever raises the effective cap. If the previous cap was
  // not binding (rate strictly below it), relaxing it further cannot
  // change any allocation — skip the recompute.
  if (f.rate < cap_before) {
    c_skipped_events_.inc();
    return;
  }
  reallocate_for_flow(id);
}

bool FlowSimulator::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  FlowState& f = it->second;
  if (f.in_slow_start) sim_.cancel(f.ss_event);
  if (f.completion_armed) sim_.cancel(f.completion_event);
  index_.remove(id, f.path.links);
  // Only the departing flow's component can change; seed the recompute
  // with its links (kept alive across the erase).
  const net::Path path = std::move(f.path);
  flows_.erase(it);
  g_flows_active_.set(static_cast<double>(flows_.size()));
  reallocate_for_links(path.links);
  return true;
}

Rate FlowSimulator::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "current_rate: unknown flow");
  return it->second.rate;
}

Bytes FlowSimulator::bytes_remaining(FlowId id) const {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "bytes_remaining: unknown flow");
  const FlowState& f = it->second;
  const Duration dt = sim_.now() - f.last_update;
  return std::max(0.0, f.remaining - f.rate * dt);
}

void FlowSimulator::set_extra_cap(FlowId id, Rate cap) {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "set_extra_cap: unknown flow");
  IDR_REQUIRE(cap >= 0.0, "set_extra_cap: negative cap");
  FlowState& f = it->second;
  if (cap == f.extra_cap) {
    c_skipped_events_.inc();
    return;
  }
  f.extra_cap = cap;
  reallocate_for_flow(id);
}

Rate FlowSimulator::effective_cap(const FlowState& f) {
  const Rate tcp_cap =
      f.in_slow_start ? std::min(f.ss_cap, f.ceiling) : f.ceiling;
  return std::min(tcp_cap * f.cap_scale, f.extra_cap);
}

void FlowSimulator::advance_flow(FlowState& f) {
  const TimePoint now = sim_.now();
  const Duration dt = now - f.last_update;
  if (dt > 0.0) {
    f.remaining = std::max(0.0, f.remaining - f.rate * dt);
  }
  f.last_update = now;
}

void FlowSimulator::arm_completion(FlowState& f) {
  if (f.rate <= 0.0) {  // parked until capacity appears
    if (f.completion_armed) {
      sim_.cancel(f.completion_event);
      f.completion_armed = false;
    }
    return;
  }
  const Duration eta = f.remaining / f.rate;
  if (f.completion_armed) {
    // The dominant churn event of the simulator: every rate change moves
    // the completion estimate. The armed event is sifted in place —
    // same id, same closure, no allocation, no tombstone.
    sim_.reschedule_in(f.completion_event, eta);
  } else {
    const FlowId id = f.id;
    f.completion_event =
        sim_.schedule_in(eta, [this, id] { on_completion(id); });
    f.completion_armed = true;
  }
  c_timer_rearms_.inc();
}

void FlowSimulator::reallocate_for_flow(FlowId id) {
  const FlowId seed[1] = {id};
  index_.collect_component(
      seed, {},
      [this](FlowId u) -> const std::vector<net::LinkId>& {
        return flows_.at(u).path.links;
      },
      comp_flows_, comp_links_);
  reallocate_component();
}

void FlowSimulator::reallocate_for_links(std::span<const net::LinkId> links) {
  index_.ensure_links(topo_.link_count());
  index_.collect_component(
      {}, links,
      [this](FlowId u) -> const std::vector<net::LinkId>& {
        return flows_.at(u).path.links;
      },
      comp_flows_, comp_links_);
  reallocate_component();
}

void FlowSimulator::reallocate_component() {
  c_reallocations_.inc();
  if (comp_flows_.empty()) return;
  c_flows_touched_.inc(comp_flows_.size());

  // Canonical flow order: ascending id. The order fixes the sequence of
  // floating-point updates inside the solver, so it must not depend on
  // hash-map iteration or component discovery order.
  std::sort(comp_flows_.begin(), comp_flows_.end());

  if (local_link_.size() < topo_.link_count()) {
    local_link_.resize(topo_.link_count());
  }
  ws_.clear();
  for (std::size_t i = 0; i < comp_links_.size(); ++i) {
    local_link_[comp_links_[i]] = i;
    ws_.avail.push_back(topo_.link(comp_links_[i]).capacity);
  }
  comp_states_.clear();
  for (const FlowId id : comp_flows_) {
    FlowState& f = flows_.at(id);
    comp_states_.push_back(&f);
    ws_.add_flow(effective_cap(f));
    for (const net::LinkId l : f.path.links) ws_.add_link(local_link_[l]);
  }

  max_min_allocate(ws_);
  c_maxmin_rounds_.inc(ws_.rounds);

  for (std::size_t i = 0; i < comp_states_.size(); ++i) {
    FlowState& f = *comp_states_[i];
    const Rate rate = ws_.rate[i];
    // Rates between events are exact in the fluid model, so an exact
    // comparison is the right test: an unchanged rate means the flow's
    // byte accounting and armed completion timer are still valid.
    if (rate == f.rate) continue;
    advance_flow(f);
    f.rate = rate;
    arm_completion(f);
  }
}

void FlowSimulator::on_completion(FlowId id) {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "on_completion: unknown flow");
  FlowState& f = it->second;
  advance_flow(f);
  // The event was armed for exactly remaining/rate at the then-current
  // rate; if any event changed the rate in between, the recompute re-armed
  // it. Allow a byte of floating-point slack.
  IDR_REQUIRE(f.remaining <= 1.0 + 1e-6 * f.size,
              "on_completion: flow not actually drained");
  FlowStats stats;
  stats.id = f.id;
  stats.size = f.size;
  stats.start_time = f.start;
  stats.finish_time = sim_.now();
  if (f.in_slow_start) sim_.cancel(f.ss_event);
  CompletionCallback cb = std::move(f.on_done);
  index_.remove(id, f.path.links);
  const net::Path path = std::move(f.path);
  flows_.erase(it);
  g_flows_active_.set(static_cast<double>(flows_.size()));
  reallocate_for_links(path.links);
  if (cb) cb(stats);
}

}  // namespace idr::flow
