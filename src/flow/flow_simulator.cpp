#include "flow/flow_simulator.hpp"

#include <algorithm>
#include <cmath>

#include "flow/max_min.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace idr::flow {

namespace {
// Slow-start stops ramping once its cap reaches this bound even if the
// steady-state ceiling is unbounded (lossless path): beyond it the links,
// not the window, constrain the flow.
constexpr Rate kSlowStartStopBound = 12.5e9;  // 100 Gbit/s
}  // namespace

FlowSimulator::FlowSimulator(sim::Simulator& sim, net::Topology& topo,
                             util::Rng rng)
    : sim_(sim), topo_(topo), rng_(rng) {}

void FlowSimulator::attach_capacity_process(
    net::LinkId link, std::unique_ptr<net::CapacityProcess> process) {
  IDR_REQUIRE(process != nullptr, "attach_capacity_process: null process");
  IDR_REQUIRE(!capacity_slots_.contains(link),
              "attach_capacity_process: link already has a process");
  auto [it, inserted] = capacity_slots_.emplace(
      link, CapacitySlot{std::move(process),
                         rng_.child(0x9000 + static_cast<std::uint64_t>(link)),
                         0});
  CapacitySlot& slot = it->second;
  advance_progress();
  topo_.mutable_link(link).capacity = slot.process->initial(slot.rng);
  reallocate();
  schedule_capacity_change(link);
}

void FlowSimulator::schedule_capacity_change(net::LinkId link) {
  CapacitySlot& slot = capacity_slots_.at(link);
  const net::CapacityChange change = slot.process->next(slot.rng);
  if (std::isinf(change.dwell)) return;  // process has gone quiescent
  slot.event = sim_.schedule_in(change.dwell, [this, link, change] {
    advance_progress();
    topo_.mutable_link(link).capacity = std::max(change.capacity, 1.0);
    reallocate();
    schedule_capacity_change(link);
  });
}

FlowId FlowSimulator::start_flow(const net::Path& path, Bytes size,
                                 const FlowOptions& options,
                                 CompletionCallback on_done) {
  IDR_REQUIRE(!path.empty(), "start_flow: empty path");
  IDR_REQUIRE(size > 0.0, "start_flow: non-positive size");
  IDR_REQUIRE(options.cap_scale > 0.0 && options.cap_scale <= 1.0,
              "start_flow: cap_scale outside (0,1]");

  advance_progress();

  FlowState f;
  f.id = ++next_id_;
  f.path = path;
  f.size = size;
  f.remaining = size;
  f.start = sim_.now();
  f.tcp = options.tcp;
  f.cap_scale = options.cap_scale;
  f.extra_cap = options.extra_cap;
  f.rtt = options.rtt > 0.0 ? options.rtt : topo_.path_rtt(path);
  IDR_REQUIRE(f.rtt > 0.0, "start_flow: zero RTT (add propagation delay)");
  if (options.ceiling_override > 0.0) {
    f.ceiling = options.ceiling_override;
  } else {
    const double loss =
        options.loss >= 0.0 ? options.loss : topo_.path_loss(path);
    f.ceiling = steady_state_ceiling(f.tcp, f.rtt, loss);
  }
  f.on_done = std::move(on_done);

  if (options.model_slow_start) {
    f.in_slow_start = true;
    f.ss_round = 0;
    f.ss_cap = slow_start_cap(f.tcp, f.rtt, 0);
    const FlowId id = f.id;
    f.ss_event =
        sim_.schedule_in(f.rtt, [this, id] { on_slow_start_round(id); });
  }

  const FlowId id = f.id;
  flows_.emplace(id, std::move(f));
  reallocate();
  return id;
}

void FlowSimulator::on_slow_start_round(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return;
  FlowState& f = it->second;
  advance_progress();
  ++f.ss_round;
  f.ss_cap = slow_start_cap(f.tcp, f.rtt, f.ss_round);
  const Rate stop_at = std::min(f.ceiling, kSlowStartStopBound);
  if (f.ss_cap >= stop_at) {
    f.in_slow_start = false;  // ramp complete; ceiling governs from here
  } else {
    f.ss_event =
        sim_.schedule_in(f.rtt, [this, id] { on_slow_start_round(id); });
  }
  reallocate();
}

bool FlowSimulator::cancel_flow(FlowId id) {
  const auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  advance_progress();
  FlowState& f = it->second;
  if (f.in_slow_start) sim_.cancel(f.ss_event);
  if (f.completion_armed) sim_.cancel(f.completion_event);
  flows_.erase(it);
  reallocate();
  return true;
}

Rate FlowSimulator::current_rate(FlowId id) const {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "current_rate: unknown flow");
  return it->second.rate;
}

Bytes FlowSimulator::bytes_remaining(FlowId id) const {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "bytes_remaining: unknown flow");
  const FlowState& f = it->second;
  const Duration dt = sim_.now() - last_progress_;
  return std::max(0.0, f.remaining - f.rate * dt);
}

void FlowSimulator::set_extra_cap(FlowId id, Rate cap) {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "set_extra_cap: unknown flow");
  IDR_REQUIRE(cap >= 0.0, "set_extra_cap: negative cap");
  advance_progress();
  it->second.extra_cap = cap;
  reallocate();
}

Rate FlowSimulator::effective_cap(const FlowState& f) {
  const Rate tcp_cap =
      f.in_slow_start ? std::min(f.ss_cap, f.ceiling) : f.ceiling;
  return std::min(tcp_cap * f.cap_scale, f.extra_cap);
}

void FlowSimulator::advance_progress() {
  const TimePoint now = sim_.now();
  const Duration dt = now - last_progress_;
  if (dt > 0.0) {
    for (auto& [id, f] : flows_) {
      f.remaining = std::max(0.0, f.remaining - f.rate * dt);
    }
  }
  last_progress_ = now;
}

void FlowSimulator::arm_completion(FlowState& f) {
  if (f.completion_armed) {
    sim_.cancel(f.completion_event);
    f.completion_armed = false;
  }
  if (f.rate <= 0.0) return;  // parked until capacity appears
  const Duration eta = f.remaining / f.rate;
  const FlowId id = f.id;
  f.completion_event = sim_.schedule_in(eta, [this, id] { on_completion(id); });
  f.completion_armed = true;
}

void FlowSimulator::reallocate() {
  ++reallocations_;

  std::vector<Rate> capacities(topo_.link_count());
  for (std::size_t l = 0; l < capacities.size(); ++l) {
    capacities[l] = topo_.link(static_cast<net::LinkId>(l)).capacity;
  }

  std::vector<FlowDemand> demands;
  std::vector<FlowState*> order;
  demands.reserve(flows_.size());
  order.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    FlowDemand d;
    d.links.reserve(f.path.links.size());
    for (net::LinkId l : f.path.links) d.links.push_back(l);
    d.cap = effective_cap(f);
    demands.push_back(std::move(d));
    order.push_back(&f);
  }

  const std::vector<Rate> rates = max_min_allocate(capacities, demands);
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i]->rate = rates[i];
    arm_completion(*order[i]);
  }
}

void FlowSimulator::on_completion(FlowId id) {
  const auto it = flows_.find(id);
  IDR_REQUIRE(it != flows_.end(), "on_completion: unknown flow");
  advance_progress();
  FlowState& f = it->second;
  // The event was armed for exactly remaining/rate at the then-current
  // rate; if any event fired in between, reallocate() re-armed it. Allow a
  // byte of floating-point slack.
  IDR_REQUIRE(f.remaining <= 1.0 + 1e-6 * f.size,
              "on_completion: flow not actually drained");
  FlowStats stats;
  stats.id = f.id;
  stats.size = f.size;
  stats.start_time = f.start;
  stats.finish_time = sim_.now();
  if (f.in_slow_start) sim_.cancel(f.ss_event);
  CompletionCallback cb = std::move(f.on_done);
  flows_.erase(it);
  reallocate();
  if (cb) cb(stats);
}

}  // namespace idr::flow
