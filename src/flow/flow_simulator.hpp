// Event-driven fluid ("flow-level") network simulator.
//
// Flows drain bytes over paths at their max-min fair share of link
// capacity, further capped by a per-flow TCP model (slow-start ramp and
// loss/RTT ceiling). Rates change only at discrete events — flow arrival,
// flow completion, a slow-start round boundary, or a link-capacity change —
// so completion times between events are exact, not time-stepped.
//
// This is the standard fidelity/performance point for studying transfer
// throughput over minutes-to-hours timescales: packet dynamics are
// abstracted into the TCP rate caps, while bandwidth sharing, path
// diversity and temporal variability are modelled exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/capacity_process.hpp"
#include "net/topology.hpp"
#include "flow/tcp_model.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace idr::flow {

using util::Bytes;
using util::Duration;
using util::Rate;
using util::TimePoint;

using FlowId = std::uint64_t;

/// Final accounting for a completed flow.
struct FlowStats {
  FlowId id = 0;
  Bytes size = 0.0;
  TimePoint start_time = 0.0;
  TimePoint finish_time = 0.0;

  Duration elapsed() const { return finish_time - start_time; }
  /// Bytes per second averaged over the flow's lifetime.
  Rate average_rate() const {
    return elapsed() > 0.0 ? size / elapsed() : 0.0;
  }
};

using CompletionCallback = std::function<void(const FlowStats&)>;

struct FlowOptions {
  TcpConfig tcp{};
  /// Model the slow-start ramp (per-RTT doubling of the rate cap). The
  /// probe-racing experiments depend on this; long background flows can
  /// turn it off.
  bool model_slow_start = true;
  /// RTT used by the TCP model; 0 derives 2 * path propagation delay.
  Duration rtt = 0.0;
  /// End-to-end loss for the PFTK ceiling; negative derives from the path.
  double loss = -1.0;
  /// Explicit steady-state ceiling; 0 derives min(PFTK, rwnd/RTT) from
  /// rtt/loss. A split-TCP relay transfer passes min(leg ceilings) here,
  /// since each leg recovers losses independently.
  Rate ceiling_override = 0.0;
  /// Multiplier (0, 1] applied to the TCP cap; models fixed inefficiency
  /// such as application-layer relay overhead.
  double cap_scale = 1.0;
  /// Additional absolute rate cap (e.g. imposed by a coupled relay leg).
  Rate extra_cap = kUnlimitedRate;
};

class FlowSimulator {
 public:
  /// The simulator mutates link capacities in `topo` as capacity processes
  /// fire; both references must outlive this object.
  FlowSimulator(sim::Simulator& sim, net::Topology& topo, util::Rng rng);

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  /// Attaches a time-varying capacity process to a link. Applies the
  /// process's initial capacity immediately and schedules future changes.
  void attach_capacity_process(net::LinkId link,
                               std::unique_ptr<net::CapacityProcess> process);

  /// Starts a transfer of `size` bytes along `path`. The callback fires
  /// when the last byte drains (it may start new flows). Returns a handle
  /// usable with cancel_flow()/observers while the flow is active.
  FlowId start_flow(const net::Path& path, Bytes size,
                    const FlowOptions& options, CompletionCallback on_done);

  /// Aborts an active flow without firing its callback. Returns false if
  /// the flow already finished or is unknown.
  bool cancel_flow(FlowId id);

  bool flow_active(FlowId id) const { return flows_.contains(id); }
  std::size_t active_flows() const { return flows_.size(); }

  /// Current allocated rate of an active flow.
  Rate current_rate(FlowId id) const;
  /// Bytes still to transfer, accounting for progress up to now().
  Bytes bytes_remaining(FlowId id) const;

  /// Tightens/loosens a flow's external rate cap and reallocates.
  void set_extra_cap(FlowId id, Rate cap);

  sim::Simulator& simulator() { return sim_; }
  const net::Topology& topology() const { return topo_; }

  /// Total max-min reallocation passes performed (for microbenchmarks and
  /// performance regressions).
  std::uint64_t reallocations() const { return reallocations_; }

  /// Derives a decorrelated RNG stream from this simulator's root seed;
  /// used by higher layers (e.g. the transfer engine's setup jitter) so a
  /// world stays fully determined by its construction seed.
  util::Rng derive_rng(std::uint64_t salt) const { return rng_.child(salt); }

 private:
  struct FlowState {
    FlowId id = 0;
    net::Path path;
    Bytes size = 0.0;
    Bytes remaining = 0.0;
    TimePoint start = 0.0;
    Rate rate = 0.0;
    Rate ceiling = kUnlimitedRate;  // steady-state TCP ceiling
    Rate extra_cap = kUnlimitedRate;
    double cap_scale = 1.0;
    Duration rtt = 0.0;
    bool in_slow_start = false;
    int ss_round = 0;
    Rate ss_cap = kUnlimitedRate;
    TcpConfig tcp{};
    sim::EventId ss_event = 0;
    sim::EventId completion_event = 0;
    bool completion_armed = false;
    CompletionCallback on_done;
  };

  struct CapacitySlot {
    std::unique_ptr<net::CapacityProcess> process;
    util::Rng rng;
    sim::EventId event = 0;
  };

  /// Effective cap of a flow right now (TCP ramp/ceiling, scale, external).
  static Rate effective_cap(const FlowState& f);

  /// Drains remaining bytes for time elapsed since the last accounting.
  void advance_progress();

  /// Recomputes all rates and re-arms completion events.
  void reallocate();

  void arm_completion(FlowState& f);
  void on_completion(FlowId id);
  void on_slow_start_round(FlowId id);
  void schedule_capacity_change(net::LinkId link);

  sim::Simulator& sim_;
  net::Topology& topo_;
  util::Rng rng_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::unordered_map<net::LinkId, CapacitySlot> capacity_slots_;
  TimePoint last_progress_ = 0.0;
  FlowId next_id_ = 0;
  std::uint64_t reallocations_ = 0;
};

}  // namespace idr::flow
