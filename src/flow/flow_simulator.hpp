// Event-driven fluid ("flow-level") network simulator.
//
// Flows drain bytes over paths at their max-min fair share of link
// capacity, further capped by a per-flow TCP model (slow-start ramp and
// loss/RTT ceiling). Rates change only at discrete events — flow arrival,
// flow completion, a slow-start round boundary, or a link-capacity change —
// so completion times between events are exact, not time-stepped.
//
// Reallocation is scoped, incremental and allocation-free: a link-flow
// incidence index (net::LinkUserIndex) confines each recompute to the
// connected component(s) of the constraint graph containing the changed
// flow or link. Flows in disjoint components keep their rates, byte
// accounting (per-flow lazy progress timestamps) and armed completion
// timers untouched, and a reused MaxMinWorkspace makes the steady-state
// recompute path perform zero heap allocations. Events that provably
// cannot change any rate (a slow-start ramp whose cap was not binding, a
// no-op external-cap update, an unchanged link capacity) skip the
// recompute entirely. The computed rates are identical to a from-scratch
// global allocation — max-min decomposes exactly across components.
//
// This is the standard fidelity/performance point for studying transfer
// throughput over minutes-to-hours timescales: packet dynamics are
// abstracted into the TCP rate caps, while bandwidth sharing, path
// diversity and temporal variability are modelled exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "flow/max_min.hpp"
#include "flow/tcp_model.hpp"
#include "net/capacity_process.hpp"
#include "net/link_index.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace idr::flow {

using util::Bytes;
using util::Duration;
using util::Rate;
using util::TimePoint;

using FlowId = std::uint64_t;

/// Final accounting for a completed flow.
struct FlowStats {
  FlowId id = 0;
  Bytes size = 0.0;
  TimePoint start_time = 0.0;
  TimePoint finish_time = 0.0;

  Duration elapsed() const { return finish_time - start_time; }
  /// Bytes per second averaged over the flow's lifetime.
  Rate average_rate() const {
    return elapsed() > 0.0 ? size / elapsed() : 0.0;
  }
};

using CompletionCallback = std::function<void(const FlowStats&)>;

struct FlowOptions {
  TcpConfig tcp{};
  /// Model the slow-start ramp (per-RTT doubling of the rate cap). The
  /// probe-racing experiments depend on this; long background flows can
  /// turn it off.
  bool model_slow_start = true;
  /// RTT used by the TCP model; 0 derives 2 * path propagation delay.
  Duration rtt = 0.0;
  /// End-to-end loss for the PFTK ceiling; negative derives from the path.
  double loss = -1.0;
  /// Explicit steady-state ceiling; 0 derives min(PFTK, rwnd/RTT) from
  /// rtt/loss. A split-TCP relay transfer passes min(leg ceilings) here,
  /// since each leg recovers losses independently.
  Rate ceiling_override = 0.0;
  /// Multiplier (0, 1] applied to the TCP cap; models fixed inefficiency
  /// such as application-layer relay overhead.
  double cap_scale = 1.0;
  /// Additional absolute rate cap (e.g. imposed by a coupled relay leg).
  Rate extra_cap = kUnlimitedRate;
};

class FlowSimulator {
 public:
  /// Reallocation-path performance counters (monotone totals), assembled
  /// from the `sim.flow.*` registry series. The scoped recompute makes
  /// these the primary regression guard: a change that silently reverts
  /// to global recomputes shows up as flows_touched growing with the
  /// total flow population instead of the component size.
  struct Counters {
    /// Scoped recompute passes performed (one per rate-affecting event).
    std::uint64_t reallocations = 0;
    /// Flows in the recomputed component(s), summed over reallocations.
    std::uint64_t flows_touched = 0;
    /// Progressive-filling rounds executed, summed over reallocations.
    std::uint64_t maxmin_rounds = 0;
    /// Completion timers armed or re-armed (a re-arm also cancels).
    std::uint64_t timer_rearms = 0;
    /// Events proven rate-neutral without recomputing: non-binding
    /// slow-start ramps, no-op external-cap updates, unchanged capacities.
    std::uint64_t skipped_events = 0;
  };

  /// The simulator mutates link capacities in `topo` as capacity processes
  /// fire; both references must outlive this object.
  FlowSimulator(sim::Simulator& sim, net::Topology& topo, util::Rng rng);

  FlowSimulator(const FlowSimulator&) = delete;
  FlowSimulator& operator=(const FlowSimulator&) = delete;

  /// Attaches a time-varying capacity process to a link. Applies the
  /// process's initial capacity immediately and schedules future changes.
  void attach_capacity_process(net::LinkId link,
                               std::unique_ptr<net::CapacityProcess> process);

  /// Starts a transfer of `size` bytes along `path`. The callback fires
  /// when the last byte drains (it may start new flows). Returns a handle
  /// usable with cancel_flow()/observers while the flow is active.
  FlowId start_flow(const net::Path& path, Bytes size,
                    const FlowOptions& options, CompletionCallback on_done);

  /// Aborts an active flow without firing its callback. Returns false if
  /// the flow already finished or is unknown.
  bool cancel_flow(FlowId id);

  bool flow_active(FlowId id) const { return flows_.contains(id); }
  std::size_t active_flows() const { return flows_.size(); }

  /// Current allocated rate of an active flow.
  Rate current_rate(FlowId id) const;
  /// Bytes still to transfer, accounting for progress up to now().
  Bytes bytes_remaining(FlowId id) const;

  /// Tightens/loosens a flow's external rate cap and reallocates. A cap
  /// equal to the current one is a no-op (the relay coupling re-posts
  /// unchanged caps on every leg-rate update).
  void set_extra_cap(FlowId id, Rate cap);

  sim::Simulator& simulator() { return sim_; }
  const net::Topology& topology() const { return topo_; }

  /// The world's metrics registry (Sync::None — one world, one thread).
  /// Owned here because the flow simulator sits at the bottom of every
  /// sim world; higher layers (transfer engine, probe races) register
  /// their `sim.*` series into the same registry so one snapshot covers
  /// the whole world.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  /// Optional span tracer shared across worlds/sessions; `track` is the
  /// Chrome tid spans from this world are stamped with. Null (default)
  /// and disabled tracers cost one branch per would-be span.
  void set_tracer(obs::Tracer* tracer, std::uint64_t track) {
    tracer_ = tracer;
    trace_track_ = track;
  }
  obs::Tracer* tracer() const { return tracer_; }
  std::uint64_t trace_track() const { return trace_track_; }
  /// Clock stamping this world's virtual time in trace microseconds.
  obs::TraceClock trace_clock() const;

  /// Total max-min reallocation passes performed (for microbenchmarks and
  /// performance regressions).
  std::uint64_t reallocations() const { return c_reallocations_.value(); }

  /// Reallocation-path counter set, read from the registry series.
  Counters counters() const;

  /// Reassembles a Counters set from a snapshot's `sim.flow.*` series —
  /// how sharded runs recover their flow-layer work metrics after the
  /// worlds that produced them are gone (absent series read as zero).
  static Counters counters_from(const obs::Snapshot& snapshot);

  /// Derives a decorrelated RNG stream from this simulator's root seed;
  /// used by higher layers (e.g. the transfer engine's setup jitter) so a
  /// world stays fully determined by its construction seed.
  util::Rng derive_rng(std::uint64_t salt) const { return rng_.child(salt); }

 private:
  struct FlowState {
    FlowId id = 0;
    net::Path path;
    Bytes size = 0.0;
    Bytes remaining = 0.0;
    TimePoint start = 0.0;
    /// Time `remaining` was last brought current. Progress is lazy: a flow
    /// whose rate an event leaves unchanged drains linearly, so its byte
    /// accounting and armed completion timer stay exact without touching
    /// it.
    TimePoint last_update = 0.0;
    Rate rate = 0.0;
    Rate ceiling = kUnlimitedRate;  // steady-state TCP ceiling
    Rate extra_cap = kUnlimitedRate;
    double cap_scale = 1.0;
    Duration rtt = 0.0;
    bool in_slow_start = false;
    int ss_round = 0;
    Rate ss_cap = kUnlimitedRate;
    TcpConfig tcp{};
    sim::EventId ss_event = 0;
    sim::EventId completion_event = 0;
    bool completion_armed = false;
    CompletionCallback on_done;
  };

  struct CapacitySlot {
    std::unique_ptr<net::CapacityProcess> process;
    util::Rng rng;
    /// One change event per link, armed for the slot's whole life and
    /// rescheduled in place on every dwell; `pending` carries the level
    /// the armed event will apply.
    sim::EventId event = 0;
    net::CapacityChange pending{};
    bool armed = false;
  };

  /// Effective cap of a flow right now (TCP ramp/ceiling, scale, external).
  static Rate effective_cap(const FlowState& f);

  /// Brings one flow's remaining-byte accounting current.
  void advance_flow(FlowState& f);

  /// Recomputes rates for the component(s) containing the seed flow/links
  /// and re-arms completion timers of flows whose rate changed.
  void reallocate_for_flow(FlowId id);
  void reallocate_for_links(std::span<const net::LinkId> links);
  /// Shared tail: solves for the flows/links already collected into
  /// comp_flows_/comp_links_ and applies the result.
  void reallocate_component();

  void arm_completion(FlowState& f);
  void on_completion(FlowId id);
  void on_slow_start_round(FlowId id);
  void schedule_capacity_change(net::LinkId link);
  void on_capacity_change(net::LinkId link);

  sim::Simulator& sim_;
  net::Topology& topo_;
  util::Rng rng_;
  std::unordered_map<FlowId, FlowState> flows_;
  std::unordered_map<net::LinkId, CapacitySlot> capacity_slots_;
  FlowId next_id_ = 0;

  // Incidence index plus reused recompute buffers; all steady-state
  // allocation-free once warm.
  net::LinkUserIndex index_;
  MaxMinWorkspace ws_;
  std::vector<FlowId> comp_flows_;
  std::vector<FlowState*> comp_states_;
  std::vector<net::LinkId> comp_links_;
  std::vector<std::size_t> local_link_;  // LinkId -> component-local index

  // Observability: registry cells are resolved once in the constructor;
  // every hot-path increment below is one branch plus one store.
  obs::Registry metrics_{obs::Registry::Sync::None};
  obs::Counter c_reallocations_;
  obs::Counter c_flows_touched_;
  obs::Counter c_maxmin_rounds_;
  obs::Counter c_timer_rearms_;
  obs::Counter c_skipped_events_;
  obs::Gauge g_flows_active_;
  obs::Tracer* tracer_ = nullptr;
  std::uint64_t trace_track_ = 0;
};

}  // namespace idr::flow
