// Poisson background cross-traffic.
//
// The testbed's default multiplexing model folds cross-traffic into
// time-varying link capacities (net::CapacityProcess), which is cheap and
// calibratable. This class provides the explicit alternative: finite
// background flows arrive as a Poisson process with (optionally
// heavy-tailed) sizes and compete in the max-min allocator like any other
// flow. Used by the multiplexing ablation and available to library users
// who want closed-loop interaction between foreground and cross traffic.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "flow/flow_simulator.hpp"

namespace idr::flow {

class BackgroundTrafficSource {
 public:
  struct Params {
    /// Path every background flow takes.
    net::Path path;
    /// Poisson arrival rate, flows/second.
    double arrival_rate = 0.1;
    /// Mean flow size in bytes.
    Bytes mean_size = 5e6;
    /// Pareto shape for sizes; values > 1 give a heavy tail with the
    /// requested mean. 0 selects exponential sizes instead.
    double pareto_alpha = 1.5;
    /// TCP parameters of background flows.
    TcpConfig tcp{};
    bool model_slow_start = true;
  };

  /// Does not start generating until start() is called.
  BackgroundTrafficSource(FlowSimulator& fsim, const Params& params,
                          util::Rng rng);
  ~BackgroundTrafficSource();

  BackgroundTrafficSource(const BackgroundTrafficSource&) = delete;
  BackgroundTrafficSource& operator=(const BackgroundTrafficSource&) =
      delete;

  void start();
  /// Stops new arrivals; in-flight background flows drain naturally
  /// (pass `abort_active` to cancel them too).
  void stop(bool abort_active = false);

  bool running() const { return running_; }
  std::size_t flows_started() const { return started_; }
  std::size_t flows_completed() const { return completed_; }
  std::size_t flows_active() const { return active_.size(); }

  /// Long-run offered load on the path, bytes/second
  /// (= arrival_rate * mean_size).
  Rate offered_load() const {
    return params_.arrival_rate * params_.mean_size;
  }

 private:
  void schedule_next_arrival();
  void spawn_flow();
  Bytes draw_size();

  FlowSimulator& fsim_;
  Params params_;
  util::Rng rng_;
  bool running_ = false;
  sim::EventId next_arrival_ = 0;
  /// Whether next_arrival_ refers to a live event that can be rescheduled
  /// in place (cleared by stop(); the armed event is reused across
  /// start/stop cycles only while it stays pending).
  bool arrival_armed_ = false;
  std::size_t started_ = 0;
  std::size_t completed_ = 0;
  std::unordered_set<FlowId> active_;
};

}  // namespace idr::flow
