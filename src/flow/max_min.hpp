// Max-min fair rate allocation with per-flow rate caps.
//
// Given link capacities and a set of flows (each a set of links plus an
// optional cap), computes the unique max-min fair allocation by progressive
// filling: raise a common water level; a flow is frozen when it hits its
// cap or when one of its links saturates. Exposed as a pure function so it
// can be property-tested independently of the simulator.
#pragma once

#include <cstddef>
#include <vector>

#include "util/units.hpp"

namespace idr::flow {

using util::Rate;

struct FlowDemand {
  /// Indices into the capacity vector; a flow may cross a link at most once.
  std::vector<std::size_t> links;
  /// Per-flow rate cap (slow-start ramp, TCP ceiling, relay coupling).
  /// Use kUnlimitedRate for none.
  Rate cap = 0.0;
};

/// Computes max-min fair rates. `capacities[l]` must be > 0 for every link
/// referenced by a flow. Flows with empty link sets receive their cap
/// (or 0 if the cap is unbounded — such flows are degenerate).
///
/// Postconditions (verified by tests):
///  * sum of rates on each link <= capacity (+ epsilon),
///  * every flow is bottlenecked: it either meets its cap or crosses a
///    saturated link where no other flow through that link has a higher
///    rate.
std::vector<Rate> max_min_allocate(const std::vector<Rate>& capacities,
                                   const std::vector<FlowDemand>& flows);

}  // namespace idr::flow
