// Max-min fair rate allocation with per-flow rate caps.
//
// Given link capacities and a set of flows (each a set of links plus an
// optional cap), computes the unique max-min fair allocation by progressive
// filling: raise a common water level; a flow is frozen when it hits its
// cap or when one of its links saturates. Exposed as a pure function so it
// can be property-tested independently of the simulator.
//
// Two entry points share one solver:
//  * max_min_allocate(capacities, flows) — the original convenience
//    signature (allocates its result vector; fine for tests and one-off
//    calls);
//  * max_min_allocate(MaxMinWorkspace&) — the hot path. The workspace holds
//    the problem in flat arrays (per-flow link lists are spans into one
//    shared index vector) plus all solver scratch, so a caller that reuses
//    one workspace performs zero heap allocations per solve once warm.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/units.hpp"

namespace idr::flow {

using util::Rate;

struct FlowDemand {
  /// Indices into the capacity vector; a flow may cross a link at most once.
  std::vector<std::size_t> links;
  /// Per-flow rate cap (slow-start ramp, TCP ceiling, relay coupling).
  /// Use kUnlimitedRate for none.
  Rate cap = 0.0;
};

/// Flat-array problem + scratch storage for the allocator. Fill `avail`
/// with link capacities, append flows with add_flow()/add_link(), call
/// max_min_allocate(ws), read `rate`. clear() resets the problem but keeps
/// every vector's storage, so steady-state reuse never allocates.
struct MaxMinWorkspace {
  // --- Problem (caller fills before each solve) ---
  /// Per-link capacity on entry; residual capacity after the solve.
  std::vector<Rate> avail;
  /// Per-flow rate cap (kUnlimitedRate for none).
  std::vector<Rate> cap;
  /// Flattened per-flow link lists: flow f's links are
  /// links[offset[f] .. offset[f+1]) (the last span ends at links.size()).
  std::vector<std::size_t> links;
  std::vector<std::size_t> offset;

  // --- Result ---
  std::vector<Rate> rate;

  // --- Diagnostics ---
  /// Progressive-filling rounds executed by the last solve.
  std::uint64_t rounds = 0;

  std::size_t flow_count() const { return cap.size(); }

  /// Starts a new flow; its links are then appended with add_link().
  void add_flow(Rate flow_cap) {
    cap.push_back(flow_cap);
    offset.push_back(links.size());
  }
  void add_link(std::size_t link) { links.push_back(link); }

  /// Drops the problem (and result) but keeps allocated storage.
  void clear() {
    avail.clear();
    cap.clear();
    links.clear();
    offset.clear();
  }

  // --- Solver scratch (managed by max_min_allocate) ---
  std::vector<std::size_t> active;        // per link: unfixed flows crossing it
  std::vector<std::uint32_t> unfixed;     // ascending indices of unfrozen flows
  std::vector<std::uint32_t> cap_order;   // flow indices sorted by (cap, index)
  std::vector<std::uint32_t> active_links;
  std::vector<std::uint32_t> sat_list;    // links saturated this round
  std::vector<unsigned char> fixed;
  std::vector<unsigned char> saturated;
};

/// Solves the problem described by `ws` in place (see MaxMinWorkspace).
/// Semantics and postconditions are identical to the vector signature
/// below; rates are bitwise-equal to what it returns for the same problem.
void max_min_allocate(MaxMinWorkspace& ws);

/// Computes max-min fair rates. `capacities[l]` must be > 0 for every link
/// referenced by a flow. Flows with empty link sets receive their cap
/// (or 0 if the cap is unbounded — such flows are degenerate).
///
/// Postconditions (verified by tests):
///  * sum of rates on each link <= capacity (+ epsilon),
///  * every flow is bottlenecked: it either meets its cap or crosses a
///    saturated link where no other flow through that link has a higher
///    rate.
std::vector<Rate> max_min_allocate(const std::vector<Rate>& capacities,
                                   const std::vector<FlowDemand>& flows);

}  // namespace idr::flow
