// Flow-level TCP throughput model.
//
// A bulk TCP transfer's rate is modelled as the minimum of three terms:
//   1. its max-min fair share of path capacity (computed by the allocator),
//   2. the loss/RTT steady-state ceiling (PFTK formula, Padhye et al.),
//   3. a slow-start ramp: cwnd doubles each RTT from an initial window.
// The paper's probe size x = 100 KB exists precisely to get past (3), so
// the ramp is modelled explicitly rather than folded into a startup delay.
#pragma once

#include <limits>

#include "util/units.hpp"

namespace idr::flow {

using util::Bytes;
using util::Duration;
using util::Rate;

struct TcpConfig {
  Bytes mss = 1460.0;
  /// Initial congestion window (RFC 3390-era two segments; the paper's
  /// measurements predate IW10).
  double initial_window_segments = 2.0;
  /// Retransmission timeout used by the PFTK ceiling.
  Duration rto = 0.2;
  /// Receiver window; caps the rate at rwnd/RTT. 64 KB was the common
  /// un-scaled default on 2005-era PlanetLab hosts, but window scaling was
  /// widespread, so the library defaults to a larger value.
  Bytes receiver_window = 1024.0 * 1024.0;
};

/// PFTK steady-state throughput ceiling in bytes/second; +infinity when the
/// loss rate is zero. `loss` in [0, 1).
Rate pftk_ceiling(const TcpConfig& cfg, Duration rtt, double loss);

/// Receiver-window ceiling: rwnd / rtt (infinite for rtt == 0).
Rate rwnd_ceiling(const TcpConfig& cfg, Duration rtt);

/// Combined steady-state ceiling: min(PFTK, rwnd/RTT).
Rate steady_state_ceiling(const TcpConfig& cfg, Duration rtt, double loss);

/// Rate cap during slow-start round `k` (0-based): the sender can emit at
/// most cwnd_k / RTT where cwnd_k = initial_window * 2^k segments.
Rate slow_start_cap(const TcpConfig& cfg, Duration rtt, int round);

/// Number of slow-start rounds before the ramp cap reaches `target`
/// (i.e. the smallest k with slow_start_cap(k) >= target). Saturates at a
/// small bound since the cap doubles each round.
int rounds_to_reach(const TcpConfig& cfg, Duration rtt, Rate target);

inline constexpr Rate kUnlimitedRate = std::numeric_limits<Rate>::infinity();

}  // namespace idr::flow
