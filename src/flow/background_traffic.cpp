#include "flow/background_traffic.hpp"

#include "util/error.hpp"

namespace idr::flow {

BackgroundTrafficSource::BackgroundTrafficSource(FlowSimulator& fsim,
                                                 const Params& params,
                                                 util::Rng rng)
    : fsim_(fsim), params_(params), rng_(rng) {
  IDR_REQUIRE(!params_.path.empty(), "background traffic: empty path");
  IDR_REQUIRE(params_.arrival_rate > 0.0,
              "background traffic: non-positive arrival rate");
  IDR_REQUIRE(params_.mean_size > 0.0,
              "background traffic: non-positive mean size");
  IDR_REQUIRE(params_.pareto_alpha == 0.0 || params_.pareto_alpha > 1.0,
              "background traffic: pareto alpha must be > 1 (finite mean) "
              "or 0 for exponential sizes");
}

BackgroundTrafficSource::~BackgroundTrafficSource() {
  stop(/*abort_active=*/true);
}

void BackgroundTrafficSource::start() {
  if (running_) return;
  running_ = true;
  schedule_next_arrival();
}

void BackgroundTrafficSource::stop(bool abort_active) {
  if (running_) {
    fsim_.simulator().cancel(next_arrival_);
    arrival_armed_ = false;
    running_ = false;
  }
  if (abort_active) {
    // cancel_flow mutates active_ indirectly only via our completion
    // callback, which will not run for cancelled flows; safe to iterate
    // over a copy.
    const auto flows = active_;
    for (FlowId id : flows) fsim_.cancel_flow(id);
    active_.clear();
  }
}

Bytes BackgroundTrafficSource::draw_size() {
  if (params_.pareto_alpha == 0.0) {
    return rng_.exponential(params_.mean_size);
  }
  // Pareto(x_m, alpha) has mean x_m * alpha / (alpha - 1); solve x_m for
  // the requested mean.
  const double alpha = params_.pareto_alpha;
  const double x_m = params_.mean_size * (alpha - 1.0) / alpha;
  return rng_.pareto(x_m, alpha);
}

void BackgroundTrafficSource::schedule_next_arrival() {
  const util::Duration gap = rng_.exponential(1.0 / params_.arrival_rate);
  // One arrival event for the source's whole life: after the first
  // schedule the event rescheds itself (including from its own callback —
  // the common case), so steady-state arrivals create no new closures.
  if (arrival_armed_ &&
      fsim_.simulator().reschedule_in(next_arrival_, gap)) {
    return;
  }
  arrival_armed_ = true;
  next_arrival_ = fsim_.simulator().schedule_in(gap, [this] {
    if (!running_) return;
    spawn_flow();
    schedule_next_arrival();
  });
}

void BackgroundTrafficSource::spawn_flow() {
  FlowOptions options;
  options.tcp = params_.tcp;
  options.model_slow_start = params_.model_slow_start;
  const Bytes size = std::max(1.0, draw_size());
  ++started_;
  const FlowId id = fsim_.start_flow(
      params_.path, size, options, [this](const FlowStats& stats) {
        ++completed_;
        active_.erase(stats.id);
      });
  active_.insert(id);
}

}  // namespace idr::flow
