#include "flow/tcp_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idr::flow {

Rate pftk_ceiling(const TcpConfig& cfg, Duration rtt, double loss) {
  IDR_REQUIRE(rtt > 0.0, "pftk_ceiling: non-positive RTT");
  IDR_REQUIRE(loss >= 0.0 && loss < 1.0, "pftk_ceiling: loss outside [0,1)");
  if (loss == 0.0) return kUnlimitedRate;
  // Padhye, Firoiu, Towsley, Kurose (SIGCOMM '98), eq. (30) approximation:
  //   B(p) = MSS / (RTT*sqrt(2bp/3) + T0*min(1, 3*sqrt(3bp/8))*p*(1+32p^2))
  // with b = 1 (no delayed-ACK correction; it only shifts constants).
  const double p = loss;
  const double term_cong = rtt * std::sqrt(2.0 * p / 3.0);
  const double term_to = cfg.rto *
                         std::min(1.0, 3.0 * std::sqrt(3.0 * p / 8.0)) * p *
                         (1.0 + 32.0 * p * p);
  return cfg.mss / (term_cong + term_to);
}

Rate rwnd_ceiling(const TcpConfig& cfg, Duration rtt) {
  IDR_REQUIRE(rtt > 0.0, "rwnd_ceiling: non-positive RTT");
  return cfg.receiver_window / rtt;
}

Rate steady_state_ceiling(const TcpConfig& cfg, Duration rtt, double loss) {
  return std::min(pftk_ceiling(cfg, rtt, loss), rwnd_ceiling(cfg, rtt));
}

Rate slow_start_cap(const TcpConfig& cfg, Duration rtt, int round) {
  IDR_REQUIRE(rtt > 0.0, "slow_start_cap: non-positive RTT");
  IDR_REQUIRE(round >= 0, "slow_start_cap: negative round");
  const double cwnd_bytes =
      cfg.initial_window_segments * cfg.mss * std::pow(2.0, round);
  return cwnd_bytes / rtt;
}

int rounds_to_reach(const TcpConfig& cfg, Duration rtt, Rate target) {
  // cwnd doubles per round, so even a 100 Gbps target is reached within
  // ~40 rounds; bound defensively.
  constexpr int kMaxRounds = 64;
  for (int k = 0; k < kMaxRounds; ++k) {
    if (slow_start_cap(cfg, rtt, k) >= target) return k;
  }
  return kMaxRounds;
}

}  // namespace idr::flow
