#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idr::fault {

namespace {

/// Appends alternating up/down intervals for one target. The stream is a
/// renewal process: exponential uptime (mtbf), exponential downtime
/// (mttr), truncated at the horizon.
void generate_windows(std::size_t target, Duration mtbf, Duration mttr,
                      Duration horizon, util::Rng rng,
                      std::vector<FaultWindow>& out) {
  if (mtbf <= 0.0) return;
  TimePoint t = rng.exponential(mtbf);
  while (t < horizon) {
    const Duration down = std::max(1e-3, rng.exponential(mttr));
    FaultWindow w;
    w.target = target;
    w.start = t;
    w.end = std::min(t + down, static_cast<TimePoint>(horizon));
    out.push_back(w);
    t = w.end + rng.exponential(mtbf);
  }
}

/// Appends a Poisson stream of transient resets for one target.
void generate_resets(std::size_t target, Duration mtbf, Duration horizon,
                     util::Rng rng, std::vector<FaultReset>& out) {
  if (mtbf <= 0.0) return;
  TimePoint t = rng.exponential(mtbf);
  while (t < horizon) {
    out.push_back(FaultReset{target, t});
    t += rng.exponential(mtbf);
  }
}

}  // namespace

FaultSchedule FaultSchedule::generate(const FaultConfig& config,
                                      std::size_t relay_count,
                                      std::uint64_t seed) {
  FaultSchedule schedule;
  if (!config.enabled) return schedule;
  IDR_REQUIRE(config.horizon > 0.0, "FaultSchedule: non-positive horizon");
  IDR_REQUIRE(config.relay_mttr > 0.0 && config.direct_mttr > 0.0,
              "FaultSchedule: non-positive repair time");

  // Independent child streams per (target, fault kind): adding a relay or
  // enabling another fault kind never perturbs the others' timelines.
  const util::Rng root(seed);
  for (std::size_t i = 0; i < relay_count; ++i) {
    generate_windows(i, config.relay_mtbf, config.relay_mttr,
                     config.horizon, root.child(2 * i + 1),
                     schedule.windows);
    generate_resets(i, config.relay_reset_mtbf, config.horizon,
                    root.child(2 * i + 2), schedule.resets);
  }
  generate_windows(kDirectPath, config.direct_mtbf, config.direct_mttr,
                   config.horizon, root.child(0xD12EC7),
                   schedule.windows);

  std::stable_sort(schedule.windows.begin(), schedule.windows.end(),
                   [](const FaultWindow& a, const FaultWindow& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.target < b.target;
                   });
  std::stable_sort(schedule.resets.begin(), schedule.resets.end(),
                   [](const FaultReset& a, const FaultReset& b) {
                     if (a.time != b.time) return a.time < b.time;
                     return a.target < b.target;
                   });
  return schedule;
}

Duration backoff_delay(const RetryPolicy& policy, std::size_t retry_index,
                       util::Rng& rng) {
  IDR_REQUIRE(policy.base_delay >= 0.0 && policy.multiplier >= 1.0,
              "backoff_delay: invalid policy");
  Duration delay = policy.base_delay *
                   std::pow(policy.multiplier,
                            static_cast<double>(retry_index));
  delay = std::min(delay, policy.max_delay);
  if (policy.jitter_frac > 0.0 && delay > 0.0) {
    delay += rng.uniform(0.0, policy.jitter_frac * delay);
  }
  return delay;
}

}  // namespace idr::fault
