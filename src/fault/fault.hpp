// Deterministic fault injection — the failure model the paper's premise
// implies but its reproduction lacked: relays are unreliable, time-varying
// resources that crash, stall and reset mid-transfer.
//
// The layer is split so both stacks share one vocabulary:
//   * FaultConfig / FaultSchedule — a pure, seeded description of WHEN
//     faults happen (relay crash/restart windows, direct-path outages,
//     transient mid-flow resets). Generation is a deterministic function
//     of (config, relay count, seed): the same trial seed always yields
//     the same schedule, at any thread count, on any host.
//   * RetryPolicy / backoff_delay — the shared retry state machine
//     parameters consumed by core::start_probe_race (simulated sockets)
//     and rt::start_probe_race (real epoll sockets).
// Delivery is owned by the consumers: testbed::ClientWorld replays a
// schedule into overlay::TransferEngine as simulator events; the rt stack
// injects equivalent faults through rt::FaultShim at the socket layer.
//
// With FaultConfig::enabled == false (the default) nothing is generated,
// no RNG stream is consumed and no event is scheduled, so every fault-free
// run is bitwise identical to a build without this layer.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace idr::fault {

using util::Duration;
using util::TimePoint;

/// FaultWindow/FaultReset target index meaning "the direct path" rather
/// than a relay.
inline constexpr std::size_t kDirectPath = SIZE_MAX;

/// Knobs for the synthetic failure processes. All processes are
/// independent per target; inter-arrival and repair times are exponential
/// (memoryless crashes — the standard first-order reliability model).
struct FaultConfig {
  /// Master switch. False generates an empty schedule regardless of the
  /// other knobs, consuming no randomness.
  bool enabled = false;

  /// Mean time between crashes, per relay (seconds). 0 disables crashes.
  Duration relay_mtbf = 0.0;
  /// Mean downtime of one crash (restart window length).
  Duration relay_mttr = 120.0;

  /// Mean time between transient mid-flow resets per relay (the relay
  /// process drops its connections but stays up). 0 disables.
  Duration relay_reset_mtbf = 0.0;

  /// Mean time between direct-path outages (routing flaps on the
  /// server->client path). 0 disables.
  Duration direct_mtbf = 0.0;
  Duration direct_mttr = 60.0;

  /// Length of schedule to generate, from t = 0.
  Duration horizon = 48.0 * 3600.0;
};

/// One down interval: `target` (relay index or kDirectPath) is unreachable
/// in [start, end); transfers in flight through it at `start` die with a
/// reset.
struct FaultWindow {
  std::size_t target = 0;
  TimePoint start = 0.0;
  TimePoint end = 0.0;
};

/// One transient reset: in-flight transfers through `target` die at
/// `time`, but new connections succeed immediately.
struct FaultReset {
  std::size_t target = 0;
  TimePoint time = 0.0;
};

/// A fully materialized fault timeline. Windows are sorted by start time,
/// resets by time (ties broken by target), so replaying the schedule into
/// a simulator is order-deterministic.
struct FaultSchedule {
  std::vector<FaultWindow> windows;
  std::vector<FaultReset> resets;

  bool empty() const { return windows.empty() && resets.empty(); }

  /// Deterministically expands `config` into a timeline for `relay_count`
  /// relays. Same (config, relay_count, seed) => identical schedule.
  static FaultSchedule generate(const FaultConfig& config,
                                std::size_t relay_count,
                                std::uint64_t seed);
};

/// Bounded-retry parameters shared by both probe-race implementations.
/// `max_retries` counts EXTRA attempts after the first failure, per phase
/// (remainder-on-winner, then direct fallback), so the default gives the
/// "retry once, then fall back to the direct path" semantics.
struct RetryPolicy {
  std::size_t max_retries = 1;
  /// First backoff delay; doubles (times `multiplier`) per retry.
  Duration base_delay = 0.2;
  double multiplier = 2.0;
  Duration max_delay = 5.0;
  /// Uniform jitter added on top: [0, jitter_frac * delay). Decorrelates
  /// retry storms when many sessions fail together.
  double jitter_frac = 0.5;
};

/// Delay before retry number `retry_index` (0 = first retry):
/// min(base * multiplier^retry_index, max) plus jitter drawn from `rng`.
Duration backoff_delay(const RetryPolicy& policy, std::size_t retry_index,
                       util::Rng& rng);

}  // namespace idr::fault
