#include "net/capacity_process.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace idr::net {

namespace {
constexpr Duration kNever = std::numeric_limits<Duration>::infinity();
}

ConstantCapacity::ConstantCapacity(Rate rate) : rate_(rate) {
  IDR_REQUIRE(rate_ > 0.0, "ConstantCapacity: non-positive rate");
}

Rate ConstantCapacity::initial(util::Rng&) { return rate_; }

CapacityChange ConstantCapacity::next(util::Rng&) {
  return {kNever, rate_};
}

LognormalArCapacity::LognormalArCapacity(const Params& params) : p_(params) {
  IDR_REQUIRE(p_.mean > 0.0, "LognormalArCapacity: non-positive mean");
  IDR_REQUIRE(p_.cv >= 0.0, "LognormalArCapacity: negative cv");
  IDR_REQUIRE(p_.rho >= 0.0 && p_.rho < 1.0,
              "LognormalArCapacity: rho outside [0,1)");
  IDR_REQUIRE(p_.step > 0.0, "LognormalArCapacity: non-positive step");
  if (p_.floor <= 0.0) p_.floor = p_.mean * 1e-3;
  sigma_ = std::sqrt(std::log1p(p_.cv * p_.cv));
}

Rate LognormalArCapacity::sample() const {
  // exp(z - sigma^2/2) has mean 1 when z ~ N(0, sigma^2), so the capacity
  // has mean p_.mean in stationarity.
  return std::max(p_.floor, p_.mean * std::exp(z_ - 0.5 * sigma_ * sigma_));
}

Rate LognormalArCapacity::initial(util::Rng& rng) {
  z_ = rng.normal(0.0, sigma_);  // draw from the stationary distribution
  return sample();
}

CapacityChange LognormalArCapacity::next(util::Rng& rng) {
  if (sigma_ == 0.0) return {kNever, sample()};
  const double innovation_sd =
      sigma_ * std::sqrt(std::max(0.0, 1.0 - p_.rho * p_.rho));
  z_ = p_.rho * z_ + rng.normal(0.0, innovation_sd);
  return {p_.step, sample()};
}

MarkovJumpCapacity::MarkovJumpCapacity(const Params& params) : p_(params) {
  IDR_REQUIRE(p_.base > 0.0, "MarkovJumpCapacity: non-positive base");
  IDR_REQUIRE(p_.degraded_multiplier > 0.0 && p_.degraded_multiplier <= 1.0,
              "MarkovJumpCapacity: multiplier outside (0,1]");
  IDR_REQUIRE(p_.mean_normal_dwell > 0.0 && p_.mean_degraded_dwell > 0.0,
              "MarkovJumpCapacity: non-positive dwell");
}

Rate MarkovJumpCapacity::initial(util::Rng&) {
  degraded_ = false;
  return p_.base;
}

CapacityChange MarkovJumpCapacity::next(util::Rng& rng) {
  const Duration dwell = rng.exponential(
      degraded_ ? p_.mean_degraded_dwell : p_.mean_normal_dwell);
  degraded_ = !degraded_;
  const Rate cap =
      degraded_ ? p_.base * p_.degraded_multiplier : p_.base;
  return {dwell, cap};
}

ModulatedCapacity::ModulatedCapacity(
    std::unique_ptr<CapacityProcess> carrier,
    std::unique_ptr<CapacityProcess> modulator, Rate modulator_base)
    : carrier_(std::move(carrier)),
      modulator_(std::move(modulator)),
      modulator_base_(modulator_base) {
  IDR_REQUIRE(carrier_ != nullptr && modulator_ != nullptr,
              "ModulatedCapacity: null component");
  IDR_REQUIRE(modulator_base_ > 0.0,
              "ModulatedCapacity: non-positive modulator base");
}

Rate ModulatedCapacity::initial(util::Rng& rng) {
  carrier_value_ = carrier_->initial(rng);
  modulator_value_ = modulator_->initial(rng);
  carrier_pending_ = carrier_->next(rng);
  modulator_pending_ = modulator_->next(rng);
  carrier_next_ = carrier_pending_.dwell;
  modulator_next_ = modulator_pending_.dwell;
  return carrier_value_ * (modulator_value_ / modulator_base_);
}

CapacityChange ModulatedCapacity::next(util::Rng& rng) {
  const Duration dt = std::min(carrier_next_, modulator_next_);
  if (std::isinf(dt)) {
    return {kNever, carrier_value_ * (modulator_value_ / modulator_base_)};
  }
  carrier_next_ -= dt;
  modulator_next_ -= dt;
  if (carrier_next_ <= 0.0) {
    carrier_value_ = carrier_pending_.capacity;
    carrier_pending_ = carrier_->next(rng);
    carrier_next_ = carrier_pending_.dwell;
  }
  if (modulator_next_ <= 0.0) {
    modulator_value_ = modulator_pending_.capacity;
    modulator_pending_ = modulator_->next(rng);
    modulator_next_ = modulator_pending_.dwell;
  }
  return {dt, carrier_value_ * (modulator_value_ / modulator_base_)};
}

}  // namespace idr::net
