// Shortest-path routing over a Topology. The "direct" Internet path of the
// paper is modelled as the minimum-propagation-delay route; indirect paths
// are formed by concatenating the direct routes client->relay and
// relay->server (one-hop source routing at the overlay layer).
#pragma once

#include <optional>

#include "net/topology.hpp"

namespace idr::net {

/// Dijkstra by propagation delay. Returns nullopt when unreachable.
std::optional<Path> shortest_path(const Topology& topo, NodeId from,
                                  NodeId to);

/// Concatenates two paths where `first` ends at `second`'s source.
/// Throws util::Error if the junction does not match.
Path concatenate(const Topology& topo, const Path& first, const Path& second);

/// Builds the overlay indirect path client -> relay -> server from the two
/// underlying direct routes. Returns nullopt if either leg is unreachable.
std::optional<Path> via_relay(const Topology& topo, NodeId client,
                              NodeId relay, NodeId server);

}  // namespace idr::net
