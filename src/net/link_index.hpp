// Bipartite incidence index between links and opaque users.
//
// The flow simulator registers every active flow against the links it
// crosses; a rate-affecting event then only needs to recompute the
// connected component(s) of the user-link constraint graph that contain
// the changed user or link — disjoint components cannot influence each
// other's max-min allocation. The component walk is epoch-marked, so
// repeated walks reuse the same mark storage and perform no heap
// allocation once the output vectors are warm.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/topology.hpp"
#include "util/error.hpp"

namespace idr::net {

class LinkUserIndex {
 public:
  using UserId = std::uint64_t;

  /// Grows per-link storage to cover `count` links; existing data is kept.
  void ensure_links(std::size_t count);

  /// Registers a user crossing `links`. A user id may be registered once.
  void add(UserId user, std::span<const LinkId> links);

  /// Unregisters a user; `links` must match what was registered.
  void remove(UserId user, std::span<const LinkId> links);

  /// Users currently crossing `link` (unspecified order).
  const std::vector<UserId>& users_on(LinkId link) const;

  std::size_t user_count() const { return user_mark_.size(); }

  /// Collects the connected component(s) of the bipartite user-link graph
  /// containing the seeds. `links_of(user)` must return (a range over) the
  /// links registered for that user. Each member user/link is appended
  /// exactly once; the out vectors are cleared first and reused across
  /// calls without allocation once warm. Seed links need not have users;
  /// seed users must be registered.
  template <typename LinksOf>
  void collect_component(std::span<const UserId> seed_users,
                         std::span<const LinkId> seed_links,
                         LinksOf&& links_of, std::vector<UserId>& users_out,
                         std::vector<LinkId>& links_out) {
    ++epoch_;
    users_out.clear();
    links_out.clear();
    for (const UserId u : seed_users) mark_user(u, users_out);
    for (const LinkId l : seed_links) mark_link(l, links_out);
    std::size_t ui = 0;
    std::size_t li = 0;
    while (ui < users_out.size() || li < links_out.size()) {
      while (li < links_out.size()) {
        const LinkId l = links_out[li++];
        for (const UserId u : by_link_[l]) mark_user(u, users_out);
      }
      while (ui < users_out.size()) {
        const UserId u = users_out[ui++];
        for (const LinkId l : links_of(u)) mark_link(l, links_out);
      }
    }
  }

 private:
  void mark_user(UserId user, std::vector<UserId>& out) {
    const auto it = user_mark_.find(user);
    IDR_REQUIRE(it != user_mark_.end(), "LinkUserIndex: unknown user");
    if (it->second == epoch_) return;
    it->second = epoch_;
    out.push_back(user);
  }

  void mark_link(LinkId link, std::vector<LinkId>& out) {
    IDR_REQUIRE(link < link_mark_.size(), "LinkUserIndex: link out of range");
    if (link_mark_[link] == epoch_) return;
    link_mark_[link] = epoch_;
    out.push_back(link);
  }

  std::vector<std::vector<UserId>> by_link_;
  std::vector<std::uint64_t> link_mark_;
  // Mark slot per registered user; erased on remove() so the map's size
  // tracks live users, not the all-time id space.
  std::unordered_map<UserId, std::uint64_t> user_mark_;
  std::uint64_t epoch_ = 0;
};

}  // namespace idr::net
