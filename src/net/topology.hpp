// Network topology model: named nodes connected by directed links with
// capacity, propagation delay and loss rate. The flow-level simulator
// (idr::flow) treats link capacities as mutable — time-varying capacity
// processes (capacity_process.hpp) model background cross-traffic and
// statistical multiplexing without simulating individual packets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace idr::net {

using util::Bytes;
using util::Duration;
using util::Rate;

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;

inline constexpr NodeId kInvalidNode = UINT32_MAX;
inline constexpr LinkId kInvalidLink = UINT32_MAX;

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  /// Whether routes may pass *through* this node. End hosts (clients,
  /// servers, overlay relays) do not forward IP traffic — an overlay
  /// relay forwards at the application layer only, which is modelled by
  /// explicitly concatenating paths at the relay (via_relay), never by
  /// Dijkstra discovering a route through it.
  bool transit = true;
};

/// A directed link. `capacity` is the *current* available capacity seen by
/// foreground flows; capacity processes update it over time.
struct Link {
  LinkId id = kInvalidLink;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  Rate capacity = 0.0;
  Duration prop_delay = 0.0;
  double loss_rate = 0.0;  // in [0, 1); feeds the TCP throughput ceiling
};

/// A loop-free sequence of links where link[i].to == link[i+1].from.
struct Path {
  std::vector<LinkId> links;

  bool empty() const { return links.empty(); }
  std::size_t hops() const { return links.size(); }
};

class Topology {
 public:
  /// Adds a node; names must be unique and non-empty. `transit = false`
  /// marks an end host that routes may terminate at but not pass through.
  NodeId add_node(std::string name, bool transit = true);

  /// Adds a directed link.
  LinkId add_link(NodeId from, NodeId to, Rate capacity, Duration prop_delay,
                  double loss_rate = 0.0);

  /// Adds a symmetric pair of links and returns {forward, reverse}.
  std::pair<LinkId, LinkId> add_duplex(NodeId a, NodeId b, Rate capacity,
                                       Duration prop_delay,
                                       double loss_rate = 0.0);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;
  Link& mutable_link(LinkId id);

  /// Looks up a node by name; nullopt if absent.
  std::optional<NodeId> find_node(std::string_view name) const;

  /// Outgoing links of a node.
  const std::vector<LinkId>& out_links(NodeId id) const;

  /// The link from `a` to `b`, if one exists (first match).
  std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  // --- Path helpers -------------------------------------------------------

  /// Validates connectivity/endpoints; throws util::Error if malformed.
  void check_path(const Path& path, NodeId from, NodeId to) const;

  NodeId path_source(const Path& path) const;
  NodeId path_destination(const Path& path) const;

  /// Sum of per-link propagation delays.
  Duration path_delay(const Path& path) const;

  /// min over links of current capacity (the fluid bottleneck).
  Rate path_bottleneck(const Path& path) const;

  /// 1 - prod(1 - loss_i): end-to-end loss assuming independence.
  double path_loss(const Path& path) const;

  /// Round-trip time assuming a symmetric reverse path: 2 * path_delay.
  Duration path_rtt(const Path& path) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
};

}  // namespace idr::net
