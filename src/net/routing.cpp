#include "net/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/error.hpp"

namespace idr::net {

std::optional<Path> shortest_path(const Topology& topo, NodeId from,
                                  NodeId to) {
  IDR_REQUIRE(from < topo.node_count() && to < topo.node_count(),
              "shortest_path: unknown endpoint");
  IDR_REQUIRE(from != to, "shortest_path: from == to");

  const auto n = topo.node_count();
  std::vector<Duration> dist(n, std::numeric_limits<Duration>::infinity());
  std::vector<LinkId> via(n, kInvalidLink);

  using QEntry = std::pair<Duration, NodeId>;
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> heap;
  dist[from] = 0.0;
  heap.emplace(0.0, from);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[u]) continue;  // stale entry
    if (u == to) break;
    // End hosts terminate routes; only the source may originate from one.
    if (u != from && !topo.node(u).transit) continue;
    for (LinkId l : topo.out_links(u)) {
      const Link& link = topo.link(l);
      const Duration nd = d + link.prop_delay;
      if (nd < dist[link.to]) {
        dist[link.to] = nd;
        via[link.to] = l;
        heap.emplace(nd, link.to);
      }
    }
  }

  if (via[to] == kInvalidLink) return std::nullopt;

  Path path;
  for (NodeId u = to; u != from; u = topo.link(via[u]).from) {
    path.links.push_back(via[u]);
  }
  std::reverse(path.links.begin(), path.links.end());
  return path;
}

Path concatenate(const Topology& topo, const Path& first,
                 const Path& second) {
  IDR_REQUIRE(!first.empty() && !second.empty(),
              "concatenate: empty operand");
  IDR_REQUIRE(topo.path_destination(first) == topo.path_source(second),
              "concatenate: junction mismatch");
  Path joined = first;
  joined.links.insert(joined.links.end(), second.links.begin(),
                      second.links.end());
  return joined;
}

std::optional<Path> via_relay(const Topology& topo, NodeId client,
                              NodeId relay, NodeId server) {
  IDR_REQUIRE(relay != client && relay != server,
              "via_relay: relay coincides with an endpoint");
  const auto leg1 = shortest_path(topo, client, relay);
  if (!leg1) return std::nullopt;
  const auto leg2 = shortest_path(topo, relay, server);
  if (!leg2) return std::nullopt;
  return concatenate(topo, *leg1, *leg2);
}

}  // namespace idr::net
