#include "net/topology.hpp"

#include <unordered_map>

#include "util/error.hpp"

namespace idr::net {

NodeId Topology::add_node(std::string name, bool transit) {
  IDR_REQUIRE(!name.empty(), "add_node: empty name");
  IDR_REQUIRE(!find_node(name).has_value(),
              "add_node: duplicate name " + name);
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, std::move(name), transit});
  adjacency_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId from, NodeId to, Rate capacity,
                          Duration prop_delay, double loss_rate) {
  IDR_REQUIRE(from < nodes_.size() && to < nodes_.size(),
              "add_link: unknown endpoint");
  IDR_REQUIRE(from != to, "add_link: self loop");
  IDR_REQUIRE(capacity > 0.0, "add_link: non-positive capacity");
  IDR_REQUIRE(prop_delay >= 0.0, "add_link: negative delay");
  IDR_REQUIRE(loss_rate >= 0.0 && loss_rate < 1.0,
              "add_link: loss rate outside [0,1)");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, from, to, capacity, prop_delay, loss_rate});
  adjacency_[from].push_back(id);
  return id;
}

std::pair<LinkId, LinkId> Topology::add_duplex(NodeId a, NodeId b,
                                               Rate capacity,
                                               Duration prop_delay,
                                               double loss_rate) {
  const LinkId fwd = add_link(a, b, capacity, prop_delay, loss_rate);
  const LinkId rev = add_link(b, a, capacity, prop_delay, loss_rate);
  return {fwd, rev};
}

const Node& Topology::node(NodeId id) const {
  IDR_REQUIRE(id < nodes_.size(), "node: unknown id");
  return nodes_[id];
}

const Link& Topology::link(LinkId id) const {
  IDR_REQUIRE(id < links_.size(), "link: unknown id");
  return links_[id];
}

Link& Topology::mutable_link(LinkId id) {
  IDR_REQUIRE(id < links_.size(), "mutable_link: unknown id");
  return links_[id];
}

std::optional<NodeId> Topology::find_node(std::string_view name) const {
  for (const Node& n : nodes_) {
    if (n.name == name) return n.id;
  }
  return std::nullopt;
}

const std::vector<LinkId>& Topology::out_links(NodeId id) const {
  IDR_REQUIRE(id < adjacency_.size(), "out_links: unknown id");
  return adjacency_[id];
}

std::optional<LinkId> Topology::link_between(NodeId a, NodeId b) const {
  IDR_REQUIRE(a < adjacency_.size(), "link_between: unknown id");
  for (LinkId l : adjacency_[a]) {
    if (links_[l].to == b) return l;
  }
  return std::nullopt;
}

void Topology::check_path(const Path& path, NodeId from, NodeId to) const {
  IDR_REQUIRE(!path.empty(), "check_path: empty path");
  IDR_REQUIRE(path_source(path) == from, "check_path: wrong source");
  IDR_REQUIRE(path_destination(path) == to, "check_path: wrong destination");
  for (std::size_t i = 0; i + 1 < path.links.size(); ++i) {
    IDR_REQUIRE(link(path.links[i]).to == link(path.links[i + 1]).from,
                "check_path: disconnected links");
  }
}

NodeId Topology::path_source(const Path& path) const {
  IDR_REQUIRE(!path.empty(), "path_source: empty path");
  return link(path.links.front()).from;
}

NodeId Topology::path_destination(const Path& path) const {
  IDR_REQUIRE(!path.empty(), "path_destination: empty path");
  return link(path.links.back()).to;
}

Duration Topology::path_delay(const Path& path) const {
  Duration total = 0.0;
  for (LinkId l : path.links) total += link(l).prop_delay;
  return total;
}

Rate Topology::path_bottleneck(const Path& path) const {
  IDR_REQUIRE(!path.empty(), "path_bottleneck: empty path");
  Rate bottleneck = link(path.links.front()).capacity;
  for (LinkId l : path.links) {
    bottleneck = std::min(bottleneck, link(l).capacity);
  }
  return bottleneck;
}

double Topology::path_loss(const Path& path) const {
  double pass = 1.0;
  for (LinkId l : path.links) pass *= 1.0 - link(l).loss_rate;
  return 1.0 - pass;
}

Duration Topology::path_rtt(const Path& path) const {
  return 2.0 * path_delay(path);
}

}  // namespace idr::net
