// Time-varying link capacity processes.
//
// Packet-level simulation of cross-traffic is far more detail than the
// paper's phenomena need; what matters is that *available* path throughput
// varies over time, with category-dependent mean and variability, and that
// occasional jumps occur (the paper attributes its penalties to exactly
// these: path load and statistical multiplexing changing mid-transfer,
// citing He et al.). A CapacityProcess produces a piecewise-constant
// capacity sample path; the flow simulator applies each change to its link
// and reallocates rates.
#pragma once

#include <memory>
#include <utility>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace idr::net {

using util::Duration;
using util::Rate;

/// One change of a piecewise-constant capacity sample path: the current
/// value holds for `dwell`, then becomes `capacity`.
struct CapacityChange {
  Duration dwell = 0.0;
  Rate capacity = 0.0;
};

class CapacityProcess {
 public:
  virtual ~CapacityProcess() = default;

  /// Capacity at time zero. Called once, first.
  virtual Rate initial(util::Rng& rng) = 0;

  /// Next change after the current one; dwell == infinity means the
  /// capacity never changes again.
  virtual CapacityChange next(util::Rng& rng) = 0;
};

/// Fixed capacity forever.
class ConstantCapacity final : public CapacityProcess {
 public:
  explicit ConstantCapacity(Rate rate);
  Rate initial(util::Rng& rng) override;
  CapacityChange next(util::Rng& rng) override;

 private:
  Rate rate_;
};

/// Lognormal AR(1) fluctuation around a mean: every `step` seconds the
/// available capacity is resampled as mean * exp(z - sigma^2/2) where z
/// follows an AR(1) with per-step persistence `rho` and stationary standard
/// deviation `sigma` chosen so the capacity's coefficient of variation is
/// `cv`. Models smooth load variation from statistical multiplexing.
class LognormalArCapacity final : public CapacityProcess {
 public:
  struct Params {
    Rate mean = 0.0;
    double cv = 0.3;       // stationary coefficient of variation
    double rho = 0.9;      // per-step AR(1) persistence, in [0, 1)
    Duration step = 30.0;  // resample period
    Rate floor = 0.0;      // capacities are clamped to be >= floor (> 0)
  };
  explicit LognormalArCapacity(const Params& params);
  Rate initial(util::Rng& rng) override;
  CapacityChange next(util::Rng& rng) override;

 private:
  Rate sample() const;
  Params p_;
  double sigma_ = 0.0;  // stationary stddev of the log process
  double z_ = 0.0;      // current AR(1) state
};

/// Two-state Markov-modulated multiplier on a base rate: mostly "normal"
/// (multiplier 1), occasionally "degraded" (multiplier < 1) with
/// exponential dwell times. Models the abrupt throughput jumps the paper
/// observes on direct paths of high-variability clients.
class MarkovJumpCapacity final : public CapacityProcess {
 public:
  struct Params {
    Rate base = 0.0;
    double degraded_multiplier = 0.25;  // capacity while degraded
    Duration mean_normal_dwell = 20.0 * 60.0;
    Duration mean_degraded_dwell = 3.0 * 60.0;
  };
  explicit MarkovJumpCapacity(const Params& params);
  Rate initial(util::Rng& rng) override;
  CapacityChange next(util::Rng& rng) override;

 private:
  Params p_;
  bool degraded_ = false;
};

/// Product of two processes: capacity = first * (second / second_base).
/// Used to overlay jump degradation on an AR(1) fluctuation. The composite
/// emits a change whenever either component changes.
class ModulatedCapacity final : public CapacityProcess {
 public:
  /// `carrier` provides the absolute capacity; `modulator_base` normalizes
  /// the modulator so a modulator emitting `modulator_base` leaves the
  /// carrier unscaled.
  ModulatedCapacity(std::unique_ptr<CapacityProcess> carrier,
                    std::unique_ptr<CapacityProcess> modulator,
                    Rate modulator_base);
  Rate initial(util::Rng& rng) override;
  CapacityChange next(util::Rng& rng) override;

 private:
  std::unique_ptr<CapacityProcess> carrier_;
  std::unique_ptr<CapacityProcess> modulator_;
  Rate modulator_base_;
  Rate carrier_value_ = 0.0;
  Rate modulator_value_ = 0.0;
  Duration carrier_next_ = 0.0;    // time-to-change remaining, relative
  Duration modulator_next_ = 0.0;
  CapacityChange carrier_pending_{};
  CapacityChange modulator_pending_{};
};

}  // namespace idr::net
