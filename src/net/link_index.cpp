#include "net/link_index.hpp"

#include <algorithm>

namespace idr::net {

void LinkUserIndex::ensure_links(std::size_t count) {
  if (by_link_.size() < count) {
    by_link_.resize(count);
    link_mark_.resize(count, 0);
  }
}

void LinkUserIndex::add(UserId user, std::span<const LinkId> links) {
  const auto [it, inserted] = user_mark_.emplace(user, 0);
  IDR_REQUIRE(inserted, "LinkUserIndex: user already registered");
  for (const LinkId l : links) {
    IDR_REQUIRE(l < by_link_.size(), "LinkUserIndex: link out of range");
    by_link_[l].push_back(user);
  }
}

void LinkUserIndex::remove(UserId user, std::span<const LinkId> links) {
  IDR_REQUIRE(user_mark_.erase(user) == 1, "LinkUserIndex: unknown user");
  for (const LinkId l : links) {
    IDR_REQUIRE(l < by_link_.size(), "LinkUserIndex: link out of range");
    auto& users = by_link_[l];
    const auto it = std::find(users.begin(), users.end(), user);
    IDR_REQUIRE(it != users.end(), "LinkUserIndex: user not on link");
    // Swap-remove: membership order is irrelevant to component walks.
    *it = users.back();
    users.pop_back();
  }
}

const std::vector<LinkUserIndex::UserId>& LinkUserIndex::users_on(
    LinkId link) const {
  IDR_REQUIRE(link < by_link_.size(), "LinkUserIndex: link out of range");
  return by_link_[link];
}

}  // namespace idr::net
