// Windowed time-series over cumulative metric snapshots.
//
// A TimeSeries is a fixed-capacity ring of (time, Snapshot) samples pushed
// by a periodic ticker — the rt stack arms a TimerWheel, the simulator
// schedules a virtual-time event — and answers "what happened in the last
// W seconds" by diffing the newest sample against the oldest sample still
// inside the window (Snapshot::diff already has exactly the delta
// semantics we need: counters and histogram buckets subtract, gauges keep
// their latest value).
//
// The clock domain is whatever the pusher stamps: virtual seconds in sim,
// Reactor::now() seconds in rt. The series never reads a clock itself, so
// one implementation backs both `/metrics?window=<s>` on the daemons and
// the virtual-time Fig. 4 rewrite.
//
// Not internally synchronized: push and query from the owning thread (the
// reactor loop / the sim world). Copyable, so testbed results can carry
// their session's series across the parallel_map join.
#pragma once

#include <cstddef>
#include <deque>
#include <string>
#include <string_view>
#include <utility>

#include "obs/metrics.hpp"

namespace idr::obs {

class TimeSeries {
 public:
  explicit TimeSeries(std::size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Appends one cumulative sample; evicts the oldest when full. Times
  /// must be non-decreasing (same clock as every other push).
  void push(double t, Snapshot snapshot);

  std::size_t size() const { return samples_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return samples_.empty(); }
  double latest_time() const {
    return samples_.empty() ? 0.0 : samples_.back().first;
  }
  void clear() { samples_.clear(); }

  /// Delta over (approximately) the trailing `window_s` seconds: the
  /// newest sample diffed against the oldest sample with
  /// t >= latest - window_s. `samples` counts samples inside the window;
  /// fewer than two means no rate can be formed and `delta` is empty.
  /// window_s <= 0 spans the whole ring.
  struct Window {
    double duration = 0.0;     // actual span between the two samples used
    std::size_t samples = 0;
    Snapshot delta;
  };
  Window window(double window_s) const;

  /// Windowed rate of one counter or histogram-count series, per second.
  /// 0 when the series is absent or the window holds < 2 samples.
  double rate(std::string_view name, double window_s) const;

  /// Rendered window: {"window_seconds":...,"duration_seconds":...,
  /// "samples":N,"metrics":[...]} listing only series active inside the
  /// window — counters/histograms with a nonzero delta (with per-second
  /// rates, histograms also p50/p99), gauges with a nonzero value.
  std::string window_json(double window_s) const;

 private:
  std::size_t capacity_;
  std::deque<std::pair<double, Snapshot>> samples_;
};

}  // namespace idr::obs
