// Structured logging facade for the rt daemons: one call site shape,
// severity + component tags, a single output path. Routes through the
// util leveled logger so the global threshold and stderr locking stay in
// one place; lines come out as "[warn] [rt.relay] accept backoff ...".
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "util/log.hpp"

namespace idr::obs {

using Severity = util::LogLevel;

/// Emits "[severity] [component] message" through the util logger,
/// honouring the global threshold.
void log(Severity severity, std::string_view component,
         const std::string& message);

/// Per-call counterpart of IDR_WARN and friends with a component tag;
/// `expr` is only formatted when the severity clears the threshold.
#define IDR_OBS_LOG(severity, component, expr)                            \
  do {                                                                    \
    if (static_cast<int>(severity) >=                                     \
        static_cast<int>(::idr::util::log_level())) {                     \
      std::ostringstream idr_obs_oss_;                                    \
      idr_obs_oss_ << expr;                                               \
      ::idr::obs::log(severity, component, idr_obs_oss_.str());           \
    }                                                                     \
  } while (0)

}  // namespace idr::obs
