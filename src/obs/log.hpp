// Structured logging facade for the rt daemons: one call site shape,
// severity + component tags, a single output path. Routes through the
// util leveled logger so the global threshold and stderr locking stay in
// one place; lines come out as "[warn] [rt.relay] accept backoff ...".
//
// On top of the global util threshold, components can be filtered
// individually via IDR_OBS_LOG_LEVEL (read once, at first log) or
// set_log_filter (tests, tools). The spec is a comma-separated list of
// `level` (new default) and `component=level` entries, where levels are
// debug|info|warn|error|off and a component rule applies to itself and
// every dotted child — the longest matching prefix wins:
//
//   IDR_OBS_LOG_LEVEL="warn,rt.relay=debug,obs.sink=off"
//
// lets rt.relay.* chatter through at debug while everything else stays at
// warn and obs.sink goes silent. With no spec configured, behaviour is
// exactly the pre-filter one: the util global threshold alone decides.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "util/log.hpp"

namespace idr::obs {

using Severity = util::LogLevel;

/// Emits "[severity] [component] message" through the util logger when
/// `log_enabled(severity, component)` passes.
void log(Severity severity, std::string_view component,
         const std::string& message);

/// Would a message at this severity from this component be emitted?
/// Consults the component filter when one is configured, the util global
/// threshold otherwise. Exposed so call sites can guard expensive
/// argument formatting (IDR_OBS_LOG does).
bool log_enabled(Severity severity, std::string_view component);

/// Installs a filter spec programmatically (same grammar as
/// IDR_OBS_LOG_LEVEL; empty spec removes the filter and returns to the
/// global-threshold behaviour). Returns false — leaving the previous
/// filter in place — when the spec does not parse.
bool set_log_filter(std::string_view spec);

/// Per-call counterpart of IDR_WARN and friends with a component tag;
/// `expr` is only formatted when the severity clears the filter.
#define IDR_OBS_LOG(severity, component, expr)                            \
  do {                                                                    \
    if (::idr::obs::log_enabled(severity, component)) {                   \
      std::ostringstream idr_obs_oss_;                                    \
      idr_obs_oss_ << expr;                                               \
      ::idr::obs::log(severity, component, idr_obs_oss_.str());           \
    }                                                                     \
  } while (0)

}  // namespace idr::obs
