// Span tracing with pluggable clock domains.
//
// Both stacks emit the same span vocabulary (probe_race, probe_lane,
// remainder, fallback, reactor.poll, timer.reap, admission, ...) but stamp
// time from different clocks: the simulator's virtual seconds or the rt
// stack's steady_clock. TraceClock type-erases "now in microseconds" as a
// {function pointer, context} pair so the Tracer itself never links
// against either clock source.
//
// The Tracer is a sink, not a sampler: callers compute timestamps (from a
// TraceClock or explicitly) and append complete ('X') or instant ('i')
// events. Appends are mutex-guarded — testbed sessions run on
// parallel_map worker threads — behind a relaxed atomic enabled flag, so
// a disabled tracer costs one load. A null Tracer* costs one branch.
//
// Export is Chrome trace_event JSON ({"traceEvents":[...]}): load the
// file in chrome://tracing or Perfetto. `track` maps to the Chrome tid,
// giving each testbed session (or rt thread) its own row.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace idr::obs {

/// Identity of one cross-hop transfer: a 64-bit trace id shared by every
/// span the transfer produces (client, relay, origin) plus the span id of
/// the current hop. Ids are drawn from the seeded util RNG streams — sim
/// traces replay bitwise — and zero means "no context" everywhere, so a
/// default-constructed TraceContext is inert.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0; }

  /// Child context: same trace, span id derived from this span id and a
  /// caller-chosen salt via the repo-wide child_stream rule. Deterministic
  /// and collision-free across the salts one race uses.
  TraceContext child(std::uint64_t salt) const {
    std::uint64_t id = util::child_stream(span_id, salt);
    if (id == 0) id = 1;  // keep "zero = absent" unambiguous
    return TraceContext{trace_id, id};
  }
};

/// Fresh root context from an RNG stream (two draws, both forced nonzero).
TraceContext make_trace_context(util::Rng& rng);

/// 16-digit lowercase hex, zero padded — the id wire format shared by the
/// traceparent header and the Chrome export.
std::string trace_hex(std::uint64_t id);

/// Type-erased monotonic "now" in microseconds.
struct TraceClock {
  using NowFn = double (*)(const void*);
  NowFn fn = nullptr;
  const void* ctx = nullptr;

  double now_us() const { return fn != nullptr ? fn(ctx) : 0.0; }
  bool valid() const { return fn != nullptr; }

  /// Wall time from std::chrono::steady_clock, origin at first use.
  static TraceClock steady();
};

struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';          // 'X' complete, 'i' instant, 's'/'t'/'f' flow
                             // binds, 'M' metadata
  std::uint64_t pid = 1;     // Chrome pid: one box per role (client/relay/
                             // origin); 1 everywhere pre-existing callers
                             // don't care
  std::uint64_t track = 0;   // Chrome tid: one row per session/thread
  double ts_us = 0.0;
  double dur_us = 0.0;       // complete events only
  std::uint64_t flow_id = 0;     // 's'/'t'/'f' events: the flow being bound
  std::uint64_t trace_id = 0;    // cross-hop identity, folded into args
  std::uint64_t span_id = 0;
  std::uint64_t parent_span = 0;
  std::string args_json;     // pre-rendered JSON object, may be empty
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends a complete span [ts_us, ts_us + dur_us). No-op when disabled.
  /// `args_json`, if non-empty, must be a rendered JSON object and is
  /// embedded verbatim as the event's "args".
  void complete(std::string_view name, std::string_view category,
                std::uint64_t track, double ts_us, double dur_us,
                std::string args_json = {});

  /// Appends a zero-duration instant event. No-op when disabled.
  void instant(std::string_view name, std::string_view category,
               std::uint64_t track, double ts_us,
               std::string args_json = {});

  /// Appends a fully caller-built event (pid, trace ids, flow id, ...).
  /// No-op when disabled.
  void append(TraceEvent ev);

  /// Appends a flow-bind event: 's' starts a flow, 't' continues it on
  /// another row, 'f' finishes it (bound to the enclosing slice). The
  /// flow_id links binds across pids/tracks — we use the trace id, so one
  /// transfer renders as a single arrowed chain in Perfetto.
  void flow(char phase, std::string_view name, std::string_view category,
            std::uint64_t pid, std::uint64_t track, double ts_us,
            std::uint64_t flow_id);

  /// Chrome 'M' metadata: names the pid box / tid row in the viewer.
  void set_process_name(std::uint64_t pid, std::string_view name);
  void set_thread_name(std::uint64_t pid, std::uint64_t track,
                       std::string_view name);

  std::size_t size() const;
  std::vector<TraceEvent> events() const;  // copy, for tests
  void clear();

  /// Counts events whose name matches exactly (e.g. "probe_race"), for
  /// acceptance checks without parsing the export.
  std::size_t count_spans(std::string_view name) const;

  /// {"traceEvents":[...]} — chrome://tracing / Perfetto loadable.
  std::string to_chrome_json() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII span for wall-clock code paths: captures the clock at
/// construction, emits one complete event at destruction. Null tracer or
/// disabled tracer makes it free apart from the enabled() load.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(Tracer* tracer, TraceClock clock, std::string_view name,
             std::string_view category, std::uint64_t track)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        clock_(clock),
        name_(tracer_ != nullptr ? std::string(name) : std::string()),
        category_(tracer_ != nullptr ? std::string(category)
                                     : std::string()),
        track_(track),
        start_us_(tracer_ != nullptr ? clock.now_us() : 0.0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (tracer_ != nullptr) {
      tracer_->complete(name_, category_, track_, start_us_,
                        clock_.now_us() - start_us_);
    }
  }

 private:
  Tracer* tracer_ = nullptr;
  TraceClock clock_;
  std::string name_;
  std::string category_;
  std::uint64_t track_ = 0;
  double start_us_ = 0.0;
};

}  // namespace idr::obs
