// Tiny JSON utilities for the observability plane: emission helpers shared
// by the metrics and trace exporters, and a strict validator used by tests
// and the CI snapshot gate (`obs_check`) to prove exported documents parse
// without pulling a JSON library into the build.
#pragma once

#include <string>
#include <string_view>

namespace idr::obs {

/// Appends `s` as a quoted JSON string, escaping quotes, backslashes, and
/// control characters.
void json_append_string(std::string& out, std::string_view s);

/// Appends `v` in round-trippable %.17g form; non-finite values (which
/// JSON cannot represent) become `null`.
void json_append_double(std::string& out, double v);

/// Strict RFC 8259 well-formedness check of a complete document (one
/// value, nothing but whitespace after it). On failure returns false and,
/// if `error` is non-null, stores "offset N: reason".
bool json_validate(std::string_view text, std::string* error = nullptr);

}  // namespace idr::obs
