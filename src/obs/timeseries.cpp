#include "obs/timeseries.hpp"

#include "obs/json.hpp"

namespace idr::obs {

void TimeSeries::push(double t, Snapshot snapshot) {
  if (samples_.size() == capacity_) samples_.pop_front();
  samples_.emplace_back(t, std::move(snapshot));
}

TimeSeries::Window TimeSeries::window(double window_s) const {
  Window out;
  if (samples_.empty()) return out;
  const double latest = samples_.back().first;
  const double cutoff = window_s > 0.0 ? latest - window_s : -1e300;
  std::size_t base = samples_.size();  // oldest sample inside the window
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].first >= cutoff) {
      base = i;
      break;
    }
  }
  out.samples = samples_.size() - base;
  if (out.samples < 2) return out;
  out.duration = latest - samples_[base].first;
  out.delta = samples_.back().second.diff(samples_[base].second);
  return out;
}

double TimeSeries::rate(std::string_view name, double window_s) const {
  const Window w = window(window_s);
  if (w.duration <= 0.0) return 0.0;
  const MetricValue* m = w.delta.find(name);
  if (m == nullptr) return 0.0;
  return static_cast<double>(m->count) / w.duration;
}

std::string TimeSeries::window_json(double window_s) const {
  const Window w = window(window_s);
  std::string out = "{\"window_seconds\":";
  json_append_double(out, window_s);
  out += ",\"duration_seconds\":";
  json_append_double(out, w.duration);
  out += ",\"samples\":" + std::to_string(w.samples);
  out += ",\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : w.delta.metrics) {
    const bool active = m.kind == MetricKind::Gauge ? m.value != 0.0
                                                    : m.count != 0;
    if (!active) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json_append_string(out, m.name);
    switch (m.kind) {
      case MetricKind::Counter:
        out += ",\"kind\":\"counter\",\"delta\":" + std::to_string(m.count);
        out += ",\"rate\":";
        json_append_double(out, w.duration > 0.0
                                    ? static_cast<double>(m.count) /
                                          w.duration
                                    : 0.0);
        break;
      case MetricKind::Gauge:
        out += ",\"kind\":\"gauge\",\"value\":";
        json_append_double(out, m.value);
        break;
      case MetricKind::Histogram:
        out += ",\"kind\":\"histogram\",\"delta\":" +
               std::to_string(m.count);
        out += ",\"rate\":";
        json_append_double(out, w.duration > 0.0
                                    ? static_cast<double>(m.count) /
                                          w.duration
                                    : 0.0);
        out += ",\"p50\":";
        json_append_double(out, histogram_percentile(m, 0.50));
        out += ",\"p99\":";
        json_append_double(out, histogram_percentile(m, 0.99));
        break;
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

}  // namespace idr::obs
