// Per-transfer flight records: one compact phase breakdown per finished
// transfer (or served request), kept in a fixed-capacity ring.
//
// Where the metrics registry aggregates and the tracer records spans, a
// flight record answers "what happened to THAT transfer": which relay the
// race chose, whether the race was skipped on a fresh pin, how long the
// probe phase took, how many retries/fallbacks/overload rejections it
// burned, and how many bytes moved — the paper's per-transfer latency
// decomposition as data. Both probe-race implementations and the rt
// daemons fill the same record shape, so one JSONL schema covers sim
// client, rt client, relay, and origin.
//
// The ring is mutex-guarded (testbed sessions record from parallel_map
// workers; the daemons' /debug/flights reads while the loop writes) and
// drops the oldest record when full — it is a flight recorder, not a log.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace idr::obs {

struct FlightRecord {
  std::uint64_t trace_id = 0;    // 0 when the transfer carried no context
  std::string source;            // emitting role: "sim.race", "rt.race",
                                 // "rt.relay", "rt.origin", ...
  std::string peer;              // what was fetched / who asked
  double start_time = 0.0;       // emitting role's clock domain, seconds
  bool ok = false;
  bool chose_indirect = false;
  bool race_skipped = false;     // fresh pin: no probe phase at all
  bool fell_back_direct = false;
  std::int64_t relay_index = -1; // -1: direct (or not a selection record)
  double queued_delay_s = 0.0;   // admission queue wait, when known
  double probe_elapsed_s = 0.0;  // race start -> winner decided
  double total_elapsed_s = 0.0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_probe = 0; // probe-phase overhead bytes
  std::uint64_t retries = 0;
  std::uint64_t probe_failures = 0;
  std::uint64_t overload_rejections = 0;
  int status = 0;                // HTTP status for server-side records

  /// Single-line JSON object, stable field order; zero/absent numeric
  /// fields still render so the schema is fixed.
  std::string to_json() const;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(FlightRecord rec);

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }
  /// Records ever recorded, including ones the ring has since dropped.
  std::uint64_t total() const;
  void clear();

  /// The newest `n` records, oldest first (all of them when n == 0 or
  /// n >= size).
  std::vector<FlightRecord> last(std::size_t n = 0) const;

  /// Newest `n` records as JSONL, one record per line, oldest first.
  std::string to_jsonl(std::size_t n = 0) const;

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<FlightRecord> records_;
  std::uint64_t total_ = 0;
};

}  // namespace idr::obs
