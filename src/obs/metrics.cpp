#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace idr::obs {

namespace {

// Relaxed ordering throughout: series are independent monotone cells, and
// a /metrics scrape racing an increment may legitimately observe either
// side of it.
inline void add_u64(std::uint64_t* cell, std::uint64_t n, bool atomic) {
  if (atomic) {
    std::atomic_ref<std::uint64_t>(*cell).fetch_add(
        n, std::memory_order_relaxed);
  } else {
    *cell += n;
  }
}

inline std::uint64_t read_u64(const std::uint64_t* cell, bool atomic) {
  if (atomic) {
    return std::atomic_ref<const std::uint64_t>(*cell).load(
        std::memory_order_relaxed);
  }
  return *cell;
}

inline void store_f64(double* cell, double v, bool atomic) {
  if (atomic) {
    std::atomic_ref<double>(*cell).store(v, std::memory_order_relaxed);
  } else {
    *cell = v;
  }
}

inline void add_f64(double* cell, double delta, bool atomic) {
  if (atomic) {
    std::atomic_ref<double>(*cell).fetch_add(delta,
                                             std::memory_order_relaxed);
  } else {
    *cell += delta;
  }
}

inline double read_f64(const double* cell, bool atomic) {
  if (atomic) {
    return std::atomic_ref<const double>(*cell).load(
        std::memory_order_relaxed);
  }
  return *cell;
}

int octave_count(const HistogramOptions& opts) {
  // Counted by doubling rather than log2() so the octave edges used here
  // are bit-identical to the ones bucket_lower reports.
  int octaves = 0;
  for (double edge = opts.min; edge < opts.max && octaves < 1024;
       edge *= 2.0) {
    ++octaves;
  }
  return octaves;
}

std::string promql_name(std::string_view name) {
  std::string out = "idr_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "?";
}

}  // namespace

// --- Log-linear bucket math -------------------------------------------------

std::size_t histogram_bucket_count(const HistogramOptions& opts) {
  return 2 + static_cast<std::size_t>(octave_count(opts)) *
                 static_cast<std::size_t>(opts.sub_buckets);
}

double histogram_bucket_lower(const HistogramOptions& opts, std::size_t i) {
  const std::size_t count = histogram_bucket_count(opts);
  IDR_REQUIRE(i < count, "histogram_bucket_lower: index out of range");
  if (i == 0) return 0.0;  // underflow: everything below min
  if (i == count - 1) return opts.max;
  const std::size_t j = i - 1;
  const int octave = static_cast<int>(j) / opts.sub_buckets;
  const int sub = static_cast<int>(j) % opts.sub_buckets;
  return std::ldexp(opts.min, octave) *
         (1.0 + static_cast<double>(sub) / opts.sub_buckets);
}

std::size_t histogram_bucket_index(const HistogramOptions& opts, double x) {
  const std::size_t count = histogram_bucket_count(opts);
  if (!(x >= opts.min)) return 0;  // underflow; NaN lands here too
  if (x >= opts.max) return count - 1;
  int exp = 0;
  // x/min in [1, 2^octaves): frexp yields f*2^e with f in [0.5,1), so the
  // octave is e-1.
  const double ratio = x / opts.min;
  (void)std::frexp(ratio, &exp);
  int octave = exp - 1;
  const int octaves = octave_count(opts);
  octave = std::clamp(octave, 0, octaves - 1);
  const double within = std::ldexp(ratio, -octave);  // [1, 2)
  int sub = static_cast<int>((within - 1.0) *
                             static_cast<double>(opts.sub_buckets));
  sub = std::clamp(sub, 0, opts.sub_buckets - 1);
  const std::size_t i =
      1 + static_cast<std::size_t>(octave) *
              static_cast<std::size_t>(opts.sub_buckets) +
      static_cast<std::size_t>(sub);
  return std::min(i, count - 2);
}

double histogram_percentile(const MetricValue& hist, double q) {
  if (hist.kind != MetricKind::Histogram || hist.buckets.empty()) return 0.0;
  std::uint64_t total = 0;
  for (std::uint64_t b : hist.buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  const HistogramOptions& opts = hist.histogram_opts;
  const std::size_t count = hist.buckets.size();
  double cum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const double in_bucket = static_cast<double>(hist.buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket < target) {
      cum += in_bucket;
      continue;
    }
    if (i == 0) return opts.min;             // underflow: below min
    if (i == count - 1) return opts.max;     // overflow: at/above max
    const double lo = histogram_bucket_lower(opts, i);
    const double hi = (i + 1 == count - 1)
                          ? opts.max
                          : histogram_bucket_lower(opts, i + 1);
    const double frac = (target - cum) / in_bucket;
    return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
  }
  return opts.max;
}

// --- Handles ----------------------------------------------------------------

void Counter::inc(std::uint64_t n) const {
  if (cell_ == nullptr) return;
  add_u64(cell_, n, atomic_);
}

std::uint64_t Counter::value() const {
  return cell_ == nullptr ? 0 : read_u64(cell_, atomic_);
}

void Gauge::set(double v) const {
  if (cell_ == nullptr) return;
  store_f64(cell_, v, atomic_);
}

void Gauge::add(double delta) const {
  if (cell_ == nullptr) return;
  add_f64(cell_, delta, atomic_);
}

double Gauge::value() const {
  return cell_ == nullptr ? 0.0 : read_f64(cell_, atomic_);
}

void Histogram::observe(double x) const {
  if (cell_ == nullptr) return;
  const std::size_t i = histogram_bucket_index(cell_->opts, x);
  add_u64(&cell_->buckets[i], 1, atomic_);
  add_u64(&cell_->count, 1, atomic_);
  add_f64(&cell_->sum, x, atomic_);
}

std::uint64_t Histogram::count() const {
  return cell_ == nullptr ? 0 : read_u64(&cell_->count, atomic_);
}

// --- Registry ---------------------------------------------------------------

detail::Cell& Registry::resolve(std::string_view name, MetricKind kind) {
  IDR_REQUIRE(!name.empty(), "obs: empty metric name");
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    detail::Cell& cell = cells_[it->second];
    IDR_REQUIRE(cell.kind == kind,
                "obs: metric '" + std::string(name) +
                    "' re-registered as a different kind");
    return cell;
  }
  cells_.emplace_back();
  detail::Cell& cell = cells_.back();
  cell.name = std::string(name);
  cell.kind = kind;
  index_.emplace(cell.name, cells_.size() - 1);
  return cell;
}

Counter Registry::counter(std::string_view name) {
  detail::Cell& cell = resolve(name, MetricKind::Counter);
  return Counter(&cell.u64, sync_ == Sync::Atomic);
}

Gauge Registry::gauge(std::string_view name) {
  detail::Cell& cell = resolve(name, MetricKind::Gauge);
  return Gauge(&cell.f64, sync_ == Sync::Atomic);
}

Histogram Registry::histogram(std::string_view name, HistogramOptions opts) {
  IDR_REQUIRE(opts.min > 0.0 && opts.max > opts.min,
              "obs: histogram needs 0 < min < max");
  IDR_REQUIRE(opts.sub_buckets >= 1 && opts.sub_buckets <= 256,
              "obs: histogram sub_buckets out of range");
  detail::Cell& cell = resolve(name, MetricKind::Histogram);
  if (cell.histogram.buckets.empty()) {
    cell.histogram.opts = opts;
    cell.histogram.octaves = octave_count(opts);
    cell.histogram.buckets.assign(histogram_bucket_count(opts), 0);
  }
  return Histogram(&cell.histogram, sync_ == Sync::Atomic);
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return cells_.size();
}

Snapshot Registry::snapshot() const {
  const bool atomic = sync_ == Sync::Atomic;
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snap.metrics.reserve(cells_.size());
    for (const detail::Cell& cell : cells_) {
      MetricValue m;
      m.name = cell.name;
      m.kind = cell.kind;
      switch (cell.kind) {
        case MetricKind::Counter:
          m.count = read_u64(&cell.u64, atomic);
          break;
        case MetricKind::Gauge:
          m.value = read_f64(&cell.f64, atomic);
          break;
        case MetricKind::Histogram:
          m.count = read_u64(&cell.histogram.count, atomic);
          m.value = read_f64(&cell.histogram.sum, atomic);
          m.histogram_opts = cell.histogram.opts;
          m.buckets.reserve(cell.histogram.buckets.size());
          for (const std::uint64_t& b : cell.histogram.buckets) {
            m.buckets.push_back(read_u64(&b, atomic));
          }
          break;
      }
      snap.metrics.push_back(std::move(m));
    }
  }
  std::sort(snap.metrics.begin(), snap.metrics.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.name < b.name;
            });
  return snap;
}

// --- Snapshot ---------------------------------------------------------------

const MetricValue* Snapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (MetricValue& m : out.metrics) {
    const MetricValue* base = earlier.find(m.name);
    if (base == nullptr || base->kind != m.kind) continue;
    switch (m.kind) {
      case MetricKind::Counter:
        m.count -= std::min(base->count, m.count);
        break;
      case MetricKind::Gauge:
        break;  // gauges are point-in-time: keep the later value
      case MetricKind::Histogram:
        if (base->buckets.size() == m.buckets.size()) {
          for (std::size_t i = 0; i < m.buckets.size(); ++i) {
            m.buckets[i] -= std::min(base->buckets[i], m.buckets[i]);
          }
          m.count -= std::min(base->count, m.count);
          m.value -= base->value;
        }
        break;
    }
  }
  return out;
}

void Snapshot::merge(const Snapshot& other) {
  // Merge is a sorted two-pointer walk: registry snapshots are produced
  // sorted by name, and sharded runs merge thousands of them, so the
  // per-incoming-series linear scan this used to do would be quadratic in
  // the run size. Hand-built snapshots may arrive unsorted; restore the
  // invariant first (stable, so duplicate names keep their order).
  auto name_before = [](const MetricValue& a, const MetricValue& b) {
    return a.name < b.name;
  };
  if (!std::is_sorted(metrics.begin(), metrics.end(), name_before)) {
    std::stable_sort(metrics.begin(), metrics.end(), name_before);
  }
  if (other.metrics.empty()) return;
  const std::vector<MetricValue>* rhs = &other.metrics;
  std::vector<MetricValue> sorted_other;
  if (!std::is_sorted(rhs->begin(), rhs->end(), name_before)) {
    sorted_other = other.metrics;
    std::stable_sort(sorted_other.begin(), sorted_other.end(), name_before);
    rhs = &sorted_other;
  }

  auto combine = [](MetricValue& mine, const MetricValue& incoming) {
    IDR_REQUIRE(mine.kind == incoming.kind,
                "Snapshot::merge: kind mismatch for '" + mine.name + "'");
    switch (incoming.kind) {
      case MetricKind::Counter:
        mine.count += incoming.count;
        break;
      case MetricKind::Gauge:
        mine.value = incoming.value;
        break;
      case MetricKind::Histogram:
        IDR_REQUIRE(mine.buckets.size() == incoming.buckets.size(),
                    "Snapshot::merge: histogram layout mismatch for '" +
                        mine.name + "'");
        for (std::size_t i = 0; i < mine.buckets.size(); ++i) {
          mine.buckets[i] += incoming.buckets[i];
        }
        mine.count += incoming.count;
        mine.value += incoming.value;
        break;
    }
  };

  std::vector<MetricValue> merged;
  merged.reserve(metrics.size() + rhs->size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < metrics.size() && j < rhs->size()) {
    const MetricValue& a = metrics[i];
    const MetricValue& b = (*rhs)[j];
    if (a.name < b.name) {
      merged.push_back(std::move(metrics[i++]));
    } else if (b.name < a.name) {
      merged.push_back(b);
      ++j;
    } else {
      MetricValue m = std::move(metrics[i++]);
      combine(m, (*rhs)[j++]);
      // Duplicate names on the incoming side all fold into the first
      // matching cell, as the linear-scan merge did.
      while (j < rhs->size() && (*rhs)[j].name == m.name) {
        combine(m, (*rhs)[j++]);
      }
      merged.push_back(std::move(m));
    }
  }
  for (; i < metrics.size(); ++i) merged.push_back(std::move(metrics[i]));
  for (; j < rhs->size(); ++j) merged.push_back((*rhs)[j]);
  metrics = std::move(merged);
}

std::string Snapshot::to_json() const {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (!first) out += ',';
    first = false;
    out += "\n  {\"name\":";
    json_append_string(out, m.name);
    out += ",\"kind\":\"";
    out += kind_name(m.kind);
    out += '"';
    switch (m.kind) {
      case MetricKind::Counter:
        out += ",\"value\":" + std::to_string(m.count);
        break;
      case MetricKind::Gauge:
        out += ",\"value\":";
        json_append_double(out, m.value);
        break;
      case MetricKind::Histogram: {
        out += ",\"count\":" + std::to_string(m.count);
        out += ",\"sum\":";
        json_append_double(out, m.value);
        out += ",\"min\":";
        json_append_double(out, m.histogram_opts.min);
        out += ",\"max\":";
        json_append_double(out, m.histogram_opts.max);
        out += ",\"sub_buckets\":" +
               std::to_string(m.histogram_opts.sub_buckets);
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          if (i > 0) out += ',';
          out += std::to_string(m.buckets[i]);
        }
        out += ']';
        break;
      }
    }
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    const std::string name = promql_name(m.name);
    out += "# TYPE " + name + ' ' + kind_name(m.kind) + '\n';
    switch (m.kind) {
      case MetricKind::Counter:
        out += name + ' ' + std::to_string(m.count) + '\n';
        break;
      case MetricKind::Gauge: {
        out += name + ' ';
        json_append_double(out, m.value);
        out += '\n';
        break;
      }
      case MetricKind::Histogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < m.buckets.size(); ++i) {
          cumulative += m.buckets[i];
          out += name + "_bucket{le=\"";
          if (i == m.buckets.size() - 1) {
            out += "+Inf";
          } else {
            json_append_double(out,
                          histogram_bucket_lower(m.histogram_opts, i + 1));
          }
          out += "\"} " + std::to_string(cumulative) + '\n';
        }
        out += name + "_sum ";
        json_append_double(out, m.value);
        out += '\n';
        out += name + "_count " + std::to_string(m.count) + '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace idr::obs
