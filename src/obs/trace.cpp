#include "obs/trace.hpp"

#include <chrono>

#include "obs/json.hpp"

namespace idr::obs {

namespace {

double steady_now_us(const void*) {
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

}  // namespace

TraceClock TraceClock::steady() {
  // Touch the origin now so the epoch is construction time, not the time
  // of the first span.
  (void)steady_now_us(nullptr);
  return TraceClock{&steady_now_us, nullptr};
}

void Tracer::complete(std::string_view name, std::string_view category,
                      std::uint64_t track, double ts_us, double dur_us,
                      std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'X';
  ev.track = track;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::uint64_t track, double ts_us,
                     std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'i';
  ev.track = track;
  ev.ts_us = ts_us;
  ev.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::size_t Tracer::count_spans(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name) ++n;
  }
  return n;
}

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    json_append_string(out, ev.name);
    out += ",\"cat\":";
    json_append_string(out, ev.category);
    out += ",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":1,\"tid\":" + std::to_string(ev.track);
    out += ",\"ts\":";
    json_append_double(out, ev.ts_us);
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      json_append_double(out, ev.dur_us);
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (!ev.args_json.empty()) out += ",\"args\":" + ev.args_json;
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace idr::obs
