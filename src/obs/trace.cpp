#include "obs/trace.hpp"

#include <chrono>

#include "obs/json.hpp"

namespace idr::obs {

namespace {

double steady_now_us(const void*) {
  static const auto origin = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

}  // namespace

TraceClock TraceClock::steady() {
  // Touch the origin now so the epoch is construction time, not the time
  // of the first span.
  (void)steady_now_us(nullptr);
  return TraceClock{&steady_now_us, nullptr};
}

TraceContext make_trace_context(util::Rng& rng) {
  TraceContext ctx;
  do {
    ctx.trace_id = rng.engine()();
  } while (ctx.trace_id == 0);
  do {
    ctx.span_id = rng.engine()();
  } while (ctx.span_id == 0);
  return ctx;
}

std::string trace_hex(std::uint64_t id) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[id & 0xF];
    id >>= 4;
  }
  return out;
}

void Tracer::complete(std::string_view name, std::string_view category,
                      std::uint64_t track, double ts_us, double dur_us,
                      std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'X';
  ev.track = track;
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::instant(std::string_view name, std::string_view category,
                     std::uint64_t track, double ts_us,
                     std::string args_json) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = 'i';
  ev.track = track;
  ev.ts_us = ts_us;
  ev.args_json = std::move(args_json);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::append(TraceEvent ev) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::flow(char phase, std::string_view name,
                  std::string_view category, std::uint64_t pid,
                  std::uint64_t track, double ts_us,
                  std::uint64_t flow_id) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::string(name);
  ev.category = std::string(category);
  ev.phase = phase;
  ev.pid = pid;
  ev.track = track;
  ev.ts_us = ts_us;
  ev.flow_id = flow_id;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::set_process_name(std::uint64_t pid, std::string_view name) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = "process_name";
  ev.phase = 'M';
  ev.pid = pid;
  ev.args_json = "{\"name\":";
  json_append_string(ev.args_json, name);
  ev.args_json += '}';
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

void Tracer::set_thread_name(std::uint64_t pid, std::uint64_t track,
                             std::string_view name) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = "thread_name";
  ev.phase = 'M';
  ev.pid = pid;
  ev.track = track;
  ev.args_json = "{\"name\":";
  json_append_string(ev.args_json, name);
  ev.args_json += '}';
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(ev));
}

std::size_t Tracer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::size_t Tracer::count_spans(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const TraceEvent& ev : events_) {
    if (ev.name == name) ++n;
  }
  return n;
}

namespace {

// Folds the cross-hop ids into the event's args object (splicing into a
// pre-rendered args_json when both are present) so the viewer shows them
// on span selection. Returns "" when the event carries neither.
std::string render_args(const TraceEvent& ev) {
  std::string args = ev.args_json;
  if (ev.trace_id == 0) return args;
  std::string ids = "\"trace_id\":\"" + trace_hex(ev.trace_id) +
                    "\",\"span_id\":\"" + trace_hex(ev.span_id) + '"';
  if (ev.parent_span != 0) {
    ids += ",\"parent_span_id\":\"" + trace_hex(ev.parent_span) + '"';
  }
  if (args.size() < 2) return '{' + ids + '}';
  if (args.size() == 2) return '{' + ids + '}';  // args was "{}"
  args.insert(args.size() - 1, ',' + ids);
  return args;
}

}  // namespace

std::string Tracer::to_chrome_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events_) {
    if (!first) out += ',';
    first = false;
    out += "\n{\"name\":";
    json_append_string(out, ev.name);
    out += ",\"cat\":";
    json_append_string(out, ev.category);
    out += ",\"ph\":\"";
    out += ev.phase;
    out += "\",\"pid\":" + std::to_string(ev.pid);
    out += ",\"tid\":" + std::to_string(ev.track);
    out += ",\"ts\":";
    json_append_double(out, ev.ts_us);
    if (ev.phase == 'X') {
      out += ",\"dur\":";
      json_append_double(out, ev.dur_us);
    }
    if (ev.phase == 'i') out += ",\"s\":\"t\"";
    if (ev.phase == 's' || ev.phase == 't' || ev.phase == 'f') {
      out += ",\"id\":\"0x" + trace_hex(ev.flow_id) + '"';
      // Bind the finish to the enclosing slice so the arrow lands on the
      // final span instead of a synthetic point.
      if (ev.phase == 'f') out += ",\"bp\":\"e\"";
    }
    std::string args = render_args(ev);
    if (!args.empty()) out += ",\"args\":" + args;
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

}  // namespace idr::obs
