#include "obs/sink.hpp"

#include <cstdio>
#include <cstdlib>

#include "obs/log.hpp"

namespace idr::obs {

std::string out_dir() {
  const char* dir = std::getenv("IDR_OBS_OUT");
  return dir != nullptr ? std::string(dir) : std::string();
}

bool out_enabled() { return !out_dir().empty(); }

bool write_file(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    log(Severity::Error, "obs.sink", "cannot open " + path);
    return false;
  }
  const std::size_t written =
      content.empty() ? 0 : std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  if (!ok) log(Severity::Error, "obs.sink", "short write to " + path);
  return ok;
}

int dump_run(std::string_view run_name, const Snapshot& snapshot,
             const Tracer* tracer) {
  const std::string dir = out_dir();
  if (dir.empty()) return 0;
  const std::string base = dir + "/" + std::string(run_name);
  int files = 0;
  if (write_file(base + "_metrics.json", snapshot.to_json())) ++files;
  if (write_file(base + "_metrics.prom", snapshot.to_prometheus())) ++files;
  if (tracer != nullptr && tracer->size() > 0) {
    if (write_file(base + "_trace.json", tracer->to_chrome_json())) ++files;
  }
  return files;
}

bool dump_flights(std::string_view run_name, const FlightRecorder& flights) {
  const std::string dir = out_dir();
  if (dir.empty() || flights.size() == 0) return false;
  const std::string path =
      dir + "/" + std::string(run_name) + "_flights.jsonl";
  return write_file(path, flights.to_jsonl());
}

}  // namespace idr::obs
