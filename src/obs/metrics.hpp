// idr::obs — the shared observability plane of both stacks.
//
// One Registry holds every named series a component exports: monotone
// counters, point-in-time gauges, and log-linear histograms. Handles are
// resolved once at setup (a hash lookup at registration, never on a hot
// path) and are trivially-copyable pointers into slab-stable cells, so an
// increment is one predictable branch plus one store. A Registry is
// constructed for one of two concurrency regimes:
//
//   * Sync::None    — plain uint64/double cells for the single-threaded
//                     simulator worlds (an increment is `*cell += n`);
//   * Sync::Atomic  — the same cells accessed through std::atomic_ref
//                     with relaxed ordering for the rt daemons, whose
//                     /metrics endpoint reads while the loop writes.
//
// Default-constructed handles are null sinks: every operation is a no-op,
// which is how instrumentation stays compiled-in but dormant when no
// registry is wired up.
//
// Names are hierarchical dotted paths ("rt.relay.sessions_active",
// "sim.flow.realloc_rounds"); see DESIGN §9 for the naming scheme.
// Snapshots are value copies that diff, merge, and export to JSON or the
// prometheus text exposition format.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace idr::obs {

enum class MetricKind { Counter, Gauge, Histogram };

/// Log-linear bucket layout: the span [min, max) is cut into power-of-two
/// octaves, each split into `sub_buckets` equal linear slices — the
/// HdrHistogram/inspect shape: relative error bounded by 1/sub_buckets at
/// every magnitude, with a fixed bucket count chosen at registration.
/// Bucket 0 catches x < min (including zero and negatives); the last
/// bucket catches x >= max.
struct HistogramOptions {
  double min = 1e-6;
  double max = 1e6;
  int sub_buckets = 4;
};

namespace detail {

struct HistogramCell {
  HistogramOptions opts;
  int octaves = 0;                  // power-of-two spans covering [min,max)
  std::vector<std::uint64_t> buckets;  // underflow + octaves*sub + overflow
  std::uint64_t count = 0;
  double sum = 0.0;
};

struct Cell {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t u64 = 0;   // counter value
  double f64 = 0.0;        // gauge value
  HistogramCell histogram; // engaged for histograms only
};

}  // namespace detail

/// Number of buckets a histogram with these options carries, and the
/// inclusive lower edge of bucket `i` (edge of bucket 0 is -infinity by
/// convention; returned as 0). Exposed so tests can assert the log-linear
/// edge math directly.
std::size_t histogram_bucket_count(const HistogramOptions& opts);
double histogram_bucket_lower(const HistogramOptions& opts, std::size_t i);
/// Bucket index `observe(x)` lands in.
std::size_t histogram_bucket_index(const HistogramOptions& opts, double x);

struct MetricValue;

/// Quantile estimate (q in [0,1]) from an exported histogram's bucket
/// counts, linearly interpolated inside the covering bucket. Underflow
/// resolves to `min`, overflow to `max`, an empty histogram to 0. Works
/// on windowed deltas as well as cumulative snapshots — the time-series
/// sampler's "p99 over the last W seconds" is this on a diffed value.
double histogram_percentile(const MetricValue& hist, double q);

class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const;
  std::uint64_t value() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  Counter(std::uint64_t* cell, bool atomic) : cell_(cell), atomic_(atomic) {}
  std::uint64_t* cell_ = nullptr;
  bool atomic_ = false;
};

class Gauge {
 public:
  Gauge() = default;
  void set(double v) const;
  void add(double delta) const;
  double value() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  Gauge(double* cell, bool atomic) : cell_(cell), atomic_(atomic) {}
  double* cell_ = nullptr;
  bool atomic_ = false;
};

class Histogram {
 public:
  Histogram() = default;
  void observe(double x) const;
  std::uint64_t count() const;
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class Registry;
  Histogram(detail::HistogramCell* cell, bool atomic)
      : cell_(cell), atomic_(atomic) {}
  detail::HistogramCell* cell_ = nullptr;
  bool atomic_ = false;
};

/// One exported series, copied out of a registry.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;               // counter value / histogram count
  double value = 0.0;                    // gauge value / histogram sum
  std::vector<std::uint64_t> buckets;    // histograms only
  HistogramOptions histogram_opts;
};

struct Snapshot {
  std::vector<MetricValue> metrics;  // sorted by name

  const MetricValue* find(std::string_view name) const;

  /// Series delta `*this - earlier`: counters and histogram buckets
  /// subtract (series absent from `earlier` pass through); gauges keep
  /// this snapshot's value.
  Snapshot diff(const Snapshot& earlier) const;

  /// Accumulates `other` into this snapshot: counters and histogram
  /// buckets add, gauges take `other`'s value, unknown series append.
  /// Merging histograms with different bucket layouts is an error.
  void merge(const Snapshot& other);

  /// {"metrics":[{"name":...,"kind":...,...}]} — stable field order,
  /// sorted by name, newline-terminated.
  std::string to_json() const;

  /// Prometheus text exposition format: dots become underscores,
  /// histograms expand to cumulative _bucket{le="..."} series plus _sum
  /// and _count.
  std::string to_prometheus() const;

  /// Series count as an exposition consumer would see it (histograms
  /// count once).
  std::size_t series() const { return metrics.size(); }
};

class Registry {
 public:
  enum class Sync { None, Atomic };

  explicit Registry(Sync sync = Sync::None) : sync_(sync) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Registration is idempotent: the same name returns a handle to the
  /// same cell. Re-registering a name as a different kind fails.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name, HistogramOptions opts = {});

  Snapshot snapshot() const;
  std::size_t size() const;
  Sync sync() const { return sync_; }

 private:
  detail::Cell& resolve(std::string_view name, MetricKind kind);

  Sync sync_;
  mutable std::mutex mutex_;           // guards registration + snapshot
  std::deque<detail::Cell> cells_;     // deque: cell addresses are stable
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace idr::obs
