#include "obs/log.hpp"

namespace idr::obs {

void log(Severity severity, std::string_view component,
         const std::string& message) {
  if (static_cast<int>(severity) <
      static_cast<int>(util::log_level())) {
    return;
  }
  std::string line;
  line.reserve(component.size() + message.size() + 3);
  line += '[';
  line += component;
  line += "] ";
  line += message;
  util::log_message(severity, line);
}

}  // namespace idr::obs
