#include "obs/log.hpp"

#include <cstdlib>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace idr::obs {

namespace {

struct Filter {
  bool active = false;        // false: fall through to util::log_level()
  bool has_default = false;   // spec carried a bare `level` entry
  Severity default_level = Severity::Warn;
  std::vector<std::pair<std::string, Severity>> rules;
};

std::optional<Severity> parse_level(std::string_view s) {
  if (s == "debug") return Severity::Debug;
  if (s == "info") return Severity::Info;
  if (s == "warn") return Severity::Warn;
  if (s == "error") return Severity::Error;
  if (s == "off") return Severity::Off;
  return std::nullopt;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

std::optional<Filter> parse_filter(std::string_view spec) {
  Filter f;
  f.active = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::size_t end = comma == std::string_view::npos ? spec.size()
                                                            : comma;
    const std::string_view entry = trim(spec.substr(pos, end - pos));
    pos = end + 1;
    if (entry.empty()) return std::nullopt;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      const auto level = parse_level(entry);
      if (!level) return std::nullopt;
      f.has_default = true;
      f.default_level = *level;
    } else {
      const std::string_view component = trim(entry.substr(0, eq));
      const auto level = parse_level(trim(entry.substr(eq + 1)));
      if (component.empty() || !level) return std::nullopt;
      f.rules.emplace_back(std::string(component), *level);
    }
  }
  return f;
}

std::mutex g_filter_mutex;

Filter load_env_filter() {
  const char* env = std::getenv("IDR_OBS_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return Filter{};
  if (auto parsed = parse_filter(env)) return *parsed;
  util::log_message(
      Severity::Warn,
      std::string("[obs.log] ignoring malformed IDR_OBS_LOG_LEVEL: ") + env);
  return Filter{};
}

Filter& filter_state() {
  static Filter f = load_env_filter();  // env read once, at first log
  return f;
}

/// Rule "rt.relay" matches component "rt.relay" and "rt.relay.accept",
/// never "rt.relayx".
bool prefix_match(std::string_view component, std::string_view rule) {
  if (component.size() < rule.size()) return false;
  if (component.substr(0, rule.size()) != rule) return false;
  return component.size() == rule.size() ||
         component[rule.size()] == '.';
}

}  // namespace

bool log_enabled(Severity severity, std::string_view component) {
  if (severity == Severity::Off) return false;
  std::lock_guard<std::mutex> lock(g_filter_mutex);
  const Filter& f = filter_state();
  if (!f.active) {
    return static_cast<int>(severity) >=
           static_cast<int>(util::log_level());
  }
  std::size_t best = 0;
  const Severity* matched = nullptr;
  for (const auto& [comp, level] : f.rules) {
    if (prefix_match(component, comp) && comp.size() + 1 > best) {
      best = comp.size() + 1;
      matched = &level;
    }
  }
  const Severity threshold =
      matched != nullptr
          ? *matched
          : (f.has_default ? f.default_level : util::log_level());
  return static_cast<int>(severity) >= static_cast<int>(threshold);
}

bool set_log_filter(std::string_view spec) {
  if (trim(spec).empty()) {
    std::lock_guard<std::mutex> lock(g_filter_mutex);
    filter_state() = Filter{};
    return true;
  }
  auto parsed = parse_filter(spec);
  if (!parsed) return false;
  std::lock_guard<std::mutex> lock(g_filter_mutex);
  filter_state() = std::move(*parsed);
  return true;
}

void log(Severity severity, std::string_view component,
         const std::string& message) {
  if (!log_enabled(severity, component)) return;
  std::string line;
  line.reserve(component.size() + message.size() + 3);
  line += '[';
  line += component;
  line += "] ";
  line += message;
  util::log_message(severity, line);
}

}  // namespace idr::obs
