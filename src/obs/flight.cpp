#include "obs/flight.hpp"

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace idr::obs {

std::string FlightRecord::to_json() const {
  std::string out = "{\"trace_id\":\"";
  out += trace_hex(trace_id);
  out += "\",\"source\":";
  json_append_string(out, source);
  out += ",\"peer\":";
  json_append_string(out, peer);
  out += ",\"start_time\":";
  json_append_double(out, start_time);
  out += ",\"ok\":";
  out += ok ? "true" : "false";
  out += ",\"chose_indirect\":";
  out += chose_indirect ? "true" : "false";
  out += ",\"race_skipped\":";
  out += race_skipped ? "true" : "false";
  out += ",\"fell_back_direct\":";
  out += fell_back_direct ? "true" : "false";
  out += ",\"relay_index\":" + std::to_string(relay_index);
  out += ",\"queued_delay_s\":";
  json_append_double(out, queued_delay_s);
  out += ",\"probe_elapsed_s\":";
  json_append_double(out, probe_elapsed_s);
  out += ",\"total_elapsed_s\":";
  json_append_double(out, total_elapsed_s);
  out += ",\"bytes_total\":" + std::to_string(bytes_total);
  out += ",\"bytes_probe\":" + std::to_string(bytes_probe);
  out += ",\"retries\":" + std::to_string(retries);
  out += ",\"probe_failures\":" + std::to_string(probe_failures);
  out += ",\"overload_rejections\":" + std::to_string(overload_rejections);
  out += ",\"status\":" + std::to_string(status);
  out += '}';
  return out;
}

void FlightRecorder::record(FlightRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (records_.size() == capacity_) records_.pop_front();
  records_.push_back(std::move(rec));
  ++total_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_.size();
}

std::uint64_t FlightRecorder::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

std::vector<FlightRecord> FlightRecorder::last(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = records_.size();
  if (n != 0 && n < count) count = n;
  std::vector<FlightRecord> out;
  out.reserve(count);
  for (std::size_t i = records_.size() - count; i < records_.size(); ++i) {
    out.push_back(records_[i]);
  }
  return out;
}

std::string FlightRecorder::to_jsonl(std::size_t n) const {
  std::string out;
  for (const FlightRecord& rec : last(n)) {
    out += rec.to_json();
    out += '\n';
  }
  return out;
}

}  // namespace idr::obs
