// File sink for per-run observability artifacts. Benches call
// `dump_run("fig1", snapshot, &tracer)` unconditionally; when the
// IDR_OBS_OUT environment variable names a directory this writes
//   <dir>/<run>_metrics.json   (Snapshot::to_json)
//   <dir>/<run>_metrics.prom   (Snapshot::to_prometheus)
//   <dir>/<run>_trace.json     (Tracer::to_chrome_json, if a tracer was
//                               supplied and captured events)
//   <dir>/<run>_flights.jsonl  (FlightRecorder::to_jsonl, via the
//                               dump_flights companion)
// and when unset it is a no-op, so the dormant-by-default contract holds
// without call sites branching on the environment themselves.
#pragma once

#include <string>
#include <string_view>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace idr::obs {

/// Value of IDR_OBS_OUT, or empty when observability output is off.
std::string out_dir();

/// True when IDR_OBS_OUT names a directory (i.e. dump_run will write).
bool out_enabled();

/// Writes `content` to `path`, creating the file. Returns false (and
/// logs at error severity) on I/O failure rather than throwing: a broken
/// sink must never take down a run.
bool write_file(const std::string& path, std::string_view content);

/// Dumps one run's artifacts under out_dir() as described above.
/// Returns the number of files written (0 when the sink is off).
int dump_run(std::string_view run_name, const Snapshot& snapshot,
             const Tracer* tracer = nullptr);

/// Writes <dir>/<run>_flights.jsonl when the sink is on and the recorder
/// holds records. Returns true when a file was written.
bool dump_flights(std::string_view run_name, const FlightRecorder& flights);

}  // namespace idr::obs
