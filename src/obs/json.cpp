#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace idr::obs {

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

namespace {

// Recursive-descent validator. Positions are byte offsets into the input;
// depth is bounded so a pathological document can't blow the stack.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string* error = nullptr;
  static constexpr int kMaxDepth = 128;

  bool fail(const char* reason) {
    if (error != nullptr && error->empty()) {
      *error = "offset " + std::to_string(pos) + ": " + reason;
    }
    return false;
  }

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("bad literal");
    pos += word.size();
    return true;
  }

  bool string() {
    ++pos;  // opening quote
    while (true) {
      if (at_end()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (at_end()) return fail("unterminated escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (at_end() || !std::isxdigit(
                                static_cast<unsigned char>(text[pos]))) {
              return fail("bad \\u escape");
            }
          }
          ++pos;
        } else if (e == '"' || e == '\\' || e == '/' || e == 'b' ||
                   e == 'f' || e == 'n' || e == 'r' || e == 't') {
          ++pos;
        } else {
          return fail("bad escape character");
        }
      } else {
        ++pos;
      }
    }
  }

  bool digits() {
    if (at_end() || peek() < '0' || peek() > '9') return fail("digit expected");
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos;
    return true;
  }

  bool number() {
    if (peek() == '-') ++pos;
    if (at_end()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("value expected");
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    return fail("unexpected character");
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("object key expected");
      if (!string()) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("':' expected");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return fail("',' or '}' expected");
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return fail("',' or ']' expected");
    }
  }
};

}  // namespace

bool json_validate(std::string_view text, std::string* error) {
  Parser p{text, 0, error};
  if (!p.value(0)) return false;
  p.skip_ws();
  if (!p.at_end()) return p.fail("trailing garbage after document");
  return true;
}

}  // namespace idr::obs
