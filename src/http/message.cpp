#include "http/message.hpp"

#include "util/strings.hpp"

namespace idr::http {

using util::iequals;

std::string_view method_name(Method m) {
  switch (m) {
    case Method::GET: return "GET";
    case Method::HEAD: return "HEAD";
    case Method::POST: return "POST";
    case Method::PUT: return "PUT";
    case Method::DELETE: return "DELETE";
    case Method::CONNECT: return "CONNECT";
    case Method::OPTIONS: return "OPTIONS";
    case Method::TRACE: return "TRACE";
  }
  return "GET";
}

std::optional<Method> parse_method(std::string_view s) {
  static constexpr Method kAll[] = {Method::GET,     Method::HEAD,
                                    Method::POST,    Method::PUT,
                                    Method::DELETE,  Method::CONNECT,
                                    Method::OPTIONS, Method::TRACE};
  for (Method m : kAll) {
    if (s == method_name(m)) return m;
  }
  return std::nullopt;
}

void HeaderMap::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::set(std::string name, std::string value) {
  remove(name);
  add(std::move(name), std::move(value));
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const auto& [k, v] : entries_) {
    if (iequals(k, name)) return v;
  }
  return std::nullopt;
}

std::size_t HeaderMap::remove(std::string_view name) {
  const std::size_t before = entries_.size();
  std::erase_if(entries_,
                [&](const auto& kv) { return iequals(kv.first, name); });
  return before - entries_.size();
}

namespace {

std::string serialize_headers(const HeaderMap& headers,
                              const std::string& body,
                              bool force_content_length) {
  std::string out;
  bool has_length = false;
  for (std::size_t i = 0; i < headers.size(); ++i) {
    const auto& [k, v] = headers.entry(i);
    if (iequals(k, "Content-Length")) has_length = true;
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  if (!has_length && (force_content_length || !body.empty())) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace

std::string Request::serialize() const {
  std::string out(method_name(method));
  out += ' ';
  out += target;
  out += ' ';
  out += version;
  out += "\r\n";
  out += serialize_headers(headers, body, /*force_content_length=*/false);
  return out;
}

std::string Response::serialize() const {
  std::string out = version + ' ' + std::to_string(status) + ' ' + reason +
                    "\r\n";
  // Responses always carry an explicit length so the client can frame the
  // body without connection-close semantics.
  out += serialize_headers(headers, body, /*force_content_length=*/true);
  return out;
}

std::string_view default_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 206: return "Partial Content";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 416: return "Range Not Satisfiable";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    default: return "Unknown";
  }
}

std::optional<UrlParts> parse_http_url(std::string_view url) {
  constexpr std::string_view kScheme = "http://";
  if (!util::starts_with(url, kScheme)) return std::nullopt;
  url.remove_prefix(kScheme.size());
  UrlParts parts;
  const std::size_t slash = url.find('/');
  std::string_view authority =
      slash == std::string_view::npos ? url : url.substr(0, slash);
  parts.path = slash == std::string_view::npos
                   ? "/"
                   : std::string(url.substr(slash));
  const std::size_t colon = authority.find(':');
  if (colon == std::string_view::npos) {
    parts.host = std::string(authority);
  } else {
    parts.host = std::string(authority.substr(0, colon));
    const auto port = util::parse_u64(authority.substr(colon + 1));
    if (!port || *port == 0 || *port > 65535) return std::nullopt;
    parts.port = static_cast<std::uint16_t>(*port);
  }
  if (parts.host.empty()) return std::nullopt;
  return parts;
}

}  // namespace idr::http
