// HTTP/1.1 message model: just enough of RFC 7230/7233 for the paper's
// methodology — GET with Range, 200/206/416 responses, Content-Length
// framing, and forward-proxy absolute-form targets. Shared by the simulated
// overlay (which cares about Range arithmetic) and the real socket runtime
// (which also serializes/parses the wire format).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace idr::http {

enum class Method { GET, HEAD, POST, PUT, DELETE, CONNECT, OPTIONS, TRACE };

std::string_view method_name(Method m);
std::optional<Method> parse_method(std::string_view s);

/// Ordered, case-insensitive header collection. Preserves insertion order
/// (proxies should not reorder); lookups are linear — header counts are
/// tiny.
class HeaderMap {
 public:
  /// Appends a header (duplicates allowed, as on the wire).
  void add(std::string name, std::string value);
  /// Replaces all headers of `name` with a single value.
  void set(std::string name, std::string value);
  /// First value of `name`, if present.
  std::optional<std::string> get(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }
  /// Removes all headers of `name`; returns how many were removed.
  std::size_t remove(std::string_view name);

  std::size_t size() const { return entries_.size(); }
  const std::pair<std::string, std::string>& entry(std::size_t i) const {
    return entries_.at(i);
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct Request {
  Method method = Method::GET;
  /// Origin-form ("/path") or absolute-form ("http://host/path", as sent
  /// to a forward proxy).
  std::string target = "/";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  /// Serializes to the wire format (adds Content-Length when a body is
  /// present and none is set).
  std::string serialize() const;
};

struct Response {
  int status = 200;
  std::string reason = "OK";
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  std::string body;

  std::string serialize() const;
};

std::string_view default_reason(int status);

/// Splits an absolute-form target into {host, port, path}; returns nullopt
/// unless the scheme is http. "http://h:8080/x" -> {"h", 8080, "/x"}.
struct UrlParts {
  std::string host;
  std::uint16_t port = 80;
  std::string path = "/";
};
std::optional<UrlParts> parse_http_url(std::string_view url);

}  // namespace idr::http
