// Incremental HTTP/1.1 parser for requests and responses.
//
// feed() consumes bytes as they arrive from a socket (or a simulated
// stream) and transitions Headers -> Body -> Complete, or to Error with a
// diagnostic. Framing is by Content-Length; chunked transfer coding is
// deliberately rejected (the runtime never generates it, and a relay must
// not silently mis-frame what it forwards).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "http/message.hpp"

namespace idr::http {

enum class ParseState { Headers, Body, Complete, Error };

/// Limits guard a relay from memory exhaustion by a misbehaving peer.
/// Every bound is enforced incrementally, so a hostile stream is rejected
/// as soon as it crosses a limit rather than after it has been buffered.
struct ParserLimits {
  std::size_t max_start_line_bytes = 8 * 1024;
  std::size_t max_header_bytes = 64 * 1024;
  std::uint64_t max_body_bytes = 1ULL << 33;  // 8 GiB
};

namespace detail {

/// State shared by both parser directions: header-block accumulation and
/// body framing.
class ParserBase {
 public:
  ParseState state() const { return state_; }
  const std::string& error() const { return error_; }
  /// Bytes of body still expected (valid in Body state).
  std::uint64_t body_remaining() const { return body_remaining_; }

  /// Replaces the default limits; takes effect for bytes fed afterwards
  /// (callers set limits before feeding).
  void set_limits(const ParserLimits& limits) { limits_ = limits; }
  const ParserLimits& limits() const { return limits_; }

 protected:
  std::size_t feed_impl(std::string_view data);
  void to_error(std::string message);
  /// Parses the accumulated header block; implemented per direction.
  virtual bool parse_head(std::string_view head) = 0;
  virtual std::string* body_sink() = 0;
  virtual ~ParserBase() = default;

  /// Parses "Name: value" lines after the start line into `headers`, and
  /// extracts Content-Length framing. Returns false (after to_error) on
  /// malformed input.
  bool parse_header_lines(std::string_view block, HeaderMap& headers);

  void reset_base();

  ParseState state_ = ParseState::Headers;
  std::string error_;
  std::string head_buffer_;
  std::uint64_t body_remaining_ = 0;
  ParserLimits limits_{};
  bool start_line_done_ = false;
};

}  // namespace detail

class RequestParser final : public detail::ParserBase {
 public:
  /// Consumes up to one complete message from `data`; returns the number
  /// of bytes consumed (callers keep the rest for the next message).
  std::size_t feed(std::string_view data) { return feed_impl(data); }
  /// Valid once state() == Complete.
  const Request& request() const { return request_; }
  void reset();

 private:
  bool parse_head(std::string_view head) override;
  std::string* body_sink() override { return &request_.body; }
  Request request_;
};

class ResponseParser final : public detail::ParserBase {
 public:
  std::size_t feed(std::string_view data) { return feed_impl(data); }
  const Response& response() const { return response_; }
  void reset();

 private:
  bool parse_head(std::string_view head) override;
  std::string* body_sink() override { return &response_.body; }
  Response response_;
};

}  // namespace idr::http
