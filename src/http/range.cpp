#include "http/range.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace idr::http {

using util::parse_u64;
using util::trim;

std::optional<RangeSpec> parse_range_header(std::string_view value) {
  value = trim(value);
  constexpr std::string_view kUnit = "bytes=";
  if (!util::starts_with(value, kUnit)) return std::nullopt;
  value.remove_prefix(kUnit.size());
  if (value.find(',') != std::string_view::npos) {
    return std::nullopt;  // multi-range not supported
  }
  const std::size_t dash = value.find('-');
  if (dash == std::string_view::npos) return std::nullopt;
  const std::string_view lhs = trim(value.substr(0, dash));
  const std::string_view rhs = trim(value.substr(dash + 1));

  RangeSpec spec;
  if (lhs.empty()) {
    // Suffix form: bytes=-n
    const auto n = parse_u64(rhs);
    if (!n) return std::nullopt;
    spec.suffix_length = *n;
    return spec;
  }
  const auto first = parse_u64(lhs);
  if (!first) return std::nullopt;
  spec.first = *first;
  if (!rhs.empty()) {
    const auto last = parse_u64(rhs);
    if (!last) return std::nullopt;
    spec.last = *last;
  }
  return spec;
}

std::string format_range_header(const RangeSpec& spec) {
  std::string out = "bytes=";
  if (spec.suffix_length) {
    out += '-';
    out += std::to_string(*spec.suffix_length);
    return out;
  }
  out += std::to_string(spec.first.value_or(0));
  out += '-';
  if (spec.last) out += std::to_string(*spec.last);
  return out;
}

RangeSpec range_first_bytes(std::uint64_t n) {
  RangeSpec spec;
  spec.first = 0;
  spec.last = n == 0 ? 0 : n - 1;
  return spec;
}

RangeSpec range_from_offset(std::uint64_t offset) {
  RangeSpec spec;
  spec.first = offset;
  return spec;
}

RangeSpec range_suffix(std::uint64_t n) {
  RangeSpec spec;
  spec.suffix_length = n;
  return spec;
}

std::optional<ByteRange> resolve_range(const RangeSpec& spec,
                                       std::uint64_t total) {
  if (total == 0) return std::nullopt;
  if (spec.suffix_length) {
    if (*spec.suffix_length == 0) return std::nullopt;
    const std::uint64_t n = std::min(*spec.suffix_length, total);
    return ByteRange{total - n, total - 1};
  }
  if (!spec.first) return std::nullopt;
  if (*spec.first >= total) return std::nullopt;
  std::uint64_t last = total - 1;
  if (spec.last) {
    if (*spec.last < *spec.first) return std::nullopt;
    last = std::min(*spec.last, total - 1);
  }
  return ByteRange{*spec.first, last};
}

std::string format_content_range(const ByteRange& range,
                                 std::uint64_t total) {
  return "bytes " + std::to_string(range.first) + '-' +
         std::to_string(range.last) + '/' + std::to_string(total);
}

std::optional<std::pair<ByteRange, std::uint64_t>> parse_content_range(
    std::string_view value) {
  value = trim(value);
  constexpr std::string_view kUnit = "bytes ";
  if (!util::starts_with(value, kUnit)) return std::nullopt;
  value.remove_prefix(kUnit.size());
  const std::size_t dash = value.find('-');
  const std::size_t slash = value.find('/');
  if (dash == std::string_view::npos || slash == std::string_view::npos ||
      dash > slash) {
    return std::nullopt;
  }
  const auto first = parse_u64(trim(value.substr(0, dash)));
  const auto last = parse_u64(trim(value.substr(dash + 1, slash - dash - 1)));
  const auto total = parse_u64(trim(value.substr(slash + 1)));
  if (!first || !last || !total) return std::nullopt;
  if (*last < *first || *last >= *total) return std::nullopt;
  return std::make_pair(ByteRange{*first, *last}, *total);
}

}  // namespace idr::http
