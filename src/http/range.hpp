// RFC 7233 byte-range subset: single ranges only, which is all the paper's
// methodology needs ("Range: bytes=0-102399" for the probe, then
// "bytes=102400-" for the remainder).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace idr::http {

/// A resolved byte range: inclusive [first, last], as in Content-Range.
struct ByteRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;

  std::uint64_t length() const { return last - first + 1; }
  bool operator==(const ByteRange&) const = default;
};

/// A range spec as sent by the client, before resolution against the
/// representation length. Exactly one of the three forms:
///   bytes=a-b   (both set),  bytes=a-  (only first),  bytes=-n  (suffix)
struct RangeSpec {
  std::optional<std::uint64_t> first;
  std::optional<std::uint64_t> last;
  std::optional<std::uint64_t> suffix_length;

  bool operator==(const RangeSpec&) const = default;
};

/// Parses a Range header value ("bytes=100-199"). Returns nullopt for
/// other units, multi-range lists, or malformed input.
std::optional<RangeSpec> parse_range_header(std::string_view value);

/// Formats the header value for a spec ("bytes=100-199").
std::string format_range_header(const RangeSpec& spec);

/// Convenience constructors.
RangeSpec range_first_bytes(std::uint64_t n);          // bytes=0-(n-1)
RangeSpec range_from_offset(std::uint64_t offset);     // bytes=offset-
RangeSpec range_suffix(std::uint64_t n);               // bytes=-n

/// Resolves a spec against a representation of `total` bytes per RFC 7233
/// §2.1. Returns nullopt when unsatisfiable (first >= total, or a suffix
/// of 0, or an inverted a-b).
std::optional<ByteRange> resolve_range(const RangeSpec& spec,
                                       std::uint64_t total);

/// Formats "bytes first-last/total" for Content-Range.
std::string format_content_range(const ByteRange& range, std::uint64_t total);

/// Parses a Content-Range value; returns {range, total}. Rejects the
/// unknown-length form "bytes a-b/*".
std::optional<std::pair<ByteRange, std::uint64_t>> parse_content_range(
    std::string_view value);

}  // namespace idr::http
