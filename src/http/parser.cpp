#include "http/parser.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace idr::http {

namespace detail {

void ParserBase::to_error(std::string message) {
  state_ = ParseState::Error;
  error_ = std::move(message);
}

void ParserBase::reset_base() {
  state_ = ParseState::Headers;
  error_.clear();
  head_buffer_.clear();
  body_remaining_ = 0;
  start_line_done_ = false;
}

std::size_t ParserBase::feed_impl(std::string_view data) {
  std::size_t consumed = 0;

  if (state_ == ParseState::Headers) {
    // Accumulate until the blank line. Search spans the buffer/new-data
    // boundary, so keep it simple: append incrementally and look back.
    // Limits are checked per byte so a hostile sender is cut off at the
    // bound, not after buffering an arbitrary prefix.
    while (consumed < data.size()) {
      const char byte = data[consumed++];
      if (byte == '\0') {
        to_error("NUL byte in header block");
        return consumed;
      }
      head_buffer_.push_back(byte);
      if (!start_line_done_) {
        if (byte == '\n') {
          start_line_done_ = true;
        } else if (head_buffer_.size() > limits_.max_start_line_bytes) {
          to_error("start line exceeds limit");
          return consumed;
        }
      }
      if (head_buffer_.size() > limits_.max_header_bytes) {
        to_error("header block exceeds limit");
        return consumed;
      }
      if (head_buffer_.size() >= 4 &&
          head_buffer_.compare(head_buffer_.size() - 4, 4, "\r\n\r\n") == 0) {
        const std::string_view head(head_buffer_.data(),
                                    head_buffer_.size() - 4);
        if (!parse_head(head)) return consumed;  // parse_head set Error
        state_ = body_remaining_ > 0 ? ParseState::Body : ParseState::Complete;
        break;
      }
    }
    if (state_ == ParseState::Headers) return consumed;  // need more bytes
  }

  if (state_ == ParseState::Body) {
    const std::size_t take = static_cast<std::size_t>(std::min<std::uint64_t>(
        body_remaining_, data.size() - consumed));
    body_sink()->append(data.substr(consumed, take));
    consumed += take;
    body_remaining_ -= take;
    if (body_remaining_ == 0) state_ = ParseState::Complete;
  }

  return consumed;
}

bool ParserBase::parse_header_lines(std::string_view block,
                                    HeaderMap& headers) {
  // `block` is everything after the start line, lines split by CRLF.
  std::size_t pos = 0;
  while (pos < block.size()) {
    std::size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    const std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      to_error("malformed header line");
      return false;
    }
    const std::string_view name = util::trim(line.substr(0, colon));
    const std::string_view value = util::trim(line.substr(colon + 1));
    if (name.empty()) {
      to_error("empty header name");
      return false;
    }
    headers.add(std::string(name), std::string(value));
  }

  if (const auto te = headers.get("Transfer-Encoding"); te.has_value()) {
    if (!util::iequals(util::trim(*te), "identity")) {
      to_error("transfer codings not supported");
      return false;
    }
  }
  if (const auto cl = headers.get("Content-Length"); cl.has_value()) {
    // Reject request smuggling via conflicting duplicate Content-Length
    // headers: every occurrence must parse and agree.
    std::optional<std::uint64_t> length;
    for (std::size_t i = 0; i < headers.size(); ++i) {
      const auto& [name, value] = headers.entry(i);
      if (!util::iequals(name, "Content-Length")) continue;
      const auto parsed = util::parse_u64(util::trim(value));
      if (!parsed || *parsed > limits_.max_body_bytes ||
          (length.has_value() && *length != *parsed)) {
        to_error("bad Content-Length");
        return false;
      }
      length = parsed;
    }
    body_remaining_ = *length;
  } else {
    body_remaining_ = 0;
  }
  return true;
}

}  // namespace detail

void RequestParser::reset() {
  reset_base();
  request_ = Request{};
}

bool RequestParser::parse_head(std::string_view head) {
  const std::size_t line_end = head.find("\r\n");
  const std::string_view start_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);

  const auto parts = util::split(start_line, ' ');
  if (parts.size() != 3) {
    to_error("malformed request line");
    return false;
  }
  const auto method = parse_method(parts[0]);
  if (!method) {
    to_error("unknown method: " + parts[0]);
    return false;
  }
  if (parts[1].empty()) {
    to_error("empty request target");
    return false;
  }
  if (parts[2] != "HTTP/1.1" && parts[2] != "HTTP/1.0") {
    to_error("unsupported version: " + parts[2]);
    return false;
  }
  request_.method = *method;
  request_.target = parts[1];
  request_.version = parts[2];
  return parse_header_lines(rest, request_.headers);
}

void ResponseParser::reset() {
  reset_base();
  response_ = Response{};
}

bool ResponseParser::parse_head(std::string_view head) {
  const std::size_t line_end = head.find("\r\n");
  const std::string_view start_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  const std::string_view rest =
      line_end == std::string_view::npos ? std::string_view{}
                                         : head.substr(line_end + 2);

  // Status line: HTTP/1.1 SP 3digit SP reason(may contain spaces/empty)
  const std::size_t sp1 = start_line.find(' ');
  if (sp1 == std::string_view::npos) {
    to_error("malformed status line");
    return false;
  }
  const std::string_view version = start_line.substr(0, sp1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    to_error("unsupported version");
    return false;
  }
  std::string_view remainder = start_line.substr(sp1 + 1);
  const std::size_t sp2 = remainder.find(' ');
  const std::string_view code_str =
      sp2 == std::string_view::npos ? remainder : remainder.substr(0, sp2);
  const auto code = util::parse_u64(code_str);
  if (!code || code_str.size() != 3 || *code < 100 || *code > 599) {
    to_error("bad status code");
    return false;
  }
  response_.version = std::string(version);
  response_.status = static_cast<int>(*code);
  response_.reason = sp2 == std::string_view::npos
                         ? std::string()
                         : std::string(remainder.substr(sp2 + 1));
  return parse_header_lines(rest, response_.headers);
}

}  // namespace idr::http
