#include "http/traceparent.hpp"

namespace idr::http {

namespace {

constexpr std::size_t kLength = 55;  // 2 + 1 + 32 + 1 + 16 + 1 + 2

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return 10 + (c - 'a');
  return -1;  // uppercase is invalid on the wire per the W3C grammar
}

/// Parses exactly `digits` lowercase hex characters into out.
bool parse_hex(std::string_view s, std::size_t pos, std::size_t digits,
               std::uint64_t& out) {
  out = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    const int d = hex_digit(s[pos + i]);
    if (d < 0) return false;
    out = (out << 4) | static_cast<std::uint64_t>(d);
  }
  return true;
}

}  // namespace

std::string format_traceparent(const obs::TraceContext& ctx) {
  if (!ctx.valid()) return {};
  std::string out = "00-0000000000000000";
  out += obs::trace_hex(ctx.trace_id);
  out += '-';
  out += obs::trace_hex(ctx.span_id);
  out += "-01";
  return out;
}

std::optional<obs::TraceContext> parse_traceparent(std::string_view value) {
  if (value.size() != kLength) return std::nullopt;
  if (value[2] != '-' || value[35] != '-' || value[52] != '-') {
    return std::nullopt;
  }
  std::uint64_t version = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t span = 0;
  std::uint64_t flags = 0;
  if (!parse_hex(value, 0, 2, version) ||
      !parse_hex(value, 3, 16, trace_hi) ||
      !parse_hex(value, 19, 16, trace_lo) ||
      !parse_hex(value, 36, 16, span) ||
      !parse_hex(value, 53, 2, flags)) {
    return std::nullopt;
  }
  // Version ff is forbidden; the all-zero trace-id and parent-id are the
  // spec's explicit invalid values.
  if (version == 0xFF) return std::nullopt;
  if ((trace_hi | trace_lo) == 0 || span == 0) return std::nullopt;
  obs::TraceContext ctx;
  ctx.trace_id = trace_hi ^ trace_lo;  // fold 128 -> 64; identity for ours
  if (ctx.trace_id == 0) return std::nullopt;
  ctx.span_id = span;
  return ctx;
}

}  // namespace idr::http
