// W3C Trace Context `traceparent` codec for the cross-hop tracing plane.
//
// Wire format (version 00):
//
//   traceparent: 00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>
//
// Our TraceContext carries 64-bit ids, so the encoder zero-pads the trace
// id's high half and the decoder folds a foreign 128-bit trace id to 64
// bits by XORing its halves — the identity mapping for everything we emit
// ourselves, so a context round-trips bitwise through the header.
//
// The parser is strict the way the rest of src/http is: exact length,
// dashes in the mandated positions, lowercase hex only, and the spec's
// all-zero trace-id / parent-id values rejected as invalid. Anything
// malformed yields nullopt and the caller proceeds untraced — a hostile
// header must never break a transfer (test_http_hostile holds us to it).
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "obs/trace.hpp"

namespace idr::http {

/// Header name, lowercase per the W3C registration.
inline constexpr std::string_view kTraceparentHeader = "traceparent";

/// "00-<trace>-<span>-01" (version 00, sampled flag set). The context
/// must be valid(); an invalid context encodes as an empty string so
/// callers can `if (!v.empty()) headers.set(...)`.
std::string format_traceparent(const obs::TraceContext& ctx);

/// Strict parse; nullopt on any deviation from the grammar above.
std::optional<obs::TraceContext> parse_traceparent(std::string_view value);

}  // namespace idr::http
