#include "core/oracle.hpp"

#include "util/error.hpp"

namespace idr::core {

InstantaneousOraclePolicy::InstantaneousOraclePolicy(
    const net::Topology& topo, net::NodeId client, net::NodeId server)
    : topo_(topo), client_(client), server_(server) {
  IDR_REQUIRE(client != net::kInvalidNode && server != net::kInvalidNode,
              "oracle: invalid endpoints");
}

util::Rate InstantaneousOraclePolicy::path_bandwidth(
    std::optional<net::NodeId> relay) const {
  std::optional<net::Path> path;
  if (relay) {
    path = net::via_relay(topo_, server_, *relay, client_);
  } else {
    path = net::shortest_path(topo_, server_, client_);
  }
  if (!path) return 0.0;
  return topo_.path_bottleneck(*path);
}

std::vector<net::NodeId> InstantaneousOraclePolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng&) {
  const util::Rate direct = path_bandwidth(std::nullopt);
  net::NodeId best = net::kInvalidNode;
  util::Rate best_rate = direct;
  for (const RelayRecord& r : stats.records()) {
    const util::Rate rate = path_bandwidth(r.relay);
    if (rate > best_rate) {
      best_rate = rate;
      best = r.relay;
    }
  }
  if (best == net::kInvalidNode) return {};
  return {best};
}

}  // namespace idr::core
