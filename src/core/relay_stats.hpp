// Per-relay bookkeeping: how often a relay appeared in the candidate
// (random) set, how often it was actually chosen, and the improvement it
// delivered. This is the data behind the paper's Tables II/III and Fig. 5,
// and the input to the utilization-weighted selection policy.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace idr::core {

/// Where a throughput observation came from. A `Race` observation was
/// validated by an actual probe race (the relay won against the direct
/// path and every other candidate under current network conditions); a
/// `Passive` observation rode a transfer the client routed without
/// racing. Both refine the EWMA value, but only Race observations renew
/// *freshness* — otherwise a pinned relay would keep re-validating
/// itself forever and the client could ride a silently degrading path
/// without ever re-probing.
enum class EstimateSource { Race, Passive };

struct RelayRecord {
  net::NodeId relay = net::kInvalidNode;
  std::string name;
  /// Times the relay was a candidate (appeared in the probe set).
  std::size_t appearances = 0;
  /// Times its indirect path was the one selected for the transfer.
  std::size_t selections = 0;
  /// Improvement (percent, vs. direct) of transfers routed through it.
  util::OnlineStats improvement_pct;
  /// Fault bookkeeping: total transfers that died via this relay, the
  /// current consecutive-failure run, and the blacklist deadline the run
  /// earned. All stay zero on fault-free runs.
  std::size_t failures = 0;
  std::size_t consecutive_failures = 0;
  util::TimePoint blacklisted_until = 0.0;
  /// Times the relay shed load (admission-control rejection). Tracked
  /// apart from failures: an overloaded relay is alive and earns only a
  /// short flat penalty, not the doubling crash blacklist.
  std::size_t overloads = 0;

  /// --- Passive estimation plane -------------------------------------------
  /// Decayed EWMA of observed relay-path throughput (bytes/s): each sample
  /// enters with weight 1 and fades by 2^(-age / half_life), so the
  /// estimate tracks the recent past and old observations stop mattering
  /// on the half-life timescale. Zero until the first observation.
  double ewma_throughput = 0.0;
  /// Total decayed weight behind the estimate (the EWMA denominator).
  double ewma_weight = 0.0;
  std::size_t estimate_samples = 0;
  /// Sim-clock time of the last observation from any source.
  util::TimePoint estimate_time = 0.0;
  /// Sim-clock time of the last *race-validated* observation — the
  /// timestamp staleness decisions key off (see EstimateSource).
  util::TimePoint validated_time = 0.0;
  /// Race-validated observations alone.
  std::size_t validated_samples = 0;

  /// Section 4's utilization: selected / appeared.
  double utilization() const {
    return appearances == 0 ? 0.0
                            : static_cast<double>(selections) /
                                  static_cast<double>(appearances);
  }
};

class RelayStatsTable {
 public:
  /// Registers a relay; idempotent per relay id.
  void add_relay(net::NodeId relay, std::string name);

  bool has_relay(net::NodeId relay) const;
  std::size_t relay_count() const { return records_.size(); }

  void note_appearance(net::NodeId relay);
  void note_selection(net::NodeId relay);
  /// Records the improvement (vs. the concurrent direct measurement) of a
  /// transfer routed through `relay`. Kept separate from note_selection
  /// because the direct-path reference is measured by a parallel plain
  /// client, so it is only known after the fact.
  void note_improvement(net::NodeId relay, double improvement_pct);

  /// Records a failed transfer (probe lane, remainder, or injected fault)
  /// via `relay` at simulated time `now` and blacklists it for
  /// min(base * 2^(consecutive_failures - 1), max_penalty) seconds —
  /// exponential growth while a relay keeps dying, decaying back to
  /// nothing simply by expiry once it stops.
  void note_failure(net::NodeId relay, util::TimePoint now,
                    util::Duration base_penalty,
                    util::Duration max_penalty);
  /// Records an overload rejection (503 shed) via `relay` at simulated
  /// time `now`: a flat `penalty` of blacklist time — long enough to let
  /// the relay drain, with none of the exponential growth a crash earns —
  /// and no effect on the consecutive-failure run.
  void note_overload(net::NodeId relay, util::TimePoint now,
                     util::Duration penalty);
  /// Records a successful transfer via `relay`: ends the consecutive run
  /// (the next failure starts again at the base penalty) and clears any
  /// remaining blacklist time.
  void note_recovery(net::NodeId relay);
  /// Whether selection should skip the relay at simulated time `now`.
  bool blacklisted(net::NodeId relay, util::TimePoint now) const;

  const RelayRecord& record(net::NodeId relay) const;

  /// All records, sorted by descending utilization (Table II/III order).
  std::vector<RelayRecord> by_utilization() const;

  /// Top-k by utilization; fewer if the table is smaller.
  std::vector<RelayRecord> top(std::size_t k) const;

  /// Selection weights for the utilization-weighted policy: utilization
  /// plus a floor so unexplored relays keep non-zero probability.
  std::vector<std::pair<net::NodeId, double>> selection_weights(
      double exploration_floor = 0.05) const;

  // --- Passive estimation plane ---------------------------------------------

  /// Half-life (seconds) of the throughput EWMA decay. Applies to
  /// subsequent note_throughput calls; existing estimates are untouched.
  void set_estimate_half_life(util::Duration half_life);
  util::Duration estimate_half_life() const { return half_life_; }

  /// Records one observed relay-path throughput sample (bytes/s) at
  /// sim-clock `now`. Earlier weight decays by 2^(-elapsed / half_life)
  /// before the sample is folded in, so samples at the same instant
  /// average and widely spaced ones replace. `source` distinguishes
  /// race-validated observations (renew freshness) from passive ones
  /// (refine the value only).
  void note_throughput(net::NodeId relay, util::Rate throughput,
                       util::TimePoint now, EstimateSource source);

  bool has_estimate(net::NodeId relay) const;
  /// Current EWMA estimate (bytes/s); 0 before the first observation.
  util::Rate estimate(net::NodeId relay) const;
  /// Seconds since the last observation from any source; +infinity when
  /// the relay has never been observed. Monotone in `now` between
  /// updates.
  util::Duration estimate_age(net::NodeId relay, util::TimePoint now) const;
  /// Seconds since the last *race-validated* observation; +infinity when
  /// the relay has never won a race. The staleness rule's clock.
  util::Duration validated_age(net::NodeId relay, util::TimePoint now) const;

  /// The relay with the highest EWMA estimate among those whose
  /// race-validated age is <= `max_age` and that are not blacklisted at
  /// `now` — the race-on-staleness pin target. kInvalidNode when no
  /// relay qualifies (all stale, unmeasured, or blacklisted). Ties break
  /// to registration order, keeping the choice deterministic.
  net::NodeId best_fresh_estimate(util::TimePoint now,
                                  util::Duration max_age) const;

  /// Share of all recorded selections this relay owns (0 when nothing
  /// has been selected yet) — the quantity the hybrid policy's
  /// utilization cap bounds.
  double selection_share(net::NodeId relay) const;
  std::size_t total_selections() const;

  const std::vector<RelayRecord>& records() const { return records_; }

 private:
  RelayRecord& mutable_record(net::NodeId relay);
  std::vector<RelayRecord> records_;
  util::Duration half_life_ = 300.0;
};

}  // namespace idr::core
