#include "core/relay_stats.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idr::core {

void RelayStatsTable::add_relay(net::NodeId relay, std::string name) {
  if (has_relay(relay)) return;
  RelayRecord record;
  record.relay = relay;
  record.name = std::move(name);
  records_.push_back(std::move(record));
}

bool RelayStatsTable::has_relay(net::NodeId relay) const {
  for (const auto& r : records_) {
    if (r.relay == relay) return true;
  }
  return false;
}

RelayRecord& RelayStatsTable::mutable_record(net::NodeId relay) {
  for (auto& r : records_) {
    if (r.relay == relay) return r;
  }
  ::idr::util::fail("RelayStatsTable: unknown relay");
}

const RelayRecord& RelayStatsTable::record(net::NodeId relay) const {
  for (const auto& r : records_) {
    if (r.relay == relay) return r;
  }
  ::idr::util::fail("RelayStatsTable: unknown relay");
}

void RelayStatsTable::note_appearance(net::NodeId relay) {
  ++mutable_record(relay).appearances;
}

void RelayStatsTable::note_selection(net::NodeId relay) {
  ++mutable_record(relay).selections;
}

void RelayStatsTable::note_improvement(net::NodeId relay,
                                       double improvement_pct) {
  mutable_record(relay).improvement_pct.add(improvement_pct);
}

void RelayStatsTable::note_failure(net::NodeId relay, util::TimePoint now,
                                   util::Duration base_penalty,
                                   util::Duration max_penalty) {
  IDR_REQUIRE(base_penalty >= 0.0 && max_penalty >= base_penalty,
              "note_failure: invalid penalty bounds");
  RelayRecord& r = mutable_record(relay);
  ++r.failures;
  ++r.consecutive_failures;
  // base * 2^(run-1), capped; computed multiplicatively so a long run
  // cannot overflow.
  util::Duration penalty = base_penalty;
  for (std::size_t i = 1; i < r.consecutive_failures && penalty < max_penalty;
       ++i) {
    penalty *= 2.0;
  }
  penalty = std::min(penalty, max_penalty);
  r.blacklisted_until = std::max(r.blacklisted_until, now + penalty);
}

void RelayStatsTable::note_overload(net::NodeId relay, util::TimePoint now,
                                    util::Duration penalty) {
  IDR_REQUIRE(penalty >= 0.0, "note_overload: negative penalty");
  RelayRecord& r = mutable_record(relay);
  ++r.overloads;
  r.blacklisted_until = std::max(r.blacklisted_until, now + penalty);
}

void RelayStatsTable::note_recovery(net::NodeId relay) {
  RelayRecord& r = mutable_record(relay);
  r.consecutive_failures = 0;
  r.blacklisted_until = 0.0;
}

bool RelayStatsTable::blacklisted(net::NodeId relay,
                                  util::TimePoint now) const {
  return record(relay).blacklisted_until > now;
}

std::vector<RelayRecord> RelayStatsTable::by_utilization() const {
  std::vector<RelayRecord> sorted = records_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RelayRecord& a, const RelayRecord& b) {
                     return a.utilization() > b.utilization();
                   });
  return sorted;
}

std::vector<RelayRecord> RelayStatsTable::top(std::size_t k) const {
  std::vector<RelayRecord> sorted = by_utilization();
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

std::vector<std::pair<net::NodeId, double>>
RelayStatsTable::selection_weights(double exploration_floor) const {
  IDR_REQUIRE(exploration_floor >= 0.0,
              "selection_weights: negative exploration floor");
  std::vector<std::pair<net::NodeId, double>> weights;
  weights.reserve(records_.size());
  for (const auto& r : records_) {
    weights.emplace_back(r.relay, r.utilization() + exploration_floor);
  }
  return weights;
}

}  // namespace idr::core
