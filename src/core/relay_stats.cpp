#include "core/relay_stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace idr::core {

void RelayStatsTable::add_relay(net::NodeId relay, std::string name) {
  if (has_relay(relay)) return;
  RelayRecord record;
  record.relay = relay;
  record.name = std::move(name);
  records_.push_back(std::move(record));
}

bool RelayStatsTable::has_relay(net::NodeId relay) const {
  for (const auto& r : records_) {
    if (r.relay == relay) return true;
  }
  return false;
}

RelayRecord& RelayStatsTable::mutable_record(net::NodeId relay) {
  for (auto& r : records_) {
    if (r.relay == relay) return r;
  }
  ::idr::util::fail("RelayStatsTable: unknown relay");
}

const RelayRecord& RelayStatsTable::record(net::NodeId relay) const {
  for (const auto& r : records_) {
    if (r.relay == relay) return r;
  }
  ::idr::util::fail("RelayStatsTable: unknown relay");
}

void RelayStatsTable::note_appearance(net::NodeId relay) {
  ++mutable_record(relay).appearances;
}

void RelayStatsTable::note_selection(net::NodeId relay) {
  ++mutable_record(relay).selections;
}

void RelayStatsTable::note_improvement(net::NodeId relay,
                                       double improvement_pct) {
  mutable_record(relay).improvement_pct.add(improvement_pct);
}

void RelayStatsTable::note_failure(net::NodeId relay, util::TimePoint now,
                                   util::Duration base_penalty,
                                   util::Duration max_penalty) {
  IDR_REQUIRE(base_penalty >= 0.0 && max_penalty >= base_penalty,
              "note_failure: invalid penalty bounds");
  RelayRecord& r = mutable_record(relay);
  ++r.failures;
  ++r.consecutive_failures;
  // base * 2^(run-1), capped; computed multiplicatively so a long run
  // cannot overflow.
  util::Duration penalty = base_penalty;
  for (std::size_t i = 1; i < r.consecutive_failures && penalty < max_penalty;
       ++i) {
    penalty *= 2.0;
  }
  penalty = std::min(penalty, max_penalty);
  r.blacklisted_until = std::max(r.blacklisted_until, now + penalty);
}

void RelayStatsTable::note_overload(net::NodeId relay, util::TimePoint now,
                                    util::Duration penalty) {
  IDR_REQUIRE(penalty >= 0.0, "note_overload: negative penalty");
  RelayRecord& r = mutable_record(relay);
  ++r.overloads;
  r.blacklisted_until = std::max(r.blacklisted_until, now + penalty);
}

void RelayStatsTable::note_recovery(net::NodeId relay) {
  RelayRecord& r = mutable_record(relay);
  r.consecutive_failures = 0;
  r.blacklisted_until = 0.0;
}

bool RelayStatsTable::blacklisted(net::NodeId relay,
                                  util::TimePoint now) const {
  return record(relay).blacklisted_until > now;
}

std::vector<RelayRecord> RelayStatsTable::by_utilization() const {
  std::vector<RelayRecord> sorted = records_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const RelayRecord& a, const RelayRecord& b) {
                     return a.utilization() > b.utilization();
                   });
  return sorted;
}

std::vector<RelayRecord> RelayStatsTable::top(std::size_t k) const {
  std::vector<RelayRecord> sorted = by_utilization();
  if (sorted.size() > k) sorted.resize(k);
  return sorted;
}

void RelayStatsTable::set_estimate_half_life(util::Duration half_life) {
  IDR_REQUIRE(half_life > 0.0, "set_estimate_half_life: non-positive");
  half_life_ = half_life;
}

void RelayStatsTable::note_throughput(net::NodeId relay,
                                      util::Rate throughput,
                                      util::TimePoint now,
                                      EstimateSource source) {
  IDR_REQUIRE(throughput >= 0.0, "note_throughput: negative rate");
  RelayRecord& r = mutable_record(relay);
  if (r.estimate_samples > 0) {
    IDR_REQUIRE(now >= r.estimate_time,
                "note_throughput: sim clock moved backwards");
    // Fade the accumulated weight by the elapsed half-lives, then fold
    // the new unit-weight sample in. At dt=0 this is a plain running
    // average; at dt >> half_life the sample effectively replaces the
    // estimate.
    r.ewma_weight *= std::exp2(-(now - r.estimate_time) / half_life_);
    r.ewma_throughput =
        (r.ewma_throughput * r.ewma_weight + throughput) /
        (r.ewma_weight + 1.0);
    r.ewma_weight += 1.0;
  } else {
    r.ewma_throughput = throughput;
    r.ewma_weight = 1.0;
  }
  r.estimate_time = now;
  ++r.estimate_samples;
  if (source == EstimateSource::Race) {
    r.validated_time = now;
    ++r.validated_samples;
  }
}

bool RelayStatsTable::has_estimate(net::NodeId relay) const {
  return record(relay).estimate_samples > 0;
}

util::Rate RelayStatsTable::estimate(net::NodeId relay) const {
  return record(relay).ewma_throughput;
}

util::Duration RelayStatsTable::estimate_age(net::NodeId relay,
                                             util::TimePoint now) const {
  const RelayRecord& r = record(relay);
  if (r.estimate_samples == 0) {
    return std::numeric_limits<util::Duration>::infinity();
  }
  return now - r.estimate_time;
}

util::Duration RelayStatsTable::validated_age(net::NodeId relay,
                                              util::TimePoint now) const {
  const RelayRecord& r = record(relay);
  if (r.validated_samples == 0) {
    return std::numeric_limits<util::Duration>::infinity();
  }
  return now - r.validated_time;
}

net::NodeId RelayStatsTable::best_fresh_estimate(
    util::TimePoint now, util::Duration max_age) const {
  net::NodeId best = net::kInvalidNode;
  double best_rate = -1.0;
  for (const auto& r : records_) {
    if (r.validated_samples == 0) continue;
    if (now - r.validated_time > max_age) continue;
    if (r.blacklisted_until > now) continue;
    // Strict > keeps registration-order tie-break deterministic.
    if (r.ewma_throughput > best_rate) {
      best_rate = r.ewma_throughput;
      best = r.relay;
    }
  }
  return best;
}

double RelayStatsTable::selection_share(net::NodeId relay) const {
  const std::size_t total = total_selections();
  if (total == 0) return 0.0;
  return static_cast<double>(record(relay).selections) /
         static_cast<double>(total);
}

std::size_t RelayStatsTable::total_selections() const {
  std::size_t total = 0;
  for (const auto& r : records_) total += r.selections;
  return total;
}

std::vector<std::pair<net::NodeId, double>>
RelayStatsTable::selection_weights(double exploration_floor) const {
  IDR_REQUIRE(exploration_floor >= 0.0,
              "selection_weights: negative exploration floor");
  std::vector<std::pair<net::NodeId, double>> weights;
  weights.reserve(records_.size());
  for (const auto& r : records_) {
    weights.emplace_back(r.relay, r.utilization() + exploration_floor);
  }
  return weights;
}

}  // namespace idr::core
