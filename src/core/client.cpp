#include "core/client.hpp"

#include "util/error.hpp"

namespace idr::core {

IndirectRoutingClient::IndirectRoutingClient(
    overlay::TransferEngine& engine, const ClientConfig& config,
    std::unique_ptr<SelectionPolicy> policy, util::Rng rng)
    : engine_(engine), config_(config), policy_(std::move(policy)),
      rng_(rng) {
  IDR_REQUIRE(config_.server != nullptr, "client: null server");
  IDR_REQUIRE(config_.client_node != net::kInvalidNode,
              "client: invalid client node");
  IDR_REQUIRE(policy_ != nullptr, "client: null policy");
  IDR_REQUIRE(config_.probe_bytes > 0.0, "client: non-positive probe size");
}

void IndirectRoutingClient::register_relay(net::NodeId relay,
                                           std::string name) {
  IDR_REQUIRE(relay != config_.client_node &&
                  relay != config_.server->node(),
              "register_relay: relay coincides with an endpoint");
  stats_.add_relay(relay, std::move(name));
}

void IndirectRoutingClient::set_policy(
    std::unique_ptr<SelectionPolicy> policy) {
  IDR_REQUIRE(policy != nullptr, "set_policy: null policy");
  policy_ = std::move(policy);
}

void IndirectRoutingClient::fetch(
    std::function<void(const FetchRecord&)> on_done) {
  IDR_REQUIRE(on_done != nullptr, "fetch: null callback");

  const std::vector<net::NodeId> candidates =
      policy_->choose_candidates(stats_, rng_);
  for (net::NodeId relay : candidates) stats_.note_appearance(relay);

  RaceSpec spec;
  spec.client = config_.client_node;
  spec.server = config_.server;
  spec.resource = config_.resource;
  spec.probe_bytes = config_.probe_bytes;
  spec.candidate_relays = candidates;
  spec.tcp = config_.tcp;

  const util::TimePoint start =
      engine_.flow_simulator().simulator().now();
  start_probe_race(
      engine_, spec,
      [this, candidates, start, on_done = std::move(on_done)](
          const RaceOutcome& outcome) {
        if (outcome.ok && outcome.chose_indirect) {
          stats_.note_selection(outcome.relay);
        }
        FetchRecord record;
        record.outcome = outcome;
        record.candidates = candidates;
        record.start_time = start;
        on_done(record);
      });
}

void IndirectRoutingClient::record_improvement(net::NodeId relay,
                                               double improvement_pct) {
  stats_.note_improvement(relay, improvement_pct);
}

}  // namespace idr::core
