#include "core/client.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idr::core {

IndirectRoutingClient::IndirectRoutingClient(
    overlay::TransferEngine& engine, const ClientConfig& config,
    std::unique_ptr<SelectionPolicy> policy, util::Rng rng)
    : engine_(engine), config_(config), policy_(std::move(policy)),
      rng_(rng) {
  IDR_REQUIRE(config_.server != nullptr, "client: null server");
  IDR_REQUIRE(config_.client_node != net::kInvalidNode,
              "client: invalid client node");
  IDR_REQUIRE(policy_ != nullptr, "client: null policy");
  IDR_REQUIRE(config_.probe_bytes > 0.0, "client: non-positive probe size");
  stats_.set_estimate_half_life(config_.estimate_half_life);
}

void IndirectRoutingClient::register_relay(net::NodeId relay,
                                           std::string name) {
  IDR_REQUIRE(relay != config_.client_node &&
                  relay != config_.server->node(),
              "register_relay: relay coincides with an endpoint");
  stats_.add_relay(relay, std::move(name));
}

void IndirectRoutingClient::set_policy(
    std::unique_ptr<SelectionPolicy> policy) {
  IDR_REQUIRE(policy != nullptr, "set_policy: null policy");
  policy_ = std::move(policy);
}

void IndirectRoutingClient::fetch(
    std::function<void(const FetchRecord&)> on_done) {
  IDR_REQUIRE(on_done != nullptr, "fetch: null callback");

  const util::TimePoint now = engine_.flow_simulator().simulator().now();
  // The decision carries the blacklist-filtered candidate set and, for
  // race-skipping policies, an optional pinned relay (see
  // SelectionDecision). Appearance accounting matches what actually
  // happens: a pinned relay appears immediately; the fallback candidates
  // only count as appearing if the pin fails and the race really runs —
  // a race that never happened says nothing about their utilization.
  SelectionDecision decision = policy_->decide(stats_, rng_, now);
  const std::vector<net::NodeId>& candidates = decision.candidates;
  if (decision.pinned.has_value()) {
    stats_.note_appearance(*decision.pinned);
  } else {
    for (net::NodeId relay : candidates) stats_.note_appearance(relay);
  }

  RaceSpec spec;
  spec.client = config_.client_node;
  spec.server = config_.server;
  spec.resource = config_.resource;
  spec.probe_bytes = config_.probe_bytes;
  spec.candidate_relays = candidates;
  spec.tcp = config_.tcp;
  spec.probe_timeout = config_.probe_timeout;
  spec.retry = config_.retry;
  spec.pinned_relay = decision.pinned;
  spec.pinned_estimate_age = decision.pinned_age;
  spec.flights = config_.flights;

  const util::TimePoint start =
      engine_.flow_simulator().simulator().now();
  start_probe_race(
      engine_, spec,
      [this, candidates, pinned = decision.pinned, start,
       on_done = std::move(on_done)](const RaceOutcome& outcome) {
        if (pinned.has_value() && !outcome.race_skipped) {
          // The pin failed and a full race ran after all: the fallback
          // candidates genuinely raced, so they appeared.
          for (net::NodeId relay : candidates) stats_.note_appearance(relay);
        }
        if (outcome.ok && outcome.chose_indirect) {
          stats_.note_selection(outcome.relay);
        }
        // Blacklist every relay the race saw die (probe lane or remainder);
        // a selected relay that carried the transfer end-to-end clears its
        // failure run instead.
        const util::TimePoint end =
            engine_.flow_simulator().simulator().now();
        for (net::NodeId relay : outcome.failed_relays) {
          if (!stats_.has_relay(relay)) continue;
          stats_.note_failure(relay, end, config_.blacklist_base_penalty,
                              config_.blacklist_max_penalty);
        }
        // Overloaded relays get the short flat penalty instead: they are
        // alive, just full, and will take traffic again shortly.
        for (net::NodeId relay : outcome.overloaded_relays) {
          if (!stats_.has_relay(relay)) continue;
          stats_.note_overload(relay, end, config_.overload_penalty);
        }
        if (outcome.ok && outcome.chose_indirect && !outcome.fell_back_direct &&
            stats_.has_relay(outcome.relay)) {
          stats_.note_recovery(outcome.relay);
          // Feed the passive estimation plane: the steady-phase rate this
          // relay just delivered. A race win renews freshness; a pinned
          // (skipped-race) transfer only refines the value, so the pin
          // goes stale on the policy's threshold timescale.
          stats_.note_throughput(outcome.relay, outcome.steady_throughput(),
                                 end,
                                 outcome.race_skipped
                                     ? EstimateSource::Passive
                                     : EstimateSource::Race);
        }
        FetchRecord record;
        record.outcome = outcome;
        record.candidates = candidates;
        record.start_time = start;
        on_done(record);
      });
}

void IndirectRoutingClient::record_improvement(net::NodeId relay,
                                               double improvement_pct) {
  stats_.note_improvement(relay, improvement_pct);
}

}  // namespace idr::core
