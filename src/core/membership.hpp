// Fleet membership: the liveness state machine both stacks share.
//
// The paper's experiment assumes a fixed, always-on relay set; operating
// the rt stack as a cluster means the opposite — relays come and go, and
// *who is currently alive and underloaded* matters as much as raw
// capacity estimates (the passive plane of relay_stats.hpp only learns a
// relay died after a transfer through it fails). A MembershipTable turns
// periodic heartbeat observations into a per-relay health state:
//
//   alive ──miss──▶ suspect ──miss──▶ down ──ok──▶ probation ──▶ alive
//     │                                              (after probation_s)
//     ├─healthz "draining"──▶ draining   (operator shutdown; excluded)
//     └─healthz "shedding"──▶ shedding   (overloaded; held out for the
//                                         relay's Retry-After hint)
//
// The table is transport-agnostic: the rt FleetDirectory feeds it from
// real /healthz probes on the reactor clock, and simulated drivers can
// feed it from a fault schedule on the sim clock — same transitions,
// same timers, one state machine.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "util/units.hpp"

namespace idr::core {

enum class RelayHealth : std::uint8_t {
  /// Answering heartbeats with status "ok"; a full member.
  Alive,
  /// Missed at least suspect_after_misses consecutive heartbeats — still
  /// probed, still selectable (one lost probe must not evict a relay the
  /// paper's data shows is usually fine), but one more miss from Down.
  Suspect,
  /// Missed down_after_misses consecutive heartbeats: treated as dead.
  /// Excluded from selection; probed at a backed-off cadence.
  Down,
  /// Came back after Down; excluded until it stays healthy for the
  /// configured probation window, so a flapping relay cannot churn the
  /// candidate set on every bounce.
  Probation,
  /// Advertised "draining" on /healthz: an operator is shutting it down.
  /// Excluded immediately — the whole point of self-advertisement is
  /// that clients stop dialing *before* the listener closes.
  Draining,
  /// Advertised "shedding" (admission control engaged): alive but
  /// overloaded. Held out of selection until its Retry-After hint
  /// expires, then eligible again (deprioritized, not banished).
  Shedding,
};

const char* relay_health_name(RelayHealth health);

/// What a heartbeat response said. Miss (timeout / refused / garbage) is
/// reported through note_miss, not a status.
enum class HeartbeatStatus : std::uint8_t { Ok, Shedding, Draining };

struct MembershipConfig {
  /// Consecutive misses before Alive degrades to Suspect.
  std::size_t suspect_after_misses = 1;
  /// Consecutive misses before any state collapses to Down.
  std::size_t down_after_misses = 2;
  /// How long a relay recovering from Down must keep answering "ok"
  /// before it is re-admitted to selection.
  util::Duration probation_s = 1.0;
  /// Fallback hold for a shedding relay whose healthz carried no
  /// Retry-After hint.
  util::Duration default_shed_hold_s = 1.0;
};

/// Per-relay membership record. All timestamps are on the caller's clock
/// (reactor seconds for rt, sim seconds for the testbed).
struct MemberRecord {
  net::NodeId relay = net::kInvalidNode;
  std::string name;
  RelayHealth health = RelayHealth::Alive;
  /// Length of the current heartbeat-miss run.
  std::size_t consecutive_misses = 0;
  /// Last time the relay answered a heartbeat at all (any status).
  util::TimePoint last_contact = 0.0;
  /// First miss of the current run (undefined while the run is empty).
  util::TimePoint miss_run_start = 0.0;
  /// Probation: earliest time an "ok" heartbeat re-admits the relay.
  util::TimePoint probation_until = 0.0;
  /// Shedding: excluded from selection until this deadline.
  util::TimePoint shed_hold_until = 0.0;
  /// Transition odometers (monotonic).
  std::size_t times_suspect = 0;
  std::size_t times_down = 0;
  std::size_t readmissions = 0;
};

/// Outcome of one heartbeat observation: the transition it caused (if
/// any) plus the latency datum the caller's metrics want.
struct HeartbeatOutcome {
  RelayHealth before = RelayHealth::Alive;
  RelayHealth after = RelayHealth::Alive;
  bool transitioned() const { return before != after; }
  /// On a transition *to Down*: seconds since the relay last answered a
  /// heartbeat — the conservative time-to-detect bound (the relay died
  /// no earlier than its last answer). Zero otherwise.
  util::Duration since_last_contact = 0.0;
};

class MembershipTable {
 public:
  explicit MembershipTable(MembershipConfig config = {});

  const MembershipConfig& config() const { return config_; }

  /// Registers a relay (idempotent per id). New members start Alive with
  /// `now` as their last contact: an unprobed relay is presumed healthy,
  /// so wiring a directory into an existing client changes nothing until
  /// heartbeats actually report otherwise.
  void add_relay(net::NodeId relay, std::string name,
                 util::TimePoint now = 0.0);
  /// Drops a relay (hot reload removing it from the fleet). No-op for
  /// unknown ids.
  void remove_relay(net::NodeId relay);

  bool has_relay(net::NodeId relay) const;
  std::size_t relay_count() const { return records_.size(); }

  /// Applies a successful heartbeat response at time `now`.
  /// `retry_after_s` is the Retry-After hint from a shedding relay's
  /// healthz (0 = absent; the config default hold applies).
  HeartbeatOutcome note_heartbeat(net::NodeId relay, HeartbeatStatus status,
                                  double retry_after_s, util::TimePoint now);
  /// Applies a missed heartbeat (timeout, refused connect, unparseable
  /// response) at time `now`.
  HeartbeatOutcome note_miss(net::NodeId relay, util::TimePoint now);

  /// Health of a tracked relay; Alive for unknown ids (mirrors
  /// eligible(): the table never vetoes what it is not tracking).
  RelayHealth health(net::NodeId relay) const;
  /// Whether selection may hand a transfer to this relay at `now`:
  /// Alive and Suspect are eligible; Down, Draining and Probation are
  /// not; Shedding becomes eligible again once its Retry-After hold
  /// expires. Unknown relays are eligible (the directory only ever
  /// *removes* options; it must never veto a relay it is not tracking).
  bool eligible(net::NodeId relay, util::TimePoint now) const;

  std::size_t alive_count() const;
  std::size_t eligible_count(util::TimePoint now) const;

  const MemberRecord& record(net::NodeId relay) const;
  const std::vector<MemberRecord>& records() const { return records_; }

 private:
  MemberRecord& mutable_record(net::NodeId relay);
  MemberRecord* find(net::NodeId relay);
  const MemberRecord* find(net::NodeId relay) const;

  MembershipConfig config_;
  std::vector<MemberRecord> records_;
};

}  // namespace idr::core
