#include "core/probe_race.hpp"

#include <cmath>
#include <memory>

#include "util/error.hpp"

namespace idr::core {

namespace {

struct RaceState {
  overlay::TransferEngine* engine = nullptr;
  RaceSpec spec;
  RaceCallback on_done;
  util::TimePoint start_time = 0.0;
  Bytes file_size = 0.0;

  struct Entry {
    overlay::TransferHandle handle = 0;
    std::optional<net::NodeId> relay;
    bool finished = false;
  };
  std::vector<Entry> probes;
  std::size_t pending = 0;
  bool decided = false;

  void finish_error(std::string error) {
    RaceOutcome outcome;
    outcome.ok = false;
    outcome.error = std::move(error);
    on_done(outcome);
  }
};

void on_probe_done(const std::shared_ptr<RaceState>& state,
                   std::size_t index, const overlay::TransferResult& result);

void launch(const std::shared_ptr<RaceState>& state) {
  const auto size = state->spec.server->resource_size(state->spec.resource);
  if (!size) {
    state->finish_error("unknown resource " + state->spec.resource);
    return;
  }
  state->file_size = *size;
  state->start_time = state->engine->flow_simulator().simulator().now();

  // Direct probe first, then one per candidate relay. The probe range is
  // bytes=0-(x-1); if the file is smaller than x the range resolves to the
  // whole file and the race decides everything.
  std::vector<std::optional<net::NodeId>> lanes;
  lanes.emplace_back(std::nullopt);
  for (net::NodeId relay : state->spec.candidate_relays) {
    lanes.emplace_back(relay);
  }

  const auto probe_span = static_cast<std::uint64_t>(
      std::llround(std::min(state->spec.probe_bytes, state->file_size)));
  IDR_REQUIRE(probe_span > 0, "probe race: zero probe size");

  state->probes.resize(lanes.size());
  state->pending = lanes.size();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    state->probes[i].relay = lanes[i];
    overlay::TransferRequest req;
    req.client = state->spec.client;
    req.server = state->spec.server;
    req.resource = state->spec.resource;
    req.range = http::range_first_bytes(probe_span);
    req.relay = lanes[i];
    req.tcp = state->spec.tcp;
    const std::size_t index = i;
    state->probes[i].handle = state->engine->begin(
        req, [state, index](const overlay::TransferResult& result) {
          on_probe_done(state, index, result);
        });
  }
}

void finish_success(const std::shared_ptr<RaceState>& state,
                    const std::optional<net::NodeId>& winner,
                    util::Duration probe_elapsed,
                    const overlay::TransferResult* remainder) {
  RaceOutcome outcome;
  outcome.ok = true;
  outcome.chose_indirect = winner.has_value();
  outcome.relay = winner.value_or(net::kInvalidNode);
  outcome.probe_elapsed = probe_elapsed;
  outcome.total_elapsed =
      state->engine->flow_simulator().simulator().now() - state->start_time;
  outcome.total_bytes = state->file_size;
  if (remainder != nullptr) {
    outcome.remainder_bytes = remainder->bytes;
    outcome.remainder_elapsed = remainder->elapsed();
  }
  state->on_done(outcome);
}

void on_probe_done(const std::shared_ptr<RaceState>& state,
                   std::size_t index, const overlay::TransferResult& result) {
  auto& probe = state->probes[index];
  probe.finished = true;
  --state->pending;

  if (state->decided) return;  // a loser draining out; already cancelled?

  if (!result.ok) {
    if (state->pending == 0) {
      state->finish_error("all probes failed: " + result.error);
    }
    return;  // other lanes still racing
  }

  // First successful probe wins the race.
  state->decided = true;
  const std::optional<net::NodeId> winner = probe.relay;
  const util::Duration probe_elapsed =
      result.finish_time - state->start_time;

  for (auto& other : state->probes) {
    if (!other.finished) state->engine->cancel(other.handle);
  }

  const auto probe_span = static_cast<std::uint64_t>(
      std::llround(std::min(state->spec.probe_bytes, state->file_size)));
  const auto total = static_cast<std::uint64_t>(
      std::llround(state->file_size));
  if (probe_span >= total) {
    // The probe covered the whole file.
    finish_success(state, winner, probe_elapsed, nullptr);
    return;
  }

  overlay::TransferRequest rest;
  rest.client = state->spec.client;
  rest.server = state->spec.server;
  rest.resource = state->spec.resource;
  rest.range = http::range_from_offset(probe_span);
  rest.relay = winner;
  // The winner's connection is still open (keep-alive): the remainder
  // request skips handshakes and slow start.
  rest.warm_connection = true;
  rest.tcp = state->spec.tcp;
  state->engine->begin(
      rest, [state, winner, probe_elapsed](
                const overlay::TransferResult& remainder) {
        if (!remainder.ok) {
          state->finish_error("remainder transfer failed: " +
                              remainder.error);
          return;
        }
        finish_success(state, winner, probe_elapsed, &remainder);
      });
}

}  // namespace

void start_probe_race(overlay::TransferEngine& engine, const RaceSpec& spec,
                      RaceCallback on_done) {
  IDR_REQUIRE(spec.server != nullptr, "start_probe_race: null server");
  IDR_REQUIRE(spec.probe_bytes > 0.0,
              "start_probe_race: non-positive probe size");
  IDR_REQUIRE(on_done != nullptr, "start_probe_race: null callback");
  auto state = std::make_shared<RaceState>();
  state->engine = &engine;
  state->spec = spec;
  state->on_done = std::move(on_done);
  launch(state);
}

}  // namespace idr::core
