#include "core/probe_race.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>

#include "util/error.hpp"

namespace idr::core {

namespace {

struct RaceState {
  overlay::TransferEngine* engine = nullptr;
  RaceSpec spec;
  RaceCallback on_done;
  util::TimePoint start_time = 0.0;
  Bytes file_size = 0.0;
  std::uint64_t probe_span = 0;

  struct Entry {
    overlay::TransferHandle handle = 0;
    std::optional<net::NodeId> relay;
    bool finished = false;
  };
  std::vector<Entry> probes;
  std::size_t pending = 0;
  bool decided = false;
  sim::EventId timeout_event = 0;

  /// Winning lane once decided (nullopt = direct).
  std::optional<net::NodeId> winner;
  util::Duration probe_elapsed = 0.0;

  /// True while the race is skipped on a pinned relay; cleared by
  /// launch() when a pin failure forces a real race after all.
  bool race_skipped = false;

  /// Cross-hop identity for this race's spans and flight record; invalid
  /// when neither the caller nor the tracer asked for one.
  obs::TraceContext trace;
  std::uint64_t attempt_seq = 0;  // per-attempt child-span salt

  // Fault/retry accounting, stamped into every outcome.
  std::size_t probe_failures = 0;
  std::size_t retries = 0;
  bool fell_back_direct = false;
  std::vector<net::NodeId> failed_relays;
  std::size_t overload_rejections = 0;
  std::vector<net::NodeId> overloaded_relays;

  /// Backoff jitter stream, created only after the first failure so a
  /// clean race derives no RNG at all. The salt mixes the race start time
  /// so concurrent races on one engine draw independent jitter, while the
  /// same seed + same schedule replays identically.
  std::optional<util::Rng> backoff_rng;

  sim::Simulator& simulator() {
    return engine->flow_simulator().simulator();
  }

  flow::FlowSimulator& fsim() { return engine->flow_simulator(); }

  /// World tracer, or null when tracing is off for this world.
  obs::Tracer* tracer() {
    obs::Tracer* t = fsim().tracer();
    return t != nullptr && t->enabled() ? t : nullptr;
  }

  /// Establishes the race's trace context exactly once: the caller's
  /// (e.g. a testbed session) when provided, otherwise self-derived from
  /// the seeded RNG tree — but only while the world tracer is on, so
  /// untraced runs derive nothing and replay bitwise.
  void ensure_trace() {
    if (trace.valid()) return;
    if (spec.trace.valid()) {
      trace = spec.trace;
      return;
    }
    if (tracer() == nullptr) return;
    std::uint64_t salt = 0;
    static_assert(sizeof(salt) == sizeof(start_time));
    std::memcpy(&salt, &start_time, sizeof(salt));
    util::Rng id_rng = fsim().derive_rng(salt ^ 0x712ACEull);
    trace = obs::make_trace_context(id_rng);
  }

  /// One complete span per transfer attempt inside the race (probe lane,
  /// remainder, fallback), parented under the race span by time nesting
  /// and — when the race carries a context — by explicit span ids.
  void emit_attempt_span(const char* name,
                         const overlay::TransferResult& result) {
    obs::Tracer* t = tracer();
    if (t == nullptr) return;
    std::string args = "{\"ok\":";
    args += result.ok ? "true" : "false";
    if (result.indirect) {
      args += ",\"relay\":" + std::to_string(result.relay);
    }
    args += '}';
    obs::TraceEvent ev;
    ev.name = name;
    ev.category = "sim.race";
    ev.phase = 'X';
    ev.track = fsim().trace_track();
    ev.ts_us = result.start_time * 1e6;
    ev.dur_us = result.elapsed() * 1e6;
    if (trace.valid()) {
      ev.trace_id = trace.trace_id;
      ev.span_id = trace.child(0x500 + ++attempt_seq).span_id;
      ev.parent_span = trace.span_id;
    }
    ev.args_json = std::move(args);
    t->append(std::move(ev));
  }

  /// The enclosing race span plus the race-level counters, emitted exactly
  /// once per race from finish_success/finish_error — so the probe_race
  /// span count equals the fetch (transfer) count by construction.
  void emit_race_end(const RaceOutcome& outcome) {
    obs::Registry& metrics = fsim().metrics();
    if (!outcome.ok) {
      metrics.counter("sim.race.races_failed").inc();
    } else if (outcome.chose_indirect) {
      metrics.counter("sim.race.races_won_indirect").inc();
    } else {
      metrics.counter("sim.race.races_won_direct").inc();
    }
    metrics.counter("sim.race.probe_failures").inc(outcome.probe_failures);
    metrics.counter("sim.race.retries").inc(outcome.retries);
    metrics.counter("sim.race.overload_rejections")
        .inc(outcome.overload_rejections);
    if (outcome.fell_back_direct) {
      metrics.counter("sim.race.fallbacks_direct").inc();
    }
    if (outcome.ok && outcome.probe_elapsed > 0.0) {
      metrics
          .histogram("sim.race.probe_seconds",
                     obs::HistogramOptions{1e-3, 1e3, 4})
          .observe(outcome.probe_elapsed);
    }
    record_flight(outcome);
    obs::Tracer* t = tracer();
    if (t == nullptr) return;
    std::string args = "{\"ok\":";
    args += outcome.ok ? "true" : "false";
    args += ",\"chose_indirect\":";
    args += outcome.chose_indirect ? "true" : "false";
    if (outcome.chose_indirect) {
      args += ",\"relay\":" + std::to_string(outcome.relay);
    }
    if (outcome.fell_back_direct) args += ",\"fell_back_direct\":true";
    args += '}';
    obs::TraceEvent ev;
    ev.name = "probe_race";
    ev.category = "sim.race";
    ev.phase = 'X';
    ev.track = fsim().trace_track();
    ev.ts_us = start_time * 1e6;
    ev.dur_us = outcome.total_elapsed * 1e6;
    if (trace.valid()) {
      ev.trace_id = trace.trace_id;
      ev.span_id = trace.span_id;
    }
    ev.args_json = std::move(args);
    t->append(std::move(ev));
  }

  /// The per-transfer flight record, mirrored from the outcome (one per
  /// race, success or failure), when the caller supplied a ring.
  void record_flight(const RaceOutcome& outcome) {
    if (spec.flights == nullptr) return;
    obs::FlightRecord rec;
    rec.trace_id = trace.trace_id;
    rec.source = "sim.race";
    rec.peer = spec.resource;
    rec.start_time = start_time;
    rec.ok = outcome.ok;
    rec.chose_indirect = outcome.chose_indirect;
    rec.race_skipped = outcome.race_skipped;
    rec.fell_back_direct = outcome.fell_back_direct;
    rec.relay_index = outcome.chose_indirect
                          ? static_cast<std::int64_t>(outcome.relay)
                          : -1;
    rec.probe_elapsed_s = outcome.probe_elapsed;
    rec.total_elapsed_s = outcome.total_elapsed;
    rec.bytes_total = static_cast<std::uint64_t>(
        std::llround(outcome.total_bytes));
    rec.bytes_probe =
        outcome.race_skipped
            ? 0
            : probe_span * static_cast<std::uint64_t>(
                               spec.candidate_relays.size());
    rec.retries = outcome.retries;
    rec.probe_failures = outcome.probe_failures;
    rec.overload_rejections = outcome.overload_rejections;
    spec.flights->record(std::move(rec));
  }

  util::Rng& rng() {
    if (!backoff_rng) {
      std::uint64_t salt = 0;
      static_assert(sizeof(salt) == sizeof(start_time));
      std::memcpy(&salt, &start_time, sizeof(salt));
      backoff_rng.emplace(
          engine->flow_simulator().derive_rng(salt ^ 0xFA157ull));
    }
    return *backoff_rng;
  }

  void note_failed_relay(const std::optional<net::NodeId>& relay) {
    if (!relay) return;
    if (std::find(failed_relays.begin(), failed_relays.end(), *relay) ==
        failed_relays.end()) {
      failed_relays.push_back(*relay);
    }
  }

  /// A shed (overload-rejected) attempt: the relay is alive, so it feeds
  /// the shorter "overloaded" penalty instead of the crash blacklist.
  void note_overloaded_relay(const std::optional<net::NodeId>& relay) {
    ++overload_rejections;
    if (!relay) return;
    if (std::find(overloaded_relays.begin(), overloaded_relays.end(),
                  *relay) == overloaded_relays.end()) {
      overloaded_relays.push_back(*relay);
    }
  }

  void note_attempt_failure(const std::optional<net::NodeId>& relay,
                            const overlay::TransferResult& result) {
    if (result.overloaded) {
      note_overloaded_relay(relay);
    } else {
      note_failed_relay(relay);
    }
  }

  void stamp(RaceOutcome& outcome) const {
    outcome.race_skipped = race_skipped;
    outcome.probe_failures = probe_failures;
    outcome.retries = retries;
    outcome.fell_back_direct = fell_back_direct;
    outcome.failed_relays = failed_relays;
    outcome.overload_rejections = overload_rejections;
    outcome.overloaded_relays = overloaded_relays;
  }

  void finish_error(std::string error) {
    RaceOutcome outcome;
    outcome.ok = false;
    outcome.error = std::move(error);
    outcome.total_elapsed = simulator().now() - start_time;
    stamp(outcome);
    emit_race_end(outcome);
    on_done(outcome);
  }
};

void on_probe_done(const std::shared_ptr<RaceState>& state,
                   std::size_t index, const overlay::TransferResult& result);
void start_remainder(const std::shared_ptr<RaceState>& state,
                     std::size_t attempt, bool via_direct);
void start_direct_fallback(const std::shared_ptr<RaceState>& state,
                           std::size_t attempt);

void finish_success(const std::shared_ptr<RaceState>& state,
                    const overlay::TransferResult* remainder) {
  RaceOutcome outcome;
  outcome.ok = true;
  outcome.chose_indirect = state->winner.has_value();
  outcome.relay = state->winner.value_or(net::kInvalidNode);
  outcome.probe_elapsed = state->probe_elapsed;
  outcome.total_elapsed = state->simulator().now() - state->start_time;
  outcome.total_bytes = state->file_size;
  if (remainder != nullptr) {
    outcome.remainder_bytes = remainder->bytes;
    outcome.remainder_elapsed = remainder->elapsed();
  }
  state->stamp(outcome);
  state->emit_race_end(outcome);
  state->on_done(outcome);
}

/// All probe lanes died (fault windows, resets, or timeout): abandon
/// selection and salvage the transfer with a plain full-file direct
/// request, retried under the backoff policy. This is the "graceful
/// degradation to what a non-selecting client would have done" path.
void start_direct_fallback(const std::shared_ptr<RaceState>& state,
                           std::size_t attempt) {
  state->fell_back_direct = true;
  overlay::TransferRequest req;
  req.client = state->spec.client;
  req.server = state->spec.server;
  req.resource = state->spec.resource;
  req.tcp = state->spec.tcp;
  state->engine->begin(
      req, [state, attempt](const overlay::TransferResult& result) {
        state->emit_attempt_span("fallback", result);
        if (result.ok) {
          state->winner.reset();
          finish_success(state, nullptr);
          return;
        }
        if (attempt < state->spec.retry.max_retries) {
          ++state->retries;
          // An overloaded peer's Retry-After floor beats our backoff:
          // retrying sooner would just be shed again.
          const util::Duration delay = std::max(
              fault::backoff_delay(state->spec.retry, attempt, state->rng()),
              result.retry_after);
          state->simulator().schedule_in(delay, [state, attempt] {
            start_direct_fallback(state, attempt + 1);
          });
          return;
        }
        state->finish_error("all probes failed and direct fallback died: " +
                            result.error);
      });
}

void launch(const std::shared_ptr<RaceState>& state) {
  const auto size = state->spec.server->resource_size(state->spec.resource);
  if (!size) {
    state->finish_error("unknown resource " + state->spec.resource);
    return;
  }
  state->race_skipped = false;
  state->file_size = *size;
  state->start_time = state->simulator().now();
  state->ensure_trace();

  // Direct probe first, then one per candidate relay. The probe range is
  // bytes=0-(x-1); if the file is smaller than x the range resolves to the
  // whole file and the race decides everything.
  std::vector<std::optional<net::NodeId>> lanes;
  lanes.emplace_back(std::nullopt);
  for (net::NodeId relay : state->spec.candidate_relays) {
    lanes.emplace_back(relay);
  }

  state->probe_span = static_cast<std::uint64_t>(
      std::llround(std::min(state->spec.probe_bytes, state->file_size)));
  IDR_REQUIRE(state->probe_span > 0, "probe race: zero probe size");

  // Selection-plane accounting: a race ran, and its probe overhead is the
  // probe span sent down every losing lane (the winner's probe counts
  // toward the file, exactly one lane wins). Charged at launch; lanes
  // cancelled early still consumed capacity.
  obs::Registry& select_metrics = state->fsim().metrics();
  select_metrics.counter("sim.select.races_run").inc();
  select_metrics.counter("sim.select.probe_bytes")
      .inc(state->probe_span *
           static_cast<std::uint64_t>(lanes.size() - 1));

  state->probes.resize(lanes.size());
  state->pending = lanes.size();
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    state->probes[i].relay = lanes[i];
    overlay::TransferRequest req;
    req.client = state->spec.client;
    req.server = state->spec.server;
    req.resource = state->spec.resource;
    req.range = http::range_first_bytes(state->probe_span);
    req.relay = lanes[i];
    req.tcp = state->spec.tcp;
    const std::size_t index = i;
    state->probes[i].handle = state->engine->begin(
        req, [state, index](const overlay::TransferResult& result) {
          on_probe_done(state, index, result);
        });
  }

  // A lane whose relay silently died would otherwise stall the race
  // forever; past the deadline every unfinished lane is declared failed.
  if (state->spec.probe_timeout > 0.0) {
    state->timeout_event = state->simulator().schedule_in(
        state->spec.probe_timeout, [state] {
          state->timeout_event = 0;
          if (state->decided || state->pending == 0) return;
          for (auto& probe : state->probes) {
            if (probe.finished) continue;
            state->engine->cancel(probe.handle);
            probe.finished = true;
            --state->pending;
            ++state->probe_failures;
            state->note_failed_relay(probe.relay);
          }
          start_direct_fallback(state, 0);
        });
  }
}

/// The skipped-race path: the selection policy pinned a relay with a
/// fresh estimate, so the whole file is fetched through it in a single
/// transfer — no probe range, no competing lanes, zero probe bytes. On
/// failure the pin is abandoned honestly: the failure is charged to the
/// relay (blacklist input) and the full race launches over the spec's
/// candidate set, as if the pin had never existed.
void start_pinned(const std::shared_ptr<RaceState>& state) {
  const auto size = state->spec.server->resource_size(state->spec.resource);
  if (!size) {
    state->finish_error("unknown resource " + state->spec.resource);
    return;
  }
  state->race_skipped = true;
  state->file_size = *size;
  state->start_time = state->simulator().now();
  state->ensure_trace();
  const net::NodeId pinned = *state->spec.pinned_relay;

  obs::Registry& metrics = state->fsim().metrics();
  metrics.counter("sim.select.races_skipped").inc();
  metrics
      .histogram("sim.select.estimate_age",
                 obs::HistogramOptions{1e-1, 1e5, 4})
      .observe(state->spec.pinned_estimate_age);

  overlay::TransferRequest req;
  req.client = state->spec.client;
  req.server = state->spec.server;
  req.resource = state->spec.resource;
  req.relay = pinned;
  req.tcp = state->spec.tcp;
  state->engine->begin(
      req, [state, pinned](const overlay::TransferResult& result) {
        state->emit_attempt_span("pinned", result);
        if (result.ok) {
          state->winner = pinned;
          // The whole transfer is "remainder": probe_elapsed stays 0 and
          // steady_throughput measures the full single-lane fetch.
          finish_success(state, &result);
          return;
        }
        state->note_attempt_failure(pinned, result);
        state->fsim().metrics()
            .counter("sim.select.pinned_fallbacks").inc();
        launch(state);
      });
}

/// The "bytes=x-" remainder with bounded retry: first attempt rides the
/// winner's warm connection; retries reconnect cold (the connection died
/// with the failure); once the winner's chain is exhausted the remainder
/// falls back to a fresh direct connection with its own retry chain.
void start_remainder(const std::shared_ptr<RaceState>& state,
                     std::size_t attempt, bool via_direct) {
  overlay::TransferRequest rest;
  rest.client = state->spec.client;
  rest.server = state->spec.server;
  rest.resource = state->spec.resource;
  rest.range = http::range_from_offset(state->probe_span);
  rest.relay = via_direct ? std::nullopt : state->winner;
  rest.warm_connection = attempt == 0 && !via_direct;
  rest.tcp = state->spec.tcp;
  state->engine->begin(
      rest, [state, attempt,
             via_direct](const overlay::TransferResult& remainder) {
        state->emit_attempt_span("remainder", remainder);
        if (remainder.ok) {
          finish_success(state, &remainder);
          return;
        }
        if (!via_direct) state->note_attempt_failure(state->winner, remainder);
        if (attempt < state->spec.retry.max_retries) {
          ++state->retries;
          const util::Duration delay = std::max(
              fault::backoff_delay(state->spec.retry, attempt, state->rng()),
              remainder.retry_after);
          state->simulator().schedule_in(delay, [state, attempt, via_direct] {
            start_remainder(state, attempt + 1, via_direct);
          });
          return;
        }
        if (!via_direct && state->winner.has_value()) {
          // Selected relay is dead: degrade to the direct path rather than
          // failing the whole transfer.
          state->fell_back_direct = true;
          start_remainder(state, 0, /*via_direct=*/true);
          return;
        }
        state->finish_error("remainder transfer failed after retries: " +
                            remainder.error);
      });
}

void on_probe_done(const std::shared_ptr<RaceState>& state,
                   std::size_t index, const overlay::TransferResult& result) {
  auto& probe = state->probes[index];
  probe.finished = true;
  --state->pending;
  state->emit_attempt_span("probe_lane", result);

  if (state->decided) return;  // a loser draining out; already cancelled?

  if (!result.ok) {
    ++state->probe_failures;
    state->note_attempt_failure(probe.relay, result);
    if (state->pending == 0) {
      // Every lane (direct included) died before finishing its probe.
      // Try to salvage the transfer with a plain direct request — the
      // failures may have been transient resets or a closing window.
      if (state->timeout_event != 0) {
        state->simulator().cancel(state->timeout_event);
        state->timeout_event = 0;
      }
      start_direct_fallback(state, 0);
    }
    return;  // other lanes still racing
  }

  // First successful probe wins the race.
  state->decided = true;
  state->winner = probe.relay;
  state->probe_elapsed = result.finish_time - state->start_time;
  if (state->timeout_event != 0) {
    state->simulator().cancel(state->timeout_event);
    state->timeout_event = 0;
  }

  for (auto& other : state->probes) {
    if (!other.finished) state->engine->cancel(other.handle);
  }

  if (state->probe_span >= static_cast<std::uint64_t>(
                               std::llround(state->file_size))) {
    // The probe covered the whole file.
    finish_success(state, nullptr);
    return;
  }
  start_remainder(state, 0, /*via_direct=*/false);
}

}  // namespace

void start_probe_race(overlay::TransferEngine& engine, const RaceSpec& spec,
                      RaceCallback on_done) {
  IDR_REQUIRE(spec.server != nullptr, "start_probe_race: null server");
  IDR_REQUIRE(spec.probe_bytes > 0.0,
              "start_probe_race: non-positive probe size");
  IDR_REQUIRE(spec.probe_timeout >= 0.0,
              "start_probe_race: negative probe timeout");
  IDR_REQUIRE(on_done != nullptr, "start_probe_race: null callback");
  IDR_REQUIRE(!spec.pinned_relay.has_value() ||
                  *spec.pinned_relay != net::kInvalidNode,
              "start_probe_race: invalid pinned relay");
  auto state = std::make_shared<RaceState>();
  state->engine = &engine;
  state->spec = spec;
  state->on_done = std::move(on_done);
  engine.flow_simulator().metrics().counter("sim.race.races_started").inc();
  if (state->spec.pinned_relay.has_value()) {
    start_pinned(state);
  } else {
    launch(state);
  }
}

}  // namespace idr::core
