// The paper's performance metrics and client classifications.
#pragma once

#include <string_view>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace idr::core {

using util::Rate;

/// Throughput improvement in percent, relative to the DIRECT path:
///   100 * (T_selected - T_direct) / T_direct.
/// This is the paper's Fig. 1/2/3/6 metric; it is bounded below by -100.
double improvement_pct(Rate selected, Rate direct);

/// Penalty in percent, relative to the SELECTED path:
///   100 * (T_direct - T_selected) / T_selected.
/// Table I reports penalties up to 3840 %, which is only expressible
/// relative to the selected path (improvement_pct cannot go below -100).
/// Positive iff the selection lost to the direct path.
double penalty_pct(Rate selected, Rate direct);

/// The paper's client classes by average direct-path throughput:
/// Low 0-1.5 Mbps, Medium 1.5-3.0 Mbps, High > 3.0 Mbps.
enum class ThroughputCategory { Low, Medium, High };

ThroughputCategory categorize_throughput(Rate average_direct);
std::string_view category_name(ThroughputCategory c);

/// Direct-path variability classes, split by coefficient of variation of
/// the measured direct throughputs. The paper's Table I "low variability"
/// filter keeps Low/Medium clients whose direct path is stable.
enum class VariabilityClass { Low, High };

/// Default CV threshold separating stable from variable direct paths.
inline constexpr double kVariabilityCvThreshold = 0.30;

VariabilityClass classify_variability(
    const util::OnlineStats& direct_throughput,
    double cv_threshold = kVariabilityCvThreshold);

std::string_view variability_name(VariabilityClass v);

/// Aggregate penalty statistics over a set of improvement observations,
/// as in Table I: the fraction of experiments with negative improvement,
/// and the mean / stddev / max of the penalties among them.
struct PenaltySummary {
  double penalty_fraction = 0.0;  // share of experiments that lost
  double avg_penalty_pct = 0.0;
  double stddev_penalty_pct = 0.0;
  double max_penalty_pct = 0.0;
  std::size_t total_points = 0;
  std::size_t penalty_points = 0;
};

/// `selected_direct_pairs` holds (T_selected, T_direct) rate pairs.
PenaltySummary summarize_penalties(
    const std::vector<std::pair<Rate, Rate>>& selected_direct_pairs);

}  // namespace idr::core
