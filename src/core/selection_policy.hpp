// Intermediate-node (relay) selection policies — Section 4 of the paper.
//
// A policy chooses which relays to *probe* for a given transfer; the probe
// race (probe_race.hpp) then picks the winner among {direct} ∪ candidates.
// The paper evaluates a uniform random subset of size n (Fig. 6) and
// suggests utilization-weighted sampling as future work; both are here,
// alongside the static single relay of Section 2 and a full-set baseline.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/membership.hpp"
#include "core/relay_stats.hpp"
#include "util/rng.hpp"

namespace idr::core {

/// Per-transfer routing decision. `candidates` is the probe set the race
/// runs over; when `pinned` is set the client should skip the race and
/// fetch the whole resource through that relay, keeping `candidates` as
/// the fallback set should the pinned transfer fail. Candidates are
/// already blacklist-filtered; the pinned relay (if any) is never
/// blacklisted at decision time.
struct SelectionDecision {
  std::vector<net::NodeId> candidates;
  std::optional<net::NodeId> pinned;
  /// Age (seconds) of the pinned relay's race-validated estimate at
  /// decision time. Meaningless unless `pinned` is set.
  util::Duration pinned_age = 0.0;
};

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Returns the relays to probe for the next transfer. `stats` carries
  /// the registered relay set and their history; `rng` is the caller's
  /// stream (policies must not keep their own hidden state streams).
  virtual std::vector<net::NodeId> choose_candidates(
      const RelayStatsTable& stats, util::Rng& rng) = 0;

  /// Full per-transfer decision: candidate set plus an optional pinned
  /// relay that skips the race. The base implementation races always —
  /// choose_candidates filtered against the blacklist at `now`, no pin —
  /// so every pre-existing policy keeps its exact behavior (including
  /// RNG stream consumption) through this hook.
  virtual SelectionDecision decide(const RelayStatsTable& stats,
                                   util::Rng& rng, util::TimePoint now);

  /// Optional fleet-membership filter: when a table is set, decide()
  /// drops candidates (and refuses pins) the directory marks ineligible
  /// — down, draining, on probation, or holding a Retry-After — *before*
  /// the race, so dead relays never cost probe connections. The filter
  /// runs after the policy's own draw, exactly like the blacklist, so
  /// RNG stream consumption is unchanged whether or not a table is set.
  /// Null (the default) disables it; the caller keeps ownership and the
  /// table must outlive the policy.
  void set_membership(const MembershipTable* membership) {
    membership_ = membership;
  }
  const MembershipTable* membership() const { return membership_; }

  virtual const char* name() const = 0;

 protected:
  /// Blacklist + membership veto, the one filter every decision path
  /// (raced candidates and pins alike) must pass.
  bool admissible(const RelayStatsTable& stats, net::NodeId relay,
                  util::TimePoint now) const {
    return !stats.blacklisted(relay, now) &&
           (membership_ == nullptr || membership_->eligible(relay, now));
  }

 private:
  const MembershipTable* membership_ = nullptr;
};

/// Never probes any relay: the direct path is always used. Baseline.
class DirectOnlyPolicy final : public SelectionPolicy {
 public:
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable&,
                                             util::Rng&) override;
  const char* name() const override { return "direct-only"; }
};

/// Always probes one fixed relay (the Section 2 methodology).
class StaticRelayPolicy final : public SelectionPolicy {
 public:
  explicit StaticRelayPolicy(net::NodeId relay);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable&,
                                             util::Rng&) override;
  const char* name() const override { return "static-relay"; }

 private:
  net::NodeId relay_;
};

/// Uniformly random subset of n relays from the full set (the Section 4
/// "random set"). n is clamped to the full-set size.
class UniformRandomSubsetPolicy final : public SelectionPolicy {
 public:
  explicit UniformRandomSubsetPolicy(std::size_t subset_size);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  const char* name() const override { return "uniform-random-subset"; }
  std::size_t subset_size() const { return subset_size_; }

 private:
  std::size_t subset_size_;
};

/// Random subset of n relays sampled without replacement with probability
/// proportional to historical utilization (+ an exploration floor) — the
/// enhancement the paper's conclusion proposes: "use the utilization data
/// to weight the likelihood of a node appearing in the random set".
class WeightedRandomSubsetPolicy final : public SelectionPolicy {
 public:
  WeightedRandomSubsetPolicy(std::size_t subset_size,
                             double exploration_floor = 0.05);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  const char* name() const override { return "weighted-random-subset"; }

 private:
  std::size_t subset_size_;
  double exploration_floor_;
};

/// Probes every registered relay. Upper bound on achievable improvement
/// (at maximal probing overhead).
class FullSetPolicy final : public SelectionPolicy {
 public:
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng&) override;
  const char* name() const override { return "full-set"; }
};

/// Explicit races-every-transfer decorator over an inner candidate
/// policy — the paper's behavior, named so a config can say so. Identical
/// to handing the inner policy to the client directly; exists to make
/// "always race" a first-class point in the policy matrix.
class AlwaysRacePolicy final : public SelectionPolicy {
 public:
  explicit AlwaysRacePolicy(std::unique_ptr<SelectionPolicy> inner);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  const char* name() const override { return "always-race"; }

 private:
  std::unique_ptr<SelectionPolicy> inner_;
};

/// Skips the probe race when a race-validated throughput estimate is
/// fresh: pins the transfer to the relay with the best estimate younger
/// than `max_age`, keeping the inner policy's candidate set as the
/// fallback race should the pinned transfer fail. When every estimate is
/// stale (or none exists, or the best relays are blacklisted), races
/// exactly like the inner policy. Because only race wins refresh
/// validated age (see EstimateSource), a pinned relay goes stale on the
/// threshold timescale and forces a re-validating race.
class RaceOnStalenessPolicy final : public SelectionPolicy {
 public:
  RaceOnStalenessPolicy(std::unique_ptr<SelectionPolicy> race_policy,
                        util::Duration max_age);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  SelectionDecision decide(const RelayStatsTable& stats, util::Rng& rng,
                           util::TimePoint now) override;
  const char* name() const override { return "race-on-staleness"; }
  util::Duration max_age() const { return max_age_; }

 private:
  std::unique_ptr<SelectionPolicy> race_policy_;
  util::Duration max_age_;
};

/// Bandwidth-weighted sampling over the passive EWMA estimates, with a
/// per-relay utilization cap: a relay already holding more than
/// `utilization_cap` of all selections is excluded from the weighted
/// draw (unless every eligible relay is capped), so the fleet cannot
/// herd onto the single top estimate — the saturation Table III of the
/// paper shows. Relays without estimates ride on the exploration floor.
/// Still races over the sampled set; the estimates shape *who gets
/// probed*, not whether probing happens.
class HybridWeightedPassivePolicy final : public SelectionPolicy {
 public:
  HybridWeightedPassivePolicy(std::size_t subset_size,
                              double utilization_cap = 0.5,
                              double exploration_floor = 0.05);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  const char* name() const override { return "hybrid-weighted-passive"; }
  double utilization_cap() const { return utilization_cap_; }

 private:
  std::size_t subset_size_;
  double utilization_cap_;
  double exploration_floor_;
};

}  // namespace idr::core
