// Intermediate-node (relay) selection policies — Section 4 of the paper.
//
// A policy chooses which relays to *probe* for a given transfer; the probe
// race (probe_race.hpp) then picks the winner among {direct} ∪ candidates.
// The paper evaluates a uniform random subset of size n (Fig. 6) and
// suggests utilization-weighted sampling as future work; both are here,
// alongside the static single relay of Section 2 and a full-set baseline.
#pragma once

#include <memory>
#include <vector>

#include "core/relay_stats.hpp"
#include "util/rng.hpp"

namespace idr::core {

class SelectionPolicy {
 public:
  virtual ~SelectionPolicy() = default;

  /// Returns the relays to probe for the next transfer. `stats` carries
  /// the registered relay set and their history; `rng` is the caller's
  /// stream (policies must not keep their own hidden state streams).
  virtual std::vector<net::NodeId> choose_candidates(
      const RelayStatsTable& stats, util::Rng& rng) = 0;

  virtual const char* name() const = 0;
};

/// Never probes any relay: the direct path is always used. Baseline.
class DirectOnlyPolicy final : public SelectionPolicy {
 public:
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable&,
                                             util::Rng&) override;
  const char* name() const override { return "direct-only"; }
};

/// Always probes one fixed relay (the Section 2 methodology).
class StaticRelayPolicy final : public SelectionPolicy {
 public:
  explicit StaticRelayPolicy(net::NodeId relay);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable&,
                                             util::Rng&) override;
  const char* name() const override { return "static-relay"; }

 private:
  net::NodeId relay_;
};

/// Uniformly random subset of n relays from the full set (the Section 4
/// "random set"). n is clamped to the full-set size.
class UniformRandomSubsetPolicy final : public SelectionPolicy {
 public:
  explicit UniformRandomSubsetPolicy(std::size_t subset_size);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  const char* name() const override { return "uniform-random-subset"; }
  std::size_t subset_size() const { return subset_size_; }

 private:
  std::size_t subset_size_;
};

/// Random subset of n relays sampled without replacement with probability
/// proportional to historical utilization (+ an exploration floor) — the
/// enhancement the paper's conclusion proposes: "use the utilization data
/// to weight the likelihood of a node appearing in the random set".
class WeightedRandomSubsetPolicy final : public SelectionPolicy {
 public:
  WeightedRandomSubsetPolicy(std::size_t subset_size,
                             double exploration_floor = 0.05);
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;
  const char* name() const override { return "weighted-random-subset"; }

 private:
  std::size_t subset_size_;
  double exploration_floor_;
};

/// Probes every registered relay. Upper bound on achievable improvement
/// (at maximal probing overhead).
class FullSetPolicy final : public SelectionPolicy {
 public:
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng&) override;
  const char* name() const override { return "full-set"; }
};

}  // namespace idr::core
