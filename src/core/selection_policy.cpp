#include "core/selection_policy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idr::core {

SelectionDecision SelectionPolicy::decide(const RelayStatsTable& stats,
                                          util::Rng& rng,
                                          util::TimePoint now) {
  SelectionDecision decision;
  decision.candidates = choose_candidates(stats, rng);
  // Relays serving out a blacklist penalty — or vetoed by the fleet
  // membership directory — are dropped after the policy draw (candidate
  // policies are time-oblivious); doing it here rather than in the
  // client makes "never returns a blacklisted or dead relay" a property
  // of every decision, pinned or raced.
  decision.candidates.erase(
      std::remove_if(decision.candidates.begin(), decision.candidates.end(),
                     [&](net::NodeId relay) {
                       return !admissible(stats, relay, now);
                     }),
      decision.candidates.end());
  return decision;
}

std::vector<net::NodeId> DirectOnlyPolicy::choose_candidates(
    const RelayStatsTable&, util::Rng&) {
  return {};
}

StaticRelayPolicy::StaticRelayPolicy(net::NodeId relay) : relay_(relay) {
  IDR_REQUIRE(relay != net::kInvalidNode, "StaticRelayPolicy: invalid relay");
}

std::vector<net::NodeId> StaticRelayPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng&) {
  IDR_REQUIRE(stats.has_relay(relay_),
              "StaticRelayPolicy: relay not registered in stats table");
  return {relay_};
}

UniformRandomSubsetPolicy::UniformRandomSubsetPolicy(std::size_t subset_size)
    : subset_size_(subset_size) {
  IDR_REQUIRE(subset_size_ > 0, "UniformRandomSubsetPolicy: n must be > 0");
}

std::vector<net::NodeId> UniformRandomSubsetPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  const auto& records = stats.records();
  const std::size_t n = std::min(subset_size_, records.size());
  const auto picks = rng.sample_without_replacement(records.size(), n);
  std::vector<net::NodeId> out;
  out.reserve(n);
  for (std::size_t i : picks) out.push_back(records[i].relay);
  return out;
}

WeightedRandomSubsetPolicy::WeightedRandomSubsetPolicy(
    std::size_t subset_size, double exploration_floor)
    : subset_size_(subset_size), exploration_floor_(exploration_floor) {
  IDR_REQUIRE(subset_size_ > 0, "WeightedRandomSubsetPolicy: n must be > 0");
  IDR_REQUIRE(exploration_floor_ > 0.0,
              "WeightedRandomSubsetPolicy: floor must be positive so every "
              "relay stays reachable");
}

std::vector<net::NodeId> WeightedRandomSubsetPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  auto weighted = stats.selection_weights(exploration_floor_);
  const std::size_t n = std::min(subset_size_, weighted.size());
  std::vector<net::NodeId> out;
  out.reserve(n);
  // Successive weighted draws without replacement.
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> weights;
    weights.reserve(weighted.size());
    for (const auto& [relay, w] : weighted) weights.push_back(w);
    const std::size_t pick = rng.weighted_index(weights);
    out.push_back(weighted[pick].first);
    weighted.erase(weighted.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

std::vector<net::NodeId> FullSetPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng&) {
  std::vector<net::NodeId> out;
  out.reserve(stats.relay_count());
  for (const auto& r : stats.records()) out.push_back(r.relay);
  return out;
}

AlwaysRacePolicy::AlwaysRacePolicy(std::unique_ptr<SelectionPolicy> inner)
    : inner_(std::move(inner)) {
  IDR_REQUIRE(inner_ != nullptr, "AlwaysRacePolicy: null inner policy");
}

std::vector<net::NodeId> AlwaysRacePolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  return inner_->choose_candidates(stats, rng);
}

RaceOnStalenessPolicy::RaceOnStalenessPolicy(
    std::unique_ptr<SelectionPolicy> race_policy, util::Duration max_age)
    : race_policy_(std::move(race_policy)), max_age_(max_age) {
  IDR_REQUIRE(race_policy_ != nullptr,
              "RaceOnStalenessPolicy: null race policy");
  IDR_REQUIRE(max_age_ > 0.0,
              "RaceOnStalenessPolicy: non-positive staleness threshold");
}

std::vector<net::NodeId> RaceOnStalenessPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  return race_policy_->choose_candidates(stats, rng);
}

SelectionDecision RaceOnStalenessPolicy::decide(const RelayStatsTable& stats,
                                                util::Rng& rng,
                                                util::TimePoint now) {
  // The fallback candidate set is drawn eagerly, pin or no pin, so the
  // RNG stream advances identically on every transfer — whether a race
  // is skipped must never shift later draws (determinism across thread
  // counts and against the always-race baseline depends on it).
  SelectionDecision decision = SelectionPolicy::decide(stats, rng, now);
  const net::NodeId pin = stats.best_fresh_estimate(now, max_age_);
  // A fresh estimate is not enough: a pin must also clear the membership
  // veto, or a drained relay with a recent race win would keep drawing
  // whole transfers while the directory screams "draining".
  if (pin != net::kInvalidNode && admissible(stats, pin, now)) {
    decision.pinned = pin;
    decision.pinned_age = stats.validated_age(pin, now);
  }
  return decision;
}

HybridWeightedPassivePolicy::HybridWeightedPassivePolicy(
    std::size_t subset_size, double utilization_cap, double exploration_floor)
    : subset_size_(subset_size),
      utilization_cap_(utilization_cap),
      exploration_floor_(exploration_floor) {
  IDR_REQUIRE(subset_size_ > 0, "HybridWeightedPassivePolicy: n must be > 0");
  IDR_REQUIRE(utilization_cap_ > 0.0 && utilization_cap_ <= 1.0,
              "HybridWeightedPassivePolicy: cap must be in (0, 1]");
  IDR_REQUIRE(exploration_floor_ > 0.0,
              "HybridWeightedPassivePolicy: floor must be positive so "
              "unmeasured relays stay reachable");
}

std::vector<net::NodeId> HybridWeightedPassivePolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  const auto& records = stats.records();
  const std::size_t total = stats.total_selections();

  // Estimates normalized against the current best so the floor has a
  // stable meaning regardless of absolute throughput scale.
  double max_estimate = 0.0;
  for (const auto& r : records) {
    max_estimate = std::max(max_estimate, r.ewma_throughput);
  }

  // A relay already holding more than its cap's share of all selections
  // is excluded from the draw entirely (weight 0). weighted_index treats
  // zero weights as unpickable — and falls back to uniform when *every*
  // relay is capped, which is exactly the intended degenerate behavior.
  // The cap only engages once enough selections exist for shares to be
  // meaningful; early on everything is explored freely.
  constexpr std::size_t kMinSelectionsForCap = 10;
  std::vector<std::pair<net::NodeId, double>> weighted;
  weighted.reserve(records.size());
  for (const auto& r : records) {
    const bool capped =
        total >= kMinSelectionsForCap &&
        static_cast<double>(r.selections) >
            utilization_cap_ * static_cast<double>(total);
    double weight = 0.0;
    if (!capped) {
      weight = exploration_floor_;
      if (max_estimate > 0.0 && r.estimate_samples > 0) {
        weight += r.ewma_throughput / max_estimate;
      }
    }
    weighted.emplace_back(r.relay, weight);
  }

  const std::size_t n = std::min(subset_size_, weighted.size());
  std::vector<net::NodeId> out;
  out.reserve(n);
  // Successive weighted draws without replacement, same idiom as the
  // utilization-weighted policy.
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> weights;
    weights.reserve(weighted.size());
    for (const auto& [relay, w] : weighted) weights.push_back(w);
    const std::size_t pick = rng.weighted_index(weights);
    out.push_back(weighted[pick].first);
    weighted.erase(weighted.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace idr::core
