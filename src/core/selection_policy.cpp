#include "core/selection_policy.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idr::core {

std::vector<net::NodeId> DirectOnlyPolicy::choose_candidates(
    const RelayStatsTable&, util::Rng&) {
  return {};
}

StaticRelayPolicy::StaticRelayPolicy(net::NodeId relay) : relay_(relay) {
  IDR_REQUIRE(relay != net::kInvalidNode, "StaticRelayPolicy: invalid relay");
}

std::vector<net::NodeId> StaticRelayPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng&) {
  IDR_REQUIRE(stats.has_relay(relay_),
              "StaticRelayPolicy: relay not registered in stats table");
  return {relay_};
}

UniformRandomSubsetPolicy::UniformRandomSubsetPolicy(std::size_t subset_size)
    : subset_size_(subset_size) {
  IDR_REQUIRE(subset_size_ > 0, "UniformRandomSubsetPolicy: n must be > 0");
}

std::vector<net::NodeId> UniformRandomSubsetPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  const auto& records = stats.records();
  const std::size_t n = std::min(subset_size_, records.size());
  const auto picks = rng.sample_without_replacement(records.size(), n);
  std::vector<net::NodeId> out;
  out.reserve(n);
  for (std::size_t i : picks) out.push_back(records[i].relay);
  return out;
}

WeightedRandomSubsetPolicy::WeightedRandomSubsetPolicy(
    std::size_t subset_size, double exploration_floor)
    : subset_size_(subset_size), exploration_floor_(exploration_floor) {
  IDR_REQUIRE(subset_size_ > 0, "WeightedRandomSubsetPolicy: n must be > 0");
  IDR_REQUIRE(exploration_floor_ > 0.0,
              "WeightedRandomSubsetPolicy: floor must be positive so every "
              "relay stays reachable");
}

std::vector<net::NodeId> WeightedRandomSubsetPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng& rng) {
  auto weighted = stats.selection_weights(exploration_floor_);
  const std::size_t n = std::min(subset_size_, weighted.size());
  std::vector<net::NodeId> out;
  out.reserve(n);
  // Successive weighted draws without replacement.
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> weights;
    weights.reserve(weighted.size());
    for (const auto& [relay, w] : weighted) weights.push_back(w);
    const std::size_t pick = rng.weighted_index(weights);
    out.push_back(weighted[pick].first);
    weighted.erase(weighted.begin() + static_cast<std::ptrdiff_t>(pick));
  }
  return out;
}

std::vector<net::NodeId> FullSetPolicy::choose_candidates(
    const RelayStatsTable& stats, util::Rng&) {
  std::vector<net::NodeId> out;
  out.reserve(stats.relay_count());
  for (const auto& r : stats.records()) out.push_back(r.relay);
  return out;
}

}  // namespace idr::core
