#include "core/predictors.hpp"

#include "util/error.hpp"

namespace idr::core {

EwmaSelector::EwmaSelector(std::size_t options, double alpha, double epsilon)
    : scores_(options), alpha_(alpha), epsilon_(epsilon) {
  IDR_REQUIRE(options > 0, "EwmaSelector: no options");
  IDR_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EwmaSelector: alpha outside (0,1]");
  IDR_REQUIRE(epsilon >= 0.0 && epsilon < 1.0,
              "EwmaSelector: epsilon outside [0,1)");
}

std::size_t EwmaSelector::choose(util::Rng& rng) {
  // Measure every arm once before going greedy.
  for (std::size_t i = 0; i < scores_.size(); ++i) {
    if (!scores_[i].seen) return i;
  }
  if (scores_.size() > 1 && rng.bernoulli(epsilon_)) {
    // Explore: uniform over the non-greedy arms.
    const std::size_t greedy = best();
    auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(scores_.size()) - 2));
    if (pick >= greedy) ++pick;
    return pick;
  }
  return best();
}

void EwmaSelector::observe(std::size_t option, util::Rate throughput) {
  IDR_REQUIRE(option < scores_.size(), "EwmaSelector: bad option");
  IDR_REQUIRE(throughput >= 0.0, "EwmaSelector: negative throughput");
  Arm& arm = scores_[option];
  if (!arm.seen) {
    arm.seen = true;
    arm.ewma = throughput;
  } else {
    arm.ewma = alpha_ * throughput + (1.0 - alpha_) * arm.ewma;
  }
}

std::optional<util::Rate> EwmaSelector::score(std::size_t option) const {
  IDR_REQUIRE(option < scores_.size(), "EwmaSelector: bad option");
  if (!scores_[option].seen) return std::nullopt;
  return scores_[option].ewma;
}

std::size_t EwmaSelector::best() const {
  std::size_t best_index = SIZE_MAX;
  double best_score = -1.0;
  for (std::size_t i = 0; i < scores_.size(); ++i) {
    if (scores_[i].seen && scores_[i].ewma > best_score) {
      best_score = scores_[i].ewma;
      best_index = i;
    }
  }
  IDR_REQUIRE(best_index != SIZE_MAX, "EwmaSelector::best: no observations");
  return best_index;
}

}  // namespace idr::core
