#include "core/membership.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idr::core {

const char* relay_health_name(RelayHealth health) {
  switch (health) {
    case RelayHealth::Alive: return "alive";
    case RelayHealth::Suspect: return "suspect";
    case RelayHealth::Down: return "down";
    case RelayHealth::Probation: return "probation";
    case RelayHealth::Draining: return "draining";
    case RelayHealth::Shedding: return "shedding";
  }
  return "unknown";
}

MembershipTable::MembershipTable(MembershipConfig config)
    : config_(config) {
  IDR_REQUIRE(config_.suspect_after_misses >= 1,
              "MembershipTable: suspect threshold must be >= 1");
  IDR_REQUIRE(config_.down_after_misses >= config_.suspect_after_misses,
              "MembershipTable: down threshold below suspect threshold");
  IDR_REQUIRE(config_.probation_s >= 0.0,
              "MembershipTable: negative probation");
}

void MembershipTable::add_relay(net::NodeId relay, std::string name,
                                util::TimePoint now) {
  IDR_REQUIRE(relay != net::kInvalidNode, "MembershipTable: invalid relay");
  if (find(relay) != nullptr) return;
  MemberRecord record;
  record.relay = relay;
  record.name = std::move(name);
  record.last_contact = now;
  records_.push_back(std::move(record));
}

void MembershipTable::remove_relay(net::NodeId relay) {
  records_.erase(std::remove_if(records_.begin(), records_.end(),
                                [relay](const MemberRecord& r) {
                                  return r.relay == relay;
                                }),
                 records_.end());
}

bool MembershipTable::has_relay(net::NodeId relay) const {
  return find(relay) != nullptr;
}

MemberRecord* MembershipTable::find(net::NodeId relay) {
  for (auto& record : records_) {
    if (record.relay == relay) return &record;
  }
  return nullptr;
}

const MemberRecord* MembershipTable::find(net::NodeId relay) const {
  for (const auto& record : records_) {
    if (record.relay == relay) return &record;
  }
  return nullptr;
}

MemberRecord& MembershipTable::mutable_record(net::NodeId relay) {
  MemberRecord* record = find(relay);
  IDR_REQUIRE(record != nullptr, "MembershipTable: unknown relay");
  return *record;
}

const MemberRecord& MembershipTable::record(net::NodeId relay) const {
  const MemberRecord* record = find(relay);
  IDR_REQUIRE(record != nullptr, "MembershipTable: unknown relay");
  return *record;
}

HeartbeatOutcome MembershipTable::note_heartbeat(net::NodeId relay,
                                                 HeartbeatStatus status,
                                                 double retry_after_s,
                                                 util::TimePoint now) {
  MemberRecord& record = mutable_record(relay);
  HeartbeatOutcome outcome;
  outcome.before = record.health;
  record.consecutive_misses = 0;
  record.last_contact = now;

  switch (status) {
    case HeartbeatStatus::Draining:
      record.health = RelayHealth::Draining;
      break;
    case HeartbeatStatus::Shedding:
      record.health = RelayHealth::Shedding;
      record.shed_hold_until =
          now + (retry_after_s > 0.0 ? retry_after_s
                                     : config_.default_shed_hold_s);
      break;
    case HeartbeatStatus::Ok:
      switch (outcome.before) {
        case RelayHealth::Down:
          // Recovery starts a probation clock; the relay stays excluded
          // until it has answered "ok" past the window.
          record.health = RelayHealth::Probation;
          record.probation_until = now + config_.probation_s;
          break;
        case RelayHealth::Probation:
          if (now >= record.probation_until) {
            record.health = RelayHealth::Alive;
            ++record.readmissions;
          }
          break;
        default:
          // Suspect, Draining, Shedding and Alive all return to Alive on
          // a clean answer: a drained relay answering "ok" is the
          // restarted instance, a shed one has headroom again.
          record.health = RelayHealth::Alive;
          break;
      }
      break;
  }
  outcome.after = record.health;
  return outcome;
}

HeartbeatOutcome MembershipTable::note_miss(net::NodeId relay,
                                            util::TimePoint now) {
  MemberRecord& record = mutable_record(relay);
  HeartbeatOutcome outcome;
  outcome.before = record.health;
  if (record.consecutive_misses == 0) record.miss_run_start = now;
  ++record.consecutive_misses;

  if (record.consecutive_misses >= config_.down_after_misses) {
    if (outcome.before != RelayHealth::Down) {
      record.health = RelayHealth::Down;
      ++record.times_down;
      outcome.since_last_contact = now - record.last_contact;
    }
  } else if (record.consecutive_misses >= config_.suspect_after_misses) {
    // Draining keeps its label while misses accumulate: it is already
    // excluded, and "draining" explains *why* better than "suspect".
    if (outcome.before == RelayHealth::Alive ||
        outcome.before == RelayHealth::Probation ||
        outcome.before == RelayHealth::Shedding) {
      record.health = RelayHealth::Suspect;
      ++record.times_suspect;
    }
  }
  outcome.after = record.health;
  return outcome;
}

RelayHealth MembershipTable::health(net::NodeId relay) const {
  const MemberRecord* record = find(relay);
  return record != nullptr ? record->health : RelayHealth::Alive;
}

bool MembershipTable::eligible(net::NodeId relay, util::TimePoint now) const {
  const MemberRecord* record = find(relay);
  if (record == nullptr) return true;
  switch (record->health) {
    case RelayHealth::Alive:
    case RelayHealth::Suspect:
      return true;
    case RelayHealth::Shedding:
      return now >= record->shed_hold_until;
    case RelayHealth::Down:
    case RelayHealth::Draining:
    case RelayHealth::Probation:
      return false;
  }
  return true;
}

std::size_t MembershipTable::alive_count() const {
  std::size_t count = 0;
  for (const auto& record : records_) {
    if (record.health == RelayHealth::Alive) ++count;
  }
  return count;
}

std::size_t MembershipTable::eligible_count(util::TimePoint now) const {
  std::size_t count = 0;
  for (const auto& record : records_) {
    if (eligible(record.relay, now)) ++count;
  }
  return count;
}

}  // namespace idr::core
