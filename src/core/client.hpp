// IndirectRoutingClient — the library's top-level facade.
//
// Ties together a selection policy (which relays to probe), the probe race
// (which path wins), and per-relay statistics (utilization history, which
// the weighted policy feeds back into selection). One instance models one
// client host talking to one server, like a single PlanetLab client in the
// paper.
#pragma once

#include <memory>

#include "core/probe_race.hpp"
#include "core/relay_stats.hpp"
#include "core/selection_policy.hpp"

namespace idr::core {

struct ClientConfig {
  net::NodeId client_node = net::kInvalidNode;
  const overlay::WebServerModel* server = nullptr;
  std::string resource;
  Bytes probe_bytes = kDefaultProbeBytes;
  flow::TcpConfig tcp{};

  /// Fault tolerance (all inert on fault-free runs): per-race probe
  /// timeout (0 = none), the retry/backoff policy threaded into the race,
  /// and the blacklist penalty bounds applied when a relay's transfers
  /// keep dying.
  Duration probe_timeout = 0.0;
  fault::RetryPolicy retry{};
  Duration blacklist_base_penalty = 60.0;
  Duration blacklist_max_penalty = 3600.0;
  /// Flat penalty for a relay that shed load (503): long enough to let it
  /// drain its queue, far shorter than the crash blacklist — the relay is
  /// alive and will have capacity again soon.
  Duration overload_penalty = 5.0;
  /// Half-life of the passive throughput-estimate EWMA kept per relay
  /// (see RelayStatsTable::note_throughput). Only consulted by
  /// race-skipping and estimate-weighted policies; with the default
  /// always-race policies the estimates are recorded but never read.
  Duration estimate_half_life = 300.0;

  /// When set, every race this client runs appends a FlightRecord
  /// (source "sim.race") to the ring. Null — the default — records
  /// nothing.
  obs::FlightRecorder* flights = nullptr;
};

/// Outcome of one selected fetch, with the candidates that were probed.
struct FetchRecord {
  RaceOutcome outcome;
  std::vector<net::NodeId> candidates;
  util::TimePoint start_time = 0.0;
};

class IndirectRoutingClient {
 public:
  IndirectRoutingClient(overlay::TransferEngine& engine,
                        const ClientConfig& config,
                        std::unique_ptr<SelectionPolicy> policy,
                        util::Rng rng);

  /// Registers a relay as available to this client.
  void register_relay(net::NodeId relay, std::string name);

  /// Performs one transfer: asks the policy for candidates, races them
  /// against the direct path, fetches the file over the winner, and
  /// updates appearance/selection statistics. The callback fires in
  /// simulated time.
  void fetch(std::function<void(const FetchRecord&)> on_done);

  /// Attaches an improvement observation (vs. the concurrent plain direct
  /// download, measured externally) to the relay that served the transfer.
  void record_improvement(net::NodeId relay, double improvement_pct);

  const RelayStatsTable& stats() const { return stats_; }
  const ClientConfig& config() const { return config_; }
  SelectionPolicy& policy() { return *policy_; }

  /// Replaces the selection policy mid-run (used by policy-comparison
  /// benches); history in the stats table is preserved.
  void set_policy(std::unique_ptr<SelectionPolicy> policy);

 private:
  overlay::TransferEngine& engine_;
  ClientConfig config_;
  std::unique_ptr<SelectionPolicy> policy_;
  util::Rng rng_;
  RelayStatsTable stats_;
};

}  // namespace idr::core
