// Instantaneous-oracle relay selection: peeks at the topology's *current*
// link capacities and hands the probe race only the relay whose path has
// the highest instantaneous bottleneck bandwidth. No real client can do
// this — it is the upper bound the ablations compare the probe race and
// history predictors against.
#pragma once

#include "core/selection_policy.hpp"
#include "net/routing.hpp"

namespace idr::core {

class InstantaneousOraclePolicy final : public SelectionPolicy {
 public:
  /// `topo` must outlive the policy; `client`/`server` are the transfer
  /// endpoints whose candidate paths are scored.
  InstantaneousOraclePolicy(const net::Topology& topo, net::NodeId client,
                            net::NodeId server);

  /// Returns the single best relay by current path bottleneck, or an
  /// empty set when the direct path currently beats every relay (so the
  /// race degenerates to a direct fetch).
  std::vector<net::NodeId> choose_candidates(const RelayStatsTable& stats,
                                             util::Rng& rng) override;

  const char* name() const override { return "instantaneous-oracle"; }

 private:
  /// Current bottleneck bandwidth of the data path (server -> client),
  /// optionally via a relay; 0 when unroutable.
  util::Rate path_bandwidth(std::optional<net::NodeId> relay) const;

  const net::Topology& topo_;
  net::NodeId client_;
  net::NodeId server_;
};

}  // namespace idr::core
