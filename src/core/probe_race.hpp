// The paper's predictor: race the first x bytes of the file over the
// direct path and over each candidate indirect path simultaneously (HTTP
// range request "bytes=0-(x-1)"); whichever path completes the probe first
// is predicted fastest, the other probes are aborted, and the remaining
// n-x bytes are fetched over the winner ("bytes=x-").
//
// The client-perceived throughput of the whole operation is
// n / (time from race start to last byte of the remainder) — probing
// overhead is charged to the selection, exactly as in the paper.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "overlay/transfer_engine.hpp"

namespace idr::core {

using util::Bytes;
using util::Duration;
using util::Rate;

/// The paper's experimentally determined probe size: large enough to get
/// past slow-start, small enough to keep overhead low.
inline constexpr Bytes kDefaultProbeBytes = 100.0 * 1000.0;  // 100 KB

struct RaceSpec {
  net::NodeId client = net::kInvalidNode;
  const overlay::WebServerModel* server = nullptr;
  std::string resource;
  Bytes probe_bytes = kDefaultProbeBytes;
  /// Indirect candidates; the direct path always races too.
  std::vector<net::NodeId> candidate_relays;
  flow::TcpConfig tcp{};

  /// Per-race probe timeout: lanes still unfinished this long after the
  /// race starts are cancelled and counted as failed (a relay that is
  /// down stalls forever without this). 0 disables — the default, so
  /// fault-free runs schedule no extra event.
  Duration probe_timeout = 0.0;
  /// Bounded retry with exponential backoff + jitter for the remainder
  /// fetch and the direct fallback. Consulted only after a failure, so a
  /// clean race never draws from the backoff stream.
  fault::RetryPolicy retry{};

  /// Cross-hop trace identity for this transfer's spans. Invalid — the
  /// default — and with the world tracer enabled, the race derives its
  /// own context from the flow simulator's seeded RNG tree; with the
  /// tracer off nothing is derived at all, so traced and untraced runs
  /// schedule identically.
  obs::TraceContext trace{};
  /// When set, one FlightRecord (source "sim.race") is appended per
  /// finished race — success or failure. Works with or without tracing.
  obs::FlightRecorder* flights = nullptr;

  /// When set, the race is skipped entirely: the whole file is fetched
  /// through this relay in one transfer (no probe bytes, no competing
  /// lanes). Should that transfer fail, the race launches over
  /// `candidate_relays` as if the pin had never existed. Set by
  /// race-skipping selection policies (race-on-staleness); nullopt — the
  /// default — races exactly as before.
  std::optional<net::NodeId> pinned_relay;
  /// Age (seconds) of the estimate that justified the pin; recorded into
  /// the sim.select.estimate_age histogram. Meaningless without a pin.
  Duration pinned_estimate_age = 0.0;
};

struct RaceOutcome {
  bool ok = false;
  std::string error;

  bool chose_indirect = false;
  net::NodeId relay = net::kInvalidNode;  // winner, when indirect

  /// True when the probe race was skipped on a pinned relay and the whole
  /// file rode that relay (probe_elapsed is 0 and no probe bytes were
  /// spent). False whenever a race actually ran — including a race forced
  /// by the pinned transfer failing.
  bool race_skipped = false;

  /// Time from race start to the first probe completing.
  Duration probe_elapsed = 0.0;
  /// Time from race start to the full file delivered over the winner.
  Duration total_elapsed = 0.0;
  Bytes total_bytes = 0.0;
  /// The "bytes=x-" remainder phase on the winner (zero when the probe
  /// covered the whole file).
  Bytes remainder_bytes = 0.0;
  Duration remainder_elapsed = 0.0;

  // --- Fault/retry accounting (all zero on a clean race) -------------------
  /// Probe lanes that failed or timed out before the race was decided.
  std::size_t probe_failures = 0;
  /// Remainder/fallback attempts beyond each phase's first try.
  std::size_t retries = 0;
  /// True when the transfer was salvaged over the direct path after the
  /// selected path (or every probe lane) died.
  bool fell_back_direct = false;
  /// Relays whose probe lane or remainder transfer failed — the input to
  /// failed-relay blacklisting. Deduplicated. Overload rejections are NOT
  /// counted here; they land in overloaded_relays instead.
  std::vector<net::NodeId> failed_relays;
  /// Attempts refused by relay admission control (the sim-side 503) —
  /// failures above may overlap these counts, but the relays involved are
  /// reported separately because an overloaded relay deserves a shorter
  /// penalty than a crashed one.
  std::size_t overload_rejections = 0;
  /// Relays that shed load during this race. Deduplicated, disjoint from
  /// failed_relays unless a relay both crashed and shed.
  std::vector<net::NodeId> overloaded_relays;

  /// Client-perceived throughput of the selected path, probe included.
  Rate selected_throughput() const {
    return total_elapsed > 0.0 ? total_bytes / total_elapsed : 0.0;
  }

  /// Steady-phase throughput of the selected path: the remainder transfer
  /// alone, free of the n-way probe contention. Falls back to the whole
  /// operation when the probe covered the file. This is the Section 4
  /// metric — with up to 35 concurrent probes, charging the race to the
  /// transfer would measure probing cost, not path quality.
  Rate steady_throughput() const {
    if (remainder_bytes > 0.0 && remainder_elapsed > 0.0) {
      return remainder_bytes / remainder_elapsed;
    }
    return selected_throughput();
  }
};

using RaceCallback = std::function<void(const RaceOutcome&)>;

/// Starts the race; the callback fires in simulated time. The race owns
/// its transfers and cleans up losers. Lifetime is self-managed (shared
/// state kept alive by the engine callbacks), so no handle is returned —
/// races always terminate because every underlying transfer does.
void start_probe_race(overlay::TransferEngine& engine, const RaceSpec& spec,
                      RaceCallback on_done);

}  // namespace idr::core
