// Alternative path predictors, for comparison against the paper's
// initial-segment probe race (ablation A2).
//
// The probe race measures every candidate on every transfer and charges
// the measurement to the transfer itself. A history-based predictor skips
// the probes: it keeps an EWMA of each option's past throughput and picks
// the best, exploring occasionally. It is cheaper but reacts slowly —
// exactly the trade-off the ablation quantifies.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace idr::core {

/// Epsilon-greedy EWMA selector over path options. Option 0 is
/// conventionally the direct path; options 1..n are relays, but the class
/// is agnostic — it scores opaque option indices.
class EwmaSelector {
 public:
  /// `alpha` is the EWMA weight of the newest observation; `epsilon` the
  /// exploration probability (uniform over non-greedy options).
  EwmaSelector(std::size_t options, double alpha = 0.3,
               double epsilon = 0.1);

  std::size_t options() const { return scores_.size(); }

  /// Picks the next option: unmeasured options first (round-robin), then
  /// greedy on the EWMA with epsilon exploration.
  std::size_t choose(util::Rng& rng);

  /// Records the measured throughput of an option.
  void observe(std::size_t option, util::Rate throughput);

  /// Current EWMA score; nullopt if never observed.
  std::optional<util::Rate> score(std::size_t option) const;

  /// Index of the best-scored option (greedy arm); options never observed
  /// lose to any observed one. Requires at least one observation.
  std::size_t best() const;

 private:
  struct Arm {
    bool seen = false;
    double ewma = 0.0;
  };
  std::vector<Arm> scores_;
  double alpha_;
  double epsilon_;
};

}  // namespace idr::core
