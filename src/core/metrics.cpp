#include "core/metrics.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace idr::core {

double improvement_pct(Rate selected, Rate direct) {
  IDR_REQUIRE(direct > 0.0, "improvement_pct: non-positive direct rate");
  IDR_REQUIRE(selected >= 0.0, "improvement_pct: negative selected rate");
  return 100.0 * (selected - direct) / direct;
}

double penalty_pct(Rate selected, Rate direct) {
  IDR_REQUIRE(selected > 0.0, "penalty_pct: non-positive selected rate");
  IDR_REQUIRE(direct >= 0.0, "penalty_pct: negative direct rate");
  return 100.0 * (direct - selected) / selected;
}

ThroughputCategory categorize_throughput(Rate average_direct) {
  const double mbps = util::to_mbps(average_direct);
  if (mbps <= 1.5) return ThroughputCategory::Low;
  if (mbps <= 3.0) return ThroughputCategory::Medium;
  return ThroughputCategory::High;
}

std::string_view category_name(ThroughputCategory c) {
  switch (c) {
    case ThroughputCategory::Low: return "Low";
    case ThroughputCategory::Medium: return "Medium";
    case ThroughputCategory::High: return "High";
  }
  return "?";
}

VariabilityClass classify_variability(
    const util::OnlineStats& direct_throughput, double cv_threshold) {
  return direct_throughput.cv() <= cv_threshold ? VariabilityClass::Low
                                                : VariabilityClass::High;
}

std::string_view variability_name(VariabilityClass v) {
  return v == VariabilityClass::Low ? "LowVar" : "HighVar";
}

PenaltySummary summarize_penalties(
    const std::vector<std::pair<Rate, Rate>>& selected_direct_pairs) {
  PenaltySummary summary;
  summary.total_points = selected_direct_pairs.size();
  util::OnlineStats penalties;
  for (const auto& [selected, direct] : selected_direct_pairs) {
    if (improvement_pct(selected, direct) < 0.0) {
      penalties.add(penalty_pct(selected, direct));
    }
  }
  summary.penalty_points = penalties.count();
  if (summary.total_points > 0) {
    summary.penalty_fraction = static_cast<double>(summary.penalty_points) /
                               static_cast<double>(summary.total_points);
  }
  if (!penalties.empty()) {
    summary.avg_penalty_pct = penalties.mean();
    summary.stddev_penalty_pct = penalties.stddev();
    summary.max_penalty_pct = penalties.max();
  }
  return summary;
}

}  // namespace idr::core
