// Minimal leveled logger. The experiment drivers run millions of simulated
// transfers, so logging defaults to Warn; tests and examples can raise it.
#pragma once

#include <sstream>
#include <string>

namespace idr::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped before formatting cost
/// matters (callers should still guard expensive argument construction).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line to stderr: "[level] message". Thread-safe.
void log_message(LogLevel level, const std::string& message);

}  // namespace idr::util

#define IDR_LOG(level, expr)                                              \
  do {                                                                    \
    if (static_cast<int>(level) >=                                        \
        static_cast<int>(::idr::util::log_level())) {                     \
      std::ostringstream idr_log_oss_;                                    \
      idr_log_oss_ << expr;                                               \
      ::idr::util::log_message(level, idr_log_oss_.str());                \
    }                                                                     \
  } while (0)

#define IDR_DEBUG(expr) IDR_LOG(::idr::util::LogLevel::Debug, expr)
#define IDR_INFO(expr) IDR_LOG(::idr::util::LogLevel::Info, expr)
#define IDR_WARN(expr) IDR_LOG(::idr::util::LogLevel::Warn, expr)
#define IDR_ERROR(expr) IDR_LOG(::idr::util::LogLevel::Error, expr)
