// Streaming and batch statistics used throughout the experiment harness.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace idr::util {

/// Single-pass accumulator for mean / variance / RMS / extrema.
///
/// Uses Welford's algorithm for the second moment, so it is numerically
/// stable for the long accumulation runs the Monte-Carlo drivers produce.
class OnlineStats {
 public:
  void add(double x);

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double mean() const;
  /// Population variance (divides by n). Zero for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// sqrt(E[x^2]); the "RMS" column of the paper's Fig. 5.
  double rms() const;
  double min() const;
  double max() const;
  /// Coefficient of variation: stddev / |mean|; 0 when mean is 0.
  double cv() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;        // sum of squared deviations from the mean
  double sum_sq_ = 0.0;    // sum of x^2, for RMS
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Batch sample set with exact quantiles. Keeps all samples; intended for
/// experiment post-processing, not hot paths.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void add_all(const std::vector<double>& xs);
  void merge(const SampleSet& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Exact quantile by linear interpolation between order statistics;
  /// q in [0, 1]. Requires a non-empty set.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Fraction of samples x with lo <= x < hi.
  double fraction_in(double lo, double hi) const;
  /// Fraction of samples strictly below the threshold.
  double fraction_below(double threshold) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Least-squares slope of y against x; NaN when fewer than two points or
/// zero x-variance. Used to test the paper's trend claims (Fig. 3 downward,
/// Fig. 4 flat).
double linear_regression_slope(const std::vector<double>& x,
                               const std::vector<double>& y);

/// Pearson correlation coefficient; NaN when undefined.
double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y);

/// Spearman rank correlation; NaN when undefined. Used for the
/// utilization-vs-improvement correlation the paper reports in Table III.
double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y);

}  // namespace idr::util
