#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace idr::util {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  IDR_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  IDR_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    auto idx = static_cast<std::size_t>((x - lo_) / width_);
    idx = std::min(idx, counts_.size() - 1);  // guard fp edge at hi
    ++counts_[idx];
  }
}

void Histogram::add_all(const std::vector<double>& xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::fraction(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) / static_cast<double>(total_);
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

std::string Histogram::render(std::size_t max_bar) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  peak = std::max({peak, underflow_, overflow_});

  std::string out;
  char line[256];
  auto emit = [&](const char* label_lo, const char* label_hi,
                  std::size_t count) {
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(count) / static_cast<double>(peak) *
                     static_cast<double>(max_bar)));
    const double pct = total_ == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(count) /
                                 static_cast<double>(total_);
    std::snprintf(line, sizeof(line), "  [%8s,%8s) %-*s %zu (%.1f%%)\n",
                  label_lo, label_hi, static_cast<int>(max_bar),
                  std::string(bar, '#').c_str(), count, pct);
    out += line;
  };

  char lo_buf[32], hi_buf[32];
  if (underflow_ > 0) emit("-inf", "lo", underflow_);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(lo_buf, sizeof(lo_buf), "%.4g", bin_lo(i));
    std::snprintf(hi_buf, sizeof(hi_buf), "%.4g", bin_hi(i));
    emit(lo_buf, hi_buf, counts_[i]);
  }
  if (overflow_ > 0) emit("hi", "+inf", overflow_);
  return out;
}

}  // namespace idr::util
