#include "util/strings.hpp"

#include <cctype>

namespace idr::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() &&
         std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& ch : out) {
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  }
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(ch - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;  // overflow
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace idr::util
