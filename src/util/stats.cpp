#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace idr::util {

void OnlineStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  sum_sq_ += x * x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  sum_sq_ += other.sum_sq_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::rms() const {
  return n_ == 0 ? 0.0 : std::sqrt(sum_sq_ / static_cast<double>(n_));
}

double OnlineStats::min() const { return n_ == 0 ? 0.0 : min_; }
double OnlineStats::max() const { return n_ == 0 ? 0.0 : max_; }

double OnlineStats::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / std::abs(m);
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void SampleSet::merge(const SampleSet& other) { add_all(other.samples_); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double m2 = 0.0;
  for (double x : samples_) m2 += (x - m) * (x - m);
  return std::sqrt(m2 / static_cast<double>(samples_.size()));
}

double SampleSet::min() const {
  IDR_REQUIRE(!samples_.empty(), "SampleSet::min on empty set");
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  IDR_REQUIRE(!samples_.empty(), "SampleSet::max on empty set");
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  IDR_REQUIRE(!samples_.empty(), "SampleSet::quantile on empty set");
  IDR_REQUIRE(q >= 0.0 && q <= 1.0, "quantile out of [0,1]");
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::fraction_in(double lo, double hi) const {
  if (samples_.empty()) return 0.0;
  std::size_t k = 0;
  for (double x : samples_) {
    if (x >= lo && x < hi) ++k;
  }
  return static_cast<double>(k) / static_cast<double>(samples_.size());
}

double SampleSet::fraction_below(double threshold) const {
  if (samples_.empty()) return 0.0;
  std::size_t k = 0;
  for (double x : samples_) {
    if (x < threshold) ++k;
  }
  return static_cast<double>(k) / static_cast<double>(samples_.size());
}

double linear_regression_slope(const std::vector<double>& x,
                               const std::vector<double>& y) {
  IDR_REQUIRE(x.size() == y.size(), "regression: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  const double mx =
      std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  const double my =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
  }
  if (sxx == 0.0) return std::numeric_limits<double>::quiet_NaN();
  return sxy / sxx;
}

double pearson_correlation(const std::vector<double>& x,
                           const std::vector<double>& y) {
  IDR_REQUIRE(x.size() == y.size(), "correlation: size mismatch");
  const std::size_t n = x.size();
  if (n < 2) return std::numeric_limits<double>::quiet_NaN();
  const double mx =
      std::accumulate(x.begin(), x.end(), 0.0) / static_cast<double>(n);
  const double my =
      std::accumulate(y.begin(), y.end(), 0.0) / static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Fractional ranks with ties averaged (midrank method).
std::vector<double> midranks(const std::vector<double>& v) {
  const std::size_t n = v.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return v[a] < v[b]; });
  std::vector<double> ranks(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && v[order[j + 1]] == v[order[i]]) ++j;
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman_correlation(const std::vector<double>& x,
                            const std::vector<double>& y) {
  IDR_REQUIRE(x.size() == y.size(), "correlation: size mismatch");
  if (x.size() < 2) return std::numeric_limits<double>::quiet_NaN();
  return pearson_correlation(midranks(x), midranks(y));
}

}  // namespace idr::util
