// Unit helpers shared across the library.
//
// The simulator works in SI base units: seconds for time, bytes for data,
// bytes/second for rates. These are plain doubles (the flow-level model is
// continuous), with named constructors/accessors so call sites read in the
// units the paper uses (Mbps, KB, minutes) without ad-hoc conversion
// factors scattered through the code.
#pragma once

#include <cstdint>

namespace idr::util {

/// Simulated time in seconds since the start of the run.
using TimePoint = double;
/// A span of simulated time, in seconds.
using Duration = double;

inline constexpr Duration kMillisecond = 1e-3;
inline constexpr Duration kSecond = 1.0;
inline constexpr Duration kMinute = 60.0;
inline constexpr Duration kHour = 3600.0;

constexpr Duration milliseconds(double ms) { return ms * kMillisecond; }
constexpr Duration seconds(double s) { return s; }
constexpr Duration minutes(double m) { return m * kMinute; }
constexpr Duration hours(double h) { return h * kHour; }

/// Data sizes, in bytes. Fractional bytes are meaningful in the fluid model.
using Bytes = double;

inline constexpr Bytes kKB = 1000.0;
inline constexpr Bytes kMB = 1000.0 * 1000.0;

constexpr Bytes kilobytes(double kb) { return kb * kKB; }
constexpr Bytes megabytes(double mb) { return mb * kMB; }

/// Transfer rates, in bytes per second.
using Rate = double;

/// Converts a rate expressed in megabits/second (the unit the paper reports)
/// to bytes/second.
constexpr Rate mbps(double megabits_per_second) {
  return megabits_per_second * 1e6 / 8.0;
}

/// Converts a rate in bytes/second back to megabits/second for reporting.
constexpr double to_mbps(Rate bytes_per_second) {
  return bytes_per_second * 8.0 / 1e6;
}

constexpr Rate kbps(double kilobits_per_second) {
  return kilobits_per_second * 1e3 / 8.0;
}

}  // namespace idr::util
