// Deterministic random-number generation.
//
// Every stochastic component of the library draws from an explicitly seeded
// Rng. Experiment drivers derive independent child streams from a root seed
// (via splitmix64) so Monte-Carlo trials can run on any number of threads
// and still produce bitwise-identical results.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace idr::util {

/// Mixes a 64-bit value; used to derive decorrelated child seeds.
std::uint64_t splitmix64(std::uint64_t x);

/// THE seed-derivation rule for parallel and sharded execution: the seed
/// of a child stream is `splitmix64(parent ^ salt)`. Every layer that
/// fans a root seed out to independent tasks (sessions, shards, per-site
/// parameter draws) derives through this function with a *stable* salt —
/// an FNV-hashed name, a shard id, a task index — never through draw
/// order, so any number of worker threads replays the identical streams.
/// The rule is pinned by tests (test_util_rng) and must never change:
/// all committed goldens and BENCH baselines depend on it.
std::uint64_t child_stream(std::uint64_t parent, std::uint64_t salt);

/// A seeded pseudo-random stream with the distributions the library needs.
///
/// Thin wrapper over std::mt19937_64. Copyable (copies the full state), so
/// a component can snapshot its stream for replay.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(splitmix64(seed)) {}

  /// Derives an independent child stream. Children with distinct salts are
  /// decorrelated from each other and from this stream's future output.
  Rng child(std::uint64_t salt) const;

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);

  /// Standard-normal draw.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal parameterized by the mean and coefficient of variation of
  /// the *resulting* distribution (not of the underlying normal). This is
  /// the natural parameterization for throughput processes: "mean 2 Mbps,
  /// CV 0.4".
  double lognormal_mean_cv(double mean, double cv);

  /// Exponential with the given mean (= 1/rate).
  double exponential(double mean);

  /// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed sizes).
  double pareto(double x_m, double alpha);

  /// Chooses k distinct indices uniformly from [0, n). Order is random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Chooses one index in [0, weights.size()) with probability proportional
  /// to weights[i]; non-positive weights are treated as zero. If all weights
  /// are zero the choice is uniform.
  std::size_t weighted_index(const std::vector<double>& weights);

  std::mt19937_64& engine() { return engine_; }

 private:
  explicit Rng(std::mt19937_64 engine) : engine_(std::move(engine)) {}
  std::mt19937_64 engine_;
};

}  // namespace idr::util
