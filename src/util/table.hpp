// Plain-text table renderer for the bench binaries, which print the same
// rows the paper's tables/figures report, plus a small CSV writer so the
// series can be re-plotted.
#pragma once

#include <string>
#include <vector>

namespace idr::util {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with fixed precision.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Starts a new row; subsequent cell() calls append to it.
  TextTable& row();
  TextTable& cell(const std::string& value);
  TextTable& cell(double value, int precision = 1);
  TextTable& cell(std::size_t value);

  /// Renders with a header rule, e.g.
  ///   Node        Utilization (%)  Improvement (%)
  ///   ----        ---------------  ---------------
  ///   Texas       76.1             71.0
  std::string render() const;

  std::size_t rows() const { return cells_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Minimal CSV emission (quotes cells containing separators/quotes).
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header);
  void add_row(const std::vector<std::string>& row);
  std::string str() const;
  /// Writes to a file; throws idr::util::Error on I/O failure.
  void write_file(const std::string& path) const;

 private:
  static std::string escape(const std::string& cell);
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared by both writers).
std::string format_fixed(double value, int precision);

}  // namespace idr::util
