// Fixed-bin histogram used to regenerate the paper's Fig. 1 / Fig. 2
// improvement distributions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace idr::util {

/// Equal-width histogram over [lo, hi) with explicit underflow/overflow
/// buckets, plus an ASCII renderer for the bench binaries.
class Histogram {
 public:
  /// Creates `bins` equal-width buckets covering [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double bin_width() const { return width_; }
  /// [bin_lo, bin_hi) edges of bucket i.
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Fraction of all samples (including under/overflow) landing in bucket i.
  double fraction(std::size_t bin) const;

  /// Index of the fullest bucket; 0 if the histogram is empty.
  std::size_t mode_bin() const;

  /// Renders rows like "  [  0,  10) ######## 123 (12.3%)".
  /// `max_bar` is the width of the longest bar.
  std::string render(std::size_t max_bar = 50) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace idr::util
