// Small string utilities shared by the HTTP parser and the report writers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace idr::util {

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative decimal integer; rejects sign characters, empty
/// input, trailing garbage and overflow.
std::optional<std::uint64_t> parse_u64(std::string_view s);

}  // namespace idr::util
