#include "util/rng.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace idr::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t child_stream(std::uint64_t parent, std::uint64_t salt) {
  return splitmix64(parent ^ salt);
}

Rng Rng::child(std::uint64_t salt) const {
  // Hash the salt against a draw-independent fingerprint of this stream's
  // seed state. Using the engine state directly would make child() depend
  // on how many draws preceded it; instead we copy the engine and take one
  // deterministic output from the copy.
  std::mt19937_64 copy = engine_;
  const std::uint64_t fingerprint = copy();
  return Rng(std::mt19937_64(splitmix64(fingerprint ^ splitmix64(salt))));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  IDR_REQUIRE(lo <= hi, "uniform: lo > hi");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  IDR_REQUIRE(lo <= hi, "uniform_int: lo > hi");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return uniform() < p;
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::normal(double mean, double stddev) {
  IDR_REQUIRE(stddev >= 0.0, "normal: negative stddev");
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  IDR_REQUIRE(mean > 0.0, "lognormal_mean_cv: mean must be positive");
  IDR_REQUIRE(cv >= 0.0, "lognormal_mean_cv: negative cv");
  if (cv == 0.0) return mean;
  // For X ~ LogNormal(mu, sigma^2): E[X] = exp(mu + sigma^2/2),
  // CV^2 = exp(sigma^2) - 1. Invert for (mu, sigma).
  const double sigma2 = std::log1p(cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return std::lognormal_distribution<double>(mu, std::sqrt(sigma2))(engine_);
}

double Rng::exponential(double mean) {
  IDR_REQUIRE(mean > 0.0, "exponential: mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  IDR_REQUIRE(x_m > 0.0 && alpha > 0.0, "pareto: parameters must be positive");
  // Inverse-CDF sampling; 1 - U is in (0, 1].
  const double u = 1.0 - uniform();
  return x_m / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  IDR_REQUIRE(k <= n, "sample_without_replacement: k > n");
  // Partial Fisher-Yates: O(n) space, O(k) swaps.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  IDR_REQUIRE(!weights.empty(), "weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) total += std::max(w, 0.0);
  if (total <= 0.0) {
    return static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(weights.size()) - 1));
  }
  double target = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= std::max(weights[i], 0.0);
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // floating-point slack on the last bucket
}

}  // namespace idr::util
