#include "util/table.hpp"

#include <cstdio>
#include <fstream>

#include "util/error.hpp"

namespace idr::util {

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  IDR_REQUIRE(!header_.empty(), "TextTable: empty header");
}

TextTable& TextTable::row() {
  cells_.emplace_back();
  return *this;
}

TextTable& TextTable::cell(const std::string& value) {
  IDR_REQUIRE(!cells_.empty(), "TextTable: cell() before row()");
  IDR_REQUIRE(cells_.back().size() < header_.size(),
              "TextTable: more cells than header columns");
  cells_.back().push_back(value);
  return *this;
}

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

TextTable& TextTable::cell(std::size_t value) {
  return cell(std::to_string(value));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, std::size_t w) {
    return s + std::string(w - s.size() + 2, ' ');
  };
  std::string out;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += pad(header_[c], width[c]);
  }
  out += '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out += pad(std::string(width[c], '-'), width[c]);
  }
  out += '\n';
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], width[c]);
    }
    out += '\n';
  }
  return out;
}

CsvWriter::CsvWriter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  IDR_REQUIRE(row.size() == header_.size(), "CsvWriter: row width mismatch");
  rows_.push_back(row);
}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::str() const {
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out += ',';
      out += escape(row[i]);
    }
    out += '\n';
  };
  emit_row(header_);
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream f(path, std::ios::binary);
  IDR_REQUIRE(f.good(), "CsvWriter: cannot open " + path);
  f << str();
  IDR_REQUIRE(f.good(), "CsvWriter: write failed for " + path);
}

}  // namespace idr::util
