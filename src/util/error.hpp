// Error-handling helpers: a library-wide exception type and an assertion
// macro for internal invariants that stays active in release builds (the
// simulator's correctness depends on them and their cost is negligible next
// to the work they guard).
#pragma once

#include <stdexcept>
#include <string>

namespace idr::util {

/// Thrown for API misuse and violated preconditions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& msg) { throw Error(msg); }

}  // namespace idr::util

/// Internal invariant check; throws idr::util::Error with location info.
#define IDR_REQUIRE(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::idr::util::fail(std::string(__FILE__) + ":" +                       \
                        std::to_string(__LINE__) + ": " + (msg));           \
    }                                                                       \
  } while (0)
