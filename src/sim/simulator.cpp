#include "sim/simulator.hpp"

#include "util/error.hpp"

namespace idr::sim {

EventId Simulator::schedule_at(TimePoint t, std::function<void()> fn) {
  IDR_REQUIRE(t >= now_, "schedule_at: time in the past");
  IDR_REQUIRE(fn != nullptr, "schedule_at: null callback");
  const EventId id = ++next_seq_;
  queue_.push(Entry{t, id, id});
  callbacks_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::schedule_in(Duration delay, std::function<void()> fn) {
  IDR_REQUIRE(delay >= 0.0, "schedule_in: negative delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventId id) {
  const auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  cancelled_.insert(id);
  ++cancellations_;
  return true;
}

void Simulator::skip_cancelled() {
  while (!queue_.empty()) {
    const auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

TimePoint Simulator::next_event_time() const {
  auto* self = const_cast<Simulator*>(this);
  self->skip_cancelled();
  IDR_REQUIRE(!queue_.empty(), "next_event_time: queue empty");
  return queue_.top().time;
}

bool Simulator::pop_and_run() {
  skip_cancelled();
  if (queue_.empty()) return false;
  const Entry top = queue_.top();
  queue_.pop();
  now_ = top.time;
  auto it = callbacks_.find(top.id);
  IDR_REQUIRE(it != callbacks_.end(), "event with no callback");
  // Move the callback out before erasing so the callback can schedule or
  // cancel other events (including re-using this id slot) safely.
  std::function<void()> fn = std::move(it->second);
  callbacks_.erase(it);
  ++executed_;
  fn();
  return true;
}

std::size_t Simulator::run_until(TimePoint t) {
  IDR_REQUIRE(t >= now_, "run_until: time in the past");
  std::size_t ran = 0;
  while (true) {
    skip_cancelled();
    if (queue_.empty() || queue_.top().time > t) break;
    pop_and_run();
    ++ran;
  }
  now_ = t;
  return ran;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && pop_and_run()) ++ran;
  return ran;
}

bool Simulator::step() { return pop_and_run(); }

PeriodicTimer::PeriodicTimer(Simulator& sim, Duration period,
                             std::function<void()> fn)
    : sim_(sim), period_(period), fn_(std::move(fn)) {
  IDR_REQUIRE(period_ > 0.0, "PeriodicTimer: period must be positive");
  IDR_REQUIRE(fn_ != nullptr, "PeriodicTimer: null callback");
  arm();
}

PeriodicTimer::~PeriodicTimer() { stop(); }

void PeriodicTimer::arm() {
  pending_ = sim_.schedule_in(period_, [this] {
    // Re-arm before running the callback so the callback sees a live timer
    // it can stop().
    arm();
    fn_();
  });
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  sim_.cancel(pending_);
}

}  // namespace idr::sim
