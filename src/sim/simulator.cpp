#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

namespace idr::sim {

// The slab, heap and free list only ever grow to the high-water pending
// count; every steady-state operation below recycles that storage.

EventId Simulator::schedule_impl(TimePoint t, EventClosure fn) {
  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    IDR_REQUIRE(nodes_.size() < kMaxPos, "schedule_at: event slab full");
    slot = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[slot];
  node.fn = std::move(fn);
  heap_insert(t, ++next_seq_, slot);
  return make_id(node.gen, slot);
}

Simulator::Node* Simulator::resolve(EventId id) {
  const auto slot = static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
  const auto gen = static_cast<std::uint32_t>(id >> 32);
  if (slot >= nodes_.size()) return nullptr;
  Node& node = nodes_[slot];
  if (node.gen != gen || node.pos == kFree) return nullptr;
  return &node;
}

void Simulator::free_node(std::uint32_t slot) {
  Node& node = nodes_[slot];
  node.fn.reset();
  node.pos = kFree;
  if (++node.gen == 0) node.gen = 1;  // keep ids nonzero after wraparound
  free_.push_back(slot);
}

bool Simulator::cancel(EventId id) {
  Node* node = resolve(id);
  if (node == nullptr) return false;
  if (node->pos == kFiring) return false;  // its own callback: already fired
  ++cancellations_;
  if (node->pos == kRescheduled) {
    // Cancelling the reschedule issued earlier in this same callback: the
    // dispatcher frees the slot once the callback returns.
    node->pos = kFiring;
    return true;
  }
  heap_remove(node->pos);
  free_node(static_cast<std::uint32_t>(node - nodes_.data()));
  return true;
}

bool Simulator::reschedule_at(EventId id, TimePoint t) {
  IDR_REQUIRE(t >= now_, "reschedule_at: time in the past");
  Node* node = resolve(id);
  if (node == nullptr) return false;
  ++reschedules_;
  // A fresh seq per reschedule keeps the FIFO contract identical to a
  // cancel + schedule pair: the moved event goes behind existing events
  // at its new timestamp.
  const std::uint64_t seq = ++next_seq_;
  if (node->pos == kFiring || node->pos == kRescheduled) {
    // Self-reschedule from the event's own callback; re-inserted by the
    // dispatcher after the callback returns.
    node->pos = kRescheduled;
    firing_time_ = t;
    firing_seq_ = seq;
    return true;
  }
  const std::uint32_t pos = node->pos;
  const HeapEntry moved{t, seq,
                        static_cast<std::uint32_t>(node - nodes_.data())};
  if (before(moved, heap_[pos])) {
    heap_[pos] = moved;
    sift_up(pos);
  } else {
    heap_[pos] = moved;
    sift_down(pos);
  }
  return true;
}

void Simulator::heap_insert(TimePoint t, std::uint64_t seq,
                            std::uint32_t node) {
  const auto pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{t, seq, node});
  nodes_[node].pos = pos;
  sift_up(pos);
}

void Simulator::heap_remove(std::uint32_t pos) {
  const std::uint32_t last = static_cast<std::uint32_t>(heap_.size()) - 1;
  if (pos != last) {
    const HeapEntry moved = heap_[last];
    heap_.pop_back();
    place(pos, moved);
    if (pos > 0 && before(heap_[pos], heap_[(pos - 1) / 4])) {
      sift_up(pos);
    } else {
      sift_down(pos);
    }
  } else {
    heap_.pop_back();
  }
}

void Simulator::sift_up(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(e, heap_[parent])) break;
    place(pos, heap_[parent]);
    pos = parent;
  }
  place(pos, e);
}

void Simulator::sift_down(std::uint32_t pos) {
  const HeapEntry e = heap_[pos];
  const auto size = static_cast<std::uint32_t>(heap_.size());
  while (true) {
    const std::uint64_t first = 4ull * pos + 1;
    if (first >= size) break;
    const std::uint32_t end =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(first + 4, size));
    std::uint32_t best = static_cast<std::uint32_t>(first);
    for (std::uint32_t c = best + 1; c < end; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    place(pos, heap_[best]);
    pos = best;
  }
  place(pos, e);
}

TimePoint Simulator::next_event_time() const {
  IDR_REQUIRE(!heap_.empty(), "next_event_time: queue empty");
  return heap_[0].time;
}

bool Simulator::pop_and_run() {
  if (heap_.empty()) return false;
  const std::uint32_t slot = heap_[0].node;
  now_ = heap_[0].time;
  heap_remove(0);
  // Move the callback to the stack before invoking: the callback may
  // schedule events (growing the slab under the node) or reschedule this
  // very event; the node is parked in the kFiring state meanwhile.
  EventClosure fn = std::move(nodes_[slot].fn);
  nodes_[slot].pos = kFiring;
  ++executed_;
  fn();
  Node& node = nodes_[slot];  // re-resolve: the slab may have moved
  if (node.pos == kRescheduled) {
    node.fn = std::move(fn);
    heap_insert(firing_time_, firing_seq_, slot);
  } else {
    free_node(slot);
  }
  return true;
}

std::size_t Simulator::run_until(TimePoint t) {
  IDR_REQUIRE(t >= now_, "run_until: time in the past");
  std::size_t ran = 0;
  while (!heap_.empty() && heap_[0].time <= t) {
    pop_and_run();
    ++ran;
  }
  now_ = t;
  return ran;
}

std::size_t Simulator::run(std::size_t max_events) {
  std::size_t ran = 0;
  while (ran < max_events && pop_and_run()) ++ran;
  return ran;
}

bool Simulator::step() { return pop_and_run(); }

}  // namespace idr::sim
