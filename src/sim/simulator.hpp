// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a queue of timestamped callbacks.
// Events at equal timestamps fire in scheduling order (FIFO), which makes
// runs deterministic.
//
// The queue is an indexed 4-ary min-heap over slab-allocated event nodes:
// each node knows its heap position, so cancel() removes the entry in
// place (O(log n), no tombstones to skip later) and reschedule_at() moves
// it by a single sift — the operation timer-churn layers (completion
// estimates re-armed on every rate change, capacity re-draws, periodic
// cadences) perform instead of a cancel + fresh schedule. Event ids carry
// a per-slot generation, so stale handles are rejected without any lookup
// structure, and freed slots are recycled through a free list. Callbacks
// live in a small-buffer EventClosure inside the node. Net effect: once
// the slab and heap have grown to the high-water mark, the steady-state
// schedule / cancel / reschedule / dispatch loop performs zero heap
// allocations and zero hash lookups (enforced by bench/perf_smoke.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_closure.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace idr::sim {

using util::Duration;
using util::TimePoint;

/// Handle for a scheduled event; valid until the event fires or is
/// cancelled. Packed (generation << 32 | slot); never 0 for a live event,
/// so 0 works as a "no event" sentinel.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()). Accepts any
  /// `void()` callable; see EventClosure for the storage strategy.
  template <typename F>
  EventId schedule_at(TimePoint t, F&& fn) {
    IDR_REQUIRE(t >= now_, "schedule_at: time in the past");
    if constexpr (requires { fn == nullptr; }) {
      IDR_REQUIRE(!(fn == nullptr), "schedule_at: null callback");
    }
    return schedule_impl(t, EventClosure(std::forward<F>(fn)));
  }

  /// Schedules `fn` after `delay` (must be >= 0).
  template <typename F>
  EventId schedule_in(Duration delay, F&& fn) {
    IDR_REQUIRE(delay >= 0.0, "schedule_in: negative delay");
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id is unknown. An event may cancel
  /// itself from its own callback only after rescheduling (otherwise it
  /// already counts as fired).
  bool cancel(EventId id);

  /// Moves a pending event to absolute time `t` (must be >= now()),
  /// keeping its id and callback. Ordering is exactly as if the event had
  /// been cancelled and freshly scheduled: among events at the same
  /// timestamp it fires last. The currently-dispatching event may
  /// reschedule itself from its own callback (this is how repeating
  /// timers re-arm without re-creating their closure). Returns false if
  /// the event already fired or the id is unknown.
  bool reschedule_at(EventId id, TimePoint t);

  /// Moves a pending event to now() + `delay` (must be >= 0).
  bool reschedule_in(EventId id, Duration delay) {
    IDR_REQUIRE(delay >= 0.0, "reschedule_in: negative delay");
    return reschedule_at(id, now_ + delay);
  }

  /// Runs events with timestamp <= `t`, then advances the clock to `t`
  /// (even if the queue drains earlier). Returns the number of events run.
  std::size_t run_until(TimePoint t);

  /// Runs until the queue is empty or `max_events` have fired.
  /// Returns the number of events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Pending event count (cancelled events leave the queue immediately).
  std::size_t pending() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }

  /// Timestamp of the next pending event; requires !empty().
  TimePoint next_event_time() const;

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total events successfully cancelled since construction. Together
  /// with executed() and reschedules() this exposes timer churn.
  std::uint64_t cancellations() const { return cancellations_; }

  /// Total successful reschedule_at()/reschedule_in() calls — the in-place
  /// cancel + re-arm operations of layers that re-estimate timers on
  /// every state change (flow completion estimates, capacity re-draws,
  /// periodic cadences).
  std::uint64_t reschedules() const { return reschedules_; }

  /// The three churn counters in one read — what per-world aggregators
  /// (testbed sessions, shard merges) fold into their work tallies.
  struct WorkCounters {
    std::uint64_t executed = 0;
    std::uint64_t cancellations = 0;
    std::uint64_t reschedules = 0;
  };
  WorkCounters work() const {
    return {executed_, cancellations_, reschedules_};
  }

 private:
  // Heap entries carry the ordering key (time, seq) so sifts compare
  // within the contiguous heap array; the node index links back to the
  // slab for position bookkeeping and dispatch.
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break among equal timestamps
    std::uint32_t node;
  };

  struct Node {
    EventClosure fn;
    std::uint32_t gen = 1;  // bumped on free; validates EventIds
    std::uint32_t pos = kFree;
  };

  // Sentinel `pos` values for nodes not currently in the heap.
  static constexpr std::uint32_t kFree = 0xFFFFFFFFu;
  static constexpr std::uint32_t kFiring = 0xFFFFFFFEu;
  static constexpr std::uint32_t kRescheduled = 0xFFFFFFFDu;
  static constexpr std::uint32_t kMaxPos = 0xFFFFFFF0u;

  static EventId make_id(std::uint32_t gen, std::uint32_t slot) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  EventId schedule_impl(TimePoint t, EventClosure fn);
  /// Resolves an id to its slab slot; returns nullptr for stale/unknown.
  Node* resolve(EventId id);
  void heap_insert(TimePoint t, std::uint64_t seq, std::uint32_t node);
  void heap_remove(std::uint32_t pos);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);
  void place(std::uint32_t pos, const HeapEntry& e) {
    heap_[pos] = e;
    nodes_[e.node].pos = pos;
  }
  void free_node(std::uint32_t slot);
  bool pop_and_run();

  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancellations_ = 0;
  std::uint64_t reschedules_ = 0;
  std::vector<HeapEntry> heap_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  // Reschedule target of the currently-dispatching event, if its callback
  // rescheduled itself (dispatch is never reentrant, so one slot is
  // enough; the re-insert happens after the callback returns).
  TimePoint firing_time_ = 0.0;
  std::uint64_t firing_seq_ = 0;
};

/// Repeating timer: runs `fn` every `period`, starting `period` from
/// creation, until stop() or destruction. The callback may stop the
/// timer. One event is armed for the timer's whole life and rescheduled
/// in place on every tick.
class PeriodicTimer {
 public:
  template <typename F>
  PeriodicTimer(Simulator& sim, Duration period, F&& fn)
      : sim_(sim), period_(period), fn_(std::forward<F>(fn)) {
    IDR_REQUIRE(period_ > 0.0, "PeriodicTimer: period must be positive");
    IDR_REQUIRE(static_cast<bool>(fn_), "PeriodicTimer: null callback");
    event_ = sim_.schedule_in(period_, [this] {
      // Re-arm before running the callback so the callback sees a live
      // timer it can stop().
      sim_.reschedule_in(event_, period_);
      fn_();
    });
  }
  ~PeriodicTimer() { stop(); }
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop() {
    if (!running_) return;
    running_ = false;
    sim_.cancel(event_);
  }
  bool running() const { return running_; }

 private:
  Simulator& sim_;
  Duration period_;
  EventClosure fn_;
  EventId event_ = 0;
  bool running_ = true;
};

}  // namespace idr::sim
