// Discrete-event simulation engine.
//
// A Simulator owns a virtual clock and a queue of timestamped callbacks.
// Events at equal timestamps fire in scheduling order (FIFO), which makes
// runs deterministic. Cancellation is O(1) amortized: cancelled events are
// tombstoned and skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/units.hpp"

namespace idr::sim {

using util::Duration;
using util::TimePoint;

/// Handle for a scheduled event; valid until the event fires or is
/// cancelled.
using EventId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time. Starts at 0.
  TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (must be >= now()).
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules `fn` after `delay` (must be >= 0).
  EventId schedule_in(Duration delay, std::function<void()> fn);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or the id is unknown.
  bool cancel(EventId id);

  /// Runs events with timestamp <= `t`, then advances the clock to `t`
  /// (even if the queue drains earlier). Returns the number of events run.
  std::size_t run_until(TimePoint t);

  /// Runs until the queue is empty or `max_events` have fired.
  /// Returns the number of events run.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  /// Runs exactly one event if any is pending; returns whether one ran.
  bool step();

  /// Pending (non-cancelled) event count.
  std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  bool empty() const { return pending() == 0; }

  /// Timestamp of the next pending event; requires !empty().
  TimePoint next_event_time() const;

  /// Total events executed since construction.
  std::uint64_t executed() const { return executed_; }

  /// Total events successfully cancelled since construction. Together with
  /// executed() this exposes timer churn: layers that cancel/re-arm timers
  /// on every state change (e.g. flow completion estimates) show up here.
  std::uint64_t cancellations() const { return cancellations_; }

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;  // FIFO tie-break among equal timestamps
    EventId id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  // Pops tombstoned entries off the top of the heap.
  void skip_cancelled();
  bool pop_and_run();

  TimePoint now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancellations_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  // Callbacks keyed by id; detached from Entry so cancel() can free the
  // closure immediately.
  std::unordered_map<EventId, std::function<void()>> callbacks_;
};

/// Repeating timer: runs `fn` every `period`, starting `period` from
/// creation, until stop() or destruction. The callback may stop the timer.
class PeriodicTimer {
 public:
  PeriodicTimer(Simulator& sim, Duration period, std::function<void()> fn);
  ~PeriodicTimer();
  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  void stop();
  bool running() const { return running_; }

 private:
  void arm();

  Simulator& sim_;
  Duration period_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool running_ = true;
};

}  // namespace idr::sim
