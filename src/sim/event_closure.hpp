// Small-buffer-optimized callback storage for scheduler events.
//
// An EventClosure owns one `void()` callable. Callables that fit the
// inline buffer (and are nothrow-movable, so slab relocation cannot
// throw) are stored in place; larger ones fall back to a single heap
// allocation. The steady-state event loop only ever carries small
// captures ([this], [this, id], [this, link]), so once the simulator is
// warm no closure construction touches the allocator — unlike
// std::function, which both allocates for modest captures and drags in
// copyability requirements the scheduler never needs.
//
// Move semantics are "relocate": move-construct into the destination and
// destroy the source, via one indirect call. This is what the slab needs
// when std::vector growth moves nodes, and what dispatch needs when it
// moves a closure to the stack before invoking it (the callback may grow
// the slab under its own feet).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace idr::sim {

class EventClosure {
 public:
  /// Captures up to this many bytes are stored inline. Sized for the hot
  /// schedulers' closures (a pointer or two plus a handful of scalars)
  /// with room to spare; one cache line per node including bookkeeping.
  static constexpr std::size_t kInlineBytes = 48;

  EventClosure() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventClosure>>>
  EventClosure(F&& fn) {  // NOLINT(google-explicit-constructor)
    static_assert(std::is_invocable_r_v<void, D&>,
                  "EventClosure: callable must be invocable as void()");
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kHeapOps<D>;
    }
  }

  EventClosure(EventClosure&& other) noexcept { take(other); }

  EventClosure& operator=(EventClosure&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  EventClosure(const EventClosure&) = delete;
  EventClosure& operator=(const EventClosure&) = delete;

  ~EventClosure() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

  /// Destroys the held callable (frees a heap-fallback immediately).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct dst from src and destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* s) { (*static_cast<D*>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* s) noexcept { static_cast<D*>(s)->~D(); }};

  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* s) { (**static_cast<D**>(s))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* s) noexcept { delete *static_cast<D**>(s); }};

  void take(EventClosure& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
};

}  // namespace idr::sim
