#include "testbed/policy.hpp"

#include "util/error.hpp"

namespace idr::testbed {

std::unique_ptr<core::SelectionPolicy> make_policy(
    const PolicyParams& params) {
  switch (params.kind) {
    case PolicyKind::Uniform:
      return std::make_unique<core::UniformRandomSubsetPolicy>(
          params.subset_size);
    case PolicyKind::Weighted:
      return std::make_unique<core::WeightedRandomSubsetPolicy>(
          params.subset_size, params.exploration_floor);
    case PolicyKind::FullSet:
      return std::make_unique<core::FullSetPolicy>();
    case PolicyKind::AlwaysRace:
      return std::make_unique<core::AlwaysRacePolicy>(
          std::make_unique<core::UniformRandomSubsetPolicy>(
              params.subset_size));
    case PolicyKind::RaceOnStaleness:
      return std::make_unique<core::RaceOnStalenessPolicy>(
          std::make_unique<core::UniformRandomSubsetPolicy>(
              params.subset_size),
          params.staleness_threshold);
    case PolicyKind::HybridPassive:
      return std::make_unique<core::HybridWeightedPassivePolicy>(
          params.subset_size, params.utilization_cap,
          params.exploration_floor);
  }
  ::idr::util::fail("make_policy: unknown policy kind");
}

const char* policy_kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::Uniform: return "uniform";
    case PolicyKind::Weighted: return "weighted";
    case PolicyKind::FullSet: return "full-set";
    case PolicyKind::AlwaysRace: return "always-race";
    case PolicyKind::RaceOnStaleness: return "race-on-staleness";
    case PolicyKind::HybridPassive: return "hybrid-passive";
  }
  return "unknown";
}

}  // namespace idr::testbed
