#include "testbed/section2.hpp"

#include <algorithm>

#include "testbed/parallel.hpp"
#include "testbed/session.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::testbed {

namespace {

std::vector<const SiteProfile*> pick_relays(const SiteProfile& client,
                                            std::size_t count,
                                            std::uint64_t seed) {
  const auto& all = relay_sites();
  if (count == 0 || count >= all.size()) {
    std::vector<const SiteProfile*> out;
    for (const auto& r : all) out.push_back(&r);
    return out;
  }
  // Deterministic per-client sample so every relay shows up across enough
  // clients for the Fig. 5 aggregation.
  util::Rng rng{util::child_stream(seed, fnv1a(client.name))};
  const auto picks = rng.sample_without_replacement(all.size(), count);
  std::vector<const SiteProfile*> out;
  for (std::size_t i : picks) out.push_back(&all[i]);
  return out;
}

// The "a priori good" relay of the paper: rank the full relay set by the
// expected bandwidth of the relay->client leg (what an operator measuring
// overlay links ahead of time would know) and take the rank-th best.
const SiteProfile* apriori_good_relay(const ScenarioGenerator& generator,
                                      const SiteProfile& client,
                                      const SiteProfile& server,
                                      std::size_t rank) {
  const auto& all = relay_sites();
  std::vector<const SiteProfile*> roster;
  for (const auto& r : all) roster.push_back(&r);
  const WorldParams probe = generator.make_world(client, roster, server);
  std::vector<std::size_t> order(roster.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return probe.relay_wan[a].mean > probe.relay_wan[b].mean;
                   });
  return roster[order[std::min(rank, order.size() - 1)]];
}

}  // namespace

Section2Result run_section2(const Section2Config& config) {
  const SiteProfile& server = find_site(config.server);

  std::vector<const SiteProfile*> clients;
  if (config.clients.empty()) {
    for (const auto& c : client_sites()) clients.push_back(&c);
  } else {
    for (const auto& name : config.clients) {
      clients.push_back(&find_site(name));
    }
  }

  const ScenarioGenerator generator(config.seed, config.knobs);

  // One task per (client, relay) session.
  struct Task {
    const SiteProfile* client = nullptr;
    const SiteProfile* relay = nullptr;
  };
  std::vector<Task> tasks;
  for (const SiteProfile* client : clients) {
    if (config.assignment == RelayAssignment::AprioriGood) {
      tasks.push_back(Task{client,
                           apriori_good_relay(generator, *client, server,
                                              config.good_rank)});
    } else {
      for (const SiteProfile* relay :
           pick_relays(*client, config.relays_per_client, config.seed)) {
        tasks.push_back(Task{client, relay});
      }
    }
  }

  auto run_task = [&](std::size_t i) -> SessionResult {
    const Task& task = tasks[i];
    SessionSpec spec;
    spec.params = generator.make_world(*task.client, {task.relay}, server);
    // Distinct bandwidth sample paths per session: mix the relay into the
    // process seed (make_world already folds the roster in, but keep the
    // transfer cadence seed distinct too).
    spec.client_seed =
        util::child_stream(config.seed, fnv1a(task.client->name) ^
                                            (fnv1a(task.relay->name) * 17));
    spec.transfers = config.transfers_per_session;
    spec.interval = config.interval;
    spec.session_relay_label = std::string(task.relay->name);
    spec.tracer = config.tracer;
    spec.trace_track = static_cast<std::uint32_t>(i);
    spec.flights = config.flights;
    spec.sample_period = config.sample_period;
    spec.sample_capacity = config.sample_capacity;
    spec.policy_factory = [](ClientWorld& world) {
      return std::make_unique<core::StaticRelayPolicy>(world.relay_node(0));
    };
    return run_session(spec).result;
  };

  Section2Result result;
  result.sessions = parallel_map<SessionResult>(
      tasks.size(), config.threads, run_task);
  return result;
}

}  // namespace idr::testbed
