#include "testbed/shard.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <memory>

#include "core/selection_policy.hpp"
#include "testbed/parallel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace idr::testbed {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t mix(std::uint64_t h, std::uint64_t x) {
  // FNV-1a over the eight bytes of x, keeping the digest byte-order
  // independent of host endianness concerns by hashing the value bytes in
  // little-endian order.
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t mix(std::uint64_t h, double x) {
  return mix(h, std::bit_cast<std::uint64_t>(x));
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void ShardSummary::absorb(const SessionResult& session) {
  digest = mix(digest, fnv1a(session.client));
  digest = mix(digest, fnv1a(session.session_relay));
  for (const TransferObservation& t : session.transfers) {
    ++transfers;
    if (t.ok) {
      ++ok;
      improvement_sum += t.improvement_steady_pct;
    } else {
      ++failed;
    }
    if (t.chose_indirect) ++indirect;
    std::uint64_t flags = 0;
    flags |= t.ok ? 1u : 0u;
    flags |= t.chose_indirect ? 2u : 0u;
    flags |= t.fell_back_direct ? 4u : 0u;
    // Bit 3 is always clear under the default always-race policies, so
    // pre-existing digests are unchanged.
    flags |= t.race_skipped ? 8u : 0u;
    digest = mix(digest, flags);
    digest = mix(digest, t.start_time);
    digest = mix(digest, t.selected_rate);
    digest = mix(digest, t.selected_steady_rate);
    digest = mix(digest, t.direct_rate);
    digest = mix(digest, t.improvement_pct);
    digest = mix(digest, t.improvement_steady_pct);
    digest = mix(digest, static_cast<std::uint64_t>(t.probe_failures));
    digest = mix(digest, static_cast<std::uint64_t>(t.retries));
    digest = mix(digest,
                 static_cast<std::uint64_t>(t.overload_rejections));
    digest = mix(digest, fnv1a(t.chosen_relay));
  }
}

void ShardSummary::combine(const ShardSummary& other) {
  transfers += other.transfers;
  ok += other.ok;
  indirect += other.indirect;
  failed += other.failed;
  improvement_sum += other.improvement_sum;
  digest = mix(digest, other.digest);
}

ShardResult run_shard(const ShardSpec& spec) {
  const auto t0 = std::chrono::steady_clock::now();
  ShardResult result;
  result.shard_id = spec.shard_id;
  result.sessions.reserve(spec.sessions.size());

  // The shard's own registry: run-structure series that no per-world
  // registry can see. Merged last so a shard snapshot carries both the
  // simulation series and the execution-shape series.
  obs::Registry registry;
  const obs::Counter shards_run = registry.counter("testbed.shard.shards_run");
  const obs::Counter sessions_run = registry.counter("testbed.shard.sessions");
  const obs::Counter transfers_run =
      registry.counter("testbed.shard.transfers");

  for (const SessionSpec& session_spec : spec.sessions) {
    SessionOutput output = run_session(session_spec);
    result.work += output.result.sim_work;
    result.summary.absorb(output.result);
    sessions_run.inc();
    transfers_run.inc(output.result.transfers.size());
    result.metrics.merge(output.result.metrics);
    result.sessions.push_back(std::move(output));
  }
  shards_run.inc();
  result.metrics.merge(registry.snapshot());
  result.busy_seconds = seconds_since(t0);
  return result;
}

ShardRunResult run_sharded(
    std::vector<ShardSpec> shards, unsigned threads,
    const std::function<void(ShardResult&)>& per_shard) {
  const auto t0 = std::chrono::steady_clock::now();

  // Fork: shards execute in any order on the pool; each result lands in
  // its own slot. The optional reducer runs on the worker so drivers can
  // shed per-transfer memory before the join.
  std::vector<ShardResult> results = parallel_map<ShardResult>(
      shards.size(), threads, [&](std::size_t i) {
        ShardResult r = run_shard(shards[i]);
        if (per_shard) per_shard(r);
        return r;
      });

  // Join: a serial, shard-index-ordered merge. Snapshot merging and
  // digest chaining are order-sensitive, so this loop — not completion
  // order — defines the result, making it independent of thread count.
  ShardRunResult run;
  run.shard_count = results.size();
  for (ShardResult& r : results) {
    run.summary.combine(r.summary);
    run.work += r.work;
    run.busy_seconds += r.busy_seconds;
    run.metrics.merge(r.metrics);
    for (SessionOutput& s : r.sessions) {
      run.outputs.push_back(std::move(s));
    }
  }
  run.wall_seconds = seconds_since(t0);
  return run;
}

std::vector<ShardSpec> plan_shards(std::vector<SessionSpec> sessions,
                                   std::size_t sessions_per_shard) {
  IDR_REQUIRE(sessions_per_shard > 0, "plan_shards: empty shard size");
  std::vector<ShardSpec> shards;
  for (std::size_t begin = 0; begin < sessions.size();
       begin += sessions_per_shard) {
    const std::size_t end =
        std::min(begin + sessions_per_shard, sessions.size());
    ShardSpec shard;
    shard.shard_id = shards.size();
    shard.sessions.assign(std::move_iterator(sessions.begin() + begin),
                          std::move_iterator(sessions.begin() + end));
    shards.push_back(std::move(shard));
  }
  return shards;
}

// --- Planet-scale fleets ----------------------------------------------------

namespace {

/// A synthesized variant of a calibrated base profile. All perturbations
/// draw from child_stream(seed, fnv1a(name)): the variant is a pure
/// function of (seed, name).
SiteProfile synthesize_site(const SiteProfile& base, std::string_view name,
                            std::uint64_t seed) {
  util::Rng rng{util::child_stream(seed, fnv1a(name))};
  SiteProfile site = base;
  site.name = name;
  site.inbound_mbps =
      std::max(0.2, base.inbound_mbps * rng.lognormal_mean_cv(1.0, 0.25));
  site.variability_cv = std::clamp(
      base.variability_cv * rng.lognormal_mean_cv(1.0, 0.15), 0.05, 0.80);
  site.access_mbps =
      std::max(1.0, base.access_mbps * rng.lognormal_mean_cv(1.0, 0.10));
  site.relay_goodness = std::max(
      0.1, base.relay_goodness * rng.lognormal_mean_cv(1.0, 0.15));
  site.base_loss =
      std::clamp(base.base_loss * rng.lognormal_mean_cv(1.0, 0.30), 1e-4,
                 0.02);
  // Jumpy direct paths stay mostly jumpy; stable ones occasionally pick
  // up episodes, keeping the population's High-penalty tail alive at any
  // fleet size.
  site.jumpy = rng.bernoulli(base.jumpy ? 0.75 : 0.05);
  return site;
}

}  // namespace

SyntheticFleet::SyntheticFleet(const FleetSpec& spec)
    : server_(find_site(spec.server)) {
  IDR_REQUIRE(spec.clients > 0, "SyntheticFleet: no clients");
  IDR_REQUIRE(spec.relay_pool > 0, "SyntheticFleet: empty relay pool");
  const auto& client_bases = client_sites();
  const auto& relay_bases = relay_sites();

  clients_.reserve(spec.clients);
  for (std::size_t i = 0; i < spec.clients; ++i) {
    const SiteProfile& base = client_bases[i % client_bases.size()];
    names_.push_back(std::string(base.name) + "#" + std::to_string(i));
    clients_.push_back(synthesize_site(base, names_.back(), spec.seed));
  }
  relays_.reserve(spec.relay_pool);
  for (std::size_t i = 0; i < spec.relay_pool; ++i) {
    const SiteProfile& base = relay_bases[i % relay_bases.size()];
    names_.push_back(std::string(base.name) + "#" + std::to_string(i));
    relays_.push_back(synthesize_site(base, names_.back(), spec.seed));
  }
}

std::vector<ShardSpec> plan_fleet_shards(const FleetSpec& spec,
                                         const SyntheticFleet& fleet) {
  IDR_REQUIRE(spec.clients_per_shard > 0,
              "plan_fleet_shards: empty shard size");
  IDR_REQUIRE(spec.relays_per_client > 0 &&
                  spec.relays_per_client <= fleet.relays().size(),
              "plan_fleet_shards: relays_per_client out of range");
  IDR_REQUIRE(spec.probe_set > 0, "plan_fleet_shards: empty probe set");
  IDR_REQUIRE(spec.transfers_per_client > 0,
              "plan_fleet_shards: no transfers");

  const ScenarioGenerator generator(spec.seed, spec.knobs);
  const std::size_t subset =
      std::min(spec.probe_set, spec.relays_per_client);

  std::vector<ShardSpec> shards;
  for (std::size_t begin = 0; begin < fleet.clients().size();
       begin += spec.clients_per_shard) {
    const std::size_t end =
        std::min(begin + spec.clients_per_shard, fleet.clients().size());
    ShardSpec shard;
    shard.shard_id = shards.size();
    // Every stream under this shard is keyed by (root seed, shard id,
    // client name): stable across thread counts AND across re-planning,
    // since client-to-shard assignment is itself a pure function of the
    // spec.
    const std::uint64_t shard_seed =
        util::child_stream(spec.seed, shard.shard_id);

    for (std::size_t c = begin; c < end; ++c) {
      const SiteProfile& client = fleet.clients()[c];
      util::Rng roster_rng{
          util::child_stream(shard_seed, fnv1a(client.name))};
      const std::vector<std::size_t> picks =
          roster_rng.sample_without_replacement(fleet.relays().size(),
                                                spec.relays_per_client);
      std::vector<const SiteProfile*> roster;
      roster.reserve(picks.size());
      for (std::size_t p : picks) roster.push_back(&fleet.relays()[p]);

      SessionSpec session;
      session.params = generator.make_world(client, roster, fleet.server());
      session.transfers = spec.transfers_per_client;
      session.interval = spec.interval;
      session.client_seed =
          util::child_stream(shard_seed, fnv1a(client.name) * 29);
      if (spec.policy.has_value()) {
        PolicyParams params = *spec.policy;
        params.subset_size = subset;
        session.policy_factory =
            [params](ClientWorld&) -> std::unique_ptr<core::SelectionPolicy> {
          return make_policy(params);
        };
      } else {
        session.policy_factory =
            [subset](ClientWorld&) -> std::unique_ptr<core::SelectionPolicy> {
          return std::make_unique<core::UniformRandomSubsetPolicy>(subset);
        };
      }
      shard.sessions.push_back(std::move(session));
    }
    shards.push_back(std::move(shard));
  }
  return shards;
}

}  // namespace idr::testbed
