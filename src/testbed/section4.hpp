// Section 4 experiment driver: the selecting client picks the best of a
// random subset of n relays per transfer (probing all of them against the
// direct path). Sweeping n produces Fig. 6; the per-relay utilization and
// improvement history produces Table III.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <optional>

#include "core/relay_stats.hpp"
#include "obs/trace.hpp"
#include "testbed/policy.hpp"
#include "testbed/records.hpp"
#include "testbed/scenario.hpp"

namespace idr::testbed {

enum class SubsetPolicyKind {
  Uniform,   // the paper's random set
  Weighted,  // utilization-weighted sampling (the paper's proposed
             // enhancement, evaluated as ablation A3)
};

struct Section4Config {
  std::uint64_t seed = 2007;
  std::string server = "eBay";
  /// The paper's Section 4 clients.
  std::vector<std::string> clients = {"Duke", "Italy", "Sweden"};
  /// Direct-path mean overrides pinning the clients into the Low/Medium
  /// bands (Duke is a US site whose profile is relay-grade otherwise).
  /// Parallel to `clients`; 0 keeps the profile value.
  std::vector<double> client_inbound_mbps = {2.0, 1.2, 1.4};
  /// Random-set sizes to sweep (paper: 1..35).
  std::vector<std::size_t> set_sizes = {1, 2, 3, 5, 7, 10, 15, 20, 25, 30, 35};
  /// Relays in the full set (Tables IV+V minus the clients; paper: 35).
  std::size_t relay_count = 35;
  /// Paper defaults: 720 transfers, one every 30 seconds (6 hours).
  std::size_t transfers = 720;
  util::Duration interval = util::seconds(30);
  SubsetPolicyKind policy = SubsetPolicyKind::Uniform;
  /// When set, overrides `policy` with the full PolicyParams family (the
  /// policy-matrix bench path); the swept set size replaces
  /// `policy_params->subset_size` per cell. Unset keeps the legacy
  /// Uniform/Weighted switch above, bit-identical to the seed behavior.
  std::optional<PolicyParams> policy_params;
  ScenarioKnobs knobs{};
  unsigned threads = 0;
  /// Optional span sink shared by every cell (the Tracer is thread-safe);
  /// each cell traces on its own track (task index).
  obs::Tracer* tracer = nullptr;
};

/// Result of one (client, set size) run.
struct Section4Cell {
  std::string client;
  std::size_t set_size = 0;
  /// Average improvement over ALL transfers (direct selections count at
  /// their ~0 improvement), matching Fig. 6's y-axis.
  double avg_improvement_pct = 0.0;
  double utilization = 0.0;
  SessionResult session;
  core::RelayStatsTable relay_stats;
};

struct Section4Result {
  std::vector<Section4Cell> cells;

  const Section4Cell& cell(const std::string& client,
                           std::size_t set_size) const;
};

Section4Result run_section4(const Section4Config& config);

/// The full relay roster a Section 4 client uses: the 21 US intermediates
/// (minus the client, if it is one of them) topped up with international
/// sites (minus the clients) to `count`.
std::vector<const SiteProfile*> section4_relays(
    const Section4Config& config, const std::string& client,
    std::size_t count);

}  // namespace idr::testbed
