// Experiment data records and the aggregations behind the paper's tables
// and figures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace idr::testbed {

using util::Rate;
using util::TimePoint;

/// One experiment point: a selecting transfer and its concurrent plain
/// direct reference.
struct TransferObservation {
  std::string client;
  /// The session's static relay (Section 2) or empty (Section 4).
  std::string session_relay;
  TimePoint start_time = 0.0;
  bool ok = false;
  bool chose_indirect = false;
  std::string chosen_relay;  // empty when the direct path was selected
  Rate selected_rate = 0.0;  // bytes/s, probe overhead included
  /// Steady-phase rate of the selected path (remainder transfer only) —
  /// the Section 4 metric, free of n-way probe contention.
  Rate selected_steady_rate = 0.0;
  Rate direct_rate = 0.0;    // bytes/s, from the mirrored plain client
  double improvement_pct = 0.0;
  double improvement_steady_pct = 0.0;
  /// Fault accounting for this trial (all zero on fault-free runs):
  /// probe lanes that died, retry attempts beyond each phase's first try,
  /// and whether the transfer was salvaged over the direct path.
  std::size_t probe_failures = 0;
  std::size_t retries = 0;
  bool fell_back_direct = false;
  /// True when the probe race was skipped on a pinned relay (a
  /// race-skipping policy rode its cached estimate). Always false under
  /// the default always-race policies.
  bool race_skipped = false;
  /// Attempts rejected by relay admission control (503 shed) during this
  /// trial; a subset of the failures above in spirit but tallied apart —
  /// shed relays are alive, just full.
  std::size_t overload_rejections = 0;
};

/// Discrete-event scheduler work behind one session (both mirrored
/// worlds summed): events fired plus the timer churn — in-place
/// cancellations and reschedules — the run exerted on the event core.
/// Benchmark drivers print these next to their figures/tables so a
/// scheduler regression (e.g. churn reverting to cancel + re-schedule
/// pairs) is visible without a profiler.
struct SchedulerWork {
  std::uint64_t executed = 0;
  std::uint64_t cancellations = 0;
  std::uint64_t reschedules = 0;

  SchedulerWork& operator+=(const SchedulerWork& o) {
    executed += o.executed;
    cancellations += o.cancellations;
    reschedules += o.reschedules;
    return *this;
  }
};

/// All transfers of one (client, relay-or-policy) session.
struct SessionResult {
  std::string client;
  std::string session_relay;  // empty for Section 4 sessions
  std::vector<TransferObservation> transfers;
  /// Direct-path throughput distribution over the session (drives the
  /// Low/Medium/High categorization and the variability classification).
  util::OnlineStats direct_rate_stats;
  /// Event-core work both worlds performed to produce this session.
  SchedulerWork sim_work;
  /// Both mirrors' `sim.*` registry series merged (flow core, transfer
  /// engine, probe races), plus `sim.core.*` event-core totals. Drivers
  /// merge these across sessions for the run-level exposition.
  obs::Snapshot metrics;
  /// Periodic Snapshots of the selecting world (virtual time), populated
  /// only when SessionSpec::sample_period > 0 — windowed rates come from
  /// diffing these.
  obs::TimeSeries series;
  /// Fault totals over the session: per-trial counters summed, plus the
  /// number of transfers the selecting world's fault plane killed or
  /// refused (includes cancelled probe losers the trials never report).
  std::size_t fault_probe_failures = 0;
  std::size_t fault_retries = 0;
  std::size_t fault_fallbacks = 0;
  std::size_t failed_transfers = 0;
  std::uint64_t faults_injected = 0;
  /// Overload-governance totals (zero unless relay admission control is
  /// enabled): attempts shed with 503 across the session's races, plus
  /// the selecting engine's shed/queued admission counters.
  std::size_t fault_overloads = 0;
  std::size_t transfers_shed = 0;
  std::size_t transfers_queued = 0;

  std::size_t indirect_count() const;
  /// Fraction of transfers routed through the indirect path.
  double utilization() const;
  core::ThroughputCategory category() const;
  core::VariabilityClass variability(
      double cv_threshold = core::kVariabilityCvThreshold) const;
};

// --- Aggregations ---------------------------------------------------------

/// Improvements (percent) of transfers where the indirect path was chosen
/// — the population of Fig. 1/2.
std::vector<double> indirect_improvements(
    const std::vector<SessionResult>& sessions);

/// (selected, direct) rate pairs of indirect-chosen transfers, optionally
/// filtered by a session predicate — the Table I input.
std::vector<std::pair<Rate, Rate>> indirect_rate_pairs(
    const std::vector<SessionResult>& sessions);

template <typename Predicate>
std::vector<std::pair<Rate, Rate>> indirect_rate_pairs_if(
    const std::vector<SessionResult>& sessions, Predicate keep_session) {
  std::vector<std::pair<Rate, Rate>> pairs;
  for (const SessionResult& s : sessions) {
    if (!keep_session(s)) continue;
    for (const TransferObservation& t : s.transfers) {
      if (t.ok && t.chose_indirect) {
        pairs.emplace_back(t.selected_rate, t.direct_rate);
      }
    }
  }
  return pairs;
}

/// Per-client top relays by per-session utilization (Table II rows).
struct RelayUtilizationEntry {
  std::string relay;
  double utilization = 0.0;  // fraction, 0..1
};
struct ClientTopRelays {
  std::string client;
  std::vector<RelayUtilizationEntry> top;  // descending utilization
};
std::vector<ClientTopRelays> top_relays_per_client(
    const std::vector<SessionResult>& sessions, std::size_t k);

/// Per-relay utilization aggregated over all clients (Fig. 5): the
/// average is total-chosen / total-possible; stdev and RMS are over the
/// per-session utilizations, as the paper's robustness measures.
struct RelayUtilizationSummary {
  std::string relay;
  double average = 0.0;
  double stdev = 0.0;
  double rms = 0.0;
  std::size_t sessions = 0;
};
std::vector<RelayUtilizationSummary> relay_utilization_summary(
    const std::vector<SessionResult>& sessions);

/// Mean utilization over all sessions (the paper's headline 45 %).
double overall_utilization(const std::vector<SessionResult>& sessions);

/// (direct-path throughput, improvement) points for Fig. 3's scatter.
struct ImprovementVsThroughputPoint {
  std::string client;
  std::string relay;
  double direct_mbps = 0.0;
  double improvement_pct = 0.0;
};
std::vector<ImprovementVsThroughputPoint> improvement_vs_throughput_points(
    const std::vector<SessionResult>& sessions);

/// (time, indirect throughput) samples for Fig. 4's time series.
struct IndirectThroughputSample {
  std::string client;
  TimePoint time = 0.0;
  double indirect_mbps = 0.0;
};
std::vector<IndirectThroughputSample> indirect_throughput_timeseries(
    const std::vector<SessionResult>& sessions);

}  // namespace idr::testbed
