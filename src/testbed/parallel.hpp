// Minimal deterministic fork-join helper for the Monte-Carlo drivers.
//
// Tasks are indexed; each worker claims the next index atomically and
// writes its result into a preallocated slot, so the output order is the
// task order regardless of thread count — determinism is preserved because
// every task derives its randomness from its own index, never from shared
// streams.
//
// Both helpers are templated on the callable: each Monte-Carlo task is
// invoked directly (inlinable), without std::function type erasure on the
// fan-out path.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace idr::testbed {

/// Number of worker threads to use: `requested` when nonzero;
/// otherwise the IDR_THREADS environment variable when set to a positive
/// integer; otherwise the hardware concurrency (min 1).
unsigned resolve_threads(unsigned requested);

/// Indices claimed per fetch_add: enough to amortize the shared counter
/// on cheap tasks (one atomic op per chunk instead of per index), small
/// enough that coarse tasks — shards costing seconds each — still
/// balance across workers. Exposed for direct unit testing.
std::size_t claim_chunk(std::size_t count, unsigned workers);

/// Runs fn(0..count-1) across `threads` workers. Rethrows the first task
/// exception (by task index) after all workers stop.
template <typename Fn>
void parallel_for(std::size_t count, unsigned threads, Fn&& fn) {
  if (count == 0) return;
  const unsigned workers = static_cast<unsigned>(
      std::min<std::size_t>(resolve_threads(threads), count));

  if (workers <= 1) {
    // Same contract as the threaded path: every task runs, and the first
    // (lowest-index) exception is rethrown after the sweep — so a failing
    // run reports the same error and covers the same tasks at any thread
    // count.
    std::exception_ptr serial_error;
    for (std::size_t i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!serial_error) serial_error = std::current_exception();
      }
    }
    if (serial_error) std::rethrow_exception(serial_error);
    return;
  }

  const std::size_t chunk = claim_chunk(count, workers);
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::size_t first_error_index = SIZE_MAX;

  auto worker = [&] {
    while (true) {
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) return;
      const std::size_t end = std::min(begin + chunk, count);
      for (std::size_t i = begin; i < end; ++i) {
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          // Keep the error of the lowest task index so reruns at
          // different thread counts report the same failure.
          if (i < first_error_index) {
            first_error_index = i;
            first_error = std::current_exception();
          }
        }
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

/// Maps fn over [0, count) into a vector, preserving index order.
template <typename T, typename Fn>
std::vector<T> parallel_map(std::size_t count, unsigned threads, Fn&& fn) {
  std::vector<T> results(count);
  parallel_for(count, threads,
               [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace idr::testbed
