// Minimal deterministic fork-join helper for the Monte-Carlo drivers.
//
// Tasks are indexed; each worker claims the next index atomically and
// writes its result into a preallocated slot, so the output order is the
// task order regardless of thread count — determinism is preserved because
// every task derives its randomness from its own index, never from shared
// streams.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <thread>
#include <vector>

namespace idr::testbed {

/// Number of worker threads to use: `requested`, or the hardware
/// concurrency when `requested == 0` (min 1).
unsigned resolve_threads(unsigned requested);

/// Runs fn(0..count-1) across `threads` workers. Rethrows the first task
/// exception (by task index) after all workers stop.
void parallel_for(std::size_t count, unsigned threads,
                  const std::function<void(std::size_t)>& fn);

/// Maps fn over [0, count) into a vector, preserving index order.
template <typename T>
std::vector<T> parallel_map(std::size_t count, unsigned threads,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> results(count);
  parallel_for(count, threads,
               [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace idr::testbed
