// Deterministic world-parameter generation from site profiles.
//
// All idiosyncratic variation (per-pair path quality, delays, losses) is
// derived from FNV-hashed site names mixed with the scenario seed, so a
// given (seed, client, relays, server) always yields the same WorldParams
// — the mirrored plain/selecting worlds depend on this.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "testbed/sites.hpp"
#include "testbed/world.hpp"

namespace idr::testbed {

struct ScenarioKnobs {
  util::Bytes file_size = util::megabytes(4);
  util::Bytes probe_bytes = util::kilobytes(100);

  /// Relay-leg mean bandwidth is
  ///   relay_base_scale * inbound^relay_inbound_exponent * goodness * idio
  /// (inbound in Mbps). The exponent < 1 captures the paper's central
  /// observation that indirect-path throughput is largely a property of
  /// the overlay link, "fairly constant" across time and only weakly
  /// coupled to how good the client's direct path is — which is what
  /// makes improvement inversely related to client throughput (Fig. 3)
  /// and gives High-throughput clients their penalties.
  double relay_base_scale = 1.30;
  double relay_inbound_exponent = 0.55;
  /// Lognormal CV of the per-(client, relay) path-quality factor — the
  /// "throughput diversity" knob.
  double relay_idio_cv = 0.30;
  /// Temporal CV of relay-leg available bandwidth (the paper observes
  /// indirect paths are steadier than direct ones — Fig. 4).
  double relay_wan_cv = 0.15;
  /// Fraction of (client, relay) legs that suffer occasional mild jump
  /// episodes (residual penalties on otherwise stable clients).
  double relay_jump_fraction = 0.15;
  /// Relay-leg loss relative to the client's direct-path loss (before the
  /// per-relay goodness divisor).
  double relay_loss_scale = 0.8;

  /// If > 0, the client access capacity becomes inbound * this multiple
  /// (overriding the site profile) — the natural ceiling on indirect
  /// gains and the source of shared-bottleneck penalties.
  double access_inbound_mult = 0.0;
  /// Scales every client's temporal variability (ablation knob).
  double client_cv_scale = 1.0;

  /// Direct-path capacity dynamics: resample period and AR(1) persistence.
  /// The defaults give dips lasting on the order of a minute — longer than
  /// a probe, comparable to a transfer — which is the paper's penalty
  /// mechanism (prediction right for the probe, wrong for the tail).
  util::Duration direct_step = 10.0;
  double direct_rho = 0.90;
  util::Duration relay_step = 60.0;   // relay-leg capacity resample

  overlay::RelayParams relay_params{};

  /// Fault injection, copied verbatim into every generated WorldParams
  /// (inert by default). `probe_timeout`/`retry` harden the probe race
  /// when faults are on; both are zero-cost on fault-free runs.
  fault::FaultConfig fault{};
  util::Duration probe_timeout = 0.0;
  fault::RetryPolicy retry{};

  /// Half-life of each client's passive throughput-estimate EWMA. Only
  /// read by race-skipping / estimate-weighted selection policies; inert
  /// under the default always-race policies.
  util::Duration estimate_half_life = 300.0;
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(std::uint64_t seed, ScenarioKnobs knobs = {});

  /// Builds the world for one client talking to one server through the
  /// given candidate relays. `client_inbound_mbps_override` (> 0) replaces
  /// the profile's direct-path mean — Section 4 pins Duke/Italy/Sweden to
  /// the Low/Medium bands this way.
  WorldParams make_world(const SiteProfile& client,
                         const std::vector<const SiteProfile*>& relays,
                         const SiteProfile& server,
                         double client_inbound_mbps_override = 0.0) const;

  std::uint64_t seed() const { return seed_; }
  const ScenarioKnobs& knobs() const { return knobs_; }

 private:
  std::uint64_t seed_;
  ScenarioKnobs knobs_;
};

/// Stable 64-bit FNV-1a over a string (used for per-site seed derivation;
/// std::hash is not guaranteed stable across implementations).
std::uint64_t fnv1a(std::string_view s);

}  // namespace idr::testbed
