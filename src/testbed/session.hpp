// Shared session runner: executes one client's measurement session — N
// transfers at a fixed cadence — in a pair of mirrored worlds (plain
// direct reference in world A, selecting client in world B) and joins the
// per-transfer observations.
#pragma once

#include <functional>
#include <memory>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "testbed/records.hpp"
#include "testbed/world.hpp"

namespace idr::testbed {

struct SessionSpec {
  WorldParams params;
  /// Builds the selecting client's policy once the world exists (policies
  /// need node ids, e.g. StaticRelayPolicy).
  std::function<std::unique_ptr<core::SelectionPolicy>(ClientWorld&)>
      policy_factory;
  std::size_t transfers = 100;
  util::Duration interval = util::minutes(6);
  /// Seed for the selecting client's policy stream.
  std::uint64_t client_seed = 1;
  /// Label stored as TransferObservation::session_relay (the static relay
  /// name for Section 2 sessions, empty for Section 4).
  std::string session_relay_label;
  /// Optional span sink for the selecting world (virtual-time clock);
  /// `trace_track` becomes the Chrome tid, one row per session.
  obs::Tracer* tracer = nullptr;
  std::uint32_t trace_track = 0;
  /// When set, every race the selecting client runs appends a
  /// FlightRecord (source "sim.race") to the ring.
  obs::FlightRecorder* flights = nullptr;
  /// Virtual-time metrics sampling for the selecting world: > 0 pushes
  /// one registry Snapshot per period into the result's `series`, which
  /// windowed-rate consumers (e.g. the Fig. 4 time-series bench) diff.
  /// 0 — the default — schedules no event at all.
  util::Duration sample_period = 0.0;
  std::size_t sample_capacity = 256;
};

struct SessionOutput {
  SessionResult result;
  /// Final per-relay history of the selecting client (Table III input).
  core::RelayStatsTable relay_stats;
};

SessionOutput run_session(const SessionSpec& spec);

}  // namespace idr::testbed
