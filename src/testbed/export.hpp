// CSV export of experiment data, for external plotting/analysis.
#pragma once

#include "testbed/records.hpp"
#include "testbed/section4.hpp"
#include "util/table.hpp"

namespace idr::testbed {

/// One row per transfer: client, session relay, time, selection, rates
/// (Mbps) and improvements (percent).
util::CsvWriter observations_csv(const std::vector<SessionResult>& sessions);

/// One row per relay: average/stdev/RMS utilization (the Fig. 5 series).
util::CsvWriter relay_utilization_csv(
    const std::vector<SessionResult>& sessions);

/// One row per (client, set size): the Fig. 6 series.
util::CsvWriter random_set_sweep_csv(const Section4Result& result);

}  // namespace idr::testbed
