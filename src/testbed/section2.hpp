// Section 2/3 experiment driver: each client runs one session per
// candidate relay with the paper's static-relay methodology (probe race
// between the direct path and that one relay, every `interval`, N times).
// The resulting sessions feed Figs. 1-5 and Tables I-II.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "testbed/records.hpp"
#include "testbed/scenario.hpp"

namespace idr::testbed {

/// How each client's static relay sessions are chosen.
enum class RelayAssignment {
  /// One session per client via a relay "determined a priori to be a good
  /// one, though not necessarily the best" (paper Section 2.2) — ranked
  /// by expected leg bandwidth, taking `good_rank`-th best. This is the
  /// dataset behind Figs. 1-4 and Table I.
  AprioriGood,
  /// One session per (client, sampled relay) pair — the dataset behind
  /// the utilization analyses (Table II, Fig. 5).
  RotateSampled,
};

struct Section2Config {
  std::uint64_t seed = 2007;
  std::string server = "eBay";
  /// Clients to run; empty = all 22 of Table IV.
  std::vector<std::string> clients;
  RelayAssignment assignment = RelayAssignment::RotateSampled;
  /// For AprioriGood: rank of the chosen relay by expected leg bandwidth
  /// (0 = the best; the paper's wording suggests "good, not necessarily
  /// best", so a small nonzero rank is the default).
  std::size_t good_rank = 10;
  /// For RotateSampled: relays (sessions) per client, sampled
  /// deterministically from the 21 of Table V; 0 = all of them.
  std::size_t relays_per_client = 6;
  /// Paper defaults: 100 transfers, one every 6 minutes (10 hours).
  std::size_t transfers_per_session = 100;
  util::Duration interval = util::minutes(6);
  ScenarioKnobs knobs{};
  /// Worker threads; 0 = hardware concurrency. Results are independent of
  /// this value.
  unsigned threads = 0;
  /// Optional span sink shared by every session (the Tracer is
  /// thread-safe); each session traces on its own track (task index).
  obs::Tracer* tracer = nullptr;
  /// Forwarded into every SessionSpec: per-race flight records (the ring
  /// is mutex-guarded, so parallel_map workers may share it) and the
  /// virtual-time sampling that fills each result's TimeSeries.
  obs::FlightRecorder* flights = nullptr;
  util::Duration sample_period = 0.0;
  std::size_t sample_capacity = 256;
};

struct Section2Result {
  std::vector<SessionResult> sessions;
};

Section2Result run_section2(const Section2Config& config);

}  // namespace idr::testbed
