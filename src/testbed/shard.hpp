// Shard execution layer: planet-scale runs as a fleet of independent
// simulations.
//
// A shard is a slice of a run — a group of client sessions — that shares
// no state with any other shard: each session inside it builds its own
// sim::Simulator, flow::FlowSimulator and obs registry (via ClientWorld),
// and the shard itself keeps a private registry for its `testbed.shard.*`
// series. Shards therefore execute on any number of worker threads
// (parallel_for) with bitwise-identical results: every stochastic stream
// is derived from stable identities (shard id, client name) through
// util::child_stream, never from execution order, and the cross-shard
// merge — records, obs::Snapshot::merge, scheduler-work counters — runs
// serially in shard-index order after the fork-join barrier.
//
// This is the PR-1 observation (disjoint bottleneck components never
// interact) promoted from the max-min solver to the whole testbed: the
// partition unit is the connected component of the scenario graph, which
// in this testbed is the per-client world (mirrored pair), grouped
// `clients_per_shard` at a time to amortize per-task overhead.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "testbed/policy.hpp"
#include "testbed/records.hpp"
#include "testbed/scenario.hpp"
#include "testbed/session.hpp"
#include "testbed/sites.hpp"

namespace idr::testbed {

/// One independently executable slice of a run. `shard_id` is the stable
/// identity the shard's RNG streams are keyed by (fleet planners derive
/// session seeds as child_stream(child_stream(root, shard_id), ...)); it
/// also fixes the shard's position in the deterministic merge order.
struct ShardSpec {
  std::uint64_t shard_id = 0;
  std::vector<SessionSpec> sessions;
};

/// Order-sensitive aggregate of a shard's (or run's) transfer records:
/// enough for a planet-scale driver to drop the per-transfer observations
/// after each shard completes and still gate on outcome totals and
/// bitwise determinism across thread counts.
struct ShardSummary {
  std::size_t transfers = 0;
  std::size_t ok = 0;
  std::size_t indirect = 0;
  std::size_t failed = 0;
  /// Sum of improvement_steady_pct over ok transfers (mean = sum / ok).
  double improvement_sum = 0.0;
  /// FNV-1a over every transfer's outcome fields, in record order. Equal
  /// digests across IDR_THREADS settings certify bitwise-identical runs.
  std::uint64_t digest = 0xcbf29ce484222325ULL;

  void absorb(const SessionResult& session);
  /// Folds `other` in as the next block of records (index order matters:
  /// digests chain, counters add).
  void combine(const ShardSummary& other);
};

/// Everything one shard produced.
struct ShardResult {
  std::uint64_t shard_id = 0;
  std::vector<SessionOutput> sessions;  // in ShardSpec::sessions order
  ShardSummary summary;
  /// Event-core work summed over the shard's sessions.
  SchedulerWork work;
  /// The shard's sessions' registries merged (in session order), plus the
  /// shard-scoped `testbed.shard.*` series. Timing never enters the
  /// snapshot — it must stay bitwise thread-count-independent.
  obs::Snapshot metrics;
  /// Wall-clock the worker spent inside this shard (load/imbalance
  /// accounting; nondeterministic by nature, kept out of `metrics`).
  double busy_seconds = 0.0;
};

/// Merged view of a sharded run.
struct ShardRunResult {
  /// Per-session outputs concatenated in (shard index, session) order —
  /// exactly the order a single-threaded loop over the specs would
  /// produce. Empty for sessions a per-shard reducer cleared.
  std::vector<SessionOutput> outputs;
  ShardSummary summary;
  SchedulerWork work;
  obs::Snapshot metrics;
  std::size_t shard_count = 0;
  double busy_seconds = 0.0;  // sum of per-shard worker time
  double wall_seconds = 0.0;  // fork-join wall clock of the whole run
};

/// Runs one shard to completion on the calling thread.
ShardResult run_shard(const ShardSpec& spec);

/// Runs every shard across `threads` workers (resolve_threads rules) and
/// merges the results in shard-index order. `per_shard`, when set, runs
/// on the worker thread right after its shard completes — a planet-scale
/// driver uses it to fold observations down and release their memory
/// before the join; it must only touch the ShardResult it is handed.
ShardRunResult run_sharded(
    std::vector<ShardSpec> shards, unsigned threads,
    const std::function<void(ShardResult&)>& per_shard = nullptr);

/// Groups an already-built session list into shards of
/// `sessions_per_shard` consecutive sessions (shard_id = ordinal) — the
/// component partition for drivers that already enumerate independent
/// sessions (Section 2/4 style task lists).
std::vector<ShardSpec> plan_shards(std::vector<SessionSpec> sessions,
                                   std::size_t sessions_per_shard);

// --- Planet-scale fleets ----------------------------------------------------

/// A population far beyond PlanetLab: `clients` client sites and
/// `relay_pool` relay sites synthesized from the calibrated Table IV/V
/// profiles by seeded perturbation. Site `Foo#k` inherits profile `Foo`
/// with its bandwidth, variability and relay-goodness parameters drawn
/// from child_stream(seed, fnv1a("Foo#k")) — stable per name, so a fleet
/// is fully determined by (seed, counts) and any subset of it can be
/// re-generated independently.
struct FleetSpec {
  std::uint64_t seed = 2026;
  std::size_t clients = 200;
  std::size_t relay_pool = 200;
  /// Candidate relays per client, sampled from the pool per client name.
  std::size_t relays_per_client = 3;
  /// Relays raced per transfer (UniformRandomSubsetPolicy subset size).
  std::size_t probe_set = 2;
  std::size_t transfers_per_client = 64;
  /// Paper cadence (one transfer per 6 minutes). Long enough that even a
  /// degraded direct path finishes before the next transfer starts —
  /// shorter cadences make transfers overlap on the shared access link
  /// and measure self-induced queueing instead of path quality.
  util::Duration interval = util::minutes(6);
  std::size_t clients_per_shard = 4;
  std::string server = "eBay";
  ScenarioKnobs knobs{};
  /// When set, every client runs this selection policy family instead of
  /// the default uniform subset (subset_size is still min(probe_set,
  /// relays_per_client)). Each session builds its own policy instance, so
  /// per-shard estimate state never crosses shard boundaries.
  std::optional<PolicyParams> policy;
};

class SyntheticFleet {
 public:
  explicit SyntheticFleet(const FleetSpec& spec);

  const std::vector<SiteProfile>& clients() const { return clients_; }
  const std::vector<SiteProfile>& relays() const { return relays_; }
  const SiteProfile& server() const { return server_; }

 private:
  std::deque<std::string> names_;  // stable storage behind profile views
  std::vector<SiteProfile> clients_;
  std::vector<SiteProfile> relays_;
  SiteProfile server_;
};

/// Builds the shard plan for a fleet: clients in name order, grouped
/// `clients_per_shard` at a time, one session per client racing a random
/// `probe_set`-subset of its `relays_per_client` candidates. Every seed
/// derives from (spec.seed, shard id, client name) via child_stream.
std::vector<ShardSpec> plan_fleet_shards(const FleetSpec& spec,
                                         const SyntheticFleet& fleet);

}  // namespace idr::testbed
