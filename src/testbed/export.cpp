#include "testbed/export.hpp"

namespace idr::testbed {

util::CsvWriter observations_csv(
    const std::vector<SessionResult>& sessions) {
  util::CsvWriter csv({"client", "session_relay", "start_time_s", "ok",
                       "chose_indirect", "chosen_relay",
                       "selected_mbps", "selected_steady_mbps",
                       "direct_mbps", "improvement_pct",
                       "improvement_steady_pct"});
  for (const SessionResult& s : sessions) {
    for (const TransferObservation& t : s.transfers) {
      csv.add_row({t.client, t.session_relay,
                   util::format_fixed(t.start_time, 1),
                   t.ok ? "1" : "0", t.chose_indirect ? "1" : "0",
                   t.chosen_relay,
                   util::format_fixed(util::to_mbps(t.selected_rate), 4),
                   util::format_fixed(util::to_mbps(t.selected_steady_rate),
                                      4),
                   util::format_fixed(util::to_mbps(t.direct_rate), 4),
                   util::format_fixed(t.improvement_pct, 2),
                   util::format_fixed(t.improvement_steady_pct, 2)});
    }
  }
  return csv;
}

util::CsvWriter relay_utilization_csv(
    const std::vector<SessionResult>& sessions) {
  util::CsvWriter csv(
      {"relay", "avg_utilization", "stdev", "rms", "sessions"});
  for (const RelayUtilizationSummary& r :
       relay_utilization_summary(sessions)) {
    csv.add_row({r.relay, util::format_fixed(r.average, 4),
                 util::format_fixed(r.stdev, 4),
                 util::format_fixed(r.rms, 4),
                 std::to_string(r.sessions)});
  }
  return csv;
}

util::CsvWriter random_set_sweep_csv(const Section4Result& result) {
  util::CsvWriter csv({"client", "set_size", "avg_improvement_pct",
                       "utilization"});
  for (const Section4Cell& cell : result.cells) {
    csv.add_row({cell.client, std::to_string(cell.set_size),
                 util::format_fixed(cell.avg_improvement_pct, 2),
                 util::format_fixed(cell.utilization, 4)});
  }
  return csv;
}

}  // namespace idr::testbed
